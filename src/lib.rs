//! # progressive-tm — reproduction of *Progressive Transactional Memory
//! in Time and Space* (Kuznetsov & Ravi, PACT 2015)
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`sim`] — the paper's abstract machine: a deterministic shared-memory
//!   simulator with step counting and RMR accounting in the write-through
//!   CC, write-back CC and DSM models;
//! * [`model`] — the formal definitions of Sections 2–3 as checkers:
//!   opacity, strict serializability, (strong) progressiveness,
//!   invisible/weak-invisible reads, weak DAP;
//! * [`core`] — the TM algorithms spanning the design space the theorems
//!   carve out, plus Algorithm 1 (`L(M)`, the mutex reduction of
//!   Theorem 9) and the execution-driving harness;
//! * [`mutex`] — classic mutual-exclusion baselines with known RMR
//!   profiles;
//! * [`stm`] — a native STM for real threads with TL2 / NOrec /
//!   incremental-validation / TLRW visible-read / multi-version
//!   snapshot modes plus an adaptive mode controller that switches
//!   between the invisible- and visible-read machinery as the workload
//!   shifts: lock-free optimistic (or reader-announcing, or
//!   chain-walking) reads over a striped orec table and timestamped
//!   version chains, a shared transaction log, pluggable contention
//!   management, and opt-in t-operation history recording;
//! * [`structs`] — transactional data structures over the native STM
//!   (`TArray`, `THashMap`, `TQueue`, `TSet`), each usable under any of
//!   the six algorithms;
//! * [`server`] — the serving tier: a sharded transactional KV store
//!   (`ShardedKv`) routing keys across N independent `Stm` shards, with
//!   cross-shard transactions and consistent scans committed via an
//!   ordered two-phase commit over the per-shard clocks, plus a
//!   YCSB-style workload generator.
//!
//! See `README.md` for the quick start, the crate map, and how to run
//! the benchmarks.
//!
//! ## Example: the headline result in five lines
//!
//! ```
//! use progressive_tm::core::{ProgressiveTm, TmHarness};
//! use std::sync::Arc;
//!
//! // An invisible-read, weak-DAP progressive TM pays for opacity with
//! // incremental validation: the i-th read costs 3 + i steps.
//! let mut h = TmHarness::new(1, |b| Arc::new(ProgressiveTm::install(b, 8)));
//! h.begin(0.into());
//! let costs: Vec<usize> = (0..8)
//!     .map(|i| h.read(0.into(), i.into()).1.steps)
//!     .collect();
//! assert_eq!(costs, vec![3, 4, 5, 6, 7, 8, 9, 10]);
//! ```

#![warn(missing_docs)]

pub use ptm_core as core;
pub use ptm_model as model;
pub use ptm_mutex as mutex;
pub use ptm_server as server;
pub use ptm_sim as sim;
pub use ptm_stm as stm;
pub use ptm_structs as structs;
