//! Replays the executions from the paper's proofs — Figure 1a, Figure 1b
//! (Lemma 2) and Claim 4 — against every simulated TM, printing the
//! operation traces and the model-checker verdicts.
//!
//! ```text
//! cargo run --example proof_executions
//! ```

use progressive_tm::core::ALL_TMS;
use ptm_bench::figure1::{claim4, figure1a, figure1b, ProofExecution, INTERLEAVABLE_TMS};

fn show(e: &ProofExecution) {
    println!("== {} ==", e.name);
    print!("{}", e.trace());
    println!(
        "final read: {}   opaque: {}   strictly serializable: {}\n",
        e.final_read, e.opaque, e.strictly_serializable
    );
}

fn main() {
    println!(
        "Figure 1a: the writer T_i commits BEFORE the reader starts; strict\n\
         serializability forces read(X_i) -> new value.\n"
    );
    for &tm in ALL_TMS {
        show(&figure1a(tm, 4));
    }

    println!(
        "Figure 1b (Lemma 2): the reader performs i-1 reads first, then the\n\
         disjoint writer commits; a weak-DAP TM cannot distinguish this from\n\
         Figure 1a, so the i-th read must return the new value.\n"
    );
    for &tm in INTERLEAVABLE_TMS {
        show(&figure1b(tm, 4));
    }

    println!(
        "Claim 4: an extra committed writer beta^l invalidates an item the\n\
         reader already read; the i-th read may return the initial value or\n\
         abort — never the new value alone.\n"
    );
    for &tm in INTERLEAVABLE_TMS {
        show(&claim4(tm, 4, 1));
    }
}
