//! A concurrent ordered set (sorted singly-linked list) built on the
//! native STM — the "compositionality" sales pitch from the paper's
//! introduction, made concrete: every `insert`/`remove`/`contains` is one
//! transaction composed of plain sequential list code.
//!
//! ```text
//! cargo run --release --example ordered_set
//! ```

use progressive_tm::stm::{Retry, Stm, TVar, Transaction};
use std::sync::Arc;

/// A list node: `None` in `next` marks the tail.
#[derive(Clone)]
struct Node {
    key: u64,
    next: Option<TVar<Node>>,
}

// Node equality compares keys and next-pointer *identity* — enough for
// NOrec-style value validation to detect structural changes.
impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
            && match (&self.next, &other.next) {
                (None, None) => true,
                (Some(a), Some(b)) => a.same_cell(b),
                _ => false,
            }
    }
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Node({})", self.key)
    }
}

/// Transactional sorted set.
struct OrderedSet {
    stm: Arc<Stm>,
    /// Sentinel head (key = MIN).
    head: TVar<Node>,
}

impl OrderedSet {
    fn new(stm: Arc<Stm>) -> Self {
        OrderedSet {
            stm,
            head: TVar::new(Node { key: 0, next: None }),
        }
    }

    /// Walks to the node after which `key` belongs. Returns
    /// `(predecessor cell, predecessor value)`.
    fn locate(&self, tx: &mut Transaction<'_>, key: u64) -> Result<(TVar<Node>, Node), Retry> {
        let mut cell = self.head.clone();
        let mut node = tx.read(&cell)?;
        loop {
            let Some(next_cell) = node.next.clone() else {
                return Ok((cell, node));
            };
            let next = tx.read(&next_cell)?;
            if next.key >= key {
                return Ok((cell, node));
            }
            cell = next_cell;
            node = next;
        }
    }

    fn insert(&self, key: u64) -> bool {
        assert!(key > 0, "key 0 is the sentinel");
        self.stm.atomically(|tx| {
            let (pred_cell, mut pred) = self.locate(tx, key)?;
            if let Some(next_cell) = pred.next.clone() {
                if tx.read(&next_cell)?.key == key {
                    return Ok(false); // already present
                }
            }
            let new = TVar::new(Node {
                key,
                next: pred.next.take(),
            });
            pred.next = Some(new);
            tx.write(&pred_cell, pred)?;
            Ok(true)
        })
    }

    fn remove(&self, key: u64) -> bool {
        self.stm.atomically(|tx| {
            let (pred_cell, mut pred) = self.locate(tx, key)?;
            let Some(next_cell) = pred.next.clone() else {
                return Ok(false);
            };
            let next = tx.read(&next_cell)?;
            if next.key != key {
                return Ok(false);
            }
            pred.next = next.next;
            tx.write(&pred_cell, pred)?;
            Ok(true)
        })
    }

    fn contains(&self, key: u64) -> bool {
        self.stm.atomically(|tx| {
            let (_, pred) = self.locate(tx, key)?;
            match pred.next.clone() {
                Some(c) => Ok(tx.read(&c)?.key == key),
                None => Ok(false),
            }
        })
    }

    fn snapshot(&self) -> Vec<u64> {
        self.stm.atomically(|tx| {
            let mut out = Vec::new();
            let mut node = tx.read(&self.head)?;
            while let Some(c) = node.next.clone() {
                node = tx.read(&c)?;
                out.push(node.key);
            }
            Ok(out)
        })
    }
}

fn main() {
    let stm = Arc::new(Stm::tl2());
    let set = Arc::new(OrderedSet::new(Arc::clone(&stm)));
    let threads = 8;
    let ops_per_thread = 4_000;

    std::thread::scope(|s| {
        for t in 0..threads {
            let set = Arc::clone(&set);
            s.spawn(move || {
                let mut rng = (t as u64 + 1) * 0x2545F4914F6CDD1D;
                for _ in 0..ops_per_thread {
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    let key = 1 + rng % 256;
                    match rng % 3 {
                        0 => {
                            set.insert(key);
                        }
                        1 => {
                            set.remove(key);
                        }
                        _ => {
                            set.contains(key);
                        }
                    }
                }
            });
        }
    });

    let snap = set.snapshot();
    assert!(
        snap.windows(2).all(|w| w[0] < w[1]),
        "sorted, no duplicates"
    );
    let s = stm.stats().snapshot();
    println!(
        "ordered set after {} concurrent ops: {} elements, sorted & duplicate-free",
        threads * ops_per_thread,
        snap.len()
    );
    println!(
        "{s}  (conflict rate {:.2}%)",
        100.0 * s.aborts as f64 / (s.commits + s.aborts) as f64
    );
}
