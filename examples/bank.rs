//! Concurrent bank transfers on the native STM — the classic STM demo,
//! run on all five static validation algorithms with statistics (the
//! adaptive sixth gets its own phase-shifting demo in
//! `examples/adaptive.rs`, and the multi-version scan payoff its own in
//! `examples/snapshot_scan.rs`).
//!
//! Eight threads shuffle money between 32 accounts; the invariant (total
//! balance) is checked at the end, and the per-algorithm commit/abort/
//! validation-probe counters show the cost structure the paper analyses.
//!
//! ```text
//! cargo run --release --example bank
//! ```

use progressive_tm::stm::{Algorithm, ExponentialBackoff, Stm, TVar};
use std::sync::Arc;
use std::time::Instant;

const ACCOUNTS: usize = 32;
const THREADS: usize = 8;
const TRANSFERS_PER_THREAD: usize = 20_000;
const INITIAL: u64 = 1_000;

fn run(algorithm: Algorithm) {
    // The builder exposes the retry policy and orec geometry; these are
    // the defaults, spelled out.
    let stm = Arc::new(
        Stm::builder(algorithm)
            .max_attempts(10_000_000)
            .orec_stripes(1024)
            .contention_manager(ExponentialBackoff::default())
            .build(),
    );
    let accounts: Vec<TVar<u64>> = (0..ACCOUNTS).map(|_| TVar::new(INITIAL)).collect();

    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let stm = Arc::clone(&stm);
            let accounts = accounts.clone();
            s.spawn(move || {
                let mut rng = (t as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15);
                let mut next = move || {
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    rng
                };
                for _ in 0..TRANSFERS_PER_THREAD {
                    let from = (next() as usize) % ACCOUNTS;
                    let to = (next() as usize) % ACCOUNTS;
                    if from == to {
                        continue;
                    }
                    let amount = next() % 20;
                    stm.atomically(|tx| {
                        let a = tx.read(&accounts[from])?;
                        let b = tx.read(&accounts[to])?;
                        let amt = a.min(amount);
                        tx.write(&accounts[from], a - amt)?;
                        tx.write(&accounts[to], b + amt)
                    });
                }
            });
        }
    });
    let elapsed = start.elapsed();

    let total: u64 = accounts.iter().map(TVar::load).sum();
    assert_eq!(total, ACCOUNTS as u64 * INITIAL, "money conservation");

    let s = stm.stats().snapshot();
    let throughput = s.commits as f64 / elapsed.as_secs_f64();
    println!(
        "{:<12} commits {:>8}  aborts {:>7}  probes {:>9}  rw-conflicts {:>7}  {:>9.0} txn/s  (total = {total}, conserved)",
        format!("{algorithm:?}"),
        s.commits,
        s.aborts,
        s.validation_probes,
        s.reader_conflicts,
        throughput,
    );
}

fn main() {
    println!(
        "Bank: {THREADS} threads x {TRANSFERS_PER_THREAD} transfers over {ACCOUNTS} accounts\n"
    );
    for algorithm in [
        Algorithm::Tl2,
        Algorithm::Incremental,
        Algorithm::Norec,
        Algorithm::Tlrw,
        Algorithm::Mv,
    ] {
        run(algorithm);
    }
    println!("\nAll runs conserve the total balance: the STM is serializable.");
}
