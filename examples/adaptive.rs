//! The adaptive runtime, watched live: one `Algorithm::Adaptive`
//! instance is driven through the same phase-shifting workload the
//! `phase_shift_*` baseline measures (`read_mostly → write_heavy →
//! read_mostly`, via `ptm_bench::native`'s pass drivers) while the
//! program prints the controller's decisions — the active mode, the
//! per-phase stats deltas it decides from, and every mode transition.
//!
//! ```bash
//! cargo run --release --example adaptive
//! ```

use progressive_tm::stm::{AdaptiveConfig, Algorithm, Stm, TVar};
use ptm_bench::native::{pass_read_mostly, pass_write_heavy};
use std::sync::Arc;

fn main() {
    let threads = 4;
    let txns: u64 = 20_000;
    // Sample every 128 commits and switch after one agreeing window, so
    // the transitions are visible within short phases.
    let stm = Arc::new(
        Stm::builder(Algorithm::Adaptive)
            .adaptive_config(AdaptiveConfig {
                window_commits: 128,
                hysteresis_windows: 1,
                ..AdaptiveConfig::default()
            })
            .build(),
    );
    let vars: Vec<TVar<u64>> = (0..128).map(|_| TVar::new(1)).collect();
    let accounts: Vec<TVar<u64>> = (0..16).map(|_| TVar::new(1_000_000)).collect();

    println!("adaptive STM, phase-shifting workload ({threads} threads)\n");
    let mut last = stm.stats().snapshot();
    let phases: [(&str, bool); 3] = [
        ("read_mostly ", false),
        ("write_heavy ", true),
        ("read_mostly'", false),
    ];
    for (name, write_heavy) in phases {
        let nanos = if write_heavy {
            pass_write_heavy(&stm, &accounts, threads, txns)
        } else {
            pass_read_mostly(&stm, &vars, threads, txns)
        };
        let snap = stm.stats().snapshot();
        let d = snap.since(&last);
        last = snap;
        println!(
            "{name}  {:>7.0} txn/s   read/write ratio {:>5.1}   {} transition(s) -> {:?}",
            d.commits as f64 * 1e9 / nanos as f64,
            d.reads as f64 / d.writes.max(1) as f64,
            d.mode_transitions,
            stm.active_mode(),
        );
    }
    let total: u64 = accounts.iter().map(TVar::load).sum();
    assert_eq!(total, 16_000_000, "transfers conserved the total");
    let snap = stm.stats().snapshot();
    println!("\nfinal: {snap}");
    assert!(
        snap.mode_transitions >= 2,
        "the workload shift must move the engine across the tradeoff"
    );
    println!(
        "\nThe controller crossed the paper's time-space tradeoff {} times:\n\
         invisible reads (Tl2 hooks) while reads dominated, visible reads\n\
         (Tlrw hooks) while writers did — one engine, both cost profiles.",
        snap.mode_transitions
    );
}
