//! Using the formal-model checkers as a library: build TM executions,
//! parse their histories, and audit them against the paper's definitions
//! — including one *negative* specimen (the TLRW upgrade deadlock) that
//! violates strong progressiveness, caught by the Definition 1 checker.
//!
//! ```text
//! cargo run --example history_audit
//! ```

use progressive_tm::core::{TmHarness, TmKind, TxCommand};
use progressive_tm::model;
use progressive_tm::sim::{ProcessId, TObjId};

fn audit(name: &str, hist: &model::History) {
    println!("== {name} ==");
    println!("  transactions: {}", hist.len());
    println!("  committed:    {:?}", hist.committed());
    println!("  aborted:      {:?}", hist.aborted());
    match model::find_opaque_serialization(hist) {
        Some(order) => {
            let pretty: Vec<String> = order.iter().map(|t| t.to_string()).collect();
            println!("  opaque:       yes, witness order [{}]", pretty.join(" "));
        }
        None => println!("  opaque:       NO"),
    }
    println!(
        "  strictly serializable: {}",
        model::is_strictly_serializable(hist)
    );
    println!("  progressive:           {}", model::is_progressive(hist));
    let strong = model::strong_progressiveness_violations(hist);
    if strong.is_empty() {
        println!("  strongly progressive:  yes");
    } else {
        println!("  strongly progressive:  NO — all-aborted single-object class:");
        for v in strong {
            println!("    {:?}", v.component);
        }
    }
    println!();
}

fn happy_path() -> model::History {
    // Two sequential transfers on the progressive TM.
    let mut h = TmHarness::new(2, |b| TmKind::Progressive.install(b, 2));
    let (p0, p1) = (ProcessId::new(0), ProcessId::new(1));
    h.run_writer(p0, &[(TObjId::new(0), 70), (TObjId::new(1), 30)]);
    h.begin(p1);
    let _ = h.read(p1, TObjId::new(0));
    let _ = h.read(p1, TObjId::new(1));
    let _ = h.try_commit(p1);
    h.stop_all();
    h.history()
}

fn aborted_reader() -> model::History {
    // A reader caught mid-flight by a concurrent writer: aborts, history
    // stays opaque and progressive.
    let mut h = TmHarness::new(2, |b| TmKind::Progressive.install(b, 2));
    let (p0, p1) = (ProcessId::new(0), ProcessId::new(1));
    h.begin(p0);
    let _ = h.read(p0, TObjId::new(0));
    h.run_writer(p1, &[(TObjId::new(0), 5)]);
    let _ = h.read(p0, TObjId::new(1)); // validation detects the commit
    h.stop_all();
    h.history()
}

fn tlrw_upgrade_deadlock() -> model::History {
    // The negative specimen: two read-to-write upgraders on one item both
    // abort — Definition 1 is violated and the checker proves it.
    let mut h = TmHarness::new(2, |b| TmKind::Tlrw.install(b, 1));
    let (p0, p1) = (ProcessId::new(0), ProcessId::new(1));
    h.begin(p0);
    h.begin(p1);
    let _ = h.read(p0, TObjId::new(0));
    let _ = h.read(p1, TObjId::new(0));
    let _ = h.write(p0, TObjId::new(0), 1);
    let _ = h.write(p1, TObjId::new(0), 2);
    // Interleave both commits step by step so each sees the other's lock.
    h.sim().send(p0, TxCommand::TryCommit);
    h.sim().send(p1, TxCommand::TryCommit);
    loop {
        let runnable = h.sim().runnable();
        if runnable.is_empty() {
            break;
        }
        for pid in runnable {
            let _ = h.sim().step(pid);
        }
    }
    h.stop_all();
    h.history()
}

fn main() {
    audit("sequential transfers (ir-progressive)", &happy_path());
    audit("reader aborted by concurrent writer", &aborted_reader());
    audit(
        "TLRW upgrade deadlock (negative specimen)",
        &tlrw_upgrade_deadlock(),
    );
}
