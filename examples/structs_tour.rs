//! Tour of the transactional data-structure layer, ending with the
//! run-to-proof loop: a concurrent workload over `ptm-structs` is
//! recorded as a t-operation history and validated by the `ptm-model`
//! opacity checker — the same checker the simulator's logs go through.
//!
//! ```text
//! cargo run --release --example structs_tour
//! ```

use progressive_tm::model::{is_opaque, History};
use progressive_tm::stm::{Algorithm, HistoryRecorder, Stm, TVar};
use progressive_tm::structs::{TArray, THashMap, TQueue, TSet};
use std::sync::Arc;

fn main() {
    // --- Part 1: throughput-shaped concurrent churn, no recording. ---
    // Workers *block* on the queue with `dequeue_wait` (parked on the
    // queue's stripes, zero CPU while idle) and compose it with a
    // shutdown flag through `or_else` — the CMT idiom for "take a job,
    // or notice we're done". `dequeue`'s `Ok(None)` stays available as
    // the explicit non-blocking opt-out for polling-shaped code.
    let stm = Arc::new(Stm::tl2());
    let jobs: TQueue<u64> = TQueue::new();
    let results: THashMap<u64, u64> = THashMap::new();
    let finished: TSet<u64> = TSet::new();
    let done: TVar<bool> = TVar::new(false);
    let total_jobs = 512u64;

    std::thread::scope(|s| {
        for _ in 0..4 {
            let stm = Arc::clone(&stm);
            let (jobs, results, finished) = (jobs.clone(), results.clone(), finished.clone());
            let done = done.clone();
            s.spawn(move || loop {
                // One atomic step: pop a job (or sleep until one exists),
                // record its result, mark it done — falling through to
                // the shutdown flag only when the queue is empty.
                let job = stm.atomically(|tx| {
                    tx.or_else(
                        |tx| {
                            let j = jobs.dequeue_wait(tx)?;
                            results.insert(tx, j, j * j)?;
                            finished.insert(tx, j)?;
                            Ok(Some(j))
                        },
                        |tx| {
                            if tx.read(&done)? {
                                Ok(None)
                            } else {
                                tx.retry() // queue empty, not done: sleep
                            }
                        },
                    )
                });
                if job.is_none() {
                    break;
                }
            });
        }
        // Produce with the workers already live: a parked worker is woken
        // by each batch as it commits.
        for batch in (0..total_jobs).collect::<Vec<_>>().chunks(64) {
            stm.atomically(|tx| {
                for &j in batch {
                    jobs.enqueue(tx, j)?;
                }
                Ok(())
            });
        }
        // Wait for the queue to drain, then flip the flag — the write
        // wakes every worker still parked on the empty queue.
        stm.atomically(|tx| {
            if jobs.is_empty(tx)? && finished.len(tx)? as u64 == total_jobs {
                tx.write(&done, true)
            } else {
                tx.retry()
            }
        });
    });

    let done = stm.atomically(|tx| finished.len(tx));
    assert_eq!(done as u64, total_jobs);
    assert_eq!(
        stm.atomically(|tx| results.get(tx, &31)),
        Some(31 * 31),
        "every job's result is indexed"
    );
    println!(
        "processed {total_jobs} jobs across 4 workers: {}",
        stm.stats().snapshot()
    );

    // --- Part 2: the same idea, recorded and formally checked. ---
    let rec = HistoryRecorder::new();
    let stm = Arc::new(
        Stm::builder(Algorithm::Tl2)
            .record_history(rec.clone())
            .build(),
    );
    let cells = TArray::new(4, 100u64); // non-zero initials: preamble at work
    std::thread::scope(|s| {
        for t in 0..3usize {
            let stm = Arc::clone(&stm);
            let cells = cells.clone();
            s.spawn(move || {
                for i in 0..4usize {
                    stm.atomically(|tx| {
                        let from = (t + i) % cells.len();
                        let to = (t + i + 1) % cells.len();
                        let a = cells.get(tx, from)?;
                        let amt = a.min(5);
                        cells.update(tx, from, |x| x - amt)?;
                        cells.update(tx, to, |x| x + amt)
                    });
                }
            });
        }
    });
    assert_eq!(cells.load_all().iter().sum::<u64>(), 400);

    let log = rec.drain();
    let history = History::from_log(&log).expect("recorded histories are well-formed");
    // The opacity search is exponential and caps out at 128 transactions
    // (every aborted attempt counts); keep recorded runs small, like the
    // 12-transaction workload above.
    assert!(history.len() <= 128, "keep recorded runs checker-sized");
    assert!(is_opaque(&history), "the native engine's run is opaque");
    println!(
        "recorded {} markers / {} transactions; opacity checker: PASS ({})",
        log.len(),
        history.len(),
        stm.stats().snapshot()
    );
}
