//! The multi-version payoff, watched live: one `Algorithm::Mv` instance
//! runs a long consistent scan — every slot of a shared array, over and
//! over — while writer threads storm the same array. The scans commit
//! with **zero aborts and zero validation probes** (each one reads the
//! consistent snapshot its start time names), and the program prints
//! what that costs: versions retained while scanners are live, versions
//! trimmed once the low-watermark collector catches up, and the same
//! storm's abort bill under single-version TL2 for contrast.
//!
//! A third run bounds the space bill with `MvConfig::max_versions`:
//! each chain keeps at most 8 versions, the collector evicts the rest,
//! and a scan whose pinned snapshot falls off the ring pays the
//! single-version currency again — an abort-and-retry — making the
//! space/time dial visible in one program.
//!
//! ```bash
//! cargo run --release --example snapshot_scan
//! ```

use progressive_tm::stm::{Algorithm, MvConfig, Stm, TVar};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

const VARS: usize = 256;
const SCANS: u64 = 400;
const WRITERS: usize = 4;

/// Runs the storm: `WRITERS` blind-writer threads vs one scanning
/// thread doing `SCANS` full-array read-only transactions. Writer pairs
/// keep `vars[2k] == vars[2k+1]`, so every scan can check its own
/// snapshot for tears. Returns (scan nanos, scan attempts, max chain
/// length seen by the scanner).
fn storm(stm: &Arc<Stm>) -> (u128, u64, usize) {
    let vars: Vec<TVar<u64>> = (0..VARS).map(|_| TVar::new(0)).collect();
    let stop = Arc::new(AtomicBool::new(false));
    let attempts = Arc::new(AtomicU64::new(0));
    let mut max_chain = 1;
    let start = Instant::now();
    std::thread::scope(|s| {
        for w in 0..WRITERS {
            let stm = Arc::clone(stm);
            let vars = vars.clone();
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut i = w as u64;
                while !stop.load(Ordering::Relaxed) {
                    let k = 2 * ((i as usize + w) % (VARS / 2));
                    i = i.wrapping_add(1);
                    stm.atomically(|tx| {
                        tx.write(&vars[k], i)?;
                        tx.write(&vars[k + 1], i)
                    });
                }
            });
        }
        let attempts = Arc::clone(&attempts);
        for _ in 0..SCANS {
            let consistent = stm.atomically(|tx| {
                attempts.fetch_add(1, Ordering::Relaxed);
                let mut ok = true;
                for k in 0..(VARS / 2) {
                    ok &= tx.read(&vars[2 * k])? == tx.read(&vars[2 * k + 1])?;
                }
                Ok(ok)
            });
            assert!(consistent, "a scan observed a torn writer pair");
            max_chain = max_chain.max(vars[0].versions_retained());
        }
        stop.store(true, Ordering::Relaxed);
    });
    (
        start.elapsed().as_nanos(),
        attempts.load(Ordering::Relaxed),
        max_chain,
    )
}

fn main() {
    println!("long consistent scans ({VARS} reads each) racing {WRITERS} writer threads\n");

    let mv = Arc::new(Stm::mv());
    let before = mv.stats().snapshot();
    let (nanos, attempts, max_chain) = storm(&mv);
    let d = mv.stats().snapshot().since(&before);
    println!(
        "mv   {:>8.0} scans/s   {} aborts, {} probes over {} scans",
        SCANS as f64 * 1e9 / nanos as f64,
        attempts - SCANS,
        d.validation_probes,
        SCANS,
    );
    println!(
        "     space bill: up to {} versions retained on a hot slot, {} trimmed overall\n     (low-watermark collector; high-water chain length {})",
        max_chain, d.versions_trimmed, d.max_chain_len,
    );
    assert_eq!(attempts, SCANS, "mv read-only scans never abort");
    assert_eq!(d.validation_probes, 0, "and never validate");

    // The space bill, capped: `max_versions` turns each chain into an
    // 8-deep ring, oldest evicted first, no matter what snapshot still
    // pins it. A camped reader demonstrates the price: it pins snapshot
    // 0, a write storm rolls the ring 100 versions past it, and its next
    // read pays the single-version currency again — an abort and a
    // retry at a fresh snapshot (oldest-snapshot-abort semantics).
    let capped = Stm::builder(Algorithm::Mv)
        .mv_config(MvConfig {
            max_versions: Some(8),
        })
        .build();
    let v = TVar::new(0u64);
    let before = capped.stats().snapshot();
    let attempts = std::cell::Cell::new(0u64);
    let last = capped.atomically(|tx| {
        attempts.set(attempts.get() + 1);
        let seen = tx.read(&v)?;
        if attempts.get() == 1 {
            assert_eq!(seen, 0, "the camper pinned the initial snapshot");
            // Roll the ring right past the camper: 100 nested commits
            // against an 8-version cap.
            for i in 1..=100u64 {
                capped.atomically(|tx2| tx2.write(&v, i));
            }
        }
        // Attempt 1: snapshot 0 fell off the ring 92 versions ago, so
        // this read aborts. Attempt 2 reads the current value.
        tx.read(&v)
    });
    let d = capped.stats().snapshot().since(&before);
    println!(
        "\nmv/8 (max_versions = 8) camped reader vs a 100-version storm:\n\
         \x20    space bill, capped: {} versions retained on the slot (ring bound 8), \
         {} evicted, {} eviction aborts — the camper retried {} time(s) and read {}",
        v.versions_retained(),
        d.versions_evicted,
        d.eviction_aborts,
        attempts.get() - 1,
        last,
    );
    assert_eq!(last, 100, "the retry reads the current value");
    assert_eq!(attempts.get(), 2, "exactly one eviction retry");
    assert!(d.eviction_aborts >= 1, "the eviction was observable");
    assert!(
        d.versions_evicted >= 90,
        "the ring rolled through the storm"
    );
    assert!(
        v.versions_retained() <= 9,
        "retention must stay bounded by the cap"
    );

    let tl2 = Arc::new(Stm::tl2());
    let before = tl2.stats().snapshot();
    let (nanos, attempts, _) = storm(&tl2);
    let d = tl2.stats().snapshot().since(&before);
    println!(
        "\ntl2  {:>8.0} scans/s   {} scan retries, {} instance aborts over {} scans",
        SCANS as f64 * 1e9 / nanos as f64,
        attempts - SCANS,
        d.aborts,
        SCANS,
    );

    println!(
        "\nSame storm, opposite currencies: the single-version engine re-runs\n\
         scans whenever a writer outruns them (time), the multi-version engine\n\
         keeps superseded versions alive exactly as long as a live snapshot\n\
         can still read them (space) — Theorem 3's tradeoff, chosen per read."
    );
}
