//! Quickstart: the paper's headline result in a few dozen lines.
//!
//! Runs a read-only transaction of growing size on two progressive TMs —
//! one satisfying Theorem 3's hypotheses (weak DAP + invisible reads),
//! one giving up DAP via a global clock (TL2) — and prints the measured
//! step counts side by side: quadratic vs linear.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use progressive_tm::core::{ProgressiveTm, Tl2Tm, TmHarness};
use progressive_tm::model::{is_opaque, is_strictly_serializable};
use progressive_tm::sim::{ProcessId, TObjId, TOpResult};
use std::sync::Arc;

fn measure(name: &str, mut harness: TmHarness, m: usize) -> usize {
    let writer = ProcessId::new(1);
    let reader = ProcessId::new(0);
    // Commit one writer per object so versions move.
    for i in 0..m {
        harness.run_writer(writer, &[(TObjId::new(i), 7)]);
    }
    // The measured read-only transaction.
    harness.begin(reader);
    let mut total = 0;
    for i in 0..m {
        let (res, cost) = harness.read(reader, TObjId::new(i));
        assert_eq!(res, TOpResult::Value(7));
        total += cost.steps;
    }
    let (res, cost) = harness.try_commit(reader);
    assert_eq!(res, TOpResult::Committed);
    total += cost.steps;

    // Every execution is audited against the formal model.
    let h = harness.history();
    assert!(is_opaque(&h), "{name}: execution must be opaque");
    assert!(is_strictly_serializable(&h));
    harness.stop_all();
    total
}

fn main() {
    println!("Total steps of an m-read read-only transaction (Theorem 3(1)):\n");
    println!("{:>6} {:>16} {:>10}", "m", "ir-progressive", "tl2");
    for m in [2usize, 4, 8, 16, 32, 64] {
        let prog = measure(
            "ir-progressive",
            TmHarness::new(2, |b| Arc::new(ProgressiveTm::install(b, m))),
            m,
        );
        let tl2 = measure(
            "tl2",
            TmHarness::new(2, |b| Arc::new(Tl2Tm::install(b, m))),
            m,
        );
        println!("{m:>6} {prog:>16} {tl2:>10}");
    }
    println!(
        "\nir-progressive pays Θ(m²) total (incremental validation, forced by\n\
         weak DAP + invisible reads); TL2 escapes to Θ(m) by reading a global\n\
         clock — giving up disjoint-access parallelism."
    );
}
