//! Theorem 9 hands-on: build the Algorithm 1 mutex `L(M)` from a strongly
//! progressive TM, run `n` contending processes on the simulator, and
//! print RMRs per passage in all three memory models next to MCS and a
//! test-and-set lock.
//!
//! ```text
//! cargo run --release --example rmr_experiment
//! ```

use ptm_bench::rmr::run_rmr;

fn main() {
    let passages = 5;
    println!(
        "RMRs per critical-section passage, {passages} passages/process\n\
         (L(M) = Algorithm 1 over the named TM)\n"
    );
    for algo in ["L(glock)", "L(ir-progressive)", "mcs", "tas"] {
        println!("{algo}:");
        println!(
            "  {:>4} {:>16} {:>14} {:>8}",
            "n", "CC write-through", "CC write-back", "DSM"
        );
        for n in [2usize, 4, 8, 16] {
            let r = run_rmr(algo, n, passages, 0xFEED);
            println!(
                "  {n:>4} {:>16.1} {:>14.1} {:>8.1}",
                r.rmr_per_passage_wt(),
                r.rmr_per_passage_wb(),
                r.rmr_per_passage_dsm()
            );
        }
        println!();
    }
    println!(
        "Every run is audited for mutual exclusion. The TM-based lock tracks\n\
         its TM within a constant factor (Theorem 7); TAS degrades with n\n\
         while the queue-based MCS and the L(M) handoff spin locally."
    );
}
