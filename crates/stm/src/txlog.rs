//! The transaction log: read set and write set shared by every algorithm.
//!
//! One [`TxLog`] per in-flight transaction holds
//!
//! * `reads` — per-read `(stripe, observed orec word)` pairs, 16 bytes
//!   each, used by TL2 and Incremental for version validation (no `Arc`
//!   bump, no allocation on the hot read path); Mv reuses the same
//!   entries with `meta` carrying the snapshot bound instead of an
//!   observed word (its reads probe no orec);
//! * `value_reads` — `(variable, value snapshot)` pairs, used by NOrec's
//!   value-based validation;
//! * `rw_reads` — stripes read-locked by Tlrw's visible reads, held to
//!   commit (nothing to validate, everything to release);
//! * `writes` — buffered `(variable, value)` updates, published only at
//!   commit.
//!
//! The log survives aborts: [`TxLog::reset`] clears entries but keeps the
//! vector capacity, so a retrying transaction reallocates nothing.

use crate::epoch::Retired;
use crate::tvar::AnyTVar;
use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

/// A versioned read observation (TL2 / Incremental / Mv).
#[derive(Debug, Clone, Copy)]
pub(crate) struct VersionedRead {
    /// Orec stripe the read validated against (will validate against,
    /// for Mv).
    pub stripe: usize,
    /// TL2/Incremental: the full orec word observed (unlocked, by
    /// construction), validated by equality. Mv: the snapshot timestamp
    /// the read resolved under, validated as an upper version bound at
    /// commit.
    pub meta: u64,
}

/// A value-snapshot read observation (NOrec).
pub(crate) struct ValueRead {
    /// The variable, kept alive for revalidation.
    pub var: Arc<dyn AnyTVar>,
    /// Clone of the value as first read.
    pub snapshot: Box<dyn Any + Send>,
}

/// A buffered write, keyed by variable identity.
pub(crate) struct WriteEntry {
    /// Stable identity of the cell (orders and keys the write set).
    pub id: usize,
    /// The variable, used to publish at commit.
    pub var: Arc<dyn AnyTVar>,
    /// The buffered value.
    pub value: Box<dyn Any + Send>,
}

/// Held-stripe counts up to this scan linearly on the Tlrw read path;
/// beyond it a hash index takes over (see `TxLog::rw_index`).
const RW_INDEX_THRESHOLD: usize = 64;

/// Write sets up to this size answer `lookup_write`/`buffer_write` by
/// linear scan; beyond it a hash index takes over (see
/// `TxLog::write_index`). Smaller than `RW_INDEX_THRESHOLD` because the
/// write-set scan runs on **every** read (the read-after-own-write
/// check), not just the visible-read path.
const WRITE_INDEX_THRESHOLD: usize = 32;

/// Read-set / write-set storage for one transaction, reused across
/// attempts.
#[derive(Default)]
pub(crate) struct TxLog {
    pub reads: Vec<VersionedRead>,
    pub value_reads: Vec<ValueRead>,
    /// Stripes whose reader–writer read lock this transaction holds
    /// (`Algorithm::Tlrw` only). Each entry is one `fetch_add(+RW_READER)`
    /// on the stripe's word that must be undone exactly once; the engine
    /// releases them at commit, abort cleanup, or the transaction's
    /// `Drop` — never through [`TxLog::reset`] alone. Mutate only through
    /// the `rw_*` helpers, which keep the membership index in sync.
    pub rw_reads: Vec<usize>,
    /// Position index (`stripe -> index in rw_reads`), rebuilt lazily
    /// whenever the set outgrows [`RW_INDEX_THRESHOLD`]: a large-read-set
    /// Tlrw transaction would otherwise pay Θ(m²) local scan work on
    /// membership checks (and O(m) per upgrade removal) — the very cost
    /// profile visible reads exist to avoid — while small sets keep the
    /// cache-hot linear scan, which beats hashing by ~50 ns/read.
    /// Invariant: while the index is active
    /// (`rw_reads.len() > RW_INDEX_THRESHOLD`), it maps exactly the
    /// stripes in `rw_reads` to their current positions; in linear mode
    /// its contents are stale and unused (the next crossing rebuilds).
    rw_index: HashMap<usize, usize>,
    pub writes: Vec<WriteEntry>,
    /// Position index (`variable id -> index in writes`), built when the
    /// write set outgrows [`WRITE_INDEX_THRESHOLD`]: every t-read checks
    /// the write set first, so a large transaction would otherwise pay
    /// Θ(reads × writes) on its own buffered values. Positions stay
    /// valid because entries are only appended or replaced in place —
    /// the set drains wholesale at commit. Invariant: while active
    /// (`writes.len() > WRITE_INDEX_THRESHOLD`) it maps exactly the
    /// buffered ids to their positions; in linear mode its contents are
    /// stale and unused (the next crossing rebuilds).
    write_index: HashMap<usize, usize>,
    /// Scratch for commit-time stripe sorting (kept so retries do not
    /// reallocate).
    pub stripe_buf: Vec<usize>,
    /// Scratch for commit-time `(stripe, pre-lock word)` bookkeeping.
    pub held_buf: Vec<(usize, u64)>,
    /// Open `or_else` checkpoint frames, innermost last. While a frame is
    /// open, `buffer_write` records displaced pre-frame values into
    /// `undo` so [`TxLog::rollback_to_checkpoint`] can restore the write
    /// set exactly. Reads are deliberately *not* framed: an `or_else`
    /// alternative keeps the first branch's read set (the union is what
    /// makes a double-retry wait on both footprints, and what keeps
    /// validation sound — the branch choice depended on those reads).
    frames: Vec<CheckFrame>,
    /// Displaced pre-frame values, `(index in writes, old value)`, shared
    /// by all open frames and partitioned by each frame's `undo_base`.
    undo: Vec<(usize, Box<dyn Any + Send>)>,
}

/// One open `or_else` checkpoint: enough to restore the write set to its
/// state at [`TxLog::checkpoint`] time. Entries at `writes_len..` were
/// created inside the frame (dropped wholesale on rollback); replacements
/// of entries below it are journaled in `undo` from `undo_base`.
struct CheckFrame {
    writes_len: usize,
    undo_base: usize,
}

impl std::fmt::Debug for TxLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxLog")
            .field("reads", &self.reads.len())
            .field("value_reads", &self.value_reads.len())
            .field("writes", &self.writes.len())
            .finish()
    }
}

impl TxLog {
    /// Clears all entries, keeping allocated capacity for the retry.
    ///
    /// The caller must have released any read locks tracked in
    /// `rw_reads` first (clearing the vector does not undo the
    /// `fetch_add`s it stands for).
    pub(crate) fn reset(&mut self) {
        self.reads.clear();
        self.value_reads.clear();
        self.rw_reads.clear();
        self.rw_index.clear();
        self.writes.clear();
        self.write_index.clear();
        self.stripe_buf.clear();
        self.held_buf.clear();
        self.frames.clear();
        self.undo.clear();
    }

    /// Opens an `or_else` checkpoint over the write set.
    pub(crate) fn checkpoint(&mut self) {
        self.frames.push(CheckFrame {
            writes_len: self.writes.len(),
            undo_base: self.undo.len(),
        });
    }

    /// Closes the innermost checkpoint, keeping the writes made since.
    pub(crate) fn commit_checkpoint(&mut self) {
        self.frames.pop();
        if self.frames.is_empty() {
            // No outer frame can roll back past this point; the journal
            // is dead weight.
            self.undo.clear();
        }
    }

    /// Restores the write set to the innermost checkpoint: replays the
    /// frame's undo journal (newest first, so multiple replacements of
    /// one cell land on the pre-frame value) and drops entries created
    /// inside the frame.
    pub(crate) fn rollback_to_checkpoint(&mut self) {
        let f = self.frames.pop().expect("rollback without checkpoint");
        for (i, old) in self.undo.drain(f.undo_base..).rev() {
            self.writes[i].value = old;
        }
        for w in self.writes.drain(f.writes_len..) {
            self.write_index.remove(&w.id);
        }
    }

    /// Journals a displaced value if the innermost open frame predates
    /// the entry (entries born inside the frame are simply truncated on
    /// rollback).
    fn record_undo(&mut self, index: usize, old: Box<dyn Any + Send>) {
        if let Some(f) = self.frames.last() {
            if index < f.writes_len {
                self.undo.push((index, old));
            }
        }
    }

    /// Whether this transaction holds the read lock on `stripe`.
    pub(crate) fn rw_contains(&self, stripe: usize) -> bool {
        if self.rw_reads.len() <= RW_INDEX_THRESHOLD {
            self.rw_reads.contains(&stripe)
        } else {
            self.rw_index.contains_key(&stripe)
        }
    }

    /// Registers a newly acquired read lock.
    pub(crate) fn rw_insert(&mut self, stripe: usize) {
        self.rw_reads.push(stripe);
        match self.rw_reads.len().cmp(&(RW_INDEX_THRESHOLD + 1)) {
            // Crossing the threshold: index everything held so far (a
            // clean rebuild — linear-mode removals may have left the
            // previous index stale).
            std::cmp::Ordering::Equal => {
                self.rw_index.clear();
                self.rw_index
                    .extend(self.rw_reads.iter().enumerate().map(|(i, &s)| (s, i)));
            }
            std::cmp::Ordering::Greater => {
                self.rw_index.insert(stripe, self.rw_reads.len() - 1);
            }
            std::cmp::Ordering::Less => {}
        }
    }

    /// Deregisters a read lock consumed by a write-lock upgrade: a short
    /// scan in linear mode, position lookup + `swap_remove` under the
    /// index — commit work stays O(write set), not O(read set).
    pub(crate) fn rw_remove(&mut self, stripe: usize) {
        if self.rw_reads.len() <= RW_INDEX_THRESHOLD {
            self.rw_reads.retain(|&s| s != stripe);
            return;
        }
        if let Some(i) = self.rw_index.remove(&stripe) {
            self.rw_reads.swap_remove(i);
            if let Some(&moved) = self.rw_reads.get(i) {
                self.rw_index.insert(moved, i);
            }
        }
    }

    /// Hands out the held stripes for release, clearing the registry.
    pub(crate) fn rw_drain(&mut self) -> std::vec::Drain<'_, usize> {
        self.rw_index.clear();
        self.rw_reads.drain(..)
    }

    /// The buffered value for `id`, if this transaction wrote it: a
    /// cache-hot linear scan for small write sets, one hash probe past
    /// the threshold.
    pub(crate) fn lookup_write(&self, id: usize) -> Option<&WriteEntry> {
        if self.writes.len() <= WRITE_INDEX_THRESHOLD {
            self.writes.iter().find(|w| w.id == id)
        } else {
            self.write_index.get(&id).map(|&i| &self.writes[i])
        }
    }

    /// Buffers a write, replacing any earlier value for the same cell.
    pub(crate) fn buffer_write(
        &mut self,
        id: usize,
        var: Arc<dyn AnyTVar>,
        value: Box<dyn Any + Send>,
    ) {
        if self.writes.len() <= WRITE_INDEX_THRESHOLD {
            if let Some(i) = self.writes.iter().position(|w| w.id == id) {
                let old = std::mem::replace(&mut self.writes[i].value, value);
                self.record_undo(i, old);
                return;
            }
            self.writes.push(WriteEntry { id, var, value });
            // Crossing the threshold: index everything buffered so far
            // (a clean rebuild — the index is stale in linear mode).
            if self.writes.len() == WRITE_INDEX_THRESHOLD + 1 {
                self.write_index.clear();
                self.write_index
                    .extend(self.writes.iter().enumerate().map(|(i, w)| (w.id, i)));
            }
            return;
        }
        match self.write_index.get(&id) {
            Some(&i) => {
                let old = std::mem::replace(&mut self.writes[i].value, value);
                self.record_undo(i, old);
            }
            None => {
                self.writes.push(WriteEntry { id, var, value });
                self.write_index.insert(id, self.writes.len() - 1);
            }
        }
    }

    /// Swaps every buffered value into its variable, consuming the write
    /// set. Returns the displaced boxes for epoch retirement.
    ///
    /// The caller must hold whatever exclusion the algorithm requires
    /// (orec stripe locks, or the NOrec sequence lock).
    pub(crate) fn publish_writes(&mut self) -> Vec<Retired> {
        self.writes
            .drain(..)
            .map(|w| w.var.publish_boxed(w.value))
            .collect()
    }

    /// Appends every buffered value to its variable's version chain with
    /// a pending stamp, consuming the write set (`Algorithm::Mv`).
    /// Returns the written variables so the committer can resolve the
    /// stamps and trim the chains.
    ///
    /// The caller must hold the write set's stripe locks and be past
    /// validation: appended versions are never unlinked by their own
    /// commit.
    pub(crate) fn append_writes(&mut self) -> Vec<Arc<dyn AnyTVar>> {
        self.writes
            .drain(..)
            .map(|w| {
                w.var.append_boxed(w.value);
                w.var
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epoch;
    use crate::tvar::TVar;

    #[test]
    fn buffer_write_replaces_in_place() {
        let mut log = TxLog::default();
        let v = TVar::new(1u64);
        log.buffer_write(v.id(), v.as_dyn(), Box::new(10u64));
        log.buffer_write(v.id(), v.as_dyn(), Box::new(20u64));
        assert_eq!(log.writes.len(), 1);
        let entry = log.lookup_write(v.id()).expect("buffered");
        assert_eq!(*entry.value.downcast_ref::<u64>().expect("type"), 20);
    }

    #[test]
    fn reset_keeps_capacity() {
        let mut log = TxLog::default();
        let vars: Vec<TVar<u64>> = (0..32).map(TVar::new).collect();
        for v in &vars {
            log.buffer_write(v.id(), v.as_dyn(), Box::new(0u64));
            log.reads.push(VersionedRead { stripe: 0, meta: 0 });
        }
        let (rc, wc) = (log.reads.capacity(), log.writes.capacity());
        log.reset();
        assert!(log.reads.is_empty() && log.writes.is_empty());
        assert_eq!(log.reads.capacity(), rc);
        assert_eq!(log.writes.capacity(), wc);
    }

    #[test]
    fn rw_registry_stays_consistent_across_the_index_threshold() {
        let mut log = TxLog::default();
        // Grow past the linear-scan threshold: membership must answer
        // identically on both sides of the crossing.
        for s in 0..(RW_INDEX_THRESHOLD + 40) {
            assert!(!log.rw_contains(s), "{s} not yet held");
            log.rw_insert(s);
            assert!(log.rw_contains(s), "{s} just acquired");
        }
        assert!(log.rw_contains(0), "pre-threshold entries survive indexing");
        assert!(!log.rw_contains(RW_INDEX_THRESHOLD + 40));
        // Upgrades deregister wherever the entry lives.
        log.rw_remove(3);
        log.rw_remove(RW_INDEX_THRESHOLD + 5);
        assert!(!log.rw_contains(3));
        assert!(!log.rw_contains(RW_INDEX_THRESHOLD + 5));
        // Shrink below the threshold (linear mode) and regrow across it:
        // the rebuilt index must match the vector exactly.
        let held: Vec<usize> = log.rw_drain().collect();
        assert_eq!(held.len(), RW_INDEX_THRESHOLD + 40 - 2);
        for s in 0..RW_INDEX_THRESHOLD {
            log.rw_insert(2 * s);
        }
        log.rw_remove(0);
        for s in 0..8 {
            log.rw_insert(1001 + s);
        }
        assert!(!log.rw_contains(0));
        assert!(log.rw_contains(2));
        assert!(log.rw_contains(1008));
        assert_eq!(log.rw_drain().count(), RW_INDEX_THRESHOLD - 1 + 8);
        assert!(!log.rw_contains(2), "drain empties the registry");
    }

    #[test]
    fn write_set_stays_consistent_across_the_index_threshold() {
        // TVars to key the set with real, stable ids.
        let vars: Vec<TVar<usize>> = (0..(WRITE_INDEX_THRESHOLD + 40)).map(TVar::new).collect();
        let val_of = |log: &TxLog, v: &TVar<usize>| {
            log.lookup_write(v.id())
                .map(|w| *w.value.downcast_ref::<usize>().expect("type"))
        };
        let mut log = TxLog::default();
        // Grow past the linear-scan threshold: lookups must answer
        // identically on both sides of the crossing, and replacement
        // must hit the buffered entry wherever it lives.
        for (i, v) in vars.iter().enumerate() {
            assert_eq!(val_of(&log, v), None, "{i} not yet buffered");
            log.buffer_write(v.id(), v.as_dyn(), Box::new(i));
            assert_eq!(val_of(&log, v), Some(i), "{i} just buffered");
        }
        assert_eq!(
            val_of(&log, &vars[0]),
            Some(0),
            "pre-threshold entries survive indexing"
        );
        log.buffer_write(vars[3].id(), vars[3].as_dyn(), Box::new(333usize));
        log.buffer_write(
            vars[WRITE_INDEX_THRESHOLD + 5].id(),
            vars[WRITE_INDEX_THRESHOLD + 5].as_dyn(),
            Box::new(555usize),
        );
        assert_eq!(
            val_of(&log, &vars[3]),
            Some(333),
            "indexed replace, linear-era entry"
        );
        assert_eq!(val_of(&log, &vars[WRITE_INDEX_THRESHOLD + 5]), Some(555));
        assert_eq!(log.writes.len(), vars.len(), "replacements never duplicate");
        // Shrink below the threshold (an aborted attempt resets the log)
        // and regrow across it with different keys: the rebuilt index
        // must match the vector exactly, with no ghosts of the old era.
        log.reset();
        assert_eq!(val_of(&log, &vars[3]), None, "reset empties the set");
        for (i, v) in vars.iter().enumerate().skip(2) {
            log.buffer_write(v.id(), v.as_dyn(), Box::new(10 * i));
        }
        assert_eq!(val_of(&log, &vars[0]), None, "pre-reset key stays gone");
        assert_eq!(val_of(&log, &vars[2]), Some(20));
        assert_eq!(
            val_of(&log, vars.last().expect("nonempty")),
            Some(10 * (vars.len() - 1))
        );
        assert_eq!(log.writes.len(), vars.len() - 2);
    }

    #[test]
    fn rollback_restores_pre_checkpoint_writes() {
        let mut log = TxLog::default();
        let a = TVar::new(1u64);
        let b = TVar::new(2u64);
        log.buffer_write(a.id(), a.as_dyn(), Box::new(10u64));
        log.checkpoint();
        // Replace a pre-frame entry and create a new one inside the frame.
        log.buffer_write(a.id(), a.as_dyn(), Box::new(11u64));
        log.buffer_write(a.id(), a.as_dyn(), Box::new(12u64));
        log.buffer_write(b.id(), b.as_dyn(), Box::new(20u64));
        log.rollback_to_checkpoint();
        assert_eq!(log.writes.len(), 1);
        let w = log.lookup_write(a.id()).expect("kept");
        assert_eq!(*w.value.downcast_ref::<u64>().expect("type"), 10);
        assert!(log.lookup_write(b.id()).is_none());
    }

    #[test]
    fn commit_checkpoint_keeps_branch_writes() {
        let mut log = TxLog::default();
        let a = TVar::new(1u64);
        log.checkpoint();
        log.buffer_write(a.id(), a.as_dyn(), Box::new(5u64));
        log.commit_checkpoint();
        let w = log.lookup_write(a.id()).expect("kept");
        assert_eq!(*w.value.downcast_ref::<u64>().expect("type"), 5);
    }

    #[test]
    fn nested_frames_roll_back_independently() {
        let mut log = TxLog::default();
        let a = TVar::new(0u64);
        log.buffer_write(a.id(), a.as_dyn(), Box::new(1u64));
        log.checkpoint(); // outer
        log.buffer_write(a.id(), a.as_dyn(), Box::new(2u64));
        log.checkpoint(); // inner
        log.buffer_write(a.id(), a.as_dyn(), Box::new(3u64));
        log.rollback_to_checkpoint(); // undo inner
        let val = |log: &TxLog| {
            *log.lookup_write(a.id())
                .expect("buffered")
                .value
                .downcast_ref::<u64>()
                .expect("type")
        };
        assert_eq!(val(&log), 2);
        log.rollback_to_checkpoint(); // undo outer
        assert_eq!(val(&log), 1);
    }

    #[test]
    fn rollback_prunes_the_write_index_past_the_threshold() {
        // Entries dropped by a rollback must disappear from the hash
        // index too, or a later lookup would resurrect a ghost.
        let vars: Vec<TVar<usize>> = (0..(WRITE_INDEX_THRESHOLD + 10)).map(TVar::new).collect();
        let mut log = TxLog::default();
        for (i, v) in vars.iter().take(WRITE_INDEX_THRESHOLD).enumerate() {
            log.buffer_write(v.id(), v.as_dyn(), Box::new(i));
        }
        log.checkpoint();
        for (i, v) in vars.iter().enumerate().skip(WRITE_INDEX_THRESHOLD) {
            log.buffer_write(v.id(), v.as_dyn(), Box::new(i));
        }
        assert!(log.writes.len() > WRITE_INDEX_THRESHOLD);
        log.rollback_to_checkpoint();
        assert_eq!(log.writes.len(), WRITE_INDEX_THRESHOLD);
        assert!(log
            .lookup_write(vars[WRITE_INDEX_THRESHOLD + 2].id())
            .is_none());
        // Regrow across the threshold: the rebuilt index must be exact.
        for (i, v) in vars.iter().enumerate().skip(WRITE_INDEX_THRESHOLD) {
            log.buffer_write(v.id(), v.as_dyn(), Box::new(100 + i));
        }
        let w = log
            .lookup_write(vars[WRITE_INDEX_THRESHOLD + 2].id())
            .expect("rebuffered");
        assert_eq!(
            *w.value.downcast_ref::<usize>().expect("type"),
            100 + WRITE_INDEX_THRESHOLD + 2
        );
    }

    #[test]
    fn publish_writes_installs_values_and_drains() {
        let mut log = TxLog::default();
        let a = TVar::new(1u64);
        let b = TVar::new(String::from("old"));
        log.buffer_write(a.id(), a.as_dyn(), Box::new(7u64));
        log.buffer_write(b.id(), b.as_dyn(), Box::new(String::from("new")));
        let retired = log.publish_writes();
        assert_eq!(retired.len(), 2);
        assert!(log.writes.is_empty());
        assert_eq!(a.load(), 7);
        assert_eq!(b.load(), "new");
        epoch::retire_batch(retired);
    }
}
