//! The transaction log: read set and write set shared by every algorithm.
//!
//! One [`TxLog`] per in-flight transaction holds
//!
//! * `reads` — per-read `(stripe, observed orec word)` pairs, 16 bytes
//!   each, used by TL2 and Incremental for version validation (no `Arc`
//!   bump, no allocation on the hot read path);
//! * `value_reads` — `(variable, value snapshot)` pairs, used by NOrec's
//!   value-based validation;
//! * `writes` — buffered `(variable, value)` updates, published only at
//!   commit.
//!
//! The log survives aborts: [`TxLog::reset`] clears entries but keeps the
//! vector capacity, so a retrying transaction reallocates nothing.

use crate::epoch::Retired;
use crate::tvar::AnyTVar;
use std::any::Any;
use std::sync::Arc;

/// A versioned read observation (TL2 / Incremental).
#[derive(Debug, Clone, Copy)]
pub(crate) struct VersionedRead {
    /// Orec stripe the read validated against.
    pub stripe: usize,
    /// The full orec word observed (unlocked, by construction).
    pub meta: u64,
}

/// A value-snapshot read observation (NOrec).
pub(crate) struct ValueRead {
    /// The variable, kept alive for revalidation.
    pub var: Arc<dyn AnyTVar>,
    /// Clone of the value as first read.
    pub snapshot: Box<dyn Any + Send>,
}

/// A buffered write, keyed by variable identity.
pub(crate) struct WriteEntry {
    /// Stable identity of the cell (orders and keys the write set).
    pub id: usize,
    /// The variable, used to publish at commit.
    pub var: Arc<dyn AnyTVar>,
    /// The buffered value.
    pub value: Box<dyn Any + Send>,
}

/// Read-set / write-set storage for one transaction, reused across
/// attempts.
#[derive(Default)]
pub(crate) struct TxLog {
    pub reads: Vec<VersionedRead>,
    pub value_reads: Vec<ValueRead>,
    pub writes: Vec<WriteEntry>,
    /// Scratch for commit-time stripe sorting (kept so retries do not
    /// reallocate).
    pub stripe_buf: Vec<usize>,
    /// Scratch for commit-time `(stripe, pre-lock word)` bookkeeping.
    pub held_buf: Vec<(usize, u64)>,
}

impl std::fmt::Debug for TxLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxLog")
            .field("reads", &self.reads.len())
            .field("value_reads", &self.value_reads.len())
            .field("writes", &self.writes.len())
            .finish()
    }
}

impl TxLog {
    /// Clears all entries, keeping allocated capacity for the retry.
    pub(crate) fn reset(&mut self) {
        self.reads.clear();
        self.value_reads.clear();
        self.writes.clear();
        self.stripe_buf.clear();
        self.held_buf.clear();
    }

    /// The buffered value for `id`, if this transaction wrote it.
    pub(crate) fn lookup_write(&self, id: usize) -> Option<&WriteEntry> {
        self.writes.iter().find(|w| w.id == id)
    }

    /// Buffers a write, replacing any earlier value for the same cell.
    pub(crate) fn buffer_write(
        &mut self,
        id: usize,
        var: Arc<dyn AnyTVar>,
        value: Box<dyn Any + Send>,
    ) {
        match self.writes.iter_mut().find(|w| w.id == id) {
            Some(w) => w.value = value,
            None => self.writes.push(WriteEntry { id, var, value }),
        }
    }

    /// Swaps every buffered value into its variable, consuming the write
    /// set. Returns the displaced boxes for epoch retirement.
    ///
    /// The caller must hold whatever exclusion the algorithm requires
    /// (orec stripe locks, or the NOrec sequence lock).
    pub(crate) fn publish_writes(&mut self) -> Vec<Retired> {
        self.writes
            .drain(..)
            .map(|w| w.var.publish_boxed(w.value))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epoch;
    use crate::tvar::TVar;

    #[test]
    fn buffer_write_replaces_in_place() {
        let mut log = TxLog::default();
        let v = TVar::new(1u64);
        log.buffer_write(v.id(), v.as_dyn(), Box::new(10u64));
        log.buffer_write(v.id(), v.as_dyn(), Box::new(20u64));
        assert_eq!(log.writes.len(), 1);
        let entry = log.lookup_write(v.id()).expect("buffered");
        assert_eq!(*entry.value.downcast_ref::<u64>().expect("type"), 20);
    }

    #[test]
    fn reset_keeps_capacity() {
        let mut log = TxLog::default();
        let vars: Vec<TVar<u64>> = (0..32).map(TVar::new).collect();
        for v in &vars {
            log.buffer_write(v.id(), v.as_dyn(), Box::new(0u64));
            log.reads.push(VersionedRead { stripe: 0, meta: 0 });
        }
        let (rc, wc) = (log.reads.capacity(), log.writes.capacity());
        log.reset();
        assert!(log.reads.is_empty() && log.writes.is_empty());
        assert_eq!(log.reads.capacity(), rc);
        assert_eq!(log.writes.capacity(), wc);
    }

    #[test]
    fn publish_writes_installs_values_and_drains() {
        let mut log = TxLog::default();
        let a = TVar::new(1u64);
        let b = TVar::new(String::from("old"));
        log.buffer_write(a.id(), a.as_dyn(), Box::new(7u64));
        log.buffer_write(b.id(), b.as_dyn(), Box::new(String::from("new")));
        let retired = log.publish_writes();
        assert_eq!(retired.len(), 2);
        assert!(log.writes.is_empty());
        assert_eq!(a.load(), 7);
        assert_eq!(b.load(), "new");
        epoch::retire_batch(retired);
    }
}
