//! Opt-in history recording: the bridge from the native engine to the
//! paper's formal model.
//!
//! The `ptm-model` checkers (opacity, strict serializability,
//! progressiveness) consume *histories* — streams of t-operation
//! invocation/response markers ([`ptm_sim::LogEntry`]). The simulator
//! produces those natively; this module lets the **real-threads** engine
//! produce them too, so every concurrent workload becomes a correctness
//! experiment: run it, [`HistoryRecorder::drain`] the log, and feed it to
//! `ptm_model::History::from_log` + `is_opaque`.
//!
//! ## How events are captured
//!
//! Each OS thread appends to its **own** buffer (no cross-thread queue;
//! the only shared write per event is one `fetch_add` on the global
//! sequence counter, which totally orders events consistently with real
//! time). Buffers are drained and merged by sequence number once the
//! workload threads have joined. Invocation markers are stamped *before*
//! the operation executes and response markers *after*, so every
//! operation's linearization point falls inside its recorded interval —
//! exactly what interval-based real-time order needs to be sound.
//!
//! ## Values
//!
//! The model's t-objects hold [`Word`]s (`u64`). Recorded reads and
//! writes project the stored value through [`word_of`]: primitive integer
//! and `bool` values map faithfully (so read legality is checked for
//! real), any other type maps to `0` (structure-typed values degrade the
//! value check to a tautology while real-time order, commit/abort
//! structure, and well-formedness are still fully checked).
//!
//! ## Initial values
//!
//! The model assumes every t-object starts at `INITIAL_VALUE = 0`. A
//! `TVar` may start elsewhere, so the recorder captures each variable's
//! value when it is first touched by a recorded transaction — provably
//! before any recorded commit can have published to it — and
//! [`HistoryRecorder::drain`] prepends a synthetic *initializing
//! transaction* that writes every non-zero initial word and commits
//! before all real events.
//!
//! Use one recorder per recorded run and drain it after the workload
//! threads have joined; transactions still in flight at drain time would
//! appear truncated (the checker's completion machinery handles them, but
//! the run is no longer a faithful experiment).

use crate::tvar::{TVar, TxValue};
use ptm_sim::{LogEntry, LogPayload, Marker, ProcessId, TObjId, TOpDesc, TOpResult, TxId, Word};
use std::any::Any;
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};

/// Projects a stored value to a model-level [`Word`].
///
/// `u8`–`u64`, `usize`, `i8`–`i64`, `isize`, and `bool` map faithfully
/// (signed values by two's-complement reinterpretation), so the
/// checker's read-legality constraint is verified for real. Every other
/// type — including 128-bit integers — maps to `0`, which makes the
/// value check a tautology for that object (but never a false
/// rejection); real-time order and commit/abort structure are still
/// fully checked.
pub fn word_of<T: TxValue>(v: &T) -> Word {
    let any: &dyn Any = v;
    if let Some(x) = any.downcast_ref::<u64>() {
        *x
    } else if let Some(x) = any.downcast_ref::<u32>() {
        u64::from(*x)
    } else if let Some(x) = any.downcast_ref::<u16>() {
        u64::from(*x)
    } else if let Some(x) = any.downcast_ref::<u8>() {
        u64::from(*x)
    } else if let Some(x) = any.downcast_ref::<usize>() {
        *x as u64
    } else if let Some(x) = any.downcast_ref::<i64>() {
        *x as u64
    } else if let Some(x) = any.downcast_ref::<i32>() {
        *x as u64
    } else if let Some(x) = any.downcast_ref::<i16>() {
        *x as u64
    } else if let Some(x) = any.downcast_ref::<i8>() {
        *x as u64
    } else if let Some(x) = any.downcast_ref::<isize>() {
        *x as u64
    } else if let Some(x) = any.downcast_ref::<bool>() {
        u64::from(*x)
    } else {
        0
    }
}

/// One recorded marker with its global sequence stamp.
struct RecEvent {
    seq: u64,
    marker: Marker,
}

/// One thread's append-only event buffer. The mutexes are uncontended in
/// steady state (only the owning thread touches them until drain).
struct ThreadLog {
    pid: ProcessId,
    events: Mutex<Vec<RecEvent>>,
    /// Thread-local cache of the object registry, so the hot path avoids
    /// the shared `objects` lock after an object's first appearance.
    obj_cache: Mutex<HashMap<usize, TObjId>>,
}

/// Registry entry for one `TVar`.
struct ObjInfo {
    obj: TObjId,
    /// The variable's word at registration time — before any recorded
    /// commit could have published to it.
    initial: Word,
    /// Whether a drain already emitted this object's initializing write
    /// (each initial is installed exactly once across incremental
    /// drains).
    emitted: bool,
}

/// Consumer-side cursor shared by every [`HistoryRecorder::tail`] /
/// [`HistoryRecorder::drain`] call; its mutex is what makes concurrent
/// drains safe (they serialize, each taking a disjoint batch).
#[derive(Default)]
struct DrainState {
    /// Output positions handed out so far — entry `seq` numbering
    /// continues across drains, so concatenated batches form one
    /// well-numbered log.
    out_seq: usize,
    /// The process id reserved for the synthetic initializing
    /// transactions: a real registered thread slot (with an unused
    /// buffer), so no later-registering real thread can collide with it.
    preamble_pid: Option<ProcessId>,
}

struct RecorderShared {
    /// Distinguishes recorders in the per-thread handle cache.
    id: u64,
    /// Global event sequence: one `fetch_add` per marker totally orders
    /// events consistently with real time.
    seq: AtomicU64,
    /// Transaction-id allocator (every attempt is its own transaction).
    next_tx: AtomicU64,
    threads: Mutex<Vec<Arc<ThreadLog>>>,
    objects: Mutex<HashMap<usize, ObjInfo>>,
    drain: Mutex<DrainState>,
}

static RECORDER_IDS: AtomicU64 = AtomicU64::new(0);

/// One thread's cached handle into a recorder: the weak recorder handle
/// lets registration evict entries whose recorder is gone, so a
/// long-lived thread that serves many recorded runs does not accumulate
/// dead buffers.
type CachedThreadLog = (Weak<RecorderShared>, Arc<ThreadLog>);

thread_local! {
    /// This thread's buffer handle per recorder id.
    static THREAD_LOGS: RefCell<HashMap<u64, CachedThreadLog>> = RefCell::new(HashMap::new());
}

impl RecorderShared {
    fn register_thread(&self) -> Arc<ThreadLog> {
        let mut threads = self.threads.lock().expect("recorder thread registry");
        let log = Arc::new(ThreadLog {
            pid: ProcessId::new(threads.len()),
            events: Mutex::new(Vec::new()),
            obj_cache: Mutex::new(HashMap::new()),
        });
        threads.push(Arc::clone(&log));
        log
    }

    /// Dense object id for a variable, registering it (and capturing its
    /// current word as the initial value) on first appearance.
    fn object_for(&self, var_id: usize, initial: impl FnOnce() -> Word) -> TObjId {
        let mut map = self.objects.lock().expect("recorder object registry");
        if let Some(info) = map.get(&var_id) {
            return info.obj;
        }
        let obj = TObjId::new(map.len());
        let initial = initial();
        map.insert(
            var_id,
            ObjInfo {
                obj,
                initial,
                emitted: false,
            },
        );
        obj
    }
}

/// Records t-operation histories from a native [`Stm`](crate::Stm).
///
/// Create one, hand a clone to
/// [`StmBuilder::record_history`](crate::StmBuilder::record_history),
/// run a concurrent workload, then
/// [`drain`](HistoryRecorder::drain) the marker log and feed it to the
/// `ptm-model` checkers. Cloning is cheap and clones share the log.
///
/// # Examples
///
/// ```
/// use ptm_stm::{Algorithm, HistoryRecorder, Stm, TVar};
///
/// let rec = HistoryRecorder::new();
/// let stm = Stm::builder(Algorithm::Tl2)
///     .record_history(rec.clone())
///     .build();
/// let v = TVar::new(0u64);
/// stm.atomically(|tx| tx.modify(&v, |x| x + 1));
/// let log = rec.drain();
/// // 2 ops (read, write) + tryCommit, one invoke + one response each.
/// assert_eq!(log.len(), 6);
/// ```
#[derive(Clone)]
pub struct HistoryRecorder {
    shared: Arc<RecorderShared>,
}

impl Default for HistoryRecorder {
    fn default() -> Self {
        HistoryRecorder::new()
    }
}

impl fmt::Debug for HistoryRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HistoryRecorder")
            .field("events", &self.events_recorded())
            .field(
                "threads",
                &self.shared.threads.lock().map(|t| t.len()).unwrap_or(0),
            )
            .field(
                "objects",
                &self.shared.objects.lock().map(|o| o.len()).unwrap_or(0),
            )
            .finish()
    }
}

impl HistoryRecorder {
    /// A fresh, empty recorder.
    pub fn new() -> Self {
        HistoryRecorder {
            shared: Arc::new(RecorderShared {
                id: RECORDER_IDS.fetch_add(1, Ordering::Relaxed),
                seq: AtomicU64::new(0),
                next_tx: AtomicU64::new(1),
                threads: Mutex::new(Vec::new()),
                objects: Mutex::new(HashMap::new()),
                drain: Mutex::new(DrainState::default()),
            }),
        }
    }

    /// Events recorded so far (also surfaced per-instance in
    /// [`StmStats`](crate::StmStats) as `recorded_events`).
    pub fn events_recorded(&self) -> u64 {
        self.shared.seq.load(Ordering::Relaxed)
    }

    /// This thread's buffer, registering the thread on first use (and
    /// dropping cached handles of recorders that no longer exist).
    fn thread_log(&self) -> Arc<ThreadLog> {
        THREAD_LOGS.with(|m| {
            let mut m = m.borrow_mut();
            if let Some((_, log)) = m.get(&self.shared.id) {
                return Arc::clone(log);
            }
            m.retain(|_, (rec, _)| rec.strong_count() > 0);
            let log = self.shared.register_thread();
            m.insert(
                self.shared.id,
                (Arc::downgrade(&self.shared), Arc::clone(&log)),
            );
            log
        })
    }

    /// Starts recording one transaction attempt (engine-internal).
    pub(crate) fn begin_tx(&self) -> RecTx {
        RecTx {
            shared: Arc::clone(&self.shared),
            thread: self.thread_log(),
            tx: TxId::new(self.shared.next_tx.fetch_add(1, Ordering::Relaxed)),
            touched: false,
            closed: false,
        }
    }

    /// Removes and returns every marker recorded so far, exactly like
    /// [`tail`](Self::tail). Kept as the familiar end-of-run entry point;
    /// since it is now a streaming drain it is safe to call more than
    /// once (and concurrently) — each call returns a disjoint batch.
    pub fn drain(&self) -> Vec<LogEntry> {
        self.tail()
    }

    /// Streaming drain: removes and returns every marker recorded since
    /// the previous `tail`/`drain` call, as a well-formed [`LogEntry`]
    /// batch merged across threads in real-time order. Each batch is
    /// prefixed (when needed) by a synthetic committed transaction that
    /// installs the non-zero initial word of every variable that first
    /// appeared since the last call (the model starts every t-object at
    /// `0`); an initial is emitted exactly once across all batches.
    ///
    /// Entry `seq` numbering continues across calls, so concatenating
    /// the batches in call order yields one well-numbered log — this is
    /// what lets a durability layer tail the recorder incrementally
    /// without racing a final `drain`. Concurrent calls serialize and
    /// take disjoint batches.
    ///
    /// **Caveat:** a call that overlaps live transactions may split an
    /// attempt's markers across two batches, and can order two
    /// *concurrent* cross-thread events by batch rather than by their
    /// true interleaving. Both effects only ever *tighten* the real-time
    /// order the checkers see, so acceptance remains sound (no false
    /// accepts); for byte-faithful single-batch logs, call at a
    /// quiescent point (workload threads joined or parked).
    pub fn tail(&self) -> Vec<LogEntry> {
        // One consumer at a time: serializes concurrent drains and owns
        // the output cursor for the whole batch build.
        let mut st = self.shared.drain.lock().expect("recorder drain state");

        let mut events: Vec<(ProcessId, RecEvent)> = Vec::new();
        {
            let threads = self
                .shared
                .threads
                .lock()
                .expect("recorder thread registry");
            for t in threads.iter() {
                let mut buf = t.events.lock().expect("recorder thread buffer");
                events.extend(buf.drain(..).map(|e| (t.pid, e)));
            }
        }
        events.sort_by_key(|(_, e)| e.seq);

        let mut initials: Vec<(TObjId, Word)> = self
            .shared
            .objects
            .lock()
            .expect("recorder object registry")
            .values_mut()
            .filter(|info| !info.emitted && info.initial != 0)
            .map(|info| {
                info.emitted = true;
                (info.obj, info.initial)
            })
            .collect();
        initials.sort_by_key(|&(obj, _)| obj);

        // The synthetic initializing transaction runs on a dedicated
        // process id, reserved by registering a real (never-written)
        // thread slot — so no later-registering workload thread can ever
        // collide with it across batches.
        let preamble_pid = if initials.is_empty() {
            None
        } else if let Some(pid) = st.preamble_pid {
            Some(pid)
        } else {
            let pid = self.shared.register_thread().pid;
            st.preamble_pid = Some(pid);
            Some(pid)
        };

        let mut log: Vec<LogEntry> = Vec::with_capacity(events.len() + 2 * initials.len() + 2);
        let mut out_seq = st.out_seq;
        let mut push = |pid: ProcessId, marker: Marker| {
            log.push(LogEntry {
                seq: out_seq,
                pid,
                payload: LogPayload::Marker(marker),
            });
            out_seq += 1;
        };
        if let Some(preamble_pid) = preamble_pid {
            let tx = TxId::new(self.shared.next_tx.fetch_add(1, Ordering::Relaxed));
            for &(x, w) in &initials {
                let op = TOpDesc::Write(x, w);
                push(preamble_pid, Marker::TxInvoke { tx, op });
                push(
                    preamble_pid,
                    Marker::TxResponse {
                        tx,
                        op,
                        res: TOpResult::Ok,
                    },
                );
            }
            let op = TOpDesc::TryCommit;
            push(preamble_pid, Marker::TxInvoke { tx, op });
            push(
                preamble_pid,
                Marker::TxResponse {
                    tx,
                    op,
                    res: TOpResult::Committed,
                },
            );
        }
        for (pid, e) in events {
            push(pid, e.marker);
        }
        st.out_seq = out_seq;
        log
    }
}

/// Per-attempt recording state held by a live `Transaction`.
pub(crate) struct RecTx {
    shared: Arc<RecorderShared>,
    thread: Arc<ThreadLog>,
    tx: TxId,
    /// Whether any marker was recorded (empty attempts leave no trace).
    touched: bool,
    /// Whether the attempt already ended with `A_k`/`C_k` in the log.
    closed: bool,
}

impl fmt::Debug for RecTx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RecTx")
            .field("tx", &self.tx)
            .field("closed", &self.closed)
            .finish()
    }
}

impl RecTx {
    /// The model-level object id of `var`, registering it on first use.
    pub(crate) fn object_of<T: TxValue>(&self, var: &TVar<T>) -> TObjId {
        let var_id = var.id();
        let mut cache = self.thread.obj_cache.lock().expect("recorder obj cache");
        if let Some(&obj) = cache.get(&var_id) {
            return obj;
        }
        let obj = self.shared.object_for(var_id, || word_of(&var.load()));
        cache.insert(var_id, obj);
        obj
    }

    fn push(&mut self, marker: Marker) {
        self.touched = true;
        let mut buf = self.thread.events.lock().expect("recorder thread buffer");
        // Draw the global sequence number *inside* the buffer lock: a
        // concurrent `tail` locking this buffer then sees either both
        // the ticket and the event or neither, so a drawn sequence
        // number can never go missing from the drained order.
        let seq = self.shared.seq.fetch_add(1, Ordering::SeqCst);
        buf.push(RecEvent { seq, marker });
    }

    /// Records an invocation marker.
    pub(crate) fn invoke(&mut self, op: TOpDesc) {
        let tx = self.tx;
        self.push(Marker::TxInvoke { tx, op });
    }

    /// Records a response marker; `A_k` and `tryC` responses t-complete
    /// the transaction.
    pub(crate) fn respond(&mut self, op: TOpDesc, res: TOpResult) {
        let tx = self.tx;
        self.push(Marker::TxResponse { tx, op, res });
        if res == TOpResult::Aborted || op == TOpDesc::TryCommit {
            self.closed = true;
        }
    }

    /// Whether the attempt recorded operations but no terminal `A`/`C`
    /// yet (a user-initiated retry) and needs a closing `tryC -> A`.
    pub(crate) fn needs_close(&self) -> bool {
        self.touched && !self.closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_of_projects_integers_and_defaults_to_zero() {
        assert_eq!(word_of(&7u64), 7);
        assert_eq!(word_of(&7u32), 7);
        assert_eq!(word_of(&7u16), 7);
        assert_eq!(word_of(&7u8), 7);
        assert_eq!(word_of(&7usize), 7);
        assert_eq!(word_of(&-1i64), u64::MAX);
        assert_eq!(word_of(&-1i32), u64::MAX);
        assert_eq!(word_of(&-1i16), u64::MAX);
        assert_eq!(word_of(&-1i8), u64::MAX);
        assert_eq!(word_of(&-1isize), u64::MAX);
        assert_eq!(word_of(&true), 1);
        assert_eq!(word_of(&String::from("x")), 0);
        assert_eq!(word_of(&vec![1u64, 2]), 0);
        assert_eq!(word_of(&7u128), 0); // 128-bit cannot map faithfully
    }

    #[test]
    fn drain_on_fresh_recorder_is_empty() {
        let rec = HistoryRecorder::new();
        assert!(rec.drain().is_empty());
        assert_eq!(rec.events_recorded(), 0);
    }

    #[test]
    fn manual_events_merge_in_seq_order() {
        let rec = HistoryRecorder::new();
        let mut tx = rec.begin_tx();
        let op = TOpDesc::Read(TObjId::new(0));
        tx.invoke(op);
        tx.respond(op, TOpResult::Value(3));
        assert!(tx.needs_close());
        tx.invoke(TOpDesc::TryCommit);
        tx.respond(TOpDesc::TryCommit, TOpResult::Committed);
        assert!(!tx.needs_close());
        let log = rec.drain();
        assert_eq!(log.len(), 4);
        assert!(log.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn tail_streams_disjoint_batches_with_continuous_seq() {
        let rec = HistoryRecorder::new();
        let mut tx = rec.begin_tx();
        let op = TOpDesc::Read(TObjId::new(0));
        tx.invoke(op);
        tx.respond(op, TOpResult::Value(3));

        let first = rec.tail();
        assert_eq!(first.len(), 2);
        assert_eq!(first[0].seq, 0);
        assert_eq!(first[1].seq, 1);

        tx.invoke(TOpDesc::TryCommit);
        tx.respond(TOpDesc::TryCommit, TOpResult::Committed);

        let second = rec.tail();
        assert_eq!(second.len(), 2);
        // Numbering continues where the first batch stopped, so the
        // concatenation is one well-numbered log.
        assert_eq!(second[0].seq, 2);
        assert_eq!(second[1].seq, 3);
        assert!(rec.tail().is_empty());
    }

    #[test]
    fn tail_emits_each_initial_exactly_once() {
        let rec = HistoryRecorder::new();
        let v = TVar::new(41u64);
        let mut tx = rec.begin_tx();
        let obj = tx.object_of(&v);
        tx.invoke(TOpDesc::Read(obj));
        tx.respond(TOpDesc::Read(obj), TOpResult::Value(41));

        let first = rec.drain();
        // Synthetic initializing txn (write + tryC, invoke/response each)
        // precedes the two recorded markers.
        assert_eq!(first.len(), 6);
        let preamble_pid = first[0].pid;

        // Second batch: same object again — no second preamble.
        let mut tx2 = rec.begin_tx();
        let obj2 = tx2.object_of(&v);
        assert_eq!(obj2, obj);
        tx2.invoke(TOpDesc::Read(obj2));
        tx2.respond(TOpDesc::Read(obj2), TOpResult::Value(41));
        let second = rec.drain();
        assert_eq!(second.len(), 2);
        assert!(second.iter().all(|e| e.pid != preamble_pid));
        assert_eq!(second[0].seq, 6);

        // A variable first touched after the first drain gets its
        // initial installed in the batch where it first appears, still
        // on the reserved preamble pid.
        let w = TVar::new(9u64);
        let mut tx3 = rec.begin_tx();
        let wobj = tx3.object_of(&w);
        tx3.invoke(TOpDesc::Read(wobj));
        tx3.respond(TOpDesc::Read(wobj), TOpResult::Value(9));
        let third = rec.drain();
        assert_eq!(third.len(), 6);
        assert_eq!(third[0].pid, preamble_pid);
        // Workload threads registered later never collide with the
        // reserved preamble pid.
        assert!(third[4..].iter().all(|e| e.pid != preamble_pid));
    }

    #[test]
    fn debug_shows_counts() {
        let rec = HistoryRecorder::new();
        let mut tx = rec.begin_tx();
        tx.invoke(TOpDesc::TryCommit);
        let s = format!("{rec:?}");
        assert!(s.contains("events: 1"), "{s}");
    }
}
