//! # ptm-stm — a native software transactional memory
//!
//! The real-threads companion to the simulated TMs in `ptm-core`: a small,
//! entirely **safe-Rust** STM with three interchangeable validation
//! algorithms, so the cost structure the paper analyses can be measured on
//! actual hardware.
//!
//! * [`Stm::tl2`] — global version clock, O(1) read validation (the
//!   production default);
//! * [`Stm::incremental`] — the paper's weak-DAP/invisible-reads design
//!   point: every read re-validates the whole read set, Θ(m²) total work
//!   for an `m`-read transaction (watch `validation_probes` in
//!   [`StmStats`]);
//! * [`Stm::norec`] — single global sequence lock with value-based
//!   validation.
//!
//! ## Quick start
//!
//! ```
//! use ptm_stm::{Stm, TVar};
//!
//! let stm = Stm::tl2();
//! let checking = TVar::new(90u64);
//! let savings = TVar::new(10u64);
//!
//! // Transfer atomically; the closure re-runs on conflict.
//! stm.atomically(|tx| {
//!     let c = tx.read(&checking)?;
//!     let s = tx.read(&savings)?;
//!     tx.write(&checking, c - 30)?;
//!     tx.write(&savings, s + 30)?;
//!     Ok(())
//! });
//!
//! assert_eq!(checking.load() + savings.load(), 100);
//! ```
//!
//! ## Design notes
//!
//! Values live under a per-variable `parking_lot::Mutex` beside an atomic
//! versioned-lock word; reads snapshot by clone and double-check the
//! version. This forgoes the last bit of performance a seqlock +
//! `UnsafeCell` design would give, in exchange for zero `unsafe` — an
//! explicit choice for a reference implementation whose purpose is
//! measurable algorithmics, not peak throughput. Writes are buffered and
//! published at commit under per-variable try-locks (TL2/Incremental) or
//! the global sequence lock (NOrec), so aborted transactions leave no
//! trace.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod engine;
mod stats;
mod tvar;

pub use engine::{Algorithm, Retry, Stm, Transaction};
pub use stats::{StatsSnapshot, StmStats};
pub use tvar::{TVar, TxValue};
