//! # ptm-stm — a native software transactional memory
//!
//! The real-threads companion to the simulated TMs in `ptm-core`: a small
//! STM with six interchangeable validation algorithms, so both sides of
//! the paper's time–space tradeoff can be measured on actual hardware —
//! the *time* axis with four single-version designs, the *space* axis
//! with a multi-version one, and, with the adaptive mode, *exploited*
//! at runtime.
//!
//! * [`Stm::tl2`] — global version clock, O(1) **lock-free** read
//!   validation against a striped orec table (the production default);
//! * [`Stm::incremental`] — the paper's weak-DAP/invisible-reads design
//!   point: every read re-validates the whole read set, Θ(m²) total work
//!   for an `m`-read transaction (watch `validation_probes` in
//!   [`StmStats`]);
//! * [`Stm::norec`] — single global sequence lock with value-based
//!   validation;
//! * [`Stm::tlrw`] — TLRW-style **visible reads**: per-stripe
//!   reader–writer lock words, O(1) reads with *zero* validation, paid
//!   for with one shared-memory RMW inside every first read of a stripe
//!   (watch `reader_conflicts` in [`StmStats`]). Progressive, not
//!   strongly progressive.
//! * [`Stm::mv`] — **multi-version** storage: commits append timestamped
//!   versions to each variable's chain, so read-only transactions read
//!   the consistent snapshot named by their start time with *zero*
//!   validation and *zero* aborts under any write storm; superseded
//!   versions are reclaimed by a low-watermark collector (watch
//!   `snapshot_reads` / `versions_trimmed` / `max_chain_len` in
//!   [`StatsSnapshot`]). Time is traded for space — the paper's other
//!   axis.
//! * [`Stm::adaptive`] — a mode controller that samples windowed stats
//!   deltas and moves the live engine between the Tl2, Tlrw, and Mv
//!   hooks as the workload shifts — both paper axes at runtime —
//!   reinterpreting the orec table through an epoch-quiesced transition
//!   (tune with [`AdaptiveConfig`], observe via `mode_transitions` /
//!   `active_mode` in [`StatsSnapshot`] and [`Stm::active_mode`]).
//!
//! ## Quick start
//!
//! ```
//! use ptm_stm::{Stm, TVar};
//!
//! let stm = Stm::tl2();
//! let checking = TVar::new(90u64);
//! let savings = TVar::new(10u64);
//!
//! // Transfer atomically; the closure re-runs on conflict.
//! stm.atomically(|tx| {
//!     let c = tx.read(&checking)?;
//!     let s = tx.read(&savings)?;
//!     tx.write(&checking, c - 30)?;
//!     tx.write(&savings, s + 30)?;
//!     Ok(())
//! });
//!
//! assert_eq!(checking.load() + savings.load(), 100);
//! ```
//!
//! Retry policy and orec geometry are configurable per instance:
//!
//! ```
//! use ptm_stm::{Algorithm, CappedAttempts, Stm};
//!
//! let stm = Stm::builder(Algorithm::Tl2)
//!     .max_attempts(100_000)
//!     .contention_manager(CappedAttempts::new(10_000))
//!     .build();
//! let v = ptm_stm::TVar::new(1u64);
//! assert_eq!(stm.run(|tx| tx.read(&v)), Ok(1));
//! ```
//!
//! ## Architecture
//!
//! The engine is layered into one module per concern:
//!
//! | module | concern |
//! |--------|---------|
//! | [`mod@engine`](crate::Stm) | generic machinery, split by concern: [`Stm`] + [`Algorithm`] (`engine`), [`StmBuilder`] (`engine::builder`), [`Transaction`] (`engine::transaction`), the retry loop (`engine::attempt`), the split prepare/publish commit for cross-instance coordinators ([`Prepared`], `engine::twophase`) |
//! | `algo`  | the strategy layer: one module per algorithm (begin / read / commit hooks), including the adaptive mode controller |
//! | `txlog` | read-set / write-set log shared by all algorithms |
//! | `orec`  | striped, cache-padded metadata words: versioned locks (TL2 / Incremental / Mv) or reader–writer locks (Tlrw); Adaptive reinterprets the table between the two formats |
//! | `tvar`  | value cells: timestamped version chains behind an atomic latest-pointer with Fenwick-shaped skip links for sublinear snapshot walks (single-version algorithms swap the head; Mv appends, trims, and bounds via [`MvConfig`]) |
//! | `epoch` | deferred reclamation that keeps lock-free reads memory-safe, plus the snapshot registry whose low watermark (cached off the commit hot path) bounds version-chain trimming |
//! | [`cm`](ContentionManager) | pluggable retry policies |
//! | `stats` | commit/abort/validation-probe counters |
//! | [`recorder`] | opt-in t-operation history recording for the `ptm-model` checkers |
//! | [`wal`] | opt-in durability: a group-committed, checksummed write-ahead log appended from inside each publish critical section (the `ptm-server` recovery path builds on it) |
//!
//! ## Design notes
//!
//! A TL2 transactional read is *load orec word, load value pointer,
//! clone, re-check word* — it acquires no lock and performs **no
//! shared-memory write**, which is exactly the invisible-reads regime the
//! paper prices out; a Tlrw read instead *announces itself* with one
//! `fetch_add` on the stripe's reader–writer word and never validates. Values are immutable once published, so readers can never observe
//! a torn value; writers swap whole boxes under their commit-time
//! exclusion and retire the old ones to an epoch collector, which frees
//! them once every pinned reader has moved on. The `unsafe` needed for
//! this (pointer dereference on the read path, deferred frees) is
//! confined to the `tvar` and `epoch` modules, each carrying the safety
//! argument next to the code; the rest of the crate is `#![deny(unsafe_code)]`-clean.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

mod algo;
pub mod cm;
mod engine;
#[allow(unsafe_code)]
mod epoch;
mod orec;
pub mod recorder;
mod stats;
#[allow(unsafe_code)]
mod tvar;
mod txlog;
mod waiter;
pub mod wal;

pub use algo::adaptive::AdaptiveConfig;
pub use cm::{CappedAttempts, ContentionManager, Decision, ExponentialBackoff, ImmediateRetry};
pub use engine::{
    Algorithm, MvConfig, Prepared, RetriesExhausted, Retry, RunAsync, Stm, StmBuilder, Transaction,
};
pub use recorder::HistoryRecorder;
pub use stats::{ActiveMode, StatsSnapshot, StmStats};
pub use tvar::{TVar, TxValue};
pub use wal::{DurabilityHook, DurableTicket};
