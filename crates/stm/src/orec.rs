//! Striped ownership records (orecs): the per-stripe metadata words
//! behind every orec-based algorithm.
//!
//! Instead of a lock word *inside* every [`TVar`](crate::TVar) (the seed
//! design, which also kept the value under a mutex), each [`Stm`]
//! (crate::Stm) owns a fixed, cache-padded table of words. A variable
//! maps to a stripe by hashing its address, the way production TL2
//! implementations key their global lock table. The same table serves
//! two word formats, chosen by the instance's algorithm (one instance
//! runs one algorithm, so the formats never mix):
//!
//! * **Versioned lock** (`Tl2` / `Incremental`): `version << 1 | locked`.
//!   Reads validate optimistically — load word, read value, re-check
//!   word — and acquire nothing; only commits lock stripes, in sorted
//!   order, for the duration of write-back.
//! * **Reader–writer lock** (`Tlrw`): bit 0 is the writer flag, the
//!   remaining bits count announced readers in units of [`RW_READER`].
//!   Every t-read `fetch_add`s itself into the count (a *visible* read),
//!   holds the stripe to commit, and never validates; writers CAS the
//!   word from "no foreign owner" to the writer flag and abort otherwise.
//!
//! Striping trades false conflicts (two variables hashing to one stripe
//! abort each other) for constant space and zero per-variable metadata.
//! The stripe count is a power of two, tunable per instance via
//! [`StmBuilder::orec_stripes`](crate::StmBuilder::orec_stripes).

use crate::waiter::WaiterTable;
use std::sync::atomic::AtomicU64;

/// Default number of stripes per [`Stm`](crate::Stm) instance.
pub(crate) const DEFAULT_STRIPES: usize = 1024;

/// Pads a word to its own cache line pair so stripe traffic never
/// false-shares.
#[repr(align(128))]
pub(crate) struct CachePadded<T>(pub T);

/// Whether the lock bit of an orec word is set.
pub(crate) fn is_locked(word: u64) -> bool {
    word & 1 == 1
}

/// The version stamped into an orec word.
pub(crate) fn version_of(word: u64) -> u64 {
    word >> 1
}

/// An unlocked orec word carrying `version`.
pub(crate) fn stamped(version: u64) -> u64 {
    version << 1
}

/// The writer flag of a reader–writer word (`Algorithm::Tlrw`).
pub(crate) const RW_WRITER: u64 = 1;

/// One announced reader in a reader–writer word: readers arrive and
/// leave with `fetch_add(±RW_READER)`, so the count occupies the bits
/// above the writer flag.
pub(crate) const RW_READER: u64 = 2;

/// Whether the writer flag of a reader–writer word is set.
pub(crate) fn rw_write_locked(word: u64) -> bool {
    word & RW_WRITER != 0
}

/// Announced readers in a reader–writer word.
#[cfg(test)]
pub(crate) fn rw_reader_count(word: u64) -> u64 {
    word >> 1
}

/// A power-of-two table of versioned lock words, with a waiter bucket
/// per stripe for parked `retry`/`or_else` transactions.
pub(crate) struct OrecTable {
    words: Box<[CachePadded<AtomicU64>]>,
    mask: usize,
    /// Per-stripe parked-waiter lists, keyed exactly like the words
    /// above so a committing writer's write stripes name the wait
    /// channels it must sweep. Kept separate from the words themselves:
    /// [`OrecTable::reset_all`] (the adaptive mode switch) reinterprets
    /// the word format but must *not* disturb registrations — a consumer
    /// parked across a mode switch is woken by the first overlapping
    /// commit of the new mode, whatever format stamped the stripe.
    waiters: WaiterTable,
}

impl OrecTable {
    /// Builds a table of at least `stripes` words (rounded up to a power
    /// of two, minimum 1).
    pub(crate) fn new(stripes: usize) -> Self {
        let n = stripes.max(1).next_power_of_two();
        let words = (0..n).map(|_| CachePadded(AtomicU64::new(0))).collect();
        OrecTable {
            words,
            mask: n - 1,
            waiters: WaiterTable::new(n),
        }
    }

    /// The per-stripe waiter lists.
    pub(crate) fn waiters(&self) -> &WaiterTable {
        &self.waiters
    }

    /// Number of stripes.
    pub(crate) fn len(&self) -> usize {
        self.words.len()
    }

    /// Maps a variable identity (its heap address) to a stripe index.
    ///
    /// Fibonacci hashing spreads the aligned, allocator-clustered
    /// addresses across stripes; equal ids always collapse to the same
    /// stripe, which is what gives commit-time locking its meaning.
    pub(crate) fn stripe_of(&self, id: usize) -> usize {
        (((id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) & self.mask
    }

    /// The lock word of a stripe.
    pub(crate) fn word(&self, stripe: usize) -> &AtomicU64 {
        &self.words[stripe].0
    }

    /// Resets every word to zero, reinterpreting the table between the
    /// versioned and reader–writer formats (`Algorithm::Adaptive`'s mode
    /// switch).
    ///
    /// The caller must have quiesced the instance: no transaction may
    /// hold a lock in, or be validating against, any word. A zero word
    /// is valid in both formats (unlocked at version 0 / no readers, no
    /// writer), and dropping versions is sound because the quiesce
    /// barrier orders every pre-reset commit before every post-reset
    /// read.
    pub(crate) fn reset_all(&self) {
        for w in self.words.iter() {
            w.0.store(0, std::sync::atomic::Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn word_format_roundtrips() {
        assert!(!is_locked(stamped(7)));
        assert!(is_locked(stamped(7) | 1));
        assert_eq!(version_of(stamped(7)), 7);
        assert_eq!(version_of(stamped(7) | 1), 7);
    }

    #[test]
    fn rw_word_format_counts_readers_above_the_writer_flag() {
        assert!(!rw_write_locked(0));
        assert!(rw_write_locked(RW_WRITER));
        assert_eq!(rw_reader_count(0), 0);
        assert_eq!(rw_reader_count(3 * RW_READER), 3);
        // A transient reader increment on a write-locked word keeps the
        // flag visible and the count intact.
        assert!(rw_write_locked(RW_WRITER + 2 * RW_READER));
        assert_eq!(rw_reader_count(RW_WRITER + 2 * RW_READER), 2);
    }

    #[test]
    fn table_rounds_to_power_of_two() {
        assert_eq!(OrecTable::new(1000).len(), 1024);
        assert_eq!(OrecTable::new(1).len(), 1);
        assert_eq!(OrecTable::new(0).len(), 1);
    }

    #[test]
    fn stripe_mapping_is_stable_and_in_range() {
        let t = OrecTable::new(64);
        for id in (8..8_000).step_by(8) {
            let s = t.stripe_of(id);
            assert!(s < t.len());
            assert_eq!(s, t.stripe_of(id));
        }
    }

    #[test]
    fn stripes_spread_aligned_addresses() {
        // Heap addresses are 8/16-byte aligned; the hash must not collapse
        // them onto a few stripes.
        let t = OrecTable::new(64);
        let mut hit = vec![false; t.len()];
        for id in (0..(64 * 16)).map(|i| 0x7f00_0000_0000usize + i * 16) {
            hit[t.stripe_of(id)] = true;
        }
        let used = hit.iter().filter(|h| **h).count();
        assert!(used > t.len() / 2, "only {used}/{} stripes used", t.len());
    }

    #[test]
    fn words_start_unlocked_at_version_zero() {
        let t = OrecTable::new(4);
        for s in 0..t.len() {
            assert_eq!(t.word(s).load(Ordering::Relaxed), 0);
        }
    }
}
