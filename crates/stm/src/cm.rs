//! Pluggable contention management.
//!
//! The seed engine hard-coded its retry policy: spin exponentially, yield
//! late, give up after a buried `10_000_000` attempts. This module makes
//! the policy a value: a [`ContentionManager`] decides, after each
//! aborted attempt, whether to retry (after waiting however it likes),
//! to hand the attempt to the engine's parking tier
//! ([`Decision::Park`]: the thread sleeps on the orec table's per-stripe
//! waiter lists until a committing writer overlaps its footprint,
//! instead of burning cycles), or to give up. Select one per
//! [`Stm`](crate::Stm) instance through
//! [`StmBuilder::contention_manager`](crate::StmBuilder::contention_manager).
//!
//! Three policies ship with the crate:
//!
//! * [`ImmediateRetry`] — retry instantly; best when conflicts are rare
//!   and short, worst under sustained contention;
//! * [`ExponentialBackoff`] — the default; escalates spin → yield →
//!   park, each tier *replacing* the cheaper one rather than stacking on
//!   top of it;
//! * [`CappedAttempts`] — wraps another policy and gives up after a fixed
//!   number of attempts, for latency-bounded callers.

use std::fmt;

/// What to do after an aborted attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Run the transaction again.
    Retry,
    /// Get out of the way: the engine registers the attempt's footprint
    /// (read ∪ write stripes) on the orec table's waiter lists and parks
    /// the thread until a committing writer touches an overlapping
    /// stripe (bounded by a short safety-net timeout), then reruns. The
    /// escalation past yielding — a transaction that keeps losing stops
    /// costing the winners CPU.
    Park,
    /// Stop retrying; `Stm::atomically` panics, `Stm::run` reports the
    /// exhaustion to the caller.
    GiveUp,
}

/// A retry policy consulted between transaction attempts.
///
/// The policy is split into a **pure decision** and an **optional
/// blocking wait** so both attempt loops can share one policy value:
///
/// * the blocking loop ([`Stm::run`](crate::Stm::run)) calls
///   [`ContentionManager::on_abort`] — wait however the policy likes
///   (spin, yield, sleep), then decide;
/// * the async loop ([`Stm::run_async`](crate::Stm::run_async)) calls
///   [`ContentionManager::decide`] *only* — a future must never burn or
///   block its executor thread, so the engine translates the wait the
///   policy would have performed into waker-mediated yields and
///   waiter-list parking instead.
///
/// Both are called after the `attempt`-th consecutive abort of one
/// logical transaction (counting from 0).
pub trait ContentionManager: Send + Sync + fmt::Debug {
    /// Decides what the engine should do next, **without blocking** —
    /// no spinning, yielding, or sleeping. Called on executor threads.
    fn decide(&self, attempt: u64) -> Decision;

    /// Waits as the policy dictates before the decision is acted on
    /// (busy-spin, `yield_now`, sleep — anything goes). Blocking attempt
    /// loops only; the default waits not at all.
    fn wait(&self, attempt: u64) {
        let _ = attempt;
    }

    /// The blocking loop's compound consultation: [`wait`], then
    /// [`decide`].
    ///
    /// [`wait`]: ContentionManager::wait
    /// [`decide`]: ContentionManager::decide
    fn on_abort(&self, attempt: u64) -> Decision {
        self.wait(attempt);
        self.decide(attempt)
    }
}

/// Retry immediately, forever.
#[derive(Debug, Clone, Copy, Default)]
pub struct ImmediateRetry;

impl ContentionManager for ImmediateRetry {
    fn decide(&self, _attempt: u64) -> Decision {
        Decision::Retry
    }
}

/// Exponential busy-wait backoff escalating through yield to park.
///
/// Attempts `0..=spin_threshold` retry immediately; attempts up to
/// `yield_threshold` spin `2^min(attempt, max_spin_shift)` iterations;
/// attempts up to `park_threshold` *only* yield the scheduler (no spin —
/// once the policy has decided the conflict outlives a spin window,
/// burning the spin budget on top of the yield is pure CPU waste);
/// attempts beyond that answer [`Decision::Park`], and the engine puts
/// the thread to sleep on the conflict footprint's waiter lists.
#[derive(Debug, Clone, Copy)]
pub struct ExponentialBackoff {
    /// Attempts at or below this retry without waiting.
    pub spin_threshold: u64,
    /// Cap on the spin exponent. Values above
    /// [`ExponentialBackoff::SHIFT_CEILING`] are treated as the ceiling
    /// (a ~10⁶-iteration spin), keeping a stray configuration from
    /// overflowing the shift or busy-waiting for hours.
    pub max_spin_shift: u32,
    /// Attempts beyond this yield the thread instead of spinning.
    pub yield_threshold: u64,
    /// Attempts beyond this answer [`Decision::Park`] instead of
    /// yielding.
    pub park_threshold: u64,
}

impl ExponentialBackoff {
    /// Largest effective spin exponent, whatever `max_spin_shift` says.
    pub const SHIFT_CEILING: u32 = 20;

    /// Busy-wait iterations `on_abort` performs for the given attempt:
    /// `2^min(attempt, max_spin_shift, SHIFT_CEILING)` inside the spin
    /// tier, and **zero** everywhere else — in particular past
    /// `yield_threshold`, where earlier versions of this policy kept
    /// burning the full spin budget before yielding.
    pub fn spin_iterations(&self, attempt: u64) -> u64 {
        if attempt <= self.spin_threshold || attempt > self.yield_threshold {
            return 0;
        }
        let shift = attempt
            .min(self.max_spin_shift as u64)
            .min(Self::SHIFT_CEILING as u64) as u32;
        1u64 << shift
    }
}

impl Default for ExponentialBackoff {
    fn default() -> Self {
        ExponentialBackoff {
            spin_threshold: 2,
            max_spin_shift: 12,
            yield_threshold: 16,
            park_threshold: 64,
        }
    }
}

impl ContentionManager for ExponentialBackoff {
    fn decide(&self, attempt: u64) -> Decision {
        if attempt > self.park_threshold {
            Decision::Park
        } else {
            Decision::Retry
        }
    }

    fn wait(&self, attempt: u64) {
        if attempt > self.park_threshold {
            // The park tier waits on the waiter lists, not here.
            return;
        }
        for _ in 0..self.spin_iterations(attempt) {
            std::hint::spin_loop();
        }
        if attempt > self.yield_threshold {
            std::thread::yield_now();
        }
    }
}

/// Wraps another policy and gives up after `limit` aborted attempts.
#[derive(Debug, Clone, Copy)]
pub struct CappedAttempts<C = ExponentialBackoff> {
    inner: C,
    limit: u64,
}

impl CappedAttempts<ExponentialBackoff> {
    /// Caps the default backoff policy at `limit` attempts.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is zero.
    pub fn new(limit: u64) -> Self {
        CappedAttempts::wrapping(limit, ExponentialBackoff::default())
    }
}

impl<C: ContentionManager> CappedAttempts<C> {
    /// Caps an arbitrary inner policy at `limit` attempts.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is zero.
    pub fn wrapping(limit: u64, inner: C) -> Self {
        assert!(limit > 0, "attempt cap must be at least 1");
        CappedAttempts { inner, limit }
    }
}

impl<C: ContentionManager> ContentionManager for CappedAttempts<C> {
    fn decide(&self, attempt: u64) -> Decision {
        // `attempt` counts aborts so far; the (limit)-th abort exhausts
        // the budget of `limit` attempts.
        if attempt + 1 >= self.limit {
            return Decision::GiveUp;
        }
        self.inner.decide(attempt)
    }

    fn wait(&self, attempt: u64) {
        // Waiting out a backoff the cap is about to veto would delay the
        // caller's exhaustion report for nothing.
        if attempt + 1 < self.limit {
            self.inner.wait(attempt);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediate_always_retries() {
        for a in [0, 1, 1 << 40] {
            assert_eq!(ImmediateRetry.on_abort(a), Decision::Retry);
        }
    }

    #[test]
    fn backoff_always_retries_but_waits() {
        let cm = ExponentialBackoff::default();
        assert_eq!(cm.on_abort(0), Decision::Retry);
        assert_eq!(cm.on_abort(20), Decision::Retry);
    }

    #[test]
    fn oversized_spin_shift_is_clamped_not_overflowed() {
        // A shift >= 64 would overflow `1u64 << shift`; the ceiling keeps
        // this both panic-free and bounded (2^20 spins, not 2^63). The
        // thresholds are raised so attempt 100 still lands in the spin
        // tier.
        let cm = ExponentialBackoff {
            spin_threshold: 2,
            max_spin_shift: 64,
            yield_threshold: 1 << 30,
            park_threshold: u64::MAX,
        };
        assert_eq!(
            cm.spin_iterations(100),
            1 << ExponentialBackoff::SHIFT_CEILING
        );
        assert_eq!(cm.on_abort(100), Decision::Retry);
    }

    #[test]
    fn late_attempts_never_busy_spin_and_eventually_park() {
        // Regression: past `yield_threshold` the policy used to burn the
        // full exponential spin budget (2^12 iterations by default) and
        // *then* yield, wasting a core per hopeless attempt. The yield
        // tier must replace the spin, and sustained losing must escalate
        // to parking.
        let cm = ExponentialBackoff::default();
        assert_eq!(cm.spin_iterations(0), 0, "immediate tier spins nothing");
        assert!(cm.spin_iterations(10) > 0, "spin tier spins");
        assert_eq!(cm.spin_iterations(17), 0, "yield tier must not spin");
        assert_eq!(cm.spin_iterations(100), 0, "park tier must not spin");
        assert_eq!(cm.on_abort(17), Decision::Retry);
        assert_eq!(cm.on_abort(100), Decision::Park);
    }

    #[test]
    fn decide_is_pure_across_the_tiers() {
        // The async loop calls `decide` alone; it must reproduce the
        // tier boundaries without any of `wait`'s side effects.
        let cm = ExponentialBackoff::default();
        assert_eq!(cm.decide(0), Decision::Retry);
        assert_eq!(cm.decide(cm.park_threshold), Decision::Retry);
        assert_eq!(cm.decide(cm.park_threshold + 1), Decision::Park);
    }

    #[test]
    fn capped_skips_the_inner_wait_at_the_limit() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;

        // A probe policy that counts how often its wait tier runs.
        #[derive(Debug)]
        struct Probe(Arc<AtomicU64>);
        impl ContentionManager for Probe {
            fn decide(&self, _attempt: u64) -> Decision {
                Decision::Retry
            }
            fn wait(&self, _attempt: u64) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }

        let waits = Arc::new(AtomicU64::new(0));
        let cm = CappedAttempts::wrapping(2, Probe(Arc::clone(&waits)));
        assert_eq!(cm.on_abort(0), Decision::Retry);
        assert_eq!(waits.load(Ordering::Relaxed), 1, "inner wait ran");
        // The limit-reaching abort gives up without waiting out a backoff
        // the cap is about to veto.
        assert_eq!(cm.on_abort(1), Decision::GiveUp);
        assert_eq!(waits.load(Ordering::Relaxed), 1, "no wait at the cap");
    }

    #[test]
    fn capped_passes_park_through() {
        let cm = CappedAttempts::new(1 << 40);
        assert_eq!(cm.on_abort(100), Decision::Park);
    }

    #[test]
    fn capped_gives_up_at_limit() {
        let cm = CappedAttempts::wrapping(3, ImmediateRetry);
        assert_eq!(cm.on_abort(0), Decision::Retry);
        assert_eq!(cm.on_abort(1), Decision::Retry);
        assert_eq!(cm.on_abort(2), Decision::GiveUp);
        assert_eq!(cm.on_abort(7), Decision::GiveUp);
    }

    #[test]
    #[should_panic(expected = "attempt cap")]
    fn zero_cap_is_rejected() {
        let _ = CappedAttempts::new(0);
    }

    #[test]
    fn policies_are_debuggable() {
        let boxed: Box<dyn ContentionManager> = Box::new(CappedAttempts::new(5));
        let s = format!("{boxed:?}");
        assert!(s.contains("CappedAttempts"), "{s}");
    }
}
