//! Transactional variables.
//!
//! A [`TVar<T>`] is a shared mutable cell readable and writable inside a
//! transaction. Values live in a **timestamped version chain**: the
//! newest version is published through an `AtomicPtr` head (the
//! latest-pointer fast path — single-version algorithms load it and
//! clone, **no lock, no reference-count traffic, no tearing**, exactly
//! the one-load read of the previous single-cell design), and each
//! version links to the one it superseded. The chain is what
//! [`Algorithm::Mv`](crate::Algorithm::Mv) reads: a snapshot reader
//! traverses to the newest version no newer than its start time and
//! never validates, never aborts.
//!
//! Writers publish under the algorithm's exclusion (orec stripe locks or
//! the NOrec sequence lock), in one of two ways:
//!
//! * **swap** ([`AnyTVar::publish_boxed`], the single-version
//!   algorithms): the new version replaces the head and the displaced
//!   chain goes to the epoch collector ([`crate::epoch`]) — chains never
//!   grow;
//! * **append** ([`AnyTVar::append_boxed`] + [`AnyTVar::stamp_head`],
//!   `Algorithm::Mv`): the new version is pushed with a *pending* stamp,
//!   the commit draws its write timestamp, resolves the stamp, and then
//!   [`AnyTVar::trim_chain`] detaches every version no active or future
//!   snapshot can reach (the low-watermark rule, see
//!   [`crate::epoch::SnapshotRegistry`]), retiring the suffix through
//!   the same epoch machinery.
//!
//! This grew out of the seed design (value under a `parking_lot::Mutex`
//! beside a per-variable version word, replaced in PR 1 by a single
//! immutable box behind an `AtomicPtr`): per-read locking was the
//! shared-memory cost the paper condemns invisible-read TMs to pay, and
//! the single box was the *space* floor — one version — that made
//! abort-free read-only transactions impossible. The chain buys the
//! paper's space axis back.

use crate::epoch::{Guard, Retired};
use std::any::Any;
use std::fmt;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;

/// Values storable in a [`TVar`]: cloneable (reads snapshot), comparable
/// (NOrec validates by value), and thread-safe.
///
/// Implemented automatically for every eligible type.
pub trait TxValue: Any + Send + Sync + Clone + PartialEq {}

impl<T: Any + Send + Sync + Clone + PartialEq> TxValue for T {}

/// Stamp of a version whose committing transaction has appended it but
/// not yet drawn its write timestamp. Readers that reach a pending
/// version spin the few instructions until the committer resolves it:
/// the version *may* belong to their snapshot (the committer's timestamp
/// is not knowable yet), so neither taking nor skipping it is sound.
const PENDING: u64 = u64::MAX;

/// Marker returned by a snapshot read that walked off the end of a chain
/// the space bound ([`crate::MvConfig::max_versions`]) has evicted from:
/// the version the snapshot names is gone, and the only sound answer is
/// to abort the attempt (the retry draws a fresh snapshot that the
/// retained chain can serve) — the oldest-snapshot-abort rule.
#[derive(Debug)]
pub(crate) struct Evicted;

/// One link of a [`TVar`]'s version chain: an immutable value, the
/// commit timestamp that published it, and the version it superseded.
struct Version<T> {
    /// Never mutated after the node is reachable.
    value: T,
    /// The publishing commit's clock tick ([`PENDING`] while the
    /// committer is between appending and stamping); 0 for values
    /// installed outside any Mv commit (initial values, single-version
    /// publishes), which every snapshot may read.
    stamp: AtomicU64,
    /// Next-older retained version; null at the chain's end.
    prev: AtomicPtr<Version<T>>,
    /// Append-order index (0 for nodes installed outside Mv appends),
    /// driving the Fenwick-style skip targeting. Strictly decreasing
    /// down any chain; never mutated once the node is reachable.
    idx: u64,
    /// Skip link to a strictly older retained node (null: none), letting
    /// [`TVarInner::read_at_counted`] descend a long chain in
    /// O(log² chain) hops instead of O(chain). Purely an accelerator —
    /// every skip target is also reachable through `prev` — but a
    /// *clamped* one: trims re-aim any skip that would cross the cut
    /// (see `trim_chain`/`cap_chain`), so following a skip can never
    /// leave the retained chain.
    skip: AtomicPtr<Version<T>>,
}

impl<T> Version<T> {
    fn boxed(
        value: T,
        stamp: u64,
        prev: *mut Version<T>,
        idx: u64,
        skip: *mut Version<T>,
    ) -> *mut Version<T> {
        Box::into_raw(Box::new(Version {
            value,
            stamp: AtomicU64::new(stamp),
            prev: AtomicPtr::new(prev),
            idx,
            skip: AtomicPtr::new(skip),
        }))
    }

    /// The resolved stamp, waiting out a committer mid-stamp. The
    /// pending window spans the committer's remaining appends, its clock
    /// `fetch_add`, and one store per written variable — short, but a
    /// preempted committer (which still holds the stripe locks) can
    /// stretch it to a scheduling quantum, so after a bounded spin the
    /// reader yields its timeslice toward the committer instead of
    /// burning it.
    fn stamp(&self) -> u64 {
        let mut spins = 0u32;
        loop {
            let s = self.stamp.load(Ordering::Acquire);
            if s != PENDING {
                return s;
            }
            spins += 1;
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }
}

impl<T> Drop for Version<T> {
    fn drop(&mut self) {
        // Free the rest of the chain iteratively: the natural recursive
        // drop would overflow the stack on a long-unreclaimed chain.
        let mut p = *self.prev.get_mut();
        while !p.is_null() {
            // SAFETY: each node is owned by exactly one `prev` pointer
            // (or the head); detaching before dropping keeps the
            // iteration from re-entering this loop.
            let mut node = unsafe { Box::from_raw(p) };
            p = std::mem::replace(node.prev.get_mut(), std::ptr::null_mut());
        }
    }
}

/// Type-erased view of a `TVarInner<T>`, used by transaction logs, which
/// are heterogeneous.
pub(crate) trait AnyTVar: Send + Sync {
    /// Single-version publish: swaps `value` in as the sole retained
    /// version and returns the displaced chain for epoch retirement.
    ///
    /// The caller must hold the exclusion covering this variable (its
    /// orec stripe lock, or the NOrec sequence lock) and must retire the
    /// returned garbage *after* all the swaps of its commit.
    ///
    /// # Panics
    ///
    /// Panics if the boxed value is of the wrong type (transaction-engine
    /// bug, not reachable from the public API).
    fn publish_boxed(&self, value: Box<dyn Any + Send>) -> Retired;

    /// Multi-version publish, step 1: pushes `value` as the new head
    /// with a pending stamp. The caller must hold the stripe lock and
    /// must be past the point of no return (validation done — an
    /// appended version is never unlinked by its own commit).
    fn append_boxed(&self, value: Box<dyn Any + Send>);

    /// Multi-version publish, step 2: resolves the head's pending stamp
    /// to the commit's write timestamp. Caller still holds the stripe
    /// lock, so the head is the version it appended.
    fn stamp_head(&self, wv: u64);

    /// Detaches every version unreachable under `watermark` (the oldest
    /// active snapshot): the suffix strictly below the newest version
    /// stamped `<= watermark`. Detached versions go to `out` for epoch
    /// retirement. Returns `(retained, trimmed)` chain lengths; the
    /// pre-trim length is their sum. Caller holds the stripe lock (the
    /// chain has exactly one mutator at a time).
    fn trim_chain(&self, watermark: u64, out: &mut Vec<Retired>) -> (usize, usize);

    /// Cuts the chain to at most `max` newest versions *regardless of
    /// the watermark* — the [`crate::MvConfig::max_versions`] space
    /// bound. Evicted versions may still be named by an active snapshot;
    /// the chain remembers the newest evicted stamp so such a snapshot's
    /// walk aborts ([`Evicted`]) instead of reading a wrong value.
    /// Returns the number evicted. Caller holds the stripe lock.
    fn cap_chain(&self, max: usize, out: &mut Vec<Retired>) -> usize;

    /// Whether the current (newest) value equals the given snapshot.
    fn value_eq(&self, pin: &Guard, snapshot: &(dyn Any + Send)) -> bool;
}

pub(crate) struct TVarInner<T> {
    /// Always points at a live, fully initialized version node — the
    /// newest. Only `publish_boxed`/`append_boxed` replace it (under the
    /// writer's exclusion); displaced or trimmed versions are freed by
    /// the epoch collector, and the final chain by `Drop`.
    head: AtomicPtr<Version<T>>,
    /// Newest stamp ever evicted past the watermark by `cap_chain` (0:
    /// never). A snapshot walk that falls off the chain's end consults
    /// it to tell eviction (abort) from sequential handoff (fall back to
    /// the head). Monotone via `fetch_max`.
    evicted_stamp: AtomicU64,
}

impl<T: TxValue> TVarInner<T> {
    fn new(value: T) -> Self {
        TVarInner {
            head: AtomicPtr::new(Version::boxed(
                value,
                0,
                std::ptr::null_mut(),
                0,
                std::ptr::null_mut(),
            )),
            evicted_stamp: AtomicU64::new(0),
        }
    }

    /// Clones the newest value without any lock — the latest-pointer
    /// fast path: one load and one dereference, exactly the cost the
    /// single-cell design paid, chain or no chain.
    ///
    /// The `pin` witness proves an epoch guard is held, which is what
    /// keeps the loaded node alive across the dereference.
    pub(crate) fn read_snapshot(&self, _pin: &Guard) -> T {
        let p = self.head.load(Ordering::Acquire);
        // SAFETY: `p` was published by `new`, `publish_boxed` or
        // `append_boxed` (Acquire pairs with their Release, so the node
        // is fully initialized), its value is never mutated in place, and
        // it cannot be freed while this thread is pinned: retirement tags
        // postdate the unlink, and the collector only frees tags newer
        // than every pinned epoch.
        unsafe { (*p).value.clone() }
    }

    /// Clones the newest version stamped `<= rv` — the multi-version
    /// snapshot read, ignoring eviction and walk accounting. Thin
    /// wrapper over [`Self::read_at_counted`] for tests that want the
    /// unbounded-chain semantics (a chain that has never evicted cannot
    /// return `Evicted`).
    #[cfg(test)]
    pub(crate) fn read_at(&self, pin: &Guard, rv: u64) -> T {
        match self.read_at_counted(pin, rv) {
            Ok((value, _)) => value,
            Err(Evicted) => self.read_snapshot(pin),
        }
    }

    /// The snapshot read proper: clones the newest version stamped
    /// `<= rv` and reports how many chain hops past the head the walk
    /// took. No orec probe, no validation: the trim rule keeps the
    /// chain's oldest retained version at or below every snapshot drawn
    /// from this instance's clock, so in-instance walks always find
    /// their version — except when [`AnyTVar::cap_chain`] evicted it,
    /// which the walk reports as `Err(Evicted)` (abort and retry with a
    /// fresh snapshot). Walking off the end *without* eviction history
    /// only arises when a variable written under one `Stm` is later read
    /// under another whose (fresh, smaller) clock is below every
    /// retained stamp — a sequential handoff, where the correct answer
    /// is the *current* value: fall back to the head, agreeing with
    /// [`Self::read_snapshot`] and every single-version algorithm.
    ///
    /// The walk descends by skip pointer where it can: a skip target
    /// whose stamp still exceeds `rv` can be jumped to directly, because
    /// every node between is *newer* than the target (stamps strictly
    /// decrease down an appended chain) and therefore also exceeds `rv`.
    /// A skip whose target is at or below `rv` is refused — the answer
    /// could be a node between — and the walk takes `prev` instead.
    /// Against the Fenwick-shaped skips `append_boxed` builds this is
    /// O(log² chain) hops; correctness never depends on the skips, only
    /// on `prev`.
    pub(crate) fn read_at_counted(&self, pin: &Guard, rv: u64) -> Result<(T, u64), Evicted> {
        let mut steps = 0u64;
        let mut p = self.head.load(Ordering::Acquire);
        loop {
            // SAFETY: as in `read_snapshot` — every node reachable from
            // the head was fully published and is kept alive by the pin;
            // trimming detaches only suffixes no snapshot `>= watermark`
            // can walk into, this snapshot is `>= watermark` by the
            // registry's floor-first scan (see `SnapshotRegistry`), and
            // skip pointers are clamped inside the retained chain before
            // any detach.
            let node = unsafe { &*p };
            if node.stamp() <= rv {
                return Ok((node.value.clone(), steps));
            }
            steps += 1;
            let skip = node.skip.load(Ordering::Acquire);
            if !skip.is_null() {
                // SAFETY: clamped within the chain, alive under the pin.
                let s = unsafe { &*skip };
                if s.stamp() > rv {
                    p = skip;
                    continue;
                }
            }
            let prev = node.prev.load(Ordering::Acquire);
            if prev.is_null() {
                return if self.evicted_stamp.load(Ordering::Acquire) != 0 {
                    Err(Evicted)
                } else {
                    Ok((self.read_snapshot(pin), steps))
                };
            }
            p = prev;
        }
    }

    /// Computes the append-order index and skip target for a node about
    /// to be pushed over `prev`. A node with index `i` aims its skip at
    /// the live node nearest index `i & (i - 1)` (lowest set bit
    /// cleared) — the implicit tree a Fenwick array uses — reachable
    /// from `prev` in O(log i) hops, because repeatedly clearing the
    /// lowest set bit of `i - 1` descends exactly through that index's
    /// prefixes. Trimming may have freed the exact target; the walk then
    /// settles on the chain's end, which only shortens future skips,
    /// never breaks them.
    fn skip_for(prev: *mut Version<T>) -> (u64, *mut Version<T>) {
        // SAFETY: `prev` is the live head (the caller holds the stripe
        // lock), and every skip/prev pointer reachable from it stays
        // within the retained chain (the clamping invariant upheld by
        // `trim_chain`/`cap_chain`).
        unsafe {
            let i = (*prev).idx.wrapping_add(1);
            let target = i & i.wrapping_sub(1);
            let mut cur = prev;
            while (*cur).idx > target {
                let s = (*cur).skip.load(Ordering::Relaxed);
                if !s.is_null() && (*s).idx >= target {
                    cur = s;
                } else {
                    let p = (*cur).prev.load(Ordering::Relaxed);
                    if p.is_null() {
                        break;
                    }
                    cur = p;
                }
            }
            (i, cur)
        }
    }

    /// Number of versions currently retained (racy snapshot; exact when
    /// no writer is active).
    pub(crate) fn chain_len(&self) -> usize {
        let mut n = 0;
        let mut p = self.head.load(Ordering::Acquire);
        while !p.is_null() {
            n += 1;
            // SAFETY: reachable nodes are live (see `read_at`); callers
            // hold an epoch pin via `TVar::versions_retained`.
            p = unsafe { (*p).prev.load(Ordering::Acquire) };
        }
        n
    }
}

impl<T> Drop for TVarInner<T> {
    fn drop(&mut self) {
        // SAFETY: exclusive access (`&mut self` on the last owner); no
        // reader can hold this pointer without an `Arc` keeping the cell
        // alive, and displaced versions live in epoch bags, not here.
        // Dropping the head frees the whole retained chain (iteratively,
        // see `Version::drop`).
        drop(unsafe { Box::from_raw(*self.head.get_mut()) });
    }
}

impl<T: TxValue> AnyTVar for TVarInner<T> {
    fn publish_boxed(&self, value: Box<dyn Any + Send>) -> Retired {
        let value: Box<T> = value.downcast().expect("write-set type");
        // Stamp 0: single-version algorithms never read stamps, and 0
        // keeps the value visible to every snapshot if the variable is
        // later handed (sequentially) to an Mv instance. Index restarts
        // at 0 — the swapped-in node heads a fresh one-element chain.
        let node = Version::boxed(*value, 0, std::ptr::null_mut(), 0, std::ptr::null_mut());
        let old = self.head.swap(node, Ordering::AcqRel);
        // The displaced node still owns its `prev` chain; retiring it
        // frees the whole suffix once no pinned reader remains.
        Retired::new(old)
    }

    fn append_boxed(&self, value: Box<dyn Any + Send>) {
        let value: Box<T> = value.downcast().expect("write-set type");
        let prev = self.head.load(Ordering::Relaxed);
        let (idx, skip) = TVarInner::<T>::skip_for(prev);
        let node = Version::boxed(*value, PENDING, prev, idx, skip);
        // Plain store, not a swap: the stripe lock gives this committer
        // sole write access to the chain; Release publishes the node's
        // initialization to readers.
        self.head.store(node, Ordering::Release);
    }

    fn stamp_head(&self, wv: u64) {
        let p = self.head.load(Ordering::Relaxed);
        // SAFETY: the head is this committer's own appended node (stripe
        // lock still held), so it is live.
        unsafe { (*p).stamp.store(wv, Ordering::Release) };
    }

    fn trim_chain(&self, watermark: u64, out: &mut Vec<Retired>) -> (usize, usize) {
        let mut keep = self.head.load(Ordering::Relaxed);
        let mut retained = 1;
        // Find the newest version every live snapshot can settle on: the
        // first (walking newest to oldest) stamped `<= watermark`. Only
        // the head can be pending, and the caller (its own committer)
        // has already stamped it.
        loop {
            // SAFETY: reachable nodes are live; the stripe lock makes
            // this thread the only mutator.
            let node = unsafe { &*keep };
            if node.stamp.load(Ordering::Acquire) <= watermark {
                break;
            }
            let prev = node.prev.load(Ordering::Acquire);
            if prev.is_null() {
                // Every retained version is newer than the watermark
                // (sequential-handoff leftovers); nothing is provably
                // unreachable.
                return (retained, 0);
            }
            retained += 1;
            keep = prev;
        }
        // Everything below `keep` is unreachable: an active snapshot has
        // `rv >= watermark >= stamp(keep)`, so its walk stops at `keep`
        // or newer. Before detaching, clamp every skip in the retained
        // prefix that aims below the cut onto `keep` itself — skips must
        // never escape the retained chain (readers would chase freed
        // nodes), and `keep` preserves most of the jump distance.
        // SAFETY: head..=keep are live (reachable, lock held); in-flight
        // readers that already loaded an old skip still hold epoch pins,
        // which keep the detached suffix alive until they unpin.
        unsafe {
            let keep_idx = (*keep).idx;
            let mut p = self.head.load(Ordering::Relaxed);
            while p != keep {
                let s = (*p).skip.load(Ordering::Relaxed);
                if !s.is_null() && (*s).idx < keep_idx {
                    (*p).skip.store(keep, Ordering::Release);
                }
                p = (*p).prev.load(Ordering::Relaxed);
            }
            // `keep` becomes the chain's tail, and its own skip — whose
            // target always has a strictly smaller index — can only aim
            // into the detached suffix: clear it.
            (*keep).skip.store(std::ptr::null_mut(), Ordering::Release);
        }
        // SAFETY: `keep` is live (reachable, lock held).
        let dropped = unsafe { (*keep).prev.swap(std::ptr::null_mut(), Ordering::AcqRel) };
        if dropped.is_null() {
            return (retained, 0);
        }
        let mut trimmed = 0;
        let mut p = dropped;
        while !p.is_null() {
            trimmed += 1;
            // SAFETY: the detached suffix is owned by this thread now
            // (unreachable from the head, single mutator).
            p = unsafe { (*p).prev.load(Ordering::Relaxed) };
        }
        out.push(Retired::new(dropped));
        (retained, trimmed)
    }

    fn cap_chain(&self, max: usize, out: &mut Vec<Retired>) -> usize {
        let max = max.max(1);
        // Walk `max - 1` prevs from the head to the last version the
        // bound lets us keep.
        let mut last = self.head.load(Ordering::Relaxed);
        for _ in 1..max {
            // SAFETY: reachable nodes are live; stripe lock held.
            let prev = unsafe { (*last).prev.load(Ordering::Relaxed) };
            if prev.is_null() {
                return 0; // chain already within bound
            }
            last = prev;
        }
        // SAFETY: `last` is live (reachable, lock held).
        let last_idx = unsafe { (*last).idx };
        if unsafe { (*last).prev.load(Ordering::Relaxed) }.is_null() {
            return 0;
        }
        // Same clamping invariant as `trim_chain`: re-aim every retained
        // skip that targets the about-to-be-evicted suffix onto `last`.
        // SAFETY: head..=last are live; epoch pins keep the evicted
        // suffix alive for readers that already loaded a pointer into it.
        unsafe {
            let mut p = self.head.load(Ordering::Relaxed);
            while p != last {
                let s = (*p).skip.load(Ordering::Relaxed);
                if !s.is_null() && (*s).idx < last_idx {
                    (*p).skip.store(last, Ordering::Release);
                }
                p = (*p).prev.load(Ordering::Relaxed);
            }
            // As in `trim_chain`: the new tail's own skip can only aim
            // into the evicted suffix.
            (*last).skip.store(std::ptr::null_mut(), Ordering::Release);
        }
        // SAFETY: `last` is live; the detached suffix becomes this
        // thread's to count and retire.
        let dropped = unsafe { (*last).prev.swap(std::ptr::null_mut(), Ordering::AcqRel) };
        debug_assert!(!dropped.is_null());
        // Record the newest stamp we evicted: a snapshot walk that later
        // falls off the chain end knows its version may have been here,
        // and must abort rather than mis-read (oldest-snapshot-abort).
        // SAFETY: the suffix is unreachable from the head, single owner.
        let mut evicted = 0;
        unsafe {
            self.evicted_stamp
                .fetch_max((*dropped).stamp.load(Ordering::Acquire), Ordering::AcqRel);
            let mut p = dropped;
            while !p.is_null() {
                evicted += 1;
                p = (*p).prev.load(Ordering::Relaxed);
            }
        }
        out.push(Retired::new(dropped));
        evicted
    }

    fn value_eq(&self, pin: &Guard, snapshot: &(dyn Any + Send)) -> bool {
        match snapshot.downcast_ref::<T>() {
            Some(snap) => {
                let p = self.head.load(Ordering::Acquire);
                // SAFETY: as in `read_snapshot`; `pin` keeps the node alive.
                let _ = pin;
                unsafe { (*p).value == *snap }
            }
            None => false,
        }
    }
}

/// A transactional variable holding a `T`.
///
/// Cheap to clone (it is an `Arc` handle); clones refer to the same cell.
///
/// # Examples
///
/// ```
/// use ptm_stm::{Stm, TVar};
///
/// let stm = Stm::tl2();
/// let acct = TVar::new(100u64);
/// stm.atomically(|tx| {
///     let v = tx.read(&acct)?;
///     tx.write(&acct, v + 1)?;
///     Ok(())
/// });
/// assert_eq!(stm.read_now(&acct), 101);
/// ```
pub struct TVar<T> {
    pub(crate) inner: Arc<TVarInner<T>>,
}

impl<T> Clone for TVar<T> {
    fn clone(&self) -> Self {
        TVar {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: fmt::Debug + TxValue> fmt::Debug for TVar<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TVar").field("value", &self.load()).finish()
    }
}

impl<T: TxValue> TVar<T> {
    /// Creates a variable with an initial value.
    pub fn new(value: T) -> Self {
        TVar {
            inner: Arc::new(TVarInner::new(value)),
        }
    }

    /// Stable identity of the cell (keys read/write sets and maps the
    /// cell to its orec stripe).
    pub(crate) fn id(&self) -> usize {
        Arc::as_ptr(&self.inner) as *const () as usize
    }

    /// Type-erased handle for transaction logs.
    pub(crate) fn as_dyn(&self) -> Arc<dyn AnyTVar> {
        Arc::clone(&self.inner) as Arc<dyn AnyTVar>
    }

    /// Reads the value non-transactionally (a consistent snapshot of this
    /// single variable). Useful for inspecting results after the
    /// concurrent phase is over.
    pub fn load(&self) -> T {
        let pin = crate::epoch::pin();
        self.inner.read_snapshot(&pin)
    }

    /// How many versions of this variable are currently retained: 1
    /// under the single-version algorithms, up to the span between the
    /// oldest active snapshot and the newest commit under
    /// [`Algorithm::Mv`](crate::Algorithm::Mv). Introspection for GC
    /// tests and capacity monitoring; racy when writers are active.
    pub fn versions_retained(&self) -> usize {
        let _pin = crate::epoch::pin();
        self.inner.chain_len()
    }

    /// Whether two handles refer to the same cell (identity, not value).
    /// Useful when building linked structures out of `TVar`s, where a
    /// node's `PartialEq` should compare pointer identity.
    pub fn same_cell(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl<T: TxValue + Default> Default for TVar<T> {
    fn default() -> Self {
        TVar::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epoch;

    #[test]
    fn new_and_load() {
        let v = TVar::new(41u32);
        assert_eq!(v.load(), 41);
        assert_eq!(v.versions_retained(), 1);
    }

    #[test]
    fn clones_share_the_cell() {
        let a = TVar::new(String::from("x"));
        let b = a.clone();
        assert_eq!(a.id(), b.id());
        epoch::retire_batch(vec![a.inner.publish_boxed(Box::new(String::from("y")))]);
        assert_eq!(b.load(), "y");
    }

    #[test]
    fn distinct_vars_have_distinct_ids() {
        let a = TVar::new(0u8);
        let b = TVar::new(0u8);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn publish_roundtrip_and_value_eq() {
        let v = TVar::new(7i64);
        let pin = epoch::pin();
        let snap: Box<dyn Any + Send> = Box::new(7i64);
        assert!(v.inner.value_eq(&pin, snap.as_ref()));
        epoch::retire_batch(vec![v.inner.publish_boxed(Box::new(9i64))]);
        assert!(!v.inner.value_eq(&pin, snap.as_ref()));
        assert_eq!(v.load(), 9);
        assert_eq!(v.versions_retained(), 1, "publish swaps, never chains");
        // Wrong-type snapshots never compare equal.
        let wrong: Box<dyn Any + Send> = Box::new("9");
        assert!(!v.inner.value_eq(&pin, wrong.as_ref()));
    }

    #[test]
    fn append_builds_a_chain_and_read_at_selects_by_stamp() {
        let v = TVar::new(10u64);
        let pin = epoch::pin();
        for (wv, val) in [(3u64, 13u64), (5, 15), (9, 19)] {
            v.inner.append_boxed(Box::new(val));
            v.inner.stamp_head(wv);
        }
        assert_eq!(v.versions_retained(), 4);
        // Newest fast path sees the newest value.
        assert_eq!(v.load(), 19);
        // Snapshot reads land on the newest version <= rv.
        assert_eq!(v.inner.read_at(&pin, 0), 10);
        assert_eq!(v.inner.read_at(&pin, 2), 10);
        assert_eq!(v.inner.read_at(&pin, 3), 13);
        assert_eq!(v.inner.read_at(&pin, 4), 13);
        assert_eq!(v.inner.read_at(&pin, 5), 15);
        assert_eq!(v.inner.read_at(&pin, 8), 15);
        assert_eq!(v.inner.read_at(&pin, 9), 19);
        assert_eq!(v.inner.read_at(&pin, u64::MAX - 1), 19);
    }

    #[test]
    fn trim_detaches_exactly_the_unreachable_suffix() {
        let v = TVar::new(0u64);
        for wv in [2u64, 4, 6, 8] {
            v.inner.append_boxed(Box::new(wv * 10));
            v.inner.stamp_head(wv);
        }
        assert_eq!(v.versions_retained(), 5);
        let mut out = Vec::new();
        // Watermark 5: keep 8, 6, and 4 (the newest <= 5); drop 2, 0.
        let (retained, trimmed) = v.inner.trim_chain(5, &mut out);
        assert_eq!((retained, trimmed), (3, 2));
        assert_eq!(out.len(), 1, "one retirement frees the whole suffix");
        assert_eq!(v.versions_retained(), 3);
        let pin = epoch::pin();
        // Snapshots at or above the watermark still resolve.
        assert_eq!(v.inner.read_at(&pin, 5), 40);
        assert_eq!(v.inner.read_at(&pin, 7), 60);
        // Trimming to the same watermark again is a no-op.
        let (retained, trimmed) = v.inner.trim_chain(5, &mut out);
        assert_eq!((retained, trimmed), (3, 0));
        // Watermark past the head keeps only the head.
        let (retained, trimmed) = v.inner.trim_chain(100, &mut out);
        assert_eq!((retained, trimmed), (1, 2));
        assert_eq!(v.versions_retained(), 1);
        drop(pin);
        epoch::retire_batch(out);
    }

    #[test]
    fn trim_with_no_version_under_the_watermark_keeps_everything() {
        // Sequential-handoff shape: every retained stamp exceeds the
        // watermark. Nothing is provably unreachable, nothing is freed,
        // and snapshot reads fall back to the oldest version.
        let v = TVar::new(1u64);
        let mut out = Vec::new();
        {
            let pin = epoch::pin();
            v.inner.append_boxed(Box::new(2u64));
            v.inner.stamp_head(50);
            let (retained, trimmed) = v.inner.trim_chain(60, &mut out);
            assert_eq!((retained, trimmed), (1, 1)); // initial 0-stamp trimmed
                                                     // The chain is now the single version stamped 50; a watermark
                                                     // below it can prove nothing unreachable.
            let (retained, trimmed) = v.inner.trim_chain(10, &mut out);
            assert_eq!((retained, trimmed), (1, 0));
            assert_eq!(v.inner.read_at(&pin, 10), 2, "oldest retained wins");
        }
        epoch::retire_batch(out);
    }

    #[test]
    fn default_impl() {
        let v: TVar<u64> = TVar::default();
        assert_eq!(v.load(), 0);
    }

    #[test]
    fn tvar_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TVar<u64>>();
        assert_send_sync::<TVar<String>>();
    }

    #[test]
    fn dropping_vars_with_history_does_not_leak_or_crash() {
        // Publish a few generations, then drop the var while garbage from
        // its history is still in epoch bags.
        let v = TVar::new(vec![0u8; 64]);
        for i in 0..10u8 {
            epoch::retire_batch(vec![v.inner.publish_boxed(Box::new(vec![i; 64]))]);
        }
        assert_eq!(v.load(), vec![9u8; 64]);
        drop(v);
    }

    #[test]
    fn dropping_a_var_with_a_long_retained_chain_is_iterative() {
        // A chain long enough that recursive dropping would overflow the
        // stack; `Version::drop` must walk it iteratively.
        let v = TVar::new(vec![0u8; 16]);
        for i in 0..200_000u64 {
            v.inner.append_boxed(Box::new(vec![(i % 251) as u8; 16]));
            v.inner.stamp_head(i + 1);
        }
        drop(v);
    }

    /// Skip-free reference walk: the newest version stamped `<= rv` by
    /// `prev` pointers only, or `None` off the chain's end.
    fn linear_read(v: &TVar<u64>, rv: u64) -> Option<u64> {
        let mut p = v.inner.head.load(Ordering::Acquire);
        // SAFETY: reachable nodes are live (tests hold no concurrent
        // trimmer; single-threaded).
        unsafe {
            loop {
                let node = &*p;
                if node.stamp.load(Ordering::Acquire) <= rv {
                    return Some(node.value);
                }
                let prev = node.prev.load(Ordering::Acquire);
                if prev.is_null() {
                    return None;
                }
                p = prev;
            }
        }
    }

    #[test]
    fn camped_snapshot_walks_are_sublinear_in_chain_length() {
        // A reader camped at the chain's old end is the pathological
        // case skip pointers exist for: the linear walk is O(chain),
        // the Fenwick-shaped skips bound it to O(log² chain).
        let v = TVar::new(0u64);
        for wv in 1..=1024u64 {
            v.inner.append_boxed(Box::new(wv));
            v.inner.stamp_head(wv);
        }
        let pin = epoch::pin();
        let (val, steps) = v.inner.read_at_counted(&pin, 0).unwrap();
        assert_eq!(val, 0);
        assert!(
            steps <= 150,
            "camped walk took {steps} hops on a 1024-version chain"
        );
        let (val, steps) = v.inner.read_at_counted(&pin, 512).unwrap();
        assert_eq!(val, 512);
        assert!(steps <= 150, "mid-chain walk took {steps} hops");
        // The head fast path stays free.
        let (val, steps) = v.inner.read_at_counted(&pin, 1024).unwrap();
        assert_eq!((val, steps), (1024, 0));
    }

    #[test]
    fn cap_chain_evicts_oldest_and_aborts_stale_snapshots() {
        let v = TVar::new(0u64);
        for wv in 1..=8u64 {
            v.inner.append_boxed(Box::new(wv * 10));
            v.inner.stamp_head(wv);
        }
        assert_eq!(v.versions_retained(), 9);
        let mut out = Vec::new();
        // Within the bound: no-ops.
        assert_eq!(v.inner.cap_chain(16, &mut out), 0);
        assert_eq!(v.inner.cap_chain(9, &mut out), 0);
        // Cap to the 3 newest (stamps 6, 7, 8): stamps 0..=5 go.
        assert_eq!(v.inner.cap_chain(3, &mut out), 6);
        assert_eq!(v.versions_retained(), 3);
        assert_eq!(v.inner.evicted_stamp.load(Ordering::Relaxed), 5);
        let pin = epoch::pin();
        // Snapshots at or past the cut still resolve...
        assert_eq!(v.inner.read_at_counted(&pin, 6).unwrap().0, 60);
        assert_eq!(v.inner.read_at_counted(&pin, 8).unwrap().0, 80);
        // ...an older snapshot aborts instead of mis-reading.
        assert!(v.inner.read_at_counted(&pin, 4).is_err());
        // A zero cap behaves as 1: the head is never evicted.
        assert_eq!(v.inner.cap_chain(0, &mut out), 2);
        assert_eq!(v.versions_retained(), 1);
        drop(pin);
        epoch::retire_batch(out);
    }

    #[test]
    fn skips_are_clamped_inside_the_retained_chain_across_trims() {
        // Interleave appends with trims and caps so later `skip_for`
        // walks and snapshot reads traverse chains whose skips were
        // re-aimed at cut nodes — and whose detached targets were really
        // freed (regression: the cut node's own skip must be cleared).
        let v = TVar::new(0u64);
        let mut out = Vec::new();
        for wv in 1..=96u64 {
            v.inner.append_boxed(Box::new(wv));
            v.inner.stamp_head(wv);
            if wv % 16 == 0 {
                v.inner.trim_chain(wv - 5, &mut out);
                epoch::retire_batch(std::mem::take(&mut out));
            } else if wv % 7 == 0 {
                v.inner.cap_chain(9, &mut out);
                epoch::retire_batch(std::mem::take(&mut out));
            }
        }
        let pin = epoch::pin();
        for rv in 91..=97u64 {
            assert_eq!(v.inner.read_at_counted(&pin, rv).unwrap().0, rv.min(96));
        }
    }

    mod skip_equivalence {
        use super::*;
        use proptest::prelude::*;

        /// One scripted chain mutation: `(kind, magnitude)`.
        fn ops_strategy() -> impl Strategy<Value = Vec<(u8, u64)>> {
            proptest::collection::vec((0u8..4, 0u64..12), 1..60)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            // The acceptance oracle for skip pointers: over arbitrary
            // append/trim/cap histories (with the monotone stamps real
            // commits produce), the skip walk returns exactly what the
            // naive linear walk returns, for every snapshot time.
            #[test]
            fn skip_walks_agree_with_linear_walks(ops in ops_strategy()) {
                let v = TVar::new(0u64);
                let mut clock = 0u64;
                let mut out = Vec::new();
                for (kind, arg) in ops {
                    match kind {
                        // Appends dominate the mix so chains get long.
                        0 | 1 => {
                            clock += 1 + arg % 3;
                            v.inner.append_boxed(Box::new(clock));
                            v.inner.stamp_head(clock);
                        }
                        2 => {
                            v.inner.trim_chain(clock.saturating_sub(arg), &mut out);
                        }
                        _ => {
                            v.inner.cap_chain(1 + arg as usize, &mut out);
                        }
                    }
                    epoch::retire_batch(std::mem::take(&mut out));
                    let pin = epoch::pin();
                    for rv in 0..=clock + 1 {
                        match (v.inner.read_at_counted(&pin, rv), linear_read(&v, rv)) {
                            (Ok((val, _)), Some(lin)) => prop_assert_eq!(val, lin),
                            (Err(Evicted), None) => {
                                // Both walked off the end of a capped
                                // chain: the abort is the contract.
                                prop_assert!(
                                    v.inner.evicted_stamp.load(Ordering::Relaxed) != 0
                                );
                            }
                            (Ok((val, _)), None) => {
                                // Sequential-handoff fallback: only on a
                                // never-evicted chain, answering the
                                // current value.
                                prop_assert_eq!(
                                    v.inner.evicted_stamp.load(Ordering::Relaxed),
                                    0
                                );
                                prop_assert_eq!(val, v.load());
                            }
                            (Err(Evicted), Some(lin)) => {
                                prop_assert!(
                                    false,
                                    "skip walk aborted where the linear walk found {}",
                                    lin
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}
