//! Transactional variables.
//!
//! A [`TVar<T>`] is a shared mutable cell that can only be read and
//! written inside a transaction. Each variable carries a versioned-lock
//! word (`version << 1 | locked`) beside its value; the value itself lives
//! under a mutex so snapshots are never torn — the library is entirely
//! safe Rust, trading a few nanoseconds for memory safety (see the crate
//! docs for the design rationale).

use parking_lot::Mutex;
use std::any::Any;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Values storable in a [`TVar`]: cloneable (reads snapshot), comparable
/// (NOrec validates by value), and thread-safe.
///
/// Implemented automatically for every eligible type.
pub trait TxValue: Any + Send + Sync + Clone + PartialEq {}

impl<T: Any + Send + Sync + Clone + PartialEq> TxValue for T {}

/// Type-erased view of a `TVarInner<T>`, used by transaction read/write
/// sets, which are heterogeneous.
pub(crate) trait AnyTVar: Send + Sync {
    /// The versioned-lock word.
    fn meta(&self) -> &AtomicU64;
    /// Stores a value boxed by a typed write.
    ///
    /// # Panics
    ///
    /// Panics if the boxed value is of the wrong type (transaction-engine
    /// bug, not reachable from the public API).
    fn write_boxed(&self, v: &(dyn Any + Send));
    /// Whether the current value equals the given snapshot.
    fn value_eq(&self, v: &(dyn Any + Send)) -> bool;
}

pub(crate) struct TVarInner<T> {
    meta: AtomicU64,
    value: Mutex<T>,
}

impl<T: TxValue> AnyTVar for TVarInner<T> {
    fn meta(&self) -> &AtomicU64 {
        &self.meta
    }

    fn write_boxed(&self, v: &(dyn Any + Send)) {
        let v = v.downcast_ref::<T>().expect("write_boxed type");
        *self.value.lock() = v.clone();
    }

    fn value_eq(&self, v: &(dyn Any + Send)) -> bool {
        match v.downcast_ref::<T>() {
            Some(v) => *self.value.lock() == *v,
            None => false,
        }
    }
}

/// A transactional variable holding a `T`.
///
/// Cheap to clone (it is an `Arc` handle); clones refer to the same cell.
///
/// # Examples
///
/// ```
/// use ptm_stm::{Stm, TVar};
///
/// let stm = Stm::tl2();
/// let acct = TVar::new(100u64);
/// stm.atomically(|tx| {
///     let v = tx.read(&acct)?;
///     tx.write(&acct, v + 1)?;
///     Ok(())
/// });
/// assert_eq!(stm.read_now(&acct), 101);
/// ```
pub struct TVar<T> {
    pub(crate) inner: Arc<TVarInner<T>>,
}

impl<T> Clone for TVar<T> {
    fn clone(&self) -> Self {
        TVar { inner: Arc::clone(&self.inner) }
    }
}

impl<T: fmt::Debug + TxValue> fmt::Debug for TVar<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TVar")
            .field("value", &*self.inner.value.lock())
            .field("version", &(self.inner.meta.load(Ordering::Relaxed) >> 1))
            .finish()
    }
}

impl<T: TxValue> TVar<T> {
    /// Creates a variable with an initial value.
    pub fn new(value: T) -> Self {
        TVar {
            inner: Arc::new(TVarInner { meta: AtomicU64::new(0), value: Mutex::new(value) }),
        }
    }

    /// Stable identity of the cell (used to key read/write sets and to
    /// order lock acquisition).
    pub(crate) fn id(&self) -> usize {
        Arc::as_ptr(&self.inner) as *const () as usize
    }

    /// Type-erased handle for transaction logs.
    pub(crate) fn as_dyn(&self) -> Arc<dyn AnyTVar> {
        Arc::clone(&self.inner) as Arc<dyn AnyTVar>
    }

    /// Reads the value non-transactionally (a consistent snapshot of this
    /// single variable). Useful for inspecting results after the
    /// concurrent phase is over.
    pub fn load(&self) -> T {
        self.inner.value.lock().clone()
    }

    /// Whether two handles refer to the same cell (identity, not value).
    /// Useful when building linked structures out of `TVar`s, where a
    /// node's `PartialEq` should compare pointer identity.
    pub fn same_cell(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl<T: TxValue + Default> Default for TVar<T> {
    fn default() -> Self {
        TVar::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_and_load() {
        let v = TVar::new(41u32);
        assert_eq!(v.load(), 41);
    }

    #[test]
    fn clones_share_the_cell() {
        let a = TVar::new(String::from("x"));
        let b = a.clone();
        assert_eq!(a.id(), b.id());
        a.inner.write_boxed(&(String::from("y")) as &(dyn Any + Send));
        assert_eq!(b.load(), "y");
    }

    #[test]
    fn distinct_vars_have_distinct_ids() {
        let a = TVar::new(0u8);
        let b = TVar::new(0u8);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn boxed_roundtrip_and_eq() {
        let v = TVar::new(7i64);
        let snap: Box<dyn Any + Send> = Box::new(7i64);
        assert!(v.inner.value_eq(snap.as_ref()));
        v.inner.write_boxed(&9i64 as &(dyn Any + Send));
        assert!(!v.inner.value_eq(snap.as_ref()));
        assert_eq!(v.load(), 9);
        // Wrong-type snapshots never compare equal.
        let wrong: Box<dyn Any + Send> = Box::new("9");
        assert!(!v.inner.value_eq(wrong.as_ref()));
    }

    #[test]
    fn default_impl() {
        let v: TVar<u64> = TVar::default();
        assert_eq!(v.load(), 0);
    }

    #[test]
    fn tvar_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TVar<u64>>();
        assert_send_sync::<TVar<String>>();
    }
}
