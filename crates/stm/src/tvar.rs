//! Transactional variables.
//!
//! A [`TVar<T>`] is a shared mutable cell readable and writable inside a
//! transaction. The current value lives in an immutable heap box
//! published through an `AtomicPtr`: readers load the pointer and clone —
//! **no lock, no reference-count traffic, no tearing** (the box is never
//! mutated in place). Writers, at commit and under the algorithm's
//! exclusion (orec stripe locks or the NOrec sequence lock), swap in a
//! freshly boxed value and hand the old box to the epoch collector
//! ([`crate::epoch`]), which frees it once no pinned reader can still
//! dereference it.
//!
//! This replaces the seed design (value under a `parking_lot::Mutex`
//! beside a per-variable version word), which serialized every read on a
//! lock — precisely the per-read shared-memory cost the paper shows only
//! weak-DAP/invisible-read TMs are condemned to pay.

use crate::epoch::{Guard, Retired};
use std::any::Any;
use std::fmt;
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::Arc;

/// Values storable in a [`TVar`]: cloneable (reads snapshot), comparable
/// (NOrec validates by value), and thread-safe.
///
/// Implemented automatically for every eligible type.
pub trait TxValue: Any + Send + Sync + Clone + PartialEq {}

impl<T: Any + Send + Sync + Clone + PartialEq> TxValue for T {}

/// Type-erased view of a `TVarInner<T>`, used by transaction logs, which
/// are heterogeneous.
pub(crate) trait AnyTVar: Send + Sync {
    /// Swaps `value` in as the current value and returns the displaced
    /// box for epoch retirement.
    ///
    /// The caller must hold the exclusion covering this variable (its
    /// orec stripe lock, or the NOrec sequence lock) and must retire the
    /// returned garbage *after* all the swaps of its commit.
    ///
    /// # Panics
    ///
    /// Panics if the boxed value is of the wrong type (transaction-engine
    /// bug, not reachable from the public API).
    fn publish_boxed(&self, value: Box<dyn Any + Send>) -> Retired;

    /// Whether the current value equals the given snapshot.
    fn value_eq(&self, pin: &Guard, snapshot: &(dyn Any + Send)) -> bool;
}

pub(crate) struct TVarInner<T> {
    /// Always points at a live, immutable, fully initialized box. Only
    /// `publish_boxed` replaces it; displaced boxes are freed by the
    /// epoch collector, and the final box by `Drop`.
    ptr: AtomicPtr<T>,
}

impl<T: TxValue> TVarInner<T> {
    fn new(value: T) -> Self {
        TVarInner {
            ptr: AtomicPtr::new(Box::into_raw(Box::new(value))),
        }
    }

    /// Clones the current value without any lock.
    ///
    /// The `pin` witness proves an epoch guard is held, which is what
    /// keeps the loaded box alive across the dereference.
    pub(crate) fn read_snapshot(&self, _pin: &Guard) -> T {
        let p = self.ptr.load(Ordering::Acquire);
        // SAFETY: `p` was published by `new` or `publish_boxed` (Acquire
        // pairs with their Release, so the box is fully initialized), is
        // never mutated in place, and cannot be freed while this thread
        // is pinned: retirement tags postdate the swap, and the collector
        // only frees tags newer than every pinned epoch.
        unsafe { (*p).clone() }
    }
}

impl<T> Drop for TVarInner<T> {
    fn drop(&mut self) {
        // SAFETY: exclusive access (`&mut self` on the last owner); no
        // reader can hold this pointer without an `Arc` keeping the cell
        // alive, and displaced boxes live in epoch bags, not here.
        drop(unsafe { Box::from_raw(*self.ptr.get_mut()) });
    }
}

impl<T: TxValue> AnyTVar for TVarInner<T> {
    fn publish_boxed(&self, value: Box<dyn Any + Send>) -> Retired {
        let value: Box<T> = value.downcast().expect("write-set type");
        let old = self.ptr.swap(Box::into_raw(value), Ordering::AcqRel);
        Retired::new(old)
    }

    fn value_eq(&self, pin: &Guard, snapshot: &(dyn Any + Send)) -> bool {
        match snapshot.downcast_ref::<T>() {
            Some(snap) => {
                let p = self.ptr.load(Ordering::Acquire);
                // SAFETY: as in `read_snapshot`; `pin` keeps the box alive.
                let _ = pin;
                unsafe { *p == *snap }
            }
            None => false,
        }
    }
}

/// A transactional variable holding a `T`.
///
/// Cheap to clone (it is an `Arc` handle); clones refer to the same cell.
///
/// # Examples
///
/// ```
/// use ptm_stm::{Stm, TVar};
///
/// let stm = Stm::tl2();
/// let acct = TVar::new(100u64);
/// stm.atomically(|tx| {
///     let v = tx.read(&acct)?;
///     tx.write(&acct, v + 1)?;
///     Ok(())
/// });
/// assert_eq!(stm.read_now(&acct), 101);
/// ```
pub struct TVar<T> {
    pub(crate) inner: Arc<TVarInner<T>>,
}

impl<T> Clone for TVar<T> {
    fn clone(&self) -> Self {
        TVar {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: fmt::Debug + TxValue> fmt::Debug for TVar<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TVar").field("value", &self.load()).finish()
    }
}

impl<T: TxValue> TVar<T> {
    /// Creates a variable with an initial value.
    pub fn new(value: T) -> Self {
        TVar {
            inner: Arc::new(TVarInner::new(value)),
        }
    }

    /// Stable identity of the cell (keys read/write sets and maps the
    /// cell to its orec stripe).
    pub(crate) fn id(&self) -> usize {
        Arc::as_ptr(&self.inner) as *const () as usize
    }

    /// Type-erased handle for transaction logs.
    pub(crate) fn as_dyn(&self) -> Arc<dyn AnyTVar> {
        Arc::clone(&self.inner) as Arc<dyn AnyTVar>
    }

    /// Reads the value non-transactionally (a consistent snapshot of this
    /// single variable). Useful for inspecting results after the
    /// concurrent phase is over.
    pub fn load(&self) -> T {
        let pin = crate::epoch::pin();
        self.inner.read_snapshot(&pin)
    }

    /// Whether two handles refer to the same cell (identity, not value).
    /// Useful when building linked structures out of `TVar`s, where a
    /// node's `PartialEq` should compare pointer identity.
    pub fn same_cell(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl<T: TxValue + Default> Default for TVar<T> {
    fn default() -> Self {
        TVar::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epoch;

    #[test]
    fn new_and_load() {
        let v = TVar::new(41u32);
        assert_eq!(v.load(), 41);
    }

    #[test]
    fn clones_share_the_cell() {
        let a = TVar::new(String::from("x"));
        let b = a.clone();
        assert_eq!(a.id(), b.id());
        epoch::retire_batch(vec![a.inner.publish_boxed(Box::new(String::from("y")))]);
        assert_eq!(b.load(), "y");
    }

    #[test]
    fn distinct_vars_have_distinct_ids() {
        let a = TVar::new(0u8);
        let b = TVar::new(0u8);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn publish_roundtrip_and_value_eq() {
        let v = TVar::new(7i64);
        let pin = epoch::pin();
        let snap: Box<dyn Any + Send> = Box::new(7i64);
        assert!(v.inner.value_eq(&pin, snap.as_ref()));
        epoch::retire_batch(vec![v.inner.publish_boxed(Box::new(9i64))]);
        assert!(!v.inner.value_eq(&pin, snap.as_ref()));
        assert_eq!(v.load(), 9);
        // Wrong-type snapshots never compare equal.
        let wrong: Box<dyn Any + Send> = Box::new("9");
        assert!(!v.inner.value_eq(&pin, wrong.as_ref()));
    }

    #[test]
    fn default_impl() {
        let v: TVar<u64> = TVar::default();
        assert_eq!(v.load(), 0);
    }

    #[test]
    fn tvar_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TVar<u64>>();
        assert_send_sync::<TVar<String>>();
    }

    #[test]
    fn dropping_vars_with_history_does_not_leak_or_crash() {
        // Publish a few generations, then drop the var while garbage from
        // its history is still in epoch bags.
        let v = TVar::new(vec![0u8; 64]);
        for i in 0..10u8 {
            epoch::retire_batch(vec![v.inner.publish_boxed(Box::new(vec![i; 64]))]);
        }
        assert_eq!(v.load(), vec![9u8; 64]);
        drop(v);
    }
}
