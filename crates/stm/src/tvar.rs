//! Transactional variables.
//!
//! A [`TVar<T>`] is a shared mutable cell readable and writable inside a
//! transaction. Values live in a **timestamped version chain**: the
//! newest version is published through an `AtomicPtr` head (the
//! latest-pointer fast path — single-version algorithms load it and
//! clone, **no lock, no reference-count traffic, no tearing**, exactly
//! the one-load read of the previous single-cell design), and each
//! version links to the one it superseded. The chain is what
//! [`Algorithm::Mv`](crate::Algorithm::Mv) reads: a snapshot reader
//! traverses to the newest version no newer than its start time and
//! never validates, never aborts.
//!
//! Writers publish under the algorithm's exclusion (orec stripe locks or
//! the NOrec sequence lock), in one of two ways:
//!
//! * **swap** ([`AnyTVar::publish_boxed`], the single-version
//!   algorithms): the new version replaces the head and the displaced
//!   chain goes to the epoch collector ([`crate::epoch`]) — chains never
//!   grow;
//! * **append** ([`AnyTVar::append_boxed`] + [`AnyTVar::stamp_head`],
//!   `Algorithm::Mv`): the new version is pushed with a *pending* stamp,
//!   the commit draws its write timestamp, resolves the stamp, and then
//!   [`AnyTVar::trim_chain`] detaches every version no active or future
//!   snapshot can reach (the low-watermark rule, see
//!   [`crate::epoch::SnapshotRegistry`]), retiring the suffix through
//!   the same epoch machinery.
//!
//! This grew out of the seed design (value under a `parking_lot::Mutex`
//! beside a per-variable version word, replaced in PR 1 by a single
//! immutable box behind an `AtomicPtr`): per-read locking was the
//! shared-memory cost the paper condemns invisible-read TMs to pay, and
//! the single box was the *space* floor — one version — that made
//! abort-free read-only transactions impossible. The chain buys the
//! paper's space axis back.

use crate::epoch::{Guard, Retired};
use std::any::Any;
use std::fmt;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;

/// Values storable in a [`TVar`]: cloneable (reads snapshot), comparable
/// (NOrec validates by value), and thread-safe.
///
/// Implemented automatically for every eligible type.
pub trait TxValue: Any + Send + Sync + Clone + PartialEq {}

impl<T: Any + Send + Sync + Clone + PartialEq> TxValue for T {}

/// Stamp of a version whose committing transaction has appended it but
/// not yet drawn its write timestamp. Readers that reach a pending
/// version spin the few instructions until the committer resolves it:
/// the version *may* belong to their snapshot (the committer's timestamp
/// is not knowable yet), so neither taking nor skipping it is sound.
const PENDING: u64 = u64::MAX;

/// One link of a [`TVar`]'s version chain: an immutable value, the
/// commit timestamp that published it, and the version it superseded.
struct Version<T> {
    /// Never mutated after the node is reachable.
    value: T,
    /// The publishing commit's clock tick ([`PENDING`] while the
    /// committer is between appending and stamping); 0 for values
    /// installed outside any Mv commit (initial values, single-version
    /// publishes), which every snapshot may read.
    stamp: AtomicU64,
    /// Next-older retained version; null at the chain's end.
    prev: AtomicPtr<Version<T>>,
}

impl<T> Version<T> {
    fn boxed(value: T, stamp: u64, prev: *mut Version<T>) -> *mut Version<T> {
        Box::into_raw(Box::new(Version {
            value,
            stamp: AtomicU64::new(stamp),
            prev: AtomicPtr::new(prev),
        }))
    }

    /// The resolved stamp, waiting out a committer mid-stamp. The
    /// pending window spans the committer's remaining appends, its clock
    /// `fetch_add`, and one store per written variable — short, but a
    /// preempted committer (which still holds the stripe locks) can
    /// stretch it to a scheduling quantum, so after a bounded spin the
    /// reader yields its timeslice toward the committer instead of
    /// burning it.
    fn stamp(&self) -> u64 {
        let mut spins = 0u32;
        loop {
            let s = self.stamp.load(Ordering::Acquire);
            if s != PENDING {
                return s;
            }
            spins += 1;
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }
}

impl<T> Drop for Version<T> {
    fn drop(&mut self) {
        // Free the rest of the chain iteratively: the natural recursive
        // drop would overflow the stack on a long-unreclaimed chain.
        let mut p = *self.prev.get_mut();
        while !p.is_null() {
            // SAFETY: each node is owned by exactly one `prev` pointer
            // (or the head); detaching before dropping keeps the
            // iteration from re-entering this loop.
            let mut node = unsafe { Box::from_raw(p) };
            p = std::mem::replace(node.prev.get_mut(), std::ptr::null_mut());
        }
    }
}

/// Type-erased view of a `TVarInner<T>`, used by transaction logs, which
/// are heterogeneous.
pub(crate) trait AnyTVar: Send + Sync {
    /// Single-version publish: swaps `value` in as the sole retained
    /// version and returns the displaced chain for epoch retirement.
    ///
    /// The caller must hold the exclusion covering this variable (its
    /// orec stripe lock, or the NOrec sequence lock) and must retire the
    /// returned garbage *after* all the swaps of its commit.
    ///
    /// # Panics
    ///
    /// Panics if the boxed value is of the wrong type (transaction-engine
    /// bug, not reachable from the public API).
    fn publish_boxed(&self, value: Box<dyn Any + Send>) -> Retired;

    /// Multi-version publish, step 1: pushes `value` as the new head
    /// with a pending stamp. The caller must hold the stripe lock and
    /// must be past the point of no return (validation done — an
    /// appended version is never unlinked by its own commit).
    fn append_boxed(&self, value: Box<dyn Any + Send>);

    /// Multi-version publish, step 2: resolves the head's pending stamp
    /// to the commit's write timestamp. Caller still holds the stripe
    /// lock, so the head is the version it appended.
    fn stamp_head(&self, wv: u64);

    /// Detaches every version unreachable under `watermark` (the oldest
    /// active snapshot): the suffix strictly below the newest version
    /// stamped `<= watermark`. Detached versions go to `out` for epoch
    /// retirement. Returns `(retained, trimmed)` chain lengths; the
    /// pre-trim length is their sum. Caller holds the stripe lock (the
    /// chain has exactly one mutator at a time).
    fn trim_chain(&self, watermark: u64, out: &mut Vec<Retired>) -> (usize, usize);

    /// Whether the current (newest) value equals the given snapshot.
    fn value_eq(&self, pin: &Guard, snapshot: &(dyn Any + Send)) -> bool;
}

pub(crate) struct TVarInner<T> {
    /// Always points at a live, fully initialized version node — the
    /// newest. Only `publish_boxed`/`append_boxed` replace it (under the
    /// writer's exclusion); displaced or trimmed versions are freed by
    /// the epoch collector, and the final chain by `Drop`.
    head: AtomicPtr<Version<T>>,
}

impl<T: TxValue> TVarInner<T> {
    fn new(value: T) -> Self {
        TVarInner {
            head: AtomicPtr::new(Version::boxed(value, 0, std::ptr::null_mut())),
        }
    }

    /// Clones the newest value without any lock — the latest-pointer
    /// fast path: one load and one dereference, exactly the cost the
    /// single-cell design paid, chain or no chain.
    ///
    /// The `pin` witness proves an epoch guard is held, which is what
    /// keeps the loaded node alive across the dereference.
    pub(crate) fn read_snapshot(&self, _pin: &Guard) -> T {
        let p = self.head.load(Ordering::Acquire);
        // SAFETY: `p` was published by `new`, `publish_boxed` or
        // `append_boxed` (Acquire pairs with their Release, so the node
        // is fully initialized), its value is never mutated in place, and
        // it cannot be freed while this thread is pinned: retirement tags
        // postdate the unlink, and the collector only frees tags newer
        // than every pinned epoch.
        unsafe { (*p).value.clone() }
    }

    /// Clones the newest version stamped `<= rv` — the multi-version
    /// snapshot read. No orec probe, no validation, no abort: the trim
    /// rule keeps the chain's oldest retained version at or below every
    /// snapshot drawn from this instance's clock, so in-instance walks
    /// always find their version. Walking off the end only arises when a
    /// variable written under one `Stm` is later read under another
    /// whose (fresh, smaller) clock is below every retained stamp — a
    /// sequential handoff, where the correct answer is the *current*
    /// value: fall back to the head, agreeing with [`Self::
    /// read_snapshot`] and every single-version algorithm.
    pub(crate) fn read_at(&self, pin: &Guard, rv: u64) -> T {
        let mut p = self.head.load(Ordering::Acquire);
        loop {
            // SAFETY: as in `read_snapshot` — every node reachable from
            // the head was fully published and is kept alive by the pin;
            // trimming detaches only suffixes no snapshot `>= watermark`
            // can walk into, and this snapshot is `>= watermark` by the
            // registry's floor-first scan (see `SnapshotRegistry`).
            let node = unsafe { &*p };
            if node.stamp() <= rv {
                return node.value.clone();
            }
            let prev = node.prev.load(Ordering::Acquire);
            if prev.is_null() {
                return self.read_snapshot(pin);
            }
            p = prev;
        }
    }

    /// Number of versions currently retained (racy snapshot; exact when
    /// no writer is active).
    pub(crate) fn chain_len(&self) -> usize {
        let mut n = 0;
        let mut p = self.head.load(Ordering::Acquire);
        while !p.is_null() {
            n += 1;
            // SAFETY: reachable nodes are live (see `read_at`); callers
            // hold an epoch pin via `TVar::versions_retained`.
            p = unsafe { (*p).prev.load(Ordering::Acquire) };
        }
        n
    }
}

impl<T> Drop for TVarInner<T> {
    fn drop(&mut self) {
        // SAFETY: exclusive access (`&mut self` on the last owner); no
        // reader can hold this pointer without an `Arc` keeping the cell
        // alive, and displaced versions live in epoch bags, not here.
        // Dropping the head frees the whole retained chain (iteratively,
        // see `Version::drop`).
        drop(unsafe { Box::from_raw(*self.head.get_mut()) });
    }
}

impl<T: TxValue> AnyTVar for TVarInner<T> {
    fn publish_boxed(&self, value: Box<dyn Any + Send>) -> Retired {
        let value: Box<T> = value.downcast().expect("write-set type");
        // Stamp 0: single-version algorithms never read stamps, and 0
        // keeps the value visible to every snapshot if the variable is
        // later handed (sequentially) to an Mv instance.
        let node = Version::boxed(*value, 0, std::ptr::null_mut());
        let old = self.head.swap(node, Ordering::AcqRel);
        // The displaced node still owns its `prev` chain; retiring it
        // frees the whole suffix once no pinned reader remains.
        Retired::new(old)
    }

    fn append_boxed(&self, value: Box<dyn Any + Send>) {
        let value: Box<T> = value.downcast().expect("write-set type");
        let prev = self.head.load(Ordering::Relaxed);
        let node = Version::boxed(*value, PENDING, prev);
        // Plain store, not a swap: the stripe lock gives this committer
        // sole write access to the chain; Release publishes the node's
        // initialization to readers.
        self.head.store(node, Ordering::Release);
    }

    fn stamp_head(&self, wv: u64) {
        let p = self.head.load(Ordering::Relaxed);
        // SAFETY: the head is this committer's own appended node (stripe
        // lock still held), so it is live.
        unsafe { (*p).stamp.store(wv, Ordering::Release) };
    }

    fn trim_chain(&self, watermark: u64, out: &mut Vec<Retired>) -> (usize, usize) {
        let mut keep = self.head.load(Ordering::Relaxed);
        let mut retained = 1;
        // Find the newest version every live snapshot can settle on: the
        // first (walking newest to oldest) stamped `<= watermark`. Only
        // the head can be pending, and the caller (its own committer)
        // has already stamped it.
        loop {
            // SAFETY: reachable nodes are live; the stripe lock makes
            // this thread the only mutator.
            let node = unsafe { &*keep };
            if node.stamp.load(Ordering::Acquire) <= watermark {
                break;
            }
            let prev = node.prev.load(Ordering::Acquire);
            if prev.is_null() {
                // Every retained version is newer than the watermark
                // (sequential-handoff leftovers); nothing is provably
                // unreachable.
                return (retained, 0);
            }
            retained += 1;
            keep = prev;
        }
        // Everything below `keep` is unreachable: an active snapshot has
        // `rv >= watermark >= stamp(keep)`, so its walk stops at `keep`
        // or newer. Detach the suffix and retire its top node — its drop
        // frees the rest of the chain.
        // SAFETY: `keep` is live (reachable, lock held).
        let dropped = unsafe { (*keep).prev.swap(std::ptr::null_mut(), Ordering::AcqRel) };
        if dropped.is_null() {
            return (retained, 0);
        }
        let mut trimmed = 0;
        let mut p = dropped;
        while !p.is_null() {
            trimmed += 1;
            // SAFETY: the detached suffix is owned by this thread now
            // (unreachable from the head, single mutator).
            p = unsafe { (*p).prev.load(Ordering::Relaxed) };
        }
        out.push(Retired::new(dropped));
        (retained, trimmed)
    }

    fn value_eq(&self, pin: &Guard, snapshot: &(dyn Any + Send)) -> bool {
        match snapshot.downcast_ref::<T>() {
            Some(snap) => {
                let p = self.head.load(Ordering::Acquire);
                // SAFETY: as in `read_snapshot`; `pin` keeps the node alive.
                let _ = pin;
                unsafe { (*p).value == *snap }
            }
            None => false,
        }
    }
}

/// A transactional variable holding a `T`.
///
/// Cheap to clone (it is an `Arc` handle); clones refer to the same cell.
///
/// # Examples
///
/// ```
/// use ptm_stm::{Stm, TVar};
///
/// let stm = Stm::tl2();
/// let acct = TVar::new(100u64);
/// stm.atomically(|tx| {
///     let v = tx.read(&acct)?;
///     tx.write(&acct, v + 1)?;
///     Ok(())
/// });
/// assert_eq!(stm.read_now(&acct), 101);
/// ```
pub struct TVar<T> {
    pub(crate) inner: Arc<TVarInner<T>>,
}

impl<T> Clone for TVar<T> {
    fn clone(&self) -> Self {
        TVar {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: fmt::Debug + TxValue> fmt::Debug for TVar<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TVar").field("value", &self.load()).finish()
    }
}

impl<T: TxValue> TVar<T> {
    /// Creates a variable with an initial value.
    pub fn new(value: T) -> Self {
        TVar {
            inner: Arc::new(TVarInner::new(value)),
        }
    }

    /// Stable identity of the cell (keys read/write sets and maps the
    /// cell to its orec stripe).
    pub(crate) fn id(&self) -> usize {
        Arc::as_ptr(&self.inner) as *const () as usize
    }

    /// Type-erased handle for transaction logs.
    pub(crate) fn as_dyn(&self) -> Arc<dyn AnyTVar> {
        Arc::clone(&self.inner) as Arc<dyn AnyTVar>
    }

    /// Reads the value non-transactionally (a consistent snapshot of this
    /// single variable). Useful for inspecting results after the
    /// concurrent phase is over.
    pub fn load(&self) -> T {
        let pin = crate::epoch::pin();
        self.inner.read_snapshot(&pin)
    }

    /// How many versions of this variable are currently retained: 1
    /// under the single-version algorithms, up to the span between the
    /// oldest active snapshot and the newest commit under
    /// [`Algorithm::Mv`](crate::Algorithm::Mv). Introspection for GC
    /// tests and capacity monitoring; racy when writers are active.
    pub fn versions_retained(&self) -> usize {
        let _pin = crate::epoch::pin();
        self.inner.chain_len()
    }

    /// Whether two handles refer to the same cell (identity, not value).
    /// Useful when building linked structures out of `TVar`s, where a
    /// node's `PartialEq` should compare pointer identity.
    pub fn same_cell(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl<T: TxValue + Default> Default for TVar<T> {
    fn default() -> Self {
        TVar::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epoch;

    #[test]
    fn new_and_load() {
        let v = TVar::new(41u32);
        assert_eq!(v.load(), 41);
        assert_eq!(v.versions_retained(), 1);
    }

    #[test]
    fn clones_share_the_cell() {
        let a = TVar::new(String::from("x"));
        let b = a.clone();
        assert_eq!(a.id(), b.id());
        epoch::retire_batch(vec![a.inner.publish_boxed(Box::new(String::from("y")))]);
        assert_eq!(b.load(), "y");
    }

    #[test]
    fn distinct_vars_have_distinct_ids() {
        let a = TVar::new(0u8);
        let b = TVar::new(0u8);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn publish_roundtrip_and_value_eq() {
        let v = TVar::new(7i64);
        let pin = epoch::pin();
        let snap: Box<dyn Any + Send> = Box::new(7i64);
        assert!(v.inner.value_eq(&pin, snap.as_ref()));
        epoch::retire_batch(vec![v.inner.publish_boxed(Box::new(9i64))]);
        assert!(!v.inner.value_eq(&pin, snap.as_ref()));
        assert_eq!(v.load(), 9);
        assert_eq!(v.versions_retained(), 1, "publish swaps, never chains");
        // Wrong-type snapshots never compare equal.
        let wrong: Box<dyn Any + Send> = Box::new("9");
        assert!(!v.inner.value_eq(&pin, wrong.as_ref()));
    }

    #[test]
    fn append_builds_a_chain_and_read_at_selects_by_stamp() {
        let v = TVar::new(10u64);
        let pin = epoch::pin();
        for (wv, val) in [(3u64, 13u64), (5, 15), (9, 19)] {
            v.inner.append_boxed(Box::new(val));
            v.inner.stamp_head(wv);
        }
        assert_eq!(v.versions_retained(), 4);
        // Newest fast path sees the newest value.
        assert_eq!(v.load(), 19);
        // Snapshot reads land on the newest version <= rv.
        assert_eq!(v.inner.read_at(&pin, 0), 10);
        assert_eq!(v.inner.read_at(&pin, 2), 10);
        assert_eq!(v.inner.read_at(&pin, 3), 13);
        assert_eq!(v.inner.read_at(&pin, 4), 13);
        assert_eq!(v.inner.read_at(&pin, 5), 15);
        assert_eq!(v.inner.read_at(&pin, 8), 15);
        assert_eq!(v.inner.read_at(&pin, 9), 19);
        assert_eq!(v.inner.read_at(&pin, u64::MAX - 1), 19);
    }

    #[test]
    fn trim_detaches_exactly_the_unreachable_suffix() {
        let v = TVar::new(0u64);
        for wv in [2u64, 4, 6, 8] {
            v.inner.append_boxed(Box::new(wv * 10));
            v.inner.stamp_head(wv);
        }
        assert_eq!(v.versions_retained(), 5);
        let mut out = Vec::new();
        // Watermark 5: keep 8, 6, and 4 (the newest <= 5); drop 2, 0.
        let (retained, trimmed) = v.inner.trim_chain(5, &mut out);
        assert_eq!((retained, trimmed), (3, 2));
        assert_eq!(out.len(), 1, "one retirement frees the whole suffix");
        assert_eq!(v.versions_retained(), 3);
        let pin = epoch::pin();
        // Snapshots at or above the watermark still resolve.
        assert_eq!(v.inner.read_at(&pin, 5), 40);
        assert_eq!(v.inner.read_at(&pin, 7), 60);
        // Trimming to the same watermark again is a no-op.
        let (retained, trimmed) = v.inner.trim_chain(5, &mut out);
        assert_eq!((retained, trimmed), (3, 0));
        // Watermark past the head keeps only the head.
        let (retained, trimmed) = v.inner.trim_chain(100, &mut out);
        assert_eq!((retained, trimmed), (1, 2));
        assert_eq!(v.versions_retained(), 1);
        drop(pin);
        epoch::retire_batch(out);
    }

    #[test]
    fn trim_with_no_version_under_the_watermark_keeps_everything() {
        // Sequential-handoff shape: every retained stamp exceeds the
        // watermark. Nothing is provably unreachable, nothing is freed,
        // and snapshot reads fall back to the oldest version.
        let v = TVar::new(1u64);
        let mut out = Vec::new();
        {
            let pin = epoch::pin();
            v.inner.append_boxed(Box::new(2u64));
            v.inner.stamp_head(50);
            let (retained, trimmed) = v.inner.trim_chain(60, &mut out);
            assert_eq!((retained, trimmed), (1, 1)); // initial 0-stamp trimmed
                                                     // The chain is now the single version stamped 50; a watermark
                                                     // below it can prove nothing unreachable.
            let (retained, trimmed) = v.inner.trim_chain(10, &mut out);
            assert_eq!((retained, trimmed), (1, 0));
            assert_eq!(v.inner.read_at(&pin, 10), 2, "oldest retained wins");
        }
        epoch::retire_batch(out);
    }

    #[test]
    fn default_impl() {
        let v: TVar<u64> = TVar::default();
        assert_eq!(v.load(), 0);
    }

    #[test]
    fn tvar_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TVar<u64>>();
        assert_send_sync::<TVar<String>>();
    }

    #[test]
    fn dropping_vars_with_history_does_not_leak_or_crash() {
        // Publish a few generations, then drop the var while garbage from
        // its history is still in epoch bags.
        let v = TVar::new(vec![0u8; 64]);
        for i in 0..10u8 {
            epoch::retire_batch(vec![v.inner.publish_boxed(Box::new(vec![i; 64]))]);
        }
        assert_eq!(v.load(), vec![9u8; 64]);
        drop(v);
    }

    #[test]
    fn dropping_a_var_with_a_long_retained_chain_is_iterative() {
        // A chain long enough that recursive dropping would overflow the
        // stack; `Version::drop` must walk it iteratively.
        let v = TVar::new(vec![0u8; 16]);
        for i in 0..200_000u64 {
            v.inner.append_boxed(Box::new(vec![(i % 251) as u8; 16]));
            v.inner.stamp_head(i + 1);
        }
        drop(v);
    }
}
