//! [`Stm::run_async`]: the async face of the attempt loop.
//!
//! The blocking loop parks a *thread* on the orec table's waiter lists;
//! this module parks a *task* — same lists, same register → revalidate →
//! sleep protocol, but the registered [`WaitCell`] carries the task's
//! [`Waker`](std::task::Waker) instead of a thread handle, and "sleep"
//! is returning [`Poll::Pending`]. A committing writer that overlaps the
//! footprint wakes the waker exactly once; the executor re-polls; the
//! poll deregisters the stale cell and re-runs the body.
//!
//! Two rules keep the loop executor-friendly; both exist because a poll
//! runs on a thread the engine does not own:
//!
//! * **The contention manager is consulted, never obeyed bodily.** A
//!   poll calls the non-blocking [`decide`] tier only — the spin/yield
//!   *wait* tiers a blocking attempt would burn through are translated
//!   into waker-mediated yields: each poll runs at most
//!   [`MAX_ATTEMPTS_PER_POLL`] attempts inline, then reschedules itself
//!   (`wake_by_ref` + `Pending`, counted as `async_yields` in
//!   [`StmStats`](crate::StmStats)) so the executor can run other tasks
//!   between retry bursts. Per-poll work is therefore bounded by the
//!   body's own cost times a small constant — no `2^k` spin ever runs on
//!   an executor thread.
//! * **[`Decision::Park`] parks for real, with a watchdog.** The
//!   conflict footprint (read ∪ write stripes) registers on the waiter
//!   lists exactly like the blocking path — register, revalidate, then
//!   suspend — and, because a conflict wake is only a heuristic (the
//!   winning writer may have committed and gone before registration),
//!   the global timer thread ([`crate::waiter`]) re-fires the waker
//!   after [`CONFLICT_PARK_TIMEOUT`] as a safety net; a timeout-mediated
//!   wake is counted `spurious_wakes`, mirroring the blocking ledger.
//!   Earlier versions degraded Park to an *unthrottled* self-wake
//!   (`wake_by_ref` on every poll), which pegged a core at executor
//!   speed for the whole storm.
//!
//! Logical waits (`tx.retry()`) register without the watchdog: their
//! wake condition is "some overlapping commit happens later", which is
//! exactly what the lists deliver, and the register-then-revalidate step
//! closes the "it already happened" window.
//!
//! [`decide`]: crate::cm::ContentionManager::decide

use super::{RetriesExhausted, Retry, Stm, Transaction};
use crate::algo::adaptive;
use crate::cm::Decision;
use crate::txlog::TxLog;
use crate::waiter::{self, WaitCell, CONFLICT_PARK_TIMEOUT};
use std::fmt;
use std::future::Future;
use std::marker::PhantomData;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll};

impl Stm {
    /// Runs `body` transactionally as a future: conflicts re-run it,
    /// [`Transaction::retry`] suspends the task (no thread blocks, no
    /// executor worker is lost) until an overlapping commit wakes it.
    ///
    /// The future is executor-agnostic — it uses only the standard
    /// [`Waker`](std::task::Waker) contract — and cancel-safe: dropping
    /// it deregisters any standing wait and publishes nothing (writes
    /// only ever land through a successful commit).
    ///
    /// # Examples
    ///
    /// A minimal single-future executor is enough to drive it:
    ///
    /// ```
    /// use ptm_stm::{Stm, TVar};
    /// use std::future::Future;
    /// use std::sync::Arc;
    /// use std::task::{Context, Poll, Wake, Waker};
    ///
    /// struct Unpark(std::thread::Thread);
    /// impl Wake for Unpark {
    ///     fn wake(self: Arc<Self>) {
    ///         self.0.unpark();
    ///     }
    /// }
    ///
    /// let stm = Stm::tl2();
    /// let inbox = TVar::new(Some(5u64));
    /// let mut fut = std::pin::pin!(stm.run_async(|tx| match tx.read(&inbox)? {
    ///     Some(v) => Ok(v),
    ///     None => tx.retry(),
    /// }));
    /// let waker = Waker::from(Arc::new(Unpark(std::thread::current())));
    /// let mut cx = Context::from_waker(&waker);
    /// let got = loop {
    ///     match fut.as_mut().poll(&mut cx) {
    ///         Poll::Ready(v) => break v,
    ///         Poll::Pending => std::thread::park(),
    ///     }
    /// };
    /// assert_eq!(got, Ok(5));
    /// ```
    pub fn run_async<A, F>(&self, body: F) -> RunAsync<'_, A, F>
    where
        F: FnMut(&mut Transaction<'_>) -> Result<A, Retry> + Unpin,
    {
        RunAsync {
            stm: self,
            body,
            log: None,
            attempts: 0,
            registration: None,
            _out: PhantomData,
        }
    }
}

/// Future returned by [`Stm::run_async`]; resolves to the body's result
/// once an attempt commits, or to [`RetriesExhausted`] if the retry
/// budget runs out.
///
/// The body must be [`Unpin`] (every closure without self-references is)
/// because the future moves it on each poll; the crate forbids the
/// `unsafe` a pin projection would need.
pub struct RunAsync<'s, A, F> {
    stm: &'s Stm,
    body: F,
    /// Recycled attempt log, `Some` between attempts.
    log: Option<TxLog>,
    attempts: u64,
    /// A standing waiter-list registration from the last poll, voided
    /// (deregistered) at the top of the next poll and on drop.
    registration: Option<(Arc<WaitCell>, Vec<usize>)>,
    /// `A` only appears in the output position.
    _out: PhantomData<fn() -> A>,
}

impl<A, F> RunAsync<'_, A, F> {
    fn deregister(&mut self) {
        if let Some((cell, stripes)) = self.registration.take() {
            self.stm.orecs.waiters().deregister(&stripes, &cell);
        }
    }

    /// Cooperative reschedule: the per-poll attempt budget is spent, so
    /// hand the thread back to the executor and ask to be polled again.
    /// Counted, so a contention storm is observable as `async_yields`
    /// instead of as an inexplicably hot core.
    fn yield_now<T>(&self, cx: &mut Context<'_>) -> Poll<T> {
        self.stm.stats.async_yield();
        cx.waker().wake_by_ref();
        Poll::Pending
    }
}

/// Ceiling on full attempts (body + commit try) one `poll` runs inline
/// before rescheduling itself. Small: it bounds per-poll work at a few
/// body executions, which keeps a conflict storm from monopolising the
/// executor thread while still amortising the wake-up cost across a
/// short burst of retries.
const MAX_ATTEMPTS_PER_POLL: u32 = 4;

impl<A, F> Future for RunAsync<'_, A, F>
where
    F: FnMut(&mut Transaction<'_>) -> Result<A, Retry> + Unpin,
{
    type Output = Result<A, RetriesExhausted>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = Pin::into_inner(self);
        // Whatever woke us (an overlapping commit, the timer watchdog, a
        // spurious executor poll), the old registration is spent. A
        // watchdog-delivered wake is the async analogue of a blocking
        // park timing out; keep the same ledger.
        if let Some((cell, _)) = &this.registration {
            if cell.was_timeout() {
                this.stm.stats.spurious_wake();
            }
        }
        this.deregister();
        let mut this_poll: u32 = 0;
        loop {
            let log = this.log.take().unwrap_or_default();
            let mut tx = Transaction::begin(this.stm, log);
            let committed = match (this.body)(&mut tx) {
                Ok(out) if tx.commit() => Some(out),
                _ => None,
            };
            if let Some(out) = committed {
                drop(tx);
                this.stm.stats.commit();
                adaptive::after_commit(this.stm);
                return Poll::Ready(Ok(out));
            }
            tx.close_aborted();
            this.stm.stats.abort();
            this_poll += 1;
            if tx.waiting() {
                // Same protocol as the blocking park: register, then
                // revalidate, then suspend — a commit that landed before
                // registration shows up in the revalidation and skips
                // the suspend.
                let stripes = tx.wait_stripes(false);
                let cell = WaitCell::for_waker(cx.waker().clone());
                this.stm.orecs.waiters().register(&stripes, &cell);
                let consistent = tx.revalidate_for_park();
                this.log = Some(tx.into_log());
                if !consistent {
                    this.stm.orecs.waiters().deregister(&stripes, &cell);
                    if this_poll >= MAX_ATTEMPTS_PER_POLL {
                        return this.yield_now(cx);
                    }
                    continue;
                }
                this.stm.stats.park();
                this.registration = Some((cell, stripes));
                return Poll::Pending;
            }
            this.attempts += 1;
            if this.attempts >= this.stm.max_attempts {
                return Poll::Ready(Err(RetriesExhausted {
                    attempts: this.attempts,
                }));
            }
            tx.release_read_locks();
            // `decide`, never `on_abort`: the policy's spin/yield wait
            // tiers must not run on the executor thread (see the module
            // docs) — the per-poll attempt budget stands in for them.
            match this.stm.cm.decide(this.attempts - 1) {
                Decision::Retry => {
                    this.log = Some(tx.into_log());
                    if this_poll >= MAX_ATTEMPTS_PER_POLL {
                        return this.yield_now(cx);
                    }
                }
                Decision::Park => {
                    // Register the *conflict* footprint (reads ∪ writes)
                    // and suspend, exactly like the blocking park — with
                    // the timer watchdog standing in for `park_timeout`
                    // as the missed-wake safety net.
                    let stripes = tx.wait_stripes(true);
                    let cell = WaitCell::for_waker(cx.waker().clone());
                    this.stm.orecs.waiters().register(&stripes, &cell);
                    let consistent = tx.revalidate_for_park();
                    this.log = Some(tx.into_log());
                    if !consistent {
                        this.stm.orecs.waiters().deregister(&stripes, &cell);
                        if this_poll >= MAX_ATTEMPTS_PER_POLL {
                            return this.yield_now(cx);
                        }
                        continue;
                    }
                    this.stm.stats.park();
                    waiter::watchdog(&cell, CONFLICT_PARK_TIMEOUT);
                    this.registration = Some((cell, stripes));
                    return Poll::Pending;
                }
                Decision::GiveUp => {
                    return Poll::Ready(Err(RetriesExhausted {
                        attempts: this.attempts,
                    }));
                }
            }
        }
    }
}

impl<A, F> Drop for RunAsync<'_, A, F> {
    /// Cancel safety: a dropped (timed-out, `select!`-ed away) wait must
    /// not leave its cell on the lists.
    fn drop(&mut self) {
        self.deregister();
    }
}

impl<A, F> fmt::Debug for RunAsync<'_, A, F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RunAsync")
            .field("attempts", &self.attempts)
            .field("parked", &self.registration.is_some())
            .finish()
    }
}
