//! [`StmBuilder`]: per-instance configuration and assembly.

use super::{Algorithm, MvConfig, Stm};
use crate::algo::adaptive::{AdaptiveConfig, AdaptiveState};
use crate::cm::{ContentionManager, ExponentialBackoff};
use crate::epoch::SnapshotRegistry;
use crate::orec::{self, OrecTable};
use crate::recorder::HistoryRecorder;
use crate::stats::{ActiveMode, StmStats};
use crate::wal::DurabilityHook;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

/// Configures and builds an [`Stm`] instance.
///
/// # Examples
///
/// ```
/// use ptm_stm::{Algorithm, CappedAttempts, Stm};
///
/// let stm = Stm::builder(Algorithm::Tl2)
///     .max_attempts(1_000)
///     .orec_stripes(256)
///     .contention_manager(CappedAttempts::new(500))
///     .build();
/// assert!(format!("{stm:?}").contains("max_attempts: 1000"));
/// ```
#[derive(Debug)]
pub struct StmBuilder {
    algorithm: Algorithm,
    max_attempts: u64,
    orec_stripes: usize,
    cm: Box<dyn ContentionManager>,
    recorder: Option<HistoryRecorder>,
    adaptive: AdaptiveConfig,
    mv: MvConfig,
    durability: Option<Arc<dyn DurabilityHook>>,
}

impl StmBuilder {
    /// Starts from the defaults: 10 million attempts, exponential
    /// backoff, 1024 orec stripes, no history recording, default
    /// adaptive tuning.
    pub fn new(algorithm: Algorithm) -> Self {
        StmBuilder {
            algorithm,
            max_attempts: 10_000_000,
            orec_stripes: orec::DEFAULT_STRIPES,
            cm: Box::new(ExponentialBackoff::default()),
            recorder: None,
            adaptive: AdaptiveConfig::default(),
            mv: MvConfig::default(),
            durability: None,
        }
    }

    /// Hard ceiling on attempts per transaction before the engine gives
    /// up (panic from [`Stm::atomically`], error from [`Stm::run`]).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn max_attempts(mut self, n: u64) -> Self {
        assert!(n > 0, "max_attempts must be at least 1");
        self.max_attempts = n;
        self
    }

    /// Number of orec stripes (rounded up to a power of two). More
    /// stripes mean fewer false conflicts; fewer mean less memory.
    /// Ignored by NOrec, which has no orecs.
    pub fn orec_stripes(mut self, stripes: usize) -> Self {
        self.orec_stripes = stripes;
        self
    }

    /// The retry policy consulted between aborted attempts.
    pub fn contention_manager(mut self, cm: impl ContentionManager + 'static) -> Self {
        self.cm = Box::new(cm);
        self
    }

    /// Records every transaction of this instance as a t-operation
    /// history into `recorder`, for cross-checking real concurrent runs
    /// against the `ptm-model` opacity/serializability checkers. Keep a
    /// clone of the recorder to [`HistoryRecorder::drain`] afterwards.
    ///
    /// Recording adds one globally sequenced marker per operation
    /// boundary, so it perturbs timing; leave it off for benchmarks.
    pub fn record_history(mut self, recorder: HistoryRecorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Logs every committed write set that staged a durability payload
    /// ([`Transaction::stage_durable`](crate::Transaction::stage_durable))
    /// through `hook` — typically a [`Wal`](crate::wal::Wal) — from
    /// inside the publish critical section, stamped with the commit
    /// tick. See [`crate::wal`] for the ordering guarantee this buys
    /// and `ptm-server`'s durability layer for the recovery path built
    /// on it. Off by default; instances without a hook pay nothing.
    pub fn durability_hook(mut self, hook: Arc<dyn DurabilityHook>) -> Self {
        self.durability = Some(hook);
        self
    }

    /// Tuning knobs for [`Algorithm::Adaptive`]'s mode controller:
    /// sampling window, switch thresholds, hysteresis, drain budget.
    /// Ignored by the static algorithms.
    pub fn adaptive_config(mut self, cfg: AdaptiveConfig) -> Self {
        self.adaptive = cfg;
        self
    }

    /// Space-budget knobs for [`Algorithm::Mv`]'s version chains (also
    /// in force for [`Algorithm::Adaptive`]'s Mv mode): see
    /// [`MvConfig::max_versions`] for the oldest-snapshot-abort
    /// semantics. Ignored by the single-version algorithms.
    pub fn mv_config(mut self, cfg: MvConfig) -> Self {
        self.mv = cfg;
        self
    }

    /// Builds the instance.
    ///
    /// # Panics
    ///
    /// Panics if the algorithm is [`Algorithm::Adaptive`] and the
    /// [`AdaptiveConfig`] is inconsistent (see its field docs).
    pub fn build(self) -> Stm {
        // NOrec never touches orecs; don't pay ~128 KB of padded words
        // for a table no code path reads.
        let stripes = match self.algorithm {
            Algorithm::Norec => 1,
            Algorithm::Tl2
            | Algorithm::Incremental
            | Algorithm::Tlrw
            | Algorithm::Mv
            | Algorithm::Adaptive => self.orec_stripes,
        };
        let adaptive = match self.algorithm {
            Algorithm::Adaptive => {
                self.adaptive.validate();
                Some(AdaptiveState::new(self.adaptive))
            }
            _ => None,
        };
        // Adaptive may route to Mv at runtime, so it carries the
        // registry from birth — an empty registry is one atomic load on
        // the paths that consult it.
        let snapshots = match self.algorithm {
            Algorithm::Mv | Algorithm::Adaptive => Some(SnapshotRegistry::new()),
            _ => None,
        };
        let stats = Arc::new(StmStats::default());
        // Adaptive starts in its invisible mode, so only the static
        // visible/multi-version algorithms begin life elsewhere.
        stats.set_active_mode(match self.algorithm {
            Algorithm::Tlrw => ActiveMode::Visible,
            Algorithm::Mv => ActiveMode::Multiversion,
            _ => ActiveMode::Invisible,
        });
        if let Some(hook) = &self.durability {
            hook.attach_stats(stats.clone());
        }
        Stm {
            algorithm: self.algorithm,
            clock: AtomicU64::new(0),
            orecs: OrecTable::new(stripes),
            stats,
            max_attempts: self.max_attempts,
            cm: self.cm,
            recorder: self.recorder,
            adaptive,
            snapshots,
            mv: self.mv,
            durability: self.durability,
        }
    }
}
