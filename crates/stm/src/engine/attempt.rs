//! The attempt loop: retry-until-commit, contention-manager
//! consultation, and the adaptive controller's commit-path hook.

use super::{RetriesExhausted, Retry, Stm, Transaction};
use crate::algo::adaptive;
use crate::cm::Decision;
use crate::tvar::{TVar, TxValue};
use crate::txlog::TxLog;

impl Stm {
    /// Runs `body` in a transaction, retrying on conflict until it
    /// commits, and returns its result.
    ///
    /// # Panics
    ///
    /// Panics if the retry budget runs out — `max_attempts` is reached
    /// (default: ten million) or the contention manager gives up. Use
    /// [`Stm::run`] to handle exhaustion as a value instead.
    pub fn atomically<A>(&self, body: impl FnMut(&mut Transaction<'_>) -> Result<A, Retry>) -> A {
        match self.run(body) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// Runs `body` in a transaction, retrying on conflict, and reports
    /// retry-budget exhaustion as an error instead of panicking.
    ///
    /// # Errors
    ///
    /// [`RetriesExhausted`] if `max_attempts` attempts all aborted or the
    /// contention manager returned [`Decision::GiveUp`].
    pub fn run<A>(
        &self,
        mut body: impl FnMut(&mut Transaction<'_>) -> Result<A, Retry>,
    ) -> Result<A, RetriesExhausted> {
        let mut log = TxLog::default();
        let mut attempt: u64 = 0;
        loop {
            let mut tx = Transaction::begin(self, log);
            let committed = match body(&mut tx) {
                Ok(out) if tx.commit() => Some(out),
                _ => None,
            };
            if let Some(out) = committed {
                // Drop before the controller hook: the adaptive sampler
                // may quiesce the instance, which must never wait on the
                // sampling thread's own (finished) transaction.
                drop(tx);
                self.stats.commit();
                adaptive::after_commit(self);
                return Ok(out);
            }
            tx.close_aborted();
            log = tx.into_log();
            self.stats.abort();
            attempt += 1;
            if attempt >= self.max_attempts {
                return Err(RetriesExhausted { attempts: attempt });
            }
            if self.cm.on_abort(attempt - 1) == Decision::GiveUp {
                return Err(RetriesExhausted { attempts: attempt });
            }
        }
    }

    /// Runs `body` once, committing if it succeeds; returns `None` on
    /// conflict instead of retrying.
    pub fn try_once<A>(
        &self,
        body: impl FnOnce(&mut Transaction<'_>) -> Result<A, Retry>,
    ) -> Option<A> {
        let mut tx = Transaction::begin(self, TxLog::default());
        let committed = match body(&mut tx) {
            Ok(out) if tx.commit() => Some(out),
            _ => {
                tx.close_aborted();
                None
            }
        };
        drop(tx);
        match committed {
            Some(out) => {
                self.stats.commit();
                adaptive::after_commit(self);
                Some(out)
            }
            None => {
                self.stats.abort();
                None
            }
        }
    }

    /// Reads a variable outside any transaction (single-variable
    /// snapshot).
    pub fn read_now<T: TxValue>(&self, var: &TVar<T>) -> T {
        var.load()
    }
}
