//! The attempt loop: retry-until-commit, contention-manager
//! consultation, the parking tier (both logical `retry` waits and
//! [`Decision::Park`] conflict escalations), and the adaptive
//! controller's commit-path hook.

use super::{RetriesExhausted, Retry, Stm, Transaction};
use crate::algo::adaptive;
use crate::cm::Decision;
use crate::tvar::{TVar, TxValue};
use crate::txlog::TxLog;
use crate::waiter::{WaitCell, CONFLICT_PARK_TIMEOUT, RETRY_PARK_TIMEOUT};

impl Stm {
    /// Runs `body` in a transaction, retrying on conflict until it
    /// commits, and returns its result.
    ///
    /// # Panics
    ///
    /// Panics if the retry budget runs out — `max_attempts` is reached
    /// (default: ten million) or the contention manager gives up. Use
    /// [`Stm::run`] to handle exhaustion as a value instead.
    pub fn atomically<A>(&self, body: impl FnMut(&mut Transaction<'_>) -> Result<A, Retry>) -> A {
        match self.run(body) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// Runs `body` in a transaction, retrying on conflict, and reports
    /// retry-budget exhaustion as an error instead of panicking.
    ///
    /// # Errors
    ///
    /// [`RetriesExhausted`] if `max_attempts` attempts all aborted or the
    /// contention manager returned [`Decision::GiveUp`].
    pub fn run<A>(
        &self,
        mut body: impl FnMut(&mut Transaction<'_>) -> Result<A, Retry>,
    ) -> Result<A, RetriesExhausted> {
        let mut log = TxLog::default();
        let mut attempt: u64 = 0;
        loop {
            let mut tx = Transaction::begin(self, log);
            let committed = match body(&mut tx) {
                Ok(out) if tx.commit() => Some(out),
                _ => None,
            };
            if let Some(out) = committed {
                // Drop before the controller hook: the adaptive sampler
                // may quiesce the instance, which must never wait on the
                // sampling thread's own (finished) transaction.
                drop(tx);
                self.stats.commit();
                adaptive::after_commit(self);
                return Ok(out);
            }
            tx.close_aborted();
            self.stats.abort();
            if tx.waiting() {
                // A logical wait (`tx.retry()`) is not contention: skip
                // the contention manager and the attempt budget, park on
                // the read footprint, and re-run when a writer overlaps
                // it.
                log = self.park_attempt(tx, false);
                continue;
            }
            attempt += 1;
            if attempt >= self.max_attempts {
                return Err(RetriesExhausted { attempts: attempt });
            }
            // Release visible-read locks *before* the contention manager
            // waits: backoff must not hold stripes other transactions
            // are trying to write.
            tx.release_read_locks();
            match self.cm.on_abort(attempt - 1) {
                Decision::Retry => log = tx.into_log(),
                Decision::Park => log = self.park_attempt(tx, true),
                Decision::GiveUp => return Err(RetriesExhausted { attempts: attempt }),
            }
        }
    }

    /// Parks an aborted attempt on its footprint's waiter lists until an
    /// overlapping commit (or a safety-net timeout) wakes it; returns
    /// the recycled log for the next attempt.
    ///
    /// Ordering is the whole point — register, *then* revalidate, *then*
    /// sleep: a writer that commits after registration finds the cell on
    /// the lists and notifies it; a writer that committed before
    /// registration shows up in the revalidation, which then skips the
    /// sleep. (The SeqCst fences pairing register's tail with
    /// `wake_stripes`' head close the remaining store-buffering window —
    /// see the proof in `crate::waiter`.) The transaction is dropped via
    /// `into_log` *before* sleeping so a parked thread pins no epoch,
    /// holds no Tlrw read locks (released *after* registration — the
    /// lock word itself orders any conflicting commit after our
    /// registration), blocks no adaptive mode switch, and anchors no Mv
    /// snapshot.
    fn park_attempt(&self, tx: Transaction<'_>, conflict: bool) -> TxLog {
        let stripes = tx.wait_stripes(conflict);
        let cell = WaitCell::for_thread();
        self.orecs.waiters().register(&stripes, &cell);
        let consistent = tx.revalidate_for_park();
        let log = tx.into_log();
        if consistent {
            self.stats.park();
            let timeout = if conflict {
                // A conflict park has a weaker wake guarantee (the winner
                // may already have committed and gone), so the safety net
                // is short.
                CONFLICT_PARK_TIMEOUT
            } else {
                RETRY_PARK_TIMEOUT
            };
            if !cell.park(timeout) {
                self.stats.spurious_wake();
            }
        }
        self.orecs.waiters().deregister(&stripes, &cell);
        log
    }

    /// Runs `body` once, committing if it succeeds; returns `None` on
    /// conflict instead of retrying.
    pub fn try_once<A>(
        &self,
        body: impl FnOnce(&mut Transaction<'_>) -> Result<A, Retry>,
    ) -> Option<A> {
        let mut tx = Transaction::begin(self, TxLog::default());
        let committed = match body(&mut tx) {
            Ok(out) if tx.commit() => Some(out),
            _ => {
                tx.close_aborted();
                None
            }
        };
        drop(tx);
        match committed {
            Some(out) => {
                self.stats.commit();
                adaptive::after_commit(self);
                Some(out)
            }
            None => {
                self.stats.abort();
                None
            }
        }
    }

    /// Reads a variable outside any transaction (single-variable
    /// snapshot).
    pub fn read_now<T: TxValue>(&self, var: &TVar<T>) -> T {
        var.load()
    }
}
