//! The transaction engine: six validation algorithms behind one API.
//!
//! * [`Algorithm::Tl2`] — global version clock plus the striped orec
//!   table ([`crate::orec`]): reads validate in O(1) against the snapshot
//!   time with an optimistic word-check/read/re-check and **acquire no
//!   lock**; commit locks the write set's stripes in sorted order,
//!   validates the read set once, and stamps the stripes with a commit
//!   timestamp drawn by one GV4-style pass-on-failure CAS on the clock
//!   (a lost race adopts the winner's tick instead of retrying).
//! * [`Algorithm::Incremental`] — no clock read on the read path; every
//!   t-read re-validates the entire read set by version equality. This is
//!   the paper's invisible-read weak-DAP progressive TM transplanted to
//!   real hardware: quadratic validation work, observable in
//!   [`StmStats::snapshot`] and in wall-clock time.
//! * [`Algorithm::Norec`] — a single global sequence lock and value-based
//!   validation; no per-variable version traffic on commit besides the
//!   value itself.
//! * [`Algorithm::Tlrw`] — TLRW-style **visible reads**: the first read
//!   of a stripe announces a reader on its reader–writer word and holds
//!   that read lock to commit, so reads cost O(1) with **zero
//!   validation** and writers abort on foreign readers. The other side
//!   of the paper's time–space tradeoff, measurable against the three
//!   invisible-read designs above.
//! * [`Algorithm::Mv`] — **multi-version** invisible reads: commits
//!   append timestamped versions to each variable's chain instead of
//!   replacing the value, so a read-only transaction reads the
//!   consistent snapshot named by its start time — zero orec probes,
//!   zero validation, **zero aborts**, under any write storm. The space
//!   the chain costs is reclaimed by the low-watermark collector
//!   ([`crate::epoch`]); the paper's *space* axis, on real threads.
//! * [`Algorithm::Adaptive`] — a mode controller that samples windowed
//!   [`StatsSnapshot`](crate::StatsSnapshot) deltas and moves the live
//!   engine between the Tl2 (invisible), Tlrw (visible), and Mv
//!   (multi-version) hooks through an epoch-quiesced orec-table
//!   reinterpretation; see [`crate::AdaptiveConfig`] for the decision
//!   signals and knobs.
//!
//! The algorithm-specific read/commit/snapshot behaviour lives in the
//! [`crate::algo`] strategy layer (one module per algorithm, three hooks
//! each); this module owns everything generic, split by concern:
//!
//! * [`builder`] — [`StmBuilder`]: configuration and instance assembly;
//! * [`transaction`] — [`Transaction`]: the per-attempt state machine
//!   (operations, poisoning, instrumentation, lock cleanup);
//! * [`attempt`] — the retry loop ([`Stm::run`] / [`Stm::atomically`] /
//!   [`Stm::try_once`]) and contention-manager consultation;
//! * [`twophase`] — the split commit ([`Transaction::prepare_commit`] /
//!   [`Prepared`]) that lets a coordinator hold several instances'
//!   commit locks open and publish them together (the `ptm-server`
//!   cross-shard commit);
//! * this file — [`Stm`] itself, the [`Algorithm`] selector, and the
//!   error types.
//!
//! All modes buffer writes in the shared transaction log
//! ([`crate::txlog`]) and publish them only at commit, so a failed
//! transaction never dirties shared state. Retry behaviour is a pluggable
//! [`ContentionManager`](crate::ContentionManager) chosen through
//! [`StmBuilder`]; past its park threshold (and always for
//! [`Transaction::retry`] logical waits) the loop stops consuming CPU
//! entirely and blocks on the orec table's per-stripe waiter lists until
//! a committing writer overlaps the attempt's footprint. The same lists
//! back [`Stm::run_async`] ([`run_async`]), which suspends a future
//! instead of a thread.

mod attempt;
mod builder;
mod run_async;
#[cfg(test)]
mod tests;
mod transaction;
mod twophase;

pub use builder::StmBuilder;
pub use run_async::RunAsync;
pub use transaction::Transaction;
pub use twophase::Prepared;

use crate::algo::adaptive::{AdaptiveState, Mode};
use crate::cm::ContentionManager;
use crate::epoch::SnapshotRegistry;
use crate::orec::OrecTable;
use crate::recorder::HistoryRecorder;
use crate::stats::StmStats;
use crate::wal::DurabilityHook;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The validation algorithm an [`Stm`] instance runs.
///
/// Five static design points span the paper's time–space tradeoff —
/// [`Algorithm::Mv`] holds down the *space* end (keep versions, never
/// abort a reader) — and [`Algorithm::Adaptive`] moves between the two
/// single-version extremes at runtime.
///
/// # Examples
///
/// ```
/// use ptm_stm::{Algorithm, Stm, TVar};
///
/// let v = TVar::new(0u64);
/// for algo in [
///     Algorithm::Tl2,
///     Algorithm::Incremental,
///     Algorithm::Norec,
///     Algorithm::Tlrw,
///     Algorithm::Mv,
///     Algorithm::Adaptive,
/// ] {
///     let stm = Stm::new(algo);
///     stm.atomically(|tx| tx.modify(&v, |x| x + 1));
/// }
/// assert_eq!(v.load(), 6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Global version clock, O(1) lock-free read validation (default).
    Tl2,
    /// Full read-set re-validation on every read (paper's tight upper
    /// bound for weak-DAP + invisible reads; Θ(m²) total read cost).
    Incremental,
    /// Global sequence lock with value-based validation.
    Norec,
    /// TLRW-style visible reads (Dice–Shavit): per-stripe reader–writer
    /// lock words, O(1) reads with **no validation at all** — paid for
    /// with one shared-memory RMW inside every first read of a stripe,
    /// and with writers aborting whenever foreign readers are present.
    /// Progressive but *not* strongly progressive (two read-to-write
    /// upgraders on one stripe abort each other). The native twin of
    /// `ptm-core`'s simulated `TlrwTm`.
    Tlrw,
    /// Multi-version invisible reads (Perelman–Fan–Keidar style): every
    /// read resolves against the transaction's start-time snapshot by
    /// walking the variable's version chain, so **read-only transactions
    /// never probe an orec, never validate, and never abort** — they pay
    /// in *space* (retained versions) instead of time, the axis the
    /// paper's Theorem 3 trades against. Updating transactions commit
    /// through the usual lock–validate–stamp path but *append* a version
    /// rather than replacing it; superseded versions are reclaimed by
    /// the low-watermark collector once no live snapshot can reach them
    /// (watch `snapshot_reads` / `versions_trimmed` / `max_chain_len` in
    /// [`StatsSnapshot`](crate::StatsSnapshot)). The native twin of
    /// `ptm-core`'s simulated `MvTm` — with chains trimmed by liveness
    /// instead of a fixed ring, so snapshots are never evicted.
    Mv,
    /// Workload-driven switching across **both** paper axes: a
    /// controller samples stats deltas over commit windows (read/write
    /// ratio, abort rate, validation probes per read, reader conflicts,
    /// scan length, eviction pressure) and moves the live engine between
    /// the invisible-read (Tl2), visible-read (Tlrw), and multi-version
    /// (Mv) hooks, reinterpreting the orec table between its word
    /// formats through an epoch-quiesced transition — in-flight
    /// transactions always finish under the mode they started in.
    /// Starts invisible; tune with [`StmBuilder::adaptive_config`],
    /// observe through [`StatsSnapshot`](crate::StatsSnapshot)'s
    /// `mode_transitions` / `active_mode` and [`Stm::active_mode`].
    Adaptive,
}

impl Algorithm {
    /// Every algorithm, for exhaustive test/bench matrices.
    pub const ALL: [Algorithm; 6] = [
        Algorithm::Tl2,
        Algorithm::Incremental,
        Algorithm::Norec,
        Algorithm::Tlrw,
        Algorithm::Mv,
        Algorithm::Adaptive,
    ];
}

/// Space-budget knobs for [`Algorithm::Mv`]'s version chains, set
/// through [`StmBuilder::mv_config`]; also governs the Mv mode of
/// [`Algorithm::Adaptive`].
///
/// # Examples
///
/// ```
/// use ptm_stm::{Algorithm, MvConfig, Stm};
///
/// let stm = Stm::builder(Algorithm::Mv)
///     .mv_config(MvConfig {
///         max_versions: Some(8),
///     })
///     .build();
/// assert_eq!(stm.algorithm(), Algorithm::Mv);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MvConfig {
    /// Hard cap on versions retained per variable. `None` (the default)
    /// trims purely by liveness: the snapshot-registry low watermark,
    /// under which a retained snapshot is never evicted — but a camped
    /// reader holds every later version alive on every chain it shadows.
    /// `Some(k)` bounds each chain to `k` versions by evicting the
    /// oldest suffix at commit (the simulator's ring semantics as a
    /// config point): a snapshot older than the cut **aborts at its next
    /// read** of that chain and retries on a fresh snapshot
    /// (`eviction_aborts` in [`StatsSnapshot`](crate::StatsSnapshot)),
    /// so a pathological camper can cost retries, never unbounded
    /// memory.
    pub max_versions: Option<usize>,
}

/// The transaction aborted and should be retried; returned by
/// transactional operations so user code can propagate it with `?`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Retry;

impl fmt::Display for Retry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "transaction conflict; retry")
    }
}

impl std::error::Error for Retry {}

/// The retry budget ran out before the transaction committed: either the
/// instance's `max_attempts` was reached or its contention manager gave
/// up. Returned by [`Stm::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetriesExhausted {
    /// Attempts consumed before giving up.
    pub attempts: u64,
}

impl fmt::Display for RetriesExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "transaction failed to commit after {} attempts",
            self.attempts
        )
    }
}

impl std::error::Error for RetriesExhausted {}

/// Software transactional memory instance.
///
/// All transactions created from one `Stm` coordinate through its clock /
/// sequence lock and its orec table; variables
/// ([`TVar`](crate::TVar)) are free-standing and may be used with any
/// `Stm`, but must not be shared between instances running concurrently.
pub struct Stm {
    pub(crate) algorithm: Algorithm,
    /// TL2/Incremental/Mv: version clock. NOrec: sequence lock (odd =
    /// busy). Tlrw: unused (consistency comes from held read locks).
    pub(crate) clock: AtomicU64,
    /// Striped metadata words: versioned locks (TL2/Incremental/Mv) or
    /// reader–writer locks (Tlrw); unused by NOrec.
    pub(crate) orecs: OrecTable,
    pub(crate) stats: Arc<StmStats>,
    pub(super) max_attempts: u64,
    pub(super) cm: Box<dyn ContentionManager>,
    /// Present when this instance records t-operation histories.
    pub(super) recorder: Option<HistoryRecorder>,
    /// Present on `Algorithm::Adaptive` instances: the live mode, the
    /// per-mode active-transaction counters, and the window controller.
    pub(crate) adaptive: Option<AdaptiveState>,
    /// Present on `Algorithm::Mv` and `Algorithm::Adaptive` instances:
    /// the active snapshots whose minimum is the version-chain low
    /// watermark (and its cached copy, see [`crate::epoch`]).
    pub(crate) snapshots: Option<SnapshotRegistry>,
    /// Space-budget knobs for the Mv hooks ([`StmBuilder::mv_config`]).
    pub(crate) mv: MvConfig,
    /// Present when this instance logs committed write sets for
    /// durability ([`StmBuilder::durability_hook`]): called inside each
    /// publish critical section with the commit tick (see
    /// [`crate::wal`] for the ordering argument).
    pub(crate) durability: Option<Arc<dyn DurabilityHook>>,
}

impl fmt::Debug for Stm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Stm")
            .field("algorithm", &self.algorithm)
            .field("active_mode", &self.active_mode())
            .field("clock", &self.clock.load(Ordering::Relaxed))
            .field("orec_stripes", &self.orecs.len())
            .field("max_attempts", &self.max_attempts)
            .field("contention_manager", &self.cm)
            .field("recording", &self.recorder.is_some())
            .field("durable", &self.durability.is_some())
            .finish()
    }
}

impl Stm {
    /// Creates an instance running the given algorithm with default
    /// settings (see [`StmBuilder::new`]).
    pub fn new(algorithm: Algorithm) -> Self {
        StmBuilder::new(algorithm).build()
    }

    /// Starts configuring an instance.
    pub fn builder(algorithm: Algorithm) -> StmBuilder {
        StmBuilder::new(algorithm)
    }

    /// TL2 instance (the default algorithm).
    pub fn tl2() -> Self {
        Stm::new(Algorithm::Tl2)
    }

    /// Incremental-validation instance.
    pub fn incremental() -> Self {
        Stm::new(Algorithm::Incremental)
    }

    /// NOrec instance.
    pub fn norec() -> Self {
        Stm::new(Algorithm::Norec)
    }

    /// Tlrw (visible-reads) instance.
    pub fn tlrw() -> Self {
        Stm::new(Algorithm::Tlrw)
    }

    /// Mv (multi-version) instance: abort-free read-only transactions.
    pub fn mv() -> Self {
        Stm::new(Algorithm::Mv)
    }

    /// Adaptive instance (workload-driven Tl2 ⇄ Tlrw switching) with
    /// default tuning.
    pub fn adaptive() -> Self {
        Stm::new(Algorithm::Adaptive)
    }

    /// The algorithm this instance runs.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The read/commit machinery currently in force: the algorithm
    /// itself for static instances; for [`Algorithm::Adaptive`], the
    /// live mode — [`Algorithm::Tl2`] (invisible), [`Algorithm::Tlrw`]
    /// (visible), or [`Algorithm::Mv`] (multi-version).
    ///
    /// # Examples
    ///
    /// ```
    /// use ptm_stm::{Algorithm, Stm};
    ///
    /// assert_eq!(Stm::norec().active_mode(), Algorithm::Norec);
    /// assert_eq!(Stm::adaptive().active_mode(), Algorithm::Tl2);
    /// ```
    pub fn active_mode(&self) -> Algorithm {
        match &self.adaptive {
            None => self.algorithm,
            Some(ad) => match ad.mode() {
                Mode::Invisible => Algorithm::Tl2,
                Mode::Visible => Algorithm::Tlrw,
                Mode::Multiversion => Algorithm::Mv,
            },
        }
    }

    /// The per-transaction attempt ceiling.
    pub fn max_attempts(&self) -> u64 {
        self.max_attempts
    }

    /// Progress statistics for this instance.
    pub fn stats(&self) -> &StmStats {
        &self.stats
    }

    /// The history recorder attached via [`StmBuilder::record_history`],
    /// if any.
    pub fn recorder(&self) -> Option<&HistoryRecorder> {
        self.recorder.as_ref()
    }

    /// Wakes every waiter parked on one of `stripes` (a committing
    /// writer's write set): the commit-side half of the parking
    /// protocol. Cheap when nobody waits — one fence and one counter
    /// load.
    pub(crate) fn wake_stripes(&self, stripes: &[usize]) {
        let n = self.orecs.waiters().wake_stripes(stripes);
        self.stats.woke(n);
    }

    /// Wakes every parked waiter, whatever stripe it waits on: NOrec's
    /// commit path, whose single sequence lock makes every commit
    /// overlap every footprint.
    pub(crate) fn wake_all_stripes(&self) {
        let n = self.orecs.waiters().wake_all();
        self.stats.woke(n);
    }
}
