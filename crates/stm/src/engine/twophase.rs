//! Two-phase commit surface: [`Transaction::prepare_commit`] splits a
//! commit into its *prepare* half (acquire the commit locks, validate —
//! everything that can fail) and its *publish* half (write back and
//! release — infallible), so a coordinator can hold several instances'
//! prepares open and publish them together.
//!
//! This is what makes a **cross-instance atomic commit** possible
//! without any new global metadata: each [`Stm`] keeps its own clock and
//! orec table, and a coordinator that prepares every instance before
//! publishing any reuses each algorithm's single-instance commit
//! protocol unchanged — the stripe locks (or NOrec's sequence lock) a
//! prepare acquires are exactly the locks the one-shot commit would have
//! held across its own publish, just held a little longer.
//!
//! ## Why a multi-instance commit is never observed torn
//!
//! An updating coordinator holds **every** instance's commit locks from
//! before its first publish until after that instance's own publish. A
//! reader that could observe instance *i* post-publish and instance *j*
//! pre-publish must therefore get its reads of *j* past metadata the
//! coordinator still owns:
//!
//! * **Tl2 / Incremental / Mv** — the *j*-stripes are either still
//!   locked (read/validation fails on the lock bit) or already
//!   restamped past the reader's snapshot (version check fails). A
//!   reader that validates *every* instance after reading all of them
//!   — which is exactly what a read-only [`prepare_commit`] does —
//!   cannot pass both checks on a torn cut.
//! * **NOrec** — the *j*-instance's sequence lock is odd (held) until
//!   its publish, so value validation spins until the publish lands
//!   and then sees the changed values.
//! * **Tlrw** — visible read locks exclude the coordinator's prepare
//!   physically: a reader holding any conflicting stripe's read lock
//!   blocks the whole multi-instance commit from reaching its first
//!   publish, so there is no window to tear.
//!
//! Deadlock freedom is the coordinator's obligation: prepare instances
//! in one global order (`ptm-server` uses ascending shard index). The
//! stripe-locking prepares are try-lock fail-fast — they never wait —
//! and NOrec's sequence-lock spin only waits on a holder that either
//! publishes promptly or aborts; with one prepare order there is no
//! cycle to wait on.
//!
//! [`prepare_commit`]: Transaction::prepare_commit

use super::{Algorithm, Retry, Stm, Transaction};
use crate::algo::{adaptive, mv, norec, tlrw, versioned};
use crate::txlog::TxLog;
use ptm_sim::{TOpDesc, TOpResult};

/// A successfully prepared commit: locks held, validation passed, nothing
/// published. Consume it with [`Transaction::commit_prepared`] (publish)
/// or [`Transaction::abort_prepared`] (undo); dropping it without either
/// **leaks the held commit locks** and will wedge the instance — the
/// type is `#[must_use]` to make that hard to do by accident.
#[must_use = "a prepared commit holds the instance's commit locks; publish or abort it"]
#[derive(Debug)]
pub struct Prepared {
    plan: Plan,
    /// Identity of the instance that prepared this commit, for the
    /// debug-mode guard against crossing `Prepared` tokens between
    /// shards. Never dereferenced.
    stm: *const Stm,
}

/// What the publish/abort half must do, per algorithm family.
#[derive(Debug)]
enum Plan {
    /// No writes: the prepare-time validation was the serialization
    /// point; nothing is locked and nothing needs publishing.
    ReadOnly,
    /// Versioned stripe locks held (Tl2/Incremental when `mv` is false,
    /// Mv when true — Mv publishes by appending versions instead of
    /// swapping values).
    Versioned {
        stripes: Vec<usize>,
        held: Vec<(usize, u64)>,
        mv: bool,
    },
    /// Tlrw write locks held; `held` entries are `(stripe, was_read)`.
    Tlrw {
        stripes: Vec<usize>,
        held: Vec<(usize, u64)>,
    },
    /// The instance's sequence lock is held (clock parked at the odd
    /// `rv + 1`).
    Norec,
}

impl Stm {
    /// Begins a transaction whose attempt loop the *caller* drives —
    /// the manual counterpart of [`Stm::atomically`], for coordinators
    /// that need to hold the commit open across instances (see
    /// [`Transaction::prepare_commit`]).
    ///
    /// The caller owns the outcome: finish with
    /// [`Transaction::prepare_commit`] +
    /// [`Transaction::commit_prepared`] / [`Transaction::abort_prepared`],
    /// or discard with [`Transaction::rollback`]. There is no automatic
    /// retry — on [`Retry`] build a fresh transaction and re-run the
    /// reads/writes.
    ///
    /// # Examples
    ///
    /// ```
    /// use ptm_stm::{Stm, TVar};
    ///
    /// let stm = Stm::tl2();
    /// let v = TVar::new(1u64);
    /// let mut tx = stm.transaction();
    /// let seen = tx.read(&v).unwrap();
    /// tx.write(&v, seen + 1).unwrap();
    /// let prepared = tx.prepare_commit().unwrap();
    /// tx.commit_prepared(prepared);
    /// assert_eq!(v.load(), 2);
    /// ```
    pub fn transaction(&self) -> Transaction<'_> {
        Transaction::begin(self, TxLog::default())
    }
}

impl Transaction<'_> {
    /// First commit half: acquire this attempt's commit locks and
    /// validate its read set, publishing nothing. On `Ok` the attempt
    /// holds whatever its algorithm's commit would hold across the write
    /// back (write-stripe locks, the sequence lock, Tlrw's still-held
    /// read locks) and *cannot fail anymore* — the returned [`Prepared`]
    /// must be resolved promptly with [`Transaction::commit_prepared`]
    /// or [`Transaction::abort_prepared`], since other transactions
    /// conflict against the held locks in the meantime.
    ///
    /// A read-only attempt acquires nothing but **revalidates its whole
    /// read set** (where the algorithm has anything to validate) — that
    /// re-check at prepare time is what lets a coordinator rule out torn
    /// cuts across instances (see the module docs).
    ///
    /// # Errors
    ///
    /// [`Retry`] if the locks could not be acquired or validation found
    /// a conflicting commit. The attempt is poisoned and its acquired
    /// locks are already rolled back; drop it or [`Transaction::rollback`]
    /// it and start over.
    pub fn prepare_commit(&mut self) -> Result<Prepared, Retry> {
        if self.poisoned {
            return Err(Retry);
        }
        self.ensure_started();
        self.rec_invoke(TOpDesc::TryCommit);
        match self.prepare_raw() {
            Some(plan) => Ok(Prepared {
                plan,
                stm: self.stm as *const Stm,
            }),
            None => {
                // Mirror a failed `commit`: the attempt is dead, its
                // history marker closes aborted, and the failure counts.
                self.rec_respond(TOpDesc::TryCommit, TOpResult::Aborted);
                self.poisoned = true;
                self.release_read_locks();
                self.stm.stats.abort();
                Err(Retry)
            }
        }
    }

    /// The per-algorithm prepare dispatch; `None` means the attempt
    /// aborted with every acquired lock already rolled back.
    fn prepare_raw(&mut self) -> Option<Plan> {
        if self.log.writes.is_empty() {
            let ok = match self.mode {
                Algorithm::Tl2 | Algorithm::Incremental => versioned::validate(self, None).is_ok(),
                Algorithm::Mv => mv::validate(self, &[]).is_ok(),
                Algorithm::Norec => match norec::validate(self) {
                    Ok(t) => {
                        self.rv = t;
                        true
                    }
                    Err(Retry) => false,
                },
                // Visible reads still hold their stripe locks: no writer
                // can have committed past them. (Unpinned Adaptive has
                // read nothing.)
                Algorithm::Tlrw | Algorithm::Adaptive => true,
            };
            return ok.then_some(Plan::ReadOnly);
        }
        let mut stripes: Vec<usize> = self
            .log
            .writes
            .iter()
            .map(|w| self.stm.orecs.stripe_of(w.id))
            .collect();
        stripes.sort_unstable();
        stripes.dedup();
        let mut held = Vec::with_capacity(stripes.len());
        match self.mode {
            Algorithm::Tl2 | Algorithm::Incremental => {
                versioned::prepare_with(self, &stripes, &mut held).then_some(Plan::Versioned {
                    stripes,
                    held,
                    mv: false,
                })
            }
            Algorithm::Mv => {
                mv::prepare_with(self, &stripes, &mut held).then_some(Plan::Versioned {
                    stripes,
                    held,
                    mv: true,
                })
            }
            Algorithm::Tlrw => tlrw::prepare_with(self, &stripes, &mut held)
                .then_some(Plan::Tlrw { stripes, held }),
            Algorithm::Norec => norec::acquire_seqlock(self).then_some(Plan::Norec),
            Algorithm::Adaptive => unreachable!("adaptive begin pins Tl2, Tlrw, or Mv as the mode"),
        }
    }

    /// Second commit half: publish the write set under the locks
    /// `prepared` holds, release everything, and retire the transaction
    /// as committed. Infallible — [`Transaction::prepare_commit`]
    /// already decided the outcome.
    ///
    /// # Panics
    ///
    /// Debug builds panic if `prepared` came from a different [`Stm`]
    /// instance's transaction.
    pub fn commit_prepared(mut self, prepared: Prepared) {
        debug_assert!(
            std::ptr::eq(prepared.stm, self.stm),
            "Prepared token crossed between Stm instances"
        );
        match prepared.plan {
            Plan::ReadOnly => {}
            Plan::Versioned { stripes, held, mv } => {
                if mv {
                    mv::publish_with(&mut self, &stripes, &held);
                } else {
                    versioned::publish_with(&mut self, &stripes, &held);
                }
            }
            Plan::Tlrw { stripes, held } => tlrw::publish_with(&mut self, &stripes, &held),
            Plan::Norec => norec::publish_locked(&mut self),
        }
        self.release_read_locks();
        self.rec_respond(TOpDesc::TryCommit, TOpResult::Committed);
        let stm = self.stm;
        // Drop before the controller hook, as in the attempt loop: the
        // adaptive sampler may quiesce the instance, which must never
        // wait on this (finished) transaction.
        drop(self);
        stm.stats.commit();
        adaptive::after_commit(stm);
    }

    /// Abandons a prepared commit: every lock `prepared` holds is
    /// released to its pre-prepare state — other transactions observe
    /// nothing — and the attempt retires as aborted. A coordinator calls
    /// this on instances that prepared successfully when a later
    /// instance's prepare failed.
    ///
    /// # Panics
    ///
    /// Debug builds panic if `prepared` came from a different [`Stm`]
    /// instance's transaction.
    pub fn abort_prepared(mut self, prepared: Prepared) {
        debug_assert!(
            std::ptr::eq(prepared.stm, self.stm),
            "Prepared token crossed between Stm instances"
        );
        match prepared.plan {
            Plan::ReadOnly => {}
            Plan::Versioned { held, .. } => versioned::release(&self, &held, None),
            Plan::Tlrw { held, .. } => tlrw::rollback(&mut self, &held),
            Plan::Norec => norec::release_seqlock(&self),
        }
        self.release_read_locks();
        self.rec_respond(TOpDesc::TryCommit, TOpResult::Aborted);
        let stm = self.stm;
        drop(self);
        stm.stats.abort();
    }

    /// Abandons an unprepared transaction: nothing was published, so
    /// this only closes the attempt (read locks released, history marker
    /// closed aborted, abort counted). Equivalent to dropping it, plus
    /// the bookkeeping the attempt loop would have done.
    pub fn rollback(mut self) {
        self.close_aborted();
        let stm = self.stm;
        drop(self);
        stm.stats.abort();
    }
}
