//! [`Transaction`]: the per-attempt state machine — operations,
//! poisoning, history-marker placement, epoch pinning, and lock cleanup
//! on every exit path.

use super::{Algorithm, Retry, Stm};
use crate::algo;
use crate::algo::adaptive::{self, Mode};
use crate::epoch;
use crate::orec;
use crate::recorder::{word_of, HistoryRecorder, RecTx};
use crate::stats::OpTally;
use crate::tvar::{TVar, TxValue};
use crate::txlog::TxLog;
use crate::wal::DurableTicket;
use ptm_sim::{TOpDesc, TOpResult};
use std::fmt;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// An in-flight transaction; created by [`Stm::atomically`].
pub struct Transaction<'s> {
    pub(crate) stm: &'s Stm,
    /// Snapshot time (TL2/Mv: clock at begin; NOrec: sequence-lock
    /// value; Incremental/Tlrw: unused). The NOrec read path advances it.
    pub(crate) rv: u64,
    started: bool,
    /// Set when an operation returned [`Retry`]: the attempt is doomed
    /// (and t-complete in any recorded history), so every later operation
    /// short-circuits to `Retry` and commit refuses. User code that
    /// swallows a `Retry` instead of propagating it therefore cannot
    /// commit an attempt the engine already aborted. (`pub(super)` so the
    /// two-phase commit path can refuse a doomed attempt and doom one
    /// whose prepare failed.)
    pub(super) poisoned: bool,
    /// Set by [`Transaction::retry`]: the attempt aborted because the
    /// *data* said wait, not because a conflict said hurry. The attempt
    /// loop parks such attempts on their read footprint's waiter lists
    /// instead of consulting the contention manager (a logical wait is
    /// not contention — it must not consume backoff or attempt budget).
    waiting: bool,
    pub(crate) log: TxLog,
    /// The concrete hook set this attempt runs: the instance's algorithm
    /// for static instances; for `Algorithm::Adaptive`, the begin hook
    /// overwrites it with the pinned mode (`Tl2` or `Tlrw`), so the
    /// per-operation dispatch costs one match — no double indirection —
    /// and stays on the pinned hooks even if the controller switches the
    /// instance mid-flight.
    pub(crate) mode: Algorithm,
    /// The adaptive mode this attempt registered in (`Algorithm::
    /// Adaptive` only): names the active counter to release on drop.
    pub(crate) pinned: Option<Mode>,
    /// The published snapshot slot of an `Algorithm::Mv` attempt: keeps
    /// the low-watermark collector from trimming versions this
    /// transaction's snapshot can still reach. Withdrawn on drop.
    pub(crate) snap: Option<epoch::SnapshotGuard>,
    /// History-recording state for this attempt, when the instance has a
    /// recorder attached.
    rec: Option<RecTx>,
    /// Per-attempt operation counters (plain, non-atomic): bumped on the
    /// hot path, folded into the instance's sharded [`StmStats`] exactly
    /// once when this attempt resolves (the `Drop` below) — so a t-read
    /// costs zero shared RMWs of instrumentation.
    ///
    /// [`StmStats`]: crate::stats::StmStats
    pub(crate) tally: OpTally,
    /// The durability payload staged by [`Transaction::stage_durable`]
    /// and the ticket its LSN is delivered through; consumed by the
    /// publish critical section via [`Transaction::durability_record`].
    /// `None` on instances without a durability hook and on attempts
    /// that staged nothing.
    staged: Option<(Arc<[u8]>, DurableTicket)>,
    /// Clock sample taken before the first operation when a durability
    /// hook is attached: the snapshot watermark for algorithms whose
    /// `rv` does not track the clock (Incremental, Tlrw) — see
    /// [`Transaction::durable_watermark`].
    wm0: u64,
    /// Epoch pin: keeps every pointer this transaction may dereference
    /// alive for its whole lifetime (also makes `Transaction: !Send`).
    pub(crate) pin: epoch::Guard,
}

impl Drop for Transaction<'_> {
    /// Last-resort release of visible-read locks: commit and the abort
    /// paths release them eagerly, but a panicking body (or a dropped
    /// `try_once` attempt) must not leave reader counts behind — a leaked
    /// read lock would starve every later writer on the stripe. Also
    /// deregisters the attempt from its pinned mode's active counter
    /// (adaptive instances), on which a pending mode switch may be
    /// waiting; the snapshot slot (`snap`, Mv instances) is withdrawn by
    /// its own field drop right after this body. Also flushes the
    /// attempt's operation tallies into the shared counters — the attempt
    /// loop drops the transaction *before* sampling stats (commit bump,
    /// adaptive window check), so snapshots taken at those points include
    /// this attempt's operations.
    fn drop(&mut self) {
        self.release_read_locks();
        adaptive::release_slot(self);
        self.stm.stats.flush(&self.tally);
    }
}

impl fmt::Debug for Transaction<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Transaction")
            .field("rv", &self.rv)
            .field("poisoned", &self.poisoned)
            .field("log", &self.log)
            .finish()
    }
}

impl<'s> Transaction<'s> {
    pub(super) fn begin(stm: &'s Stm, log: TxLog) -> Self {
        Transaction {
            stm,
            rv: 0,
            started: false,
            poisoned: false,
            waiting: false,
            log,
            mode: stm.algorithm,
            pinned: None,
            snap: None,
            rec: stm.recorder.as_ref().map(HistoryRecorder::begin_tx),
            tally: OpTally::default(),
            staged: None,
            wm0: 0,
            pin: epoch::pin(),
        }
    }

    /// Recovers the log for reuse by the next attempt (capacity is kept,
    /// entries are cleared), releasing any read locks the aborted
    /// attempt still holds.
    pub(super) fn into_log(mut self) -> TxLog {
        self.release_read_locks();
        let mut log = std::mem::take(&mut self.log);
        log.reset();
        log
    }

    /// Undoes every visible-read lock this attempt still holds (no-op
    /// under the invisible-read algorithms, whose `rw_reads` stays
    /// empty). Arithmetic release: transient foreign increments survive.
    pub(crate) fn release_read_locks(&mut self) {
        for stripe in self.log.rw_drain() {
            self.stm
                .orecs
                .word(stripe)
                .fetch_sub(orec::RW_READER, Ordering::AcqRel);
        }
    }

    /// Lazily samples the snapshot time (and, for adaptive instances,
    /// pins the mode) at the first operation.
    pub(super) fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        // Durable instances sample the clock before the first operation:
        // `wm0` is a sound snapshot watermark even for the algorithms
        // whose own `rv` never tracks the clock (see
        // `durable_watermark`). Gated so non-durable instances pay no
        // extra clock traffic.
        if self.stm.durability.is_some() {
            self.wm0 = self.stm.clock.load(Ordering::Acquire);
        }
        algo::begin(self);
        self.started = true;
    }

    /// Records an invocation marker (no-op without a recorder).
    pub(super) fn rec_invoke(&mut self, op: TOpDesc) {
        if let Some(rec) = self.rec.as_mut() {
            rec.invoke(op);
            self.tally.recorded(1);
        }
    }

    /// Records a response marker (no-op without a recorder).
    pub(super) fn rec_respond(&mut self, op: TOpDesc, res: TOpResult) {
        if let Some(rec) = self.rec.as_mut() {
            rec.respond(op, res);
            self.tally.recorded(1);
        }
    }

    /// Closes an abandoned attempt in the recorded history with a
    /// `tryC -> A_k` pair: a user body that returned its own error never
    /// reaches commit, but the history needs every transaction
    /// t-complete before its process starts the next one.
    pub(super) fn close_aborted(&mut self) {
        if self.rec.as_ref().is_some_and(RecTx::needs_close) {
            self.rec_invoke(TOpDesc::TryCommit);
            self.rec_respond(TOpDesc::TryCommit, TOpResult::Aborted);
        }
    }

    /// Reads a variable.
    ///
    /// # Errors
    ///
    /// [`Retry`] if a concurrent commit made a consistent snapshot
    /// impossible, or if this attempt already returned [`Retry`] once;
    /// propagate it with `?`.
    pub fn read<T: TxValue>(&mut self, var: &TVar<T>) -> Result<T, Retry> {
        if self.poisoned {
            return Err(Retry);
        }
        self.ensure_started();
        self.tally.read();
        let op = self.rec.as_ref().map(|r| TOpDesc::Read(r.object_of(var)));
        if let Some(op) = op {
            self.rec_invoke(op);
        }
        let out = self.read_raw(var);
        if let Some(op) = op {
            match &out {
                Ok(v) => self.rec_respond(op, TOpResult::Value(word_of(v))),
                Err(Retry) => self.rec_respond(op, TOpResult::Aborted),
            }
        }
        if out.is_err() {
            self.poisoned = true;
        }
        out
    }

    /// The algorithm-specific read path (the [`crate::algo`] read hook),
    /// without instrumentation.
    fn read_raw<T: TxValue>(&mut self, var: &TVar<T>) -> Result<T, Retry> {
        if let Some(w) = self.log.lookup_write(var.id()) {
            let v = w.value.downcast_ref::<T>().expect("write-set type");
            return Ok(v.clone());
        }
        algo::read(self, var)
    }

    /// Reads, applies `f`, and writes back — the read-modify-write
    /// shorthand.
    ///
    /// # Errors
    ///
    /// [`Retry`] if the underlying read conflicts.
    ///
    /// # Examples
    ///
    /// ```
    /// use ptm_stm::{Stm, TVar};
    ///
    /// let stm = Stm::tl2();
    /// let v = TVar::new(10u64);
    /// stm.atomically(|tx| tx.modify(&v, |x| x * 2));
    /// assert_eq!(v.load(), 20);
    /// ```
    pub fn modify<T: TxValue>(
        &mut self,
        var: &TVar<T>,
        f: impl FnOnce(T) -> T,
    ) -> Result<(), Retry> {
        let v = self.read(var)?;
        self.write(var, f(v))
    }

    /// Buffers a write; visible to this transaction's later reads and
    /// published at commit.
    ///
    /// # Errors
    ///
    /// [`Retry`] if this attempt already returned [`Retry`] once
    /// (buffering itself never conflicts).
    pub fn write<T: TxValue>(&mut self, var: &TVar<T>, value: T) -> Result<(), Retry> {
        if self.poisoned {
            return Err(Retry);
        }
        self.ensure_started();
        self.tally.write();
        let op = self
            .rec
            .as_ref()
            .map(|r| TOpDesc::Write(r.object_of(var), word_of(&value)));
        if let Some(op) = op {
            self.rec_invoke(op);
        }
        self.log
            .buffer_write(var.id(), var.as_dyn(), Box::new(value));
        if let Some(op) = op {
            self.rec_respond(op, TOpResult::Ok);
        }
        Ok(())
    }

    /// Stages the durability payload this attempt will log if it
    /// commits: the publish critical section hands `payload` to the
    /// instance's [`DurabilityHook`](crate::wal::DurabilityHook),
    /// stamped with the commit tick, and delivers the resulting LSN
    /// through `ticket` — the caller then makes the commit durable with
    /// [`Wal::wait_durable`](crate::wal::Wal::wait_durable) before
    /// acknowledging it.
    ///
    /// `Arc<[u8]>` so a retried transaction restages the same encoded
    /// bytes without re-encoding; staging again replaces the previous
    /// payload. No-op on instances without a durability hook, and on
    /// attempts that end up read-only or aborted (the ticket then stays
    /// unfilled).
    pub fn stage_durable(&mut self, payload: Arc<[u8]>, ticket: &DurableTicket) {
        if self.stm.durability.is_some() {
            self.staged = Some((payload, ticket.clone()));
        }
    }

    /// Whether a durability payload is staged — the algorithms whose
    /// commit path never draws a clock tick (Tlrw) consult this to draw
    /// one only when there is something to stamp.
    pub(crate) fn has_staged(&self) -> bool {
        self.staged.is_some()
    }

    /// The publish-side half of [`Transaction::stage_durable`]: logs the
    /// staged payload under `stamp` (the commit tick the algorithm just
    /// drew) and fills the ticket. Called by each algorithm's publish
    /// function *inside* the critical section, before the write set
    /// becomes reader-visible — the placement the log-order guarantee
    /// in [`crate::wal`] rests on. Memory-only (group commit fsyncs
    /// later), so the critical section stays I/O-free.
    pub(crate) fn durability_record(&mut self, stamp: u64) {
        if let Some((payload, ticket)) = self.staged.take() {
            let hook = self
                .stm
                .durability
                .as_ref()
                .expect("staged payload implies a durability hook");
            ticket.set(hook.record(stamp, &payload));
        }
    }

    /// A clock watermark `w` such that this attempt's snapshot contains
    /// **every** committed transaction whose log record carries a stamp
    /// `<= w` — what a consistent point-in-time snapshot of the value
    /// layer should advertise, so recovery replays exactly the log
    /// records stamped after it.
    ///
    /// Per algorithm: Tl2 and Mv read at their begin-time clock sample
    /// (`rv` — exact); NOrec's `rv` is the sequence-lock value its last
    /// validation proved current, and commits stamp `rv + 2` (exact);
    /// Incremental and Tlrw have no snapshot clock, so this falls back
    /// to `wm0`, the clock sampled before the attempt's first operation
    /// — a *lower* bound: any commit not contained in the attempt's
    /// reads drew its stamp after them, hence after `wm0`. The
    /// replay-side cost of the bound being low is re-applying records
    /// the snapshot already contains, which is harmless because records
    /// carry absolute values and replay runs in log order (idempotent).
    pub fn durable_watermark(&mut self) -> u64 {
        self.ensure_started();
        match self.mode {
            Algorithm::Tl2 | Algorithm::Mv => self.rv,
            Algorithm::Norec => self.rv,
            Algorithm::Incremental | Algorithm::Tlrw | Algorithm::Adaptive => self.wm0,
        }
    }

    /// Abandons this attempt because the data is not ready: the engine
    /// blocks the thread until another transaction commits a write that
    /// overlaps this attempt's read set, then re-runs the body —
    /// Composable-Memory-Transactions-style `retry`.
    ///
    /// Unlike a conflict abort, a logical wait consumes no attempt
    /// budget and no contention-manager backoff: the thread parks on the
    /// read footprint's per-stripe waiter lists (a short safety-net
    /// timeout bounds the sleep even if no writer ever shows up). An
    /// attempt that retries before reading anything has an empty
    /// footprint and simply sleeps out the timeout.
    ///
    /// Returns [`Retry`] so it slots into any return position; the
    /// attempt is poisoned either way, so swallowing the error cannot
    /// commit the attempt.
    ///
    /// # Errors
    ///
    /// Always returns [`Retry`] — propagate it with `?` or return it.
    ///
    /// # Examples
    ///
    /// ```
    /// use ptm_stm::{Stm, TVar};
    /// use std::thread;
    ///
    /// let stm = Stm::tl2();
    /// let inbox = TVar::new(None::<u64>);
    ///
    /// thread::scope(|s| {
    ///     s.spawn(|| {
    ///         // Blocks — without spinning — until the write below lands.
    ///         let got = stm.atomically(|tx| match tx.read(&inbox)? {
    ///             Some(v) => Ok(v),
    ///             None => tx.retry(),
    ///         });
    ///         assert_eq!(got, 7);
    ///     });
    ///     stm.atomically(|tx| tx.write(&inbox, Some(7)));
    /// });
    /// ```
    pub fn retry<A>(&mut self) -> Result<A, Retry> {
        if !self.poisoned {
            // Pin the mode / sample the snapshot even if retry() is the
            // first operation, so the park path knows how to wait.
            self.ensure_started();
            self.waiting = true;
            self.poisoned = true;
        }
        // An attempt that already conflicted stays a conflict: its read
        // set is broken, so parking on it would wait on garbage.
        Err(Retry)
    }

    /// Runs `first`; if it called [`Transaction::retry`], rolls its
    /// writes back and runs `second` instead — the Composable Memory
    /// Transactions `orElse` combinator.
    ///
    /// Only a *logical* retry falls through: a conflict abort in either
    /// branch aborts the whole attempt (the snapshot is broken, so no
    /// alternative can be trusted). If both branches retry, the attempt
    /// waits on the **union** of their read footprints — whichever side
    /// becomes ready first wakes it.
    ///
    /// Reads performed by `first` stay in the read set after the
    /// fallback (the branch decision depended on them); only its
    /// buffered writes are rolled back.
    ///
    /// # Errors
    ///
    /// [`Retry`] if both branches retried, either branch conflicted, or
    /// the attempt was already poisoned.
    ///
    /// # Examples
    ///
    /// ```
    /// use ptm_stm::{Stm, TVar};
    ///
    /// let stm = Stm::tl2();
    /// let fast = TVar::new(None::<u64>);
    /// let slow = TVar::new(Some(9u64));
    ///
    /// let got = stm.atomically(|tx| {
    ///     tx.or_else(
    ///         |tx| match tx.read(&fast)? {
    ///             Some(v) => Ok(v),
    ///             None => tx.retry(),
    ///         },
    ///         |tx| match tx.read(&slow)? {
    ///             Some(v) => Ok(v),
    ///             None => tx.retry(),
    ///         },
    ///     )
    /// });
    /// assert_eq!(got, 9);
    /// ```
    pub fn or_else<A>(
        &mut self,
        first: impl FnOnce(&mut Self) -> Result<A, Retry>,
        second: impl FnOnce(&mut Self) -> Result<A, Retry>,
    ) -> Result<A, Retry> {
        if self.poisoned {
            return Err(Retry);
        }
        self.ensure_started();
        self.log.checkpoint();
        match first(self) {
            Ok(v) => {
                self.log.commit_checkpoint();
                Ok(v)
            }
            Err(Retry) if self.waiting => {
                // Un-poisoning is sound precisely because the poison came
                // from retry(): the snapshot is still consistent and the
                // logical wait recorded no history markers — the attempt
                // merely chose to wait, and now chooses the alternative.
                self.waiting = false;
                self.poisoned = false;
                self.log.rollback_to_checkpoint();
                self.log.checkpoint();
                let out = second(self);
                self.log.commit_checkpoint();
                out
            }
            Err(Retry) => {
                // Conflict: the attempt is dead whatever we do.
                self.log.commit_checkpoint();
                Err(Retry)
            }
        }
    }

    /// Whether this attempt aborted via [`Transaction::retry`].
    pub(super) fn waiting(&self) -> bool {
        self.waiting
    }

    /// The orec stripes a parked instance of this attempt must be woken
    /// by: the read footprint, plus the write footprint when parking on
    /// a *conflict* (`include_writes` — the conflicting winner is as
    /// likely to have beaten us on a write stripe as a read stripe).
    /// Sorted and deduplicated.
    pub(super) fn wait_stripes(&self, include_writes: bool) -> Vec<usize> {
        let mut stripes = match self.mode {
            Algorithm::Tl2 | Algorithm::Incremental | Algorithm::Mv => {
                self.log.reads.iter().map(|r| r.stripe).collect()
            }
            Algorithm::Tlrw => self.log.rw_reads.clone(),
            // NOrec has one conflict channel — the global sequence lock —
            // so every waiter hangs off stripe 0 and every commit sweeps
            // it.
            Algorithm::Norec => vec![0],
            // Unpinned adaptive attempt (nothing read, nothing written):
            // no footprint to wait on.
            Algorithm::Adaptive => Vec::new(),
        };
        if include_writes && self.mode != Algorithm::Norec {
            stripes.extend(
                self.log
                    .writes
                    .iter()
                    .map(|w| self.stm.orecs.stripe_of(w.id)),
            );
        }
        stripes.sort_unstable();
        stripes.dedup();
        stripes
    }

    /// Re-checks, after registering on the waiter lists but before
    /// sleeping, that no commit has already invalidated (= readied) this
    /// attempt's read set. Parking on a stale snapshot would sleep
    /// through a wake-up that already happened.
    ///
    /// Deliberately tallies no validation probes: a parked-idle instance
    /// must read as idle in the stats.
    pub(super) fn revalidate_for_park(&self) -> bool {
        match self.mode {
            Algorithm::Tl2 | Algorithm::Incremental => self
                .log
                .reads
                .iter()
                .all(|r| self.stm.orecs.word(r.stripe).load(Ordering::Acquire) == r.meta),
            // Mv reads name a snapshot bound, not an observed word: the
            // set is stale once any read stripe advances past it.
            Algorithm::Mv => self.log.reads.iter().all(|r| {
                let w = self.stm.orecs.word(r.stripe).load(Ordering::Acquire);
                !orec::is_locked(w) && orec::version_of(w) <= r.meta
            }),
            Algorithm::Norec => self.stm.clock.load(Ordering::Acquire) == self.rv,
            // Visible reads still hold their stripe locks at this point:
            // no writer can have committed past them, so the snapshot
            // cannot be stale. (Unpinned Adaptive has read nothing.)
            Algorithm::Tlrw | Algorithm::Adaptive => true,
        }
    }

    /// Attempts to commit; returns whether the transaction is now durable.
    pub(super) fn commit(&mut self) -> bool {
        if self.poisoned {
            return false;
        }
        self.ensure_started();
        self.rec_invoke(TOpDesc::TryCommit);
        let ok = if self.log.writes.is_empty() {
            // Read-only: serialized at its last validation (invisible
            // reads), under its still-held read locks (Tlrw), or at its
            // snapshot time (Mv — the abort-free case) — either way
            // nothing to validate, nothing to publish.
            true
        } else {
            algo::commit(self)
        };
        // Visible-read algorithms hold per-stripe read locks until the
        // outcome is decided; release them whatever it was.
        self.release_read_locks();
        let res = if ok {
            TOpResult::Committed
        } else {
            TOpResult::Aborted
        };
        self.rec_respond(TOpDesc::TryCommit, res);
        ok
    }
}
