//! Engine-level tests: generic behaviour across all six algorithms,
//! plus the lock-quiescence and adaptive-transition invariants that cut
//! across the builder / transaction / attempt submodules.

use super::*;
use crate::algo::adaptive::AdaptiveConfig;
use crate::cm::{CappedAttempts, ImmediateRetry};
use crate::orec;
use crate::stats::ActiveMode;
use crate::tvar::TVar;
use std::sync::atomic::Ordering;
use std::sync::Arc;

fn engines() -> Vec<Stm> {
    vec![
        Stm::tl2(),
        Stm::incremental(),
        Stm::norec(),
        Stm::tlrw(),
        Stm::mv(),
        Stm::adaptive(),
    ]
}

/// An adaptive instance tuned to switch after a handful of commits.
fn twitchy_adaptive() -> Stm {
    Stm::builder(Algorithm::Adaptive)
        .adaptive_config(AdaptiveConfig {
            window_commits: 8,
            hysteresis_windows: 1,
            ..AdaptiveConfig::default()
        })
        .build()
}

/// Every orec word back to zero: no lock (versioned or RW) leaked.
fn assert_orecs_quiescent(stm: &Stm) {
    for s in 0..stm.orecs.len() {
        let w = stm.orecs.word(s).load(Ordering::Relaxed);
        assert!(
            !orec::is_locked(w) && !orec::rw_write_locked(w),
            "stripe {s} left locked: {w:#x}"
        );
        if stm.algorithm() == Algorithm::Tlrw {
            assert_eq!(w, 0, "stripe {s} leaked a reader count: {w:#x}");
        }
    }
}

#[test]
fn read_write_roundtrip_all_modes() {
    for stm in engines() {
        let v = TVar::new(1u64);
        stm.atomically(|tx| {
            let x = tx.read(&v)?;
            tx.write(&v, x + 10)?;
            Ok(())
        });
        assert_eq!(v.load(), 11, "{:?}", stm.algorithm());
    }
}

#[test]
fn read_own_write_all_modes() {
    for stm in engines() {
        let v = TVar::new(5u64);
        let seen = stm.atomically(|tx| {
            tx.write(&v, 9)?;
            tx.read(&v)
        });
        assert_eq!(seen, 9);
    }
}

#[test]
fn aborted_attempt_leaves_no_trace() {
    for stm in engines() {
        let v = TVar::new(0u64);
        let out = stm.try_once(|tx| {
            tx.write(&v, 99)?;
            Err::<(), Retry>(Retry)
        });
        assert!(out.is_none());
        assert_eq!(v.load(), 0);
    }
}

#[test]
fn stats_track_commits_and_aborts() {
    let stm = Stm::tl2();
    let v = TVar::new(0u64);
    stm.atomically(|tx| tx.write(&v, 1));
    let _ = stm.try_once(|tx| {
        tx.read(&v)?;
        Err::<(), Retry>(Retry)
    });
    let s = stm.stats().snapshot();
    assert_eq!(s.commits, 1);
    assert_eq!(s.aborts, 1);
    assert_eq!(s.writes, 1);
}

#[test]
fn incremental_mode_probes_quadratically() {
    let stm = Stm::incremental();
    let m = 32;
    let vars: Vec<TVar<u64>> = (0..m).map(|_| TVar::new(0)).collect();
    let before = stm.stats().snapshot();
    stm.atomically(|tx| {
        for v in &vars {
            tx.read(v)?;
        }
        Ok(())
    });
    let d = stm.stats().snapshot().since(&before);
    // Read i validates i-1 prior entries: m(m-1)/2 probes total.
    assert_eq!(d.validation_probes, (m * (m - 1) / 2) as u64);

    let stm2 = Stm::tl2();
    let before = stm2.stats().snapshot();
    stm2.atomically(|tx| {
        for v in &vars {
            tx.read(v)?;
        }
        Ok(())
    });
    let d2 = stm2.stats().snapshot().since(&before);
    // TL2 read-only transactions never probe the read set.
    assert_eq!(d2.validation_probes, 0);
}

#[test]
fn tlrw_read_only_transactions_validate_nothing() {
    let stm = Stm::tlrw();
    let vars: Vec<TVar<u64>> = (0..64).map(|_| TVar::new(1)).collect();
    let before = stm.stats().snapshot();
    let sum = stm.atomically(|tx| {
        let mut acc = 0;
        for v in &vars {
            acc += tx.read(v)?;
        }
        Ok(acc)
    });
    assert_eq!(sum, 64);
    let d = stm.stats().snapshot().since(&before);
    // The acceptance criterion of the visible-read design: zero
    // validation probes, reads O(1) each.
    assert_eq!(d.validation_probes, 0);
    assert_eq!(d.commits, 1);
    assert_eq!(d.reader_conflicts, 0);
    assert_orecs_quiescent(&stm);
}

#[test]
fn tlrw_upgrade_commit_and_abort_leave_locks_quiescent() {
    let stm = Stm::tlrw();
    let v = TVar::new(3u64);
    let w = TVar::new(0u64);
    // Read-then-write upgrade: the commit CAS consumes the read lock.
    stm.atomically(|tx| {
        let x = tx.read(&v)?;
        tx.write(&v, x + 1)
    });
    assert_eq!(v.load(), 4);
    assert_orecs_quiescent(&stm);
    // A user-aborted attempt releases its read locks too.
    let out = stm.try_once(|tx| {
        tx.read(&v)?;
        tx.read(&w)?;
        Err::<(), Retry>(Retry)
    });
    assert!(out.is_none());
    assert_orecs_quiescent(&stm);
    // And so does a panicking body (the Drop path).
    let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        stm.atomically(|tx| {
            tx.read(&v)?;
            panic!("body dies mid-transaction");
            #[allow(unreachable_code)]
            Ok(())
        })
    }));
    assert!(res.is_err());
    assert_orecs_quiescent(&stm);
}

#[test]
fn tlrw_upgrade_rollback_restores_and_releases_read_locks() {
    // Force a multi-stripe upgrade whose second CAS fails: stripe A
    // upgrades fine, stripe B is held by a foreign reader. The
    // rollback must restore A's read lock AND release it at abort —
    // dropping it from the read set while restoring the count would
    // leak the lock and starve writers forever.
    let stm = Arc::new(Stm::builder(Algorithm::Tlrw).orec_stripes(2).build());
    // Find two vars on different stripes; `a` must sort first so the
    // commit upgrades a's stripe before failing on b's. The pool
    // keeps rejected allocations alive so fresh addresses keep
    // coming.
    let x0 = TVar::new(0u64);
    let mut pool = Vec::new();
    let x1 = loop {
        let cand = TVar::new(0u64);
        if stm.orecs.stripe_of(cand.id()) != stm.orecs.stripe_of(x0.id()) {
            break cand;
        }
        pool.push(cand);
    };
    let (a, b) = if stm.orecs.stripe_of(x0.id()) < stm.orecs.stripe_of(x1.id()) {
        (x0, x1)
    } else {
        (x1, x0)
    };
    let hold = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let release = Arc::new(std::sync::atomic::AtomicBool::new(false));
    std::thread::scope(|s| {
        let stm2 = Arc::clone(&stm);
        let b2 = b.clone();
        let (hold2, release2) = (Arc::clone(&hold), Arc::clone(&release));
        s.spawn(move || {
            // Foreign reader camps on b's stripe until released.
            stm2.atomically(|tx| {
                let x = tx.read(&b2)?;
                hold2.store(true, Ordering::SeqCst);
                while !release2.load(Ordering::SeqCst) {
                    std::thread::yield_now();
                }
                Ok(x)
            });
        });
        while !hold.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
        // Reads both stripes, writes both: upgrade of a succeeds,
        // upgrade of b hits the foreign reader and rolls back.
        let out = stm.try_once(|tx| {
            let x = tx.read(&a)?;
            let y = tx.read(&b)?;
            tx.write(&a, x + 1)?;
            tx.write(&b, y + 1)
        });
        assert!(out.is_none(), "foreign reader must abort the upgrade");
        assert!(stm.stats().snapshot().reader_conflicts >= 1);
        release.store(true, Ordering::SeqCst);
    });
    assert_orecs_quiescent(&stm);
    // The stripes are free again: a writer commits on both.
    stm.atomically(|tx| {
        tx.write(&a, 7)?;
        tx.write(&b, 7)
    });
    assert_eq!((a.load(), b.load()), (7, 7));
}

#[test]
fn tlrw_writer_aborts_while_reader_holds_the_stripe() {
    let stm = Arc::new(Stm::builder(Algorithm::Tlrw).max_attempts(3).build());
    let v = TVar::new(0u64);
    let hold = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let release = Arc::new(std::sync::atomic::AtomicBool::new(false));
    std::thread::scope(|s| {
        let stm2 = Arc::clone(&stm);
        let v2 = v.clone();
        let (hold2, release2) = (Arc::clone(&hold), Arc::clone(&release));
        s.spawn(move || {
            stm2.atomically(|tx| {
                let x = tx.read(&v2)?;
                hold2.store(true, Ordering::SeqCst);
                while !release2.load(Ordering::SeqCst) {
                    std::thread::yield_now();
                }
                Ok(x)
            });
        });
        while !hold.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
        let out = stm.run(|tx| tx.write(&v, 9));
        assert_eq!(out, Err(RetriesExhausted { attempts: 3 }));
        assert_eq!(stm.stats().snapshot().reader_conflicts, 3);
        release.store(true, Ordering::SeqCst);
    });
    // Reader gone: the same write now commits.
    stm.atomically(|tx| tx.write(&v, 9));
    assert_eq!(v.load(), 9);
    assert_orecs_quiescent(&stm);
}

#[test]
fn concurrent_counter_increments_are_exact() {
    for stm in engines() {
        let stm = Arc::new(stm);
        let v = TVar::new(0u64);
        let threads = 4;
        let per = 500;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let stm = Arc::clone(&stm);
                let v = v.clone();
                s.spawn(move || {
                    for _ in 0..per {
                        stm.atomically(|tx| {
                            let x = tx.read(&v)?;
                            tx.write(&v, x + 1)
                        });
                    }
                });
            }
        });
        assert_eq!(v.load(), threads * per, "{:?}", stm.algorithm());
    }
}

#[test]
fn concurrent_bank_conserves_total() {
    for stm in engines() {
        let stm = Arc::new(stm);
        let accounts: Vec<TVar<u64>> = (0..8).map(|_| TVar::new(1000)).collect();
        let threads = 4;
        let per = 300;
        std::thread::scope(|s| {
            for t in 0..threads {
                let stm = Arc::clone(&stm);
                let accounts = accounts.clone();
                s.spawn(move || {
                    let mut x = t as usize;
                    for i in 0..per {
                        let from = (x + i) % accounts.len();
                        let to = (x + i * 7 + 1) % accounts.len();
                        if from == to {
                            continue;
                        }
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                        stm.atomically(|tx| {
                            let a = tx.read(&accounts[from])?;
                            let b = tx.read(&accounts[to])?;
                            let amt = a.min(17);
                            tx.write(&accounts[from], a - amt)?;
                            tx.write(&accounts[to], b + amt)
                        });
                    }
                });
            }
        });
        let total: u64 = accounts.iter().map(TVar::load).sum();
        assert_eq!(total, 8000, "{:?}", stm.algorithm());
    }
}

#[test]
fn snapshot_isolation_is_not_allowed_write_skew() {
    // Write skew: two transactions each read both vars and write one.
    // A serializable STM must not let both commit from the same
    // snapshot; run many racing pairs and check the invariant
    // x + y <= 1 is never violated.
    for stm in engines() {
        let stm = Arc::new(stm);
        for _ in 0..200 {
            let x = TVar::new(0u64);
            let y = TVar::new(0u64);
            std::thread::scope(|s| {
                let stm1 = Arc::clone(&stm);
                let (x1, y1) = (x.clone(), y.clone());
                s.spawn(move || {
                    stm1.atomically(|tx| {
                        let (a, b) = (tx.read(&x1)?, tx.read(&y1)?);
                        if a + b == 0 {
                            tx.write(&x1, 1)?;
                        }
                        Ok(())
                    });
                });
                let stm2 = Arc::clone(&stm);
                let (x2, y2) = (x.clone(), y.clone());
                s.spawn(move || {
                    stm2.atomically(|tx| {
                        let (a, b) = (tx.read(&x2)?, tx.read(&y2)?);
                        if a + b == 0 {
                            tx.write(&y2, 1)?;
                        }
                        Ok(())
                    });
                });
            });
            assert!(x.load() + y.load() <= 1, "{:?}", stm.algorithm());
        }
    }
}

#[test]
fn adaptive_switches_with_the_workload_and_stays_correct() {
    let stm = twitchy_adaptive();
    assert_eq!(stm.active_mode(), Algorithm::Tl2, "starts invisible");
    let vars: Vec<TVar<u64>> = (0..32).map(|_| TVar::new(1)).collect();
    // Write-heavy: transfers (2 reads / 2 writes) drive it visible.
    for i in 0..64usize {
        let (a, b) = (i % 32, (i + 7) % 32);
        stm.atomically(|tx| {
            let x = tx.read(&vars[a])?;
            let y = tx.read(&vars[b])?;
            tx.write(&vars[a], x.wrapping_sub(1))?;
            tx.write(&vars[b], y.wrapping_add(1))
        });
    }
    assert_eq!(stm.active_mode(), Algorithm::Tlrw, "write-heavy → visible");
    let after_first = stm.stats().snapshot();
    assert!(after_first.mode_transitions >= 1);
    assert_eq!(after_first.active_mode, ActiveMode::Visible);
    // Read-mostly: 16-read scans drive it back invisible.
    for _ in 0..64usize {
        let sum = stm.atomically(|tx| {
            let mut acc = 0u64;
            for v in vars.iter().take(16) {
                acc = acc.wrapping_add(tx.read(v)?);
            }
            Ok(acc)
        });
        let _ = sum;
    }
    assert_eq!(stm.active_mode(), Algorithm::Tl2, "read-mostly → invisible");
    let snap = stm.stats().snapshot();
    assert!(snap.mode_transitions >= 2);
    assert_eq!(snap.active_mode, ActiveMode::Invisible);
    // The sum is conserved across both regimes and the switches.
    assert_eq!(vars.iter().map(TVar::load).sum::<u64>(), 32);
    assert_orecs_quiescent(&stm);
}

#[test]
fn adaptive_switch_is_correct_under_concurrent_mixed_load() {
    // Hammer an adaptive instance with racing read-mostly and
    // write-heavy threads so transitions happen *during* traffic;
    // the exact mode history is scheduling-dependent, but counter
    // exactness and lock quiescence must not be.
    let stm = Arc::new(twitchy_adaptive());
    let counters: Vec<TVar<u64>> = (0..8).map(|_| TVar::new(0)).collect();
    let threads = 4;
    let per = 400;
    std::thread::scope(|s| {
        for t in 0..threads {
            let stm = Arc::clone(&stm);
            let counters = counters.clone();
            s.spawn(move || {
                for i in 0..per {
                    if (i / 50) % 2 == 0 {
                        // Write-heavy burst: increment one counter.
                        let c = (t + i) % counters.len();
                        stm.atomically(|tx| tx.modify(&counters[c], |x| x + 1));
                    } else {
                        // Read burst: scan everything, write every
                        // 16th iteration.
                        stm.atomically(|tx| {
                            let mut acc = 0u64;
                            for v in &counters {
                                acc = acc.wrapping_add(tx.read(v)?);
                            }
                            if i % 16 == 0 {
                                let c = (t + i) % counters.len();
                                tx.modify(&counters[c], |x| x + 1)?;
                            }
                            Ok(acc)
                        });
                    }
                }
            });
        }
    });
    let expected: u64 = (0..threads as u64)
        .map(|_| {
            (0..per as u64)
                .map(|i| u64::from((i / 50) % 2 == 0 || i % 16 == 0))
                .sum::<u64>()
        })
        .sum();
    assert_eq!(counters.iter().map(TVar::load).sum::<u64>(), expected);
    assert_orecs_quiescent(&stm);
}

#[test]
fn adaptive_windows_still_trigger_when_counters_land_in_many_shards() {
    // Regression for the stats sharding: worker threads flush their
    // operation tallies into *different* counter shards, so the
    // controller's windowed deltas only see the workload if snapshots
    // sum the shards correctly. Drive the phases from spawned threads
    // (never the main thread, so the main thread's shard stays cold)
    // and require the switch to land both ways.
    let stm = Arc::new(twitchy_adaptive());
    let vars: Vec<TVar<u64>> = (0..32).map(|_| TVar::new(1)).collect();
    assert_eq!(stm.active_mode(), Algorithm::Tl2, "starts invisible");
    let transfer = |i: usize| {
        let (a, b) = (i % 32, (i + 7) % 32);
        stm.atomically(|tx| {
            let x = tx.read(&vars[a])?;
            let y = tx.read(&vars[b])?;
            tx.write(&vars[a], x.wrapping_sub(1))?;
            tx.write(&vars[b], y.wrapping_add(1))
        });
    };
    let scan = || {
        stm.atomically(|tx| {
            let mut acc = 0u64;
            for v in vars.iter().take(16) {
                acc = acc.wrapping_add(tx.read(v)?);
            }
            Ok(acc)
        });
    };
    // Write-heavy from 4 threads: transfers (2 reads / 2 writes).
    std::thread::scope(|s| {
        let transfer = &transfer;
        for t in 0..4usize {
            s.spawn(move || {
                for i in 0..64usize {
                    transfer(t + i);
                }
            });
        }
    });
    // Exactness across shards: 4 threads × 64 committed transfers, all
    // flushed by the time the scope joins. Write *operations* exceed the
    // committed floor when contention forces retries (an aborted attempt
    // re-executes its writes).
    let mid = stm.stats().snapshot();
    assert_eq!(mid.commits, 4 * 64);
    assert!(
        mid.writes >= 2 * mid.commits && mid.writes <= 2 * (mid.commits + mid.aborts),
        "2 writes per committed transfer, at most 2 more per aborted attempt: {mid}"
    );
    assert_eq!(vars.iter().map(TVar::load).sum::<u64>(), 32);
    // A window sampled at the tail of concurrent traffic may time out
    // its drain and keep the old mode; settle with a few more commits
    // (still a spawned thread — the workload shards stay foreign to
    // this one).
    std::thread::scope(|s| {
        s.spawn(|| {
            for i in 0..256usize {
                if stm.active_mode() == Algorithm::Tlrw {
                    break;
                }
                transfer(i);
            }
        });
    });
    assert_eq!(
        stm.active_mode(),
        Algorithm::Tlrw,
        "sharded write/read deltas still drive the instance visible"
    );
    let mid = stm.stats().snapshot();
    assert!(mid.mode_transitions >= 1);
    assert_eq!(mid.active_mode, ActiveMode::Visible);
    // Read-mostly from fresh threads (fresh shard slots): 16-read scans.
    std::thread::scope(|s| {
        for _ in 0..2usize {
            s.spawn(|| {
                for _ in 0..64usize {
                    scan();
                }
            });
        }
    });
    std::thread::scope(|s| {
        s.spawn(|| {
            for _ in 0..256usize {
                if stm.active_mode() == Algorithm::Tl2 {
                    break;
                }
                scan();
            }
        });
    });
    assert_eq!(stm.active_mode(), Algorithm::Tl2, "and back invisible");
    let snap = stm.stats().snapshot();
    assert!(snap.mode_transitions >= 2);
    assert_eq!(snap.active_mode, ActiveMode::Invisible);
    assert_eq!(vars.iter().map(TVar::load).sum::<u64>(), 32);
    assert_orecs_quiescent(&stm);
}

#[test]
fn adaptive_nested_transaction_cannot_deadlock_the_switch() {
    // A nested transaction commits (and samples) while the outer one
    // is still active on the same thread: the drain must time out
    // and keep the current mode instead of waiting on its own stack.
    let stm = Stm::builder(Algorithm::Adaptive)
        .adaptive_config(AdaptiveConfig {
            window_commits: 1,
            hysteresis_windows: 1,
            max_drain: std::time::Duration::from_millis(1),
            ..AdaptiveConfig::default()
        })
        .build();
    let v = TVar::new(0u64);
    let w = TVar::new(0u64);
    // Every commit is write-heavy, so every one-commit window votes
    // visible; the nested commits below each attempt the switch
    // while the outer transaction still occupies the invisible
    // mode's active counter.
    stm.atomically(|tx| {
        tx.write(&v, 1)?; // pins the mode, holds the active slot
        for _ in 0..4 {
            stm.atomically(|tx2| tx2.modify(&w, |y| y + 1));
        }
        tx.write(&v, 2)
    });
    assert_eq!((v.load(), w.load()), (2, 4));
    // The outer commit's own sample can finally drain and switch;
    // either way the engine is live and consistent afterwards.
    stm.atomically(|tx| tx.modify(&v, |x| x + 1));
    assert_eq!(v.load(), 3);
    assert!(stm.stats().snapshot().commits >= 6);
}

#[test]
fn run_reports_exhaustion_instead_of_panicking() {
    let stm = Stm::builder(Algorithm::Tl2).max_attempts(3).build();
    let v = TVar::new(0u64);
    let out = stm.run(|tx| {
        tx.read(&v)?;
        Err::<(), Retry>(Retry)
    });
    assert_eq!(out, Err(RetriesExhausted { attempts: 3 }));
    assert_eq!(stm.stats().snapshot().aborts, 3);
}

#[test]
fn contention_manager_give_up_is_honored() {
    let stm = Stm::builder(Algorithm::Norec)
        .contention_manager(CappedAttempts::wrapping(2, ImmediateRetry))
        .build();
    let out = stm.run(|_tx| Err::<(), Retry>(Retry));
    assert_eq!(out, Err(RetriesExhausted { attempts: 2 }));
}

#[test]
#[should_panic(expected = "failed to commit after 1 attempts")]
fn atomically_panics_when_budget_runs_out() {
    let stm = Stm::builder(Algorithm::Tl2).max_attempts(1).build();
    stm.atomically(|_tx| Err::<(), Retry>(Retry));
}

#[test]
fn debug_output_names_policy_and_budget() {
    let stm = Stm::builder(Algorithm::Incremental)
        .max_attempts(42)
        .contention_manager(ImmediateRetry)
        .build();
    let s = format!("{stm:?}");
    assert!(s.contains("max_attempts: 42"), "{s}");
    assert!(s.contains("ImmediateRetry"), "{s}");
    assert!(s.contains("Incremental"), "{s}");
}

#[test]
fn values_whose_drop_reenters_the_epoch_machinery() {
    // Regression: the collector used to drop displaced value boxes
    // while holding the thread-local epoch borrow, so a value whose
    // `Drop` pins the epoch again (here: `TVar::load` on a peer)
    // panicked with a RefCell BorrowMutError mid-commit.
    #[derive(Clone)]
    struct PinsOnDrop {
        peer: TVar<u64>,
        tag: u64,
    }
    impl PartialEq for PinsOnDrop {
        fn eq(&self, other: &Self) -> bool {
            self.tag == other.tag
        }
    }
    impl Drop for PinsOnDrop {
        fn drop(&mut self) {
            let _ = self.peer.load(); // pins the epoch
        }
    }

    let stm = Stm::tl2();
    let peer = TVar::new(0u64);
    let var = TVar::new(PinsOnDrop {
        peer: peer.clone(),
        tag: 0,
    });
    // Enough writing commits to push the thread bag past the collect
    // threshold several times over.
    for i in 1..=300u64 {
        stm.atomically(|tx| {
            tx.write(
                &var,
                PinsOnDrop {
                    peer: peer.clone(),
                    tag: i,
                },
            )
        });
    }
    assert_eq!(var.load().tag, 300);
}

#[test]
fn tiny_orec_table_still_serializes_correctly() {
    // One stripe: every variable conflicts with every other. The
    // engine must stay correct (if slower).
    let stm = Arc::new(Stm::builder(Algorithm::Tl2).orec_stripes(1).build());
    let a = TVar::new(0u64);
    let b = TVar::new(0u64);
    std::thread::scope(|s| {
        for _ in 0..4 {
            let stm = Arc::clone(&stm);
            let (a, b) = (a.clone(), b.clone());
            s.spawn(move || {
                for _ in 0..200 {
                    stm.atomically(|tx| {
                        let x = tx.read(&a)?;
                        let y = tx.read(&b)?;
                        tx.write(&a, x + 1)?;
                        tx.write(&b, y + 1)
                    });
                }
            });
        }
    });
    assert_eq!(a.load(), 800);
    assert_eq!(b.load(), 800);
}

// ---------------------------------------------------------------------
// Two-phase commit surface (engine/twophase.rs)
// ---------------------------------------------------------------------

#[test]
fn twophase_prepare_then_commit_publishes_all_modes() {
    for stm in engines() {
        let v = TVar::new(1u64);
        let mut tx = stm.transaction();
        let seen = tx.read(&v).expect("fresh read");
        tx.write(&v, seen + 10).expect("buffer write");
        let prepared = tx.prepare_commit().expect("uncontended prepare");
        tx.commit_prepared(prepared);
        assert_eq!(v.load(), 11, "{:?}", stm.algorithm());
        assert_orecs_quiescent(&stm);
        assert_eq!(stm.stats().snapshot().commits, 1);
    }
}

#[test]
fn twophase_abort_prepared_observes_nothing_all_modes() {
    for stm in engines() {
        let v = TVar::new(1u64);
        let mut tx = stm.transaction();
        tx.write(&v, 99).expect("buffer write");
        let prepared = tx.prepare_commit().expect("uncontended prepare");
        tx.abort_prepared(prepared);
        assert_eq!(
            v.load(),
            1,
            "{:?}: abort must publish nothing",
            stm.algorithm()
        );
        assert_orecs_quiescent(&stm);
        // The instance is not wedged: a plain commit goes through.
        stm.atomically(|tx| tx.write(&v, 2));
        assert_eq!(v.load(), 2);
        assert_eq!(stm.stats().snapshot().aborts, 1);
    }
}

#[test]
fn twophase_rollback_closes_the_attempt_all_modes() {
    for stm in engines() {
        let v = TVar::new(1u64);
        let mut tx = stm.transaction();
        let seen = tx.read(&v).expect("fresh read");
        tx.write(&v, seen + 99).expect("buffer write");
        tx.rollback();
        assert_eq!(v.load(), 1, "{:?}", stm.algorithm());
        assert_orecs_quiescent(&stm);
        assert_eq!(stm.stats().snapshot().aborts, 1);
    }
}

#[test]
fn twophase_prepare_detects_overlapping_commits_all_modes() {
    // The invariant cuts two ways, depending on whether the algorithm
    // uses invisible or visible reads:
    //
    // * invisible (Tl2/Incremental/NOrec/Mv): the nested bump commits,
    //   so the outer prepare's validation must fail;
    // * visible (Tlrw, and Adaptive when pinned there): the outer read
    //   lock physically excludes the bump, so the bump fails and the
    //   outer prepare must succeed.
    //
    // Either way, exactly one of the two writers wins.
    for stm in engines() {
        let v = TVar::new(0u64);
        let w = TVar::new(0u64);
        let mut tx = stm.transaction();
        let seen = tx.read(&v).expect("fresh read");
        let bumped = stm.try_once(|t2| t2.modify(&v, |y| y + 1)).is_some();
        tx.write(&w, seen + 1).expect("buffer write");
        match tx.prepare_commit() {
            Ok(prepared) => {
                assert!(
                    !bumped,
                    "{:?}: prepare passed over a committed conflict",
                    stm.algorithm()
                );
                tx.commit_prepared(prepared);
            }
            Err(Retry) => {
                assert!(
                    bumped,
                    "{:?}: prepare failed with no conflict",
                    stm.algorithm()
                );
                // The failed prepare rolled its locks back and poisoned
                // the attempt; retrying it stays refused.
                assert!(tx.prepare_commit().is_err(), "poisoned attempt");
            }
        }
        assert_orecs_quiescent(&stm);
    }
}

#[test]
fn twophase_read_only_prepare_revalidates_all_modes() {
    // A read-only prepare is the coordinator's torn-cut detector: if an
    // invisible-read algorithm saw a snapshot that a later commit
    // invalidated, the prepare must say so. (Visible readers exclude the
    // overlapping commit instead, so their prepare succeeds trivially.)
    for stm in engines() {
        let v = TVar::new(0u64);
        let mut tx = stm.transaction();
        let _ = tx.read(&v).expect("fresh read");
        let bumped = stm.try_once(|t2| t2.modify(&v, |y| y + 1)).is_some();
        match tx.prepare_commit() {
            Ok(prepared) => {
                assert!(
                    !bumped,
                    "{:?}: read-only prepare ignored an overlapping commit",
                    stm.algorithm()
                );
                tx.commit_prepared(prepared);
            }
            Err(Retry) => {
                assert!(bumped, "{:?}: spurious read-only refusal", stm.algorithm());
                tx.rollback();
            }
        }
        assert_orecs_quiescent(&stm);
    }
}

#[test]
fn twophase_prepared_blocker_excludes_a_second_writer() {
    // A held prepare owns the commit locks; a second writer on the same
    // stripes must fail its own prepare (try-lock, no waiting) until the
    // first resolves. NOrec is exercised cross-thread further down in
    // the server crate's 2PC tests: its prepare *spins* on the held
    // sequence lock, which single-threaded would self-deadlock.
    for stm in engines() {
        let blocked_algo = matches!(stm.algorithm(), Algorithm::Norec);
        if blocked_algo {
            continue;
        }
        let v = TVar::new(0u64);
        let mut first = stm.transaction();
        first.write(&v, 1).expect("buffer write");
        let held = first.prepare_commit().expect("first prepare");

        let mut second = stm.transaction();
        let blocked = match second.write(&v, 2) {
            // Tlrw takes the write lock eagerly, so the conflict can
            // surface at write time rather than prepare time.
            Err(Retry) => true,
            Ok(()) => second.prepare_commit().is_err(),
        };
        assert!(
            blocked,
            "{:?}: second writer got past held locks",
            stm.algorithm()
        );
        drop(second);

        first.commit_prepared(held);
        assert_eq!(v.load(), 1, "{:?}", stm.algorithm());
        assert_orecs_quiescent(&stm);
    }
}

#[test]
#[cfg(debug_assertions)]
#[should_panic(expected = "crossed between Stm instances")]
fn twophase_prepared_token_cannot_cross_instances() {
    let a = Stm::tl2();
    let b = Stm::tl2();
    let v = TVar::new(0u64);
    let mut tx_a = a.transaction();
    tx_a.write(&v, 1).expect("buffer write");
    let prepared = tx_a.prepare_commit().expect("prepare");
    let mut tx_b = b.transaction();
    tx_b.write(&v, 2).expect("buffer write");
    // Publishing a's plan through b's transaction is a coordinator bug;
    // debug builds refuse it. (The leaked locks don't matter here: the
    // panic ends the test.)
    tx_b.commit_prepared(prepared);
}
