//! The transaction engine: three validation algorithms behind one API.
//!
//! * [`Algorithm::Tl2`] — global version clock plus the striped orec
//!   table ([`crate::orec`]): reads validate in O(1) against the snapshot
//!   time with an optimistic word-check/read/re-check and **acquire no
//!   lock**; commit locks the write set's stripes in sorted order, stamps
//!   them with a fresh clock tick, validates the read set once.
//! * [`Algorithm::Incremental`] — no clock read on the read path; every
//!   t-read re-validates the entire read set by version equality. This is
//!   the paper's invisible-read weak-DAP progressive TM transplanted to
//!   real hardware: quadratic validation work, observable in
//!   [`StmStats::snapshot`] and in wall-clock time.
//! * [`Algorithm::Norec`] — a single global sequence lock and value-based
//!   validation; no per-variable version traffic on commit besides the
//!   value itself.
//!
//! All modes buffer writes in the shared transaction log
//! ([`crate::txlog`]) and publish them only at commit, so a failed
//! transaction never dirties shared state. Retry behaviour is a pluggable
//! [`ContentionManager`] chosen through [`StmBuilder`].

use crate::cm::{ContentionManager, Decision, ExponentialBackoff};
use crate::epoch;
use crate::orec::{self, OrecTable};
use crate::recorder::{word_of, HistoryRecorder, RecTx};
use crate::stats::StmStats;
use crate::tvar::{TVar, TxValue};
use crate::txlog::{TxLog, ValueRead, VersionedRead};
use ptm_sim::{TOpDesc, TOpResult};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The validation algorithm an [`Stm`] instance runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Global version clock, O(1) lock-free read validation (default).
    Tl2,
    /// Full read-set re-validation on every read (paper's tight upper
    /// bound for weak-DAP + invisible reads; Θ(m²) total read cost).
    Incremental,
    /// Global sequence lock with value-based validation.
    Norec,
}

/// The transaction aborted and should be retried; returned by
/// transactional operations so user code can propagate it with `?`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Retry;

impl fmt::Display for Retry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "transaction conflict; retry")
    }
}

impl std::error::Error for Retry {}

/// The retry budget ran out before the transaction committed: either the
/// instance's `max_attempts` was reached or its contention manager gave
/// up. Returned by [`Stm::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetriesExhausted {
    /// Attempts consumed before giving up.
    pub attempts: u64,
}

impl fmt::Display for RetriesExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "transaction failed to commit after {} attempts",
            self.attempts
        )
    }
}

impl std::error::Error for RetriesExhausted {}

/// Configures and builds an [`Stm`] instance.
///
/// # Examples
///
/// ```
/// use ptm_stm::{Algorithm, CappedAttempts, Stm};
///
/// let stm = Stm::builder(Algorithm::Tl2)
///     .max_attempts(1_000)
///     .orec_stripes(256)
///     .contention_manager(CappedAttempts::new(500))
///     .build();
/// assert!(format!("{stm:?}").contains("max_attempts: 1000"));
/// ```
#[derive(Debug)]
pub struct StmBuilder {
    algorithm: Algorithm,
    max_attempts: u64,
    orec_stripes: usize,
    cm: Box<dyn ContentionManager>,
    recorder: Option<HistoryRecorder>,
}

impl StmBuilder {
    /// Starts from the defaults: 10 million attempts, exponential
    /// backoff, 1024 orec stripes, no history recording.
    pub fn new(algorithm: Algorithm) -> Self {
        StmBuilder {
            algorithm,
            max_attempts: 10_000_000,
            orec_stripes: orec::DEFAULT_STRIPES,
            cm: Box::new(ExponentialBackoff::default()),
            recorder: None,
        }
    }

    /// Hard ceiling on attempts per transaction before the engine gives
    /// up (panic from [`Stm::atomically`], error from [`Stm::run`]).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn max_attempts(mut self, n: u64) -> Self {
        assert!(n > 0, "max_attempts must be at least 1");
        self.max_attempts = n;
        self
    }

    /// Number of orec stripes (rounded up to a power of two). More
    /// stripes mean fewer false conflicts; fewer mean less memory.
    /// Ignored by NOrec, which has no orecs.
    pub fn orec_stripes(mut self, stripes: usize) -> Self {
        self.orec_stripes = stripes;
        self
    }

    /// The retry policy consulted between aborted attempts.
    pub fn contention_manager(mut self, cm: impl ContentionManager + 'static) -> Self {
        self.cm = Box::new(cm);
        self
    }

    /// Records every transaction of this instance as a t-operation
    /// history into `recorder`, for cross-checking real concurrent runs
    /// against the `ptm-model` opacity/serializability checkers. Keep a
    /// clone of the recorder to [`HistoryRecorder::drain`] afterwards.
    ///
    /// Recording adds one globally sequenced marker per operation
    /// boundary, so it perturbs timing; leave it off for benchmarks.
    pub fn record_history(mut self, recorder: HistoryRecorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Builds the instance.
    pub fn build(self) -> Stm {
        // NOrec never touches orecs; don't pay ~128 KB of padded words
        // for a table no code path reads.
        let stripes = match self.algorithm {
            Algorithm::Norec => 1,
            Algorithm::Tl2 | Algorithm::Incremental => self.orec_stripes,
        };
        Stm {
            algorithm: self.algorithm,
            clock: AtomicU64::new(0),
            orecs: OrecTable::new(stripes),
            stats: Arc::new(StmStats::default()),
            max_attempts: self.max_attempts,
            cm: self.cm,
            recorder: self.recorder,
        }
    }
}

/// Software transactional memory instance.
///
/// All transactions created from one `Stm` coordinate through its clock /
/// sequence lock and its orec table; variables ([`TVar`]) are
/// free-standing and may be used with any `Stm`, but must not be shared
/// between instances running concurrently.
pub struct Stm {
    algorithm: Algorithm,
    /// TL2/Incremental: version clock. NOrec: sequence lock (odd = busy).
    clock: AtomicU64,
    /// Striped versioned-lock words (TL2/Incremental; unused by NOrec).
    orecs: OrecTable,
    stats: Arc<StmStats>,
    max_attempts: u64,
    cm: Box<dyn ContentionManager>,
    /// Present when this instance records t-operation histories.
    recorder: Option<HistoryRecorder>,
}

impl fmt::Debug for Stm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Stm")
            .field("algorithm", &self.algorithm)
            .field("clock", &self.clock.load(Ordering::Relaxed))
            .field("orec_stripes", &self.orecs.len())
            .field("max_attempts", &self.max_attempts)
            .field("contention_manager", &self.cm)
            .field("recording", &self.recorder.is_some())
            .finish()
    }
}

impl Stm {
    /// Creates an instance running the given algorithm with default
    /// settings (see [`StmBuilder::new`]).
    pub fn new(algorithm: Algorithm) -> Self {
        StmBuilder::new(algorithm).build()
    }

    /// Starts configuring an instance.
    pub fn builder(algorithm: Algorithm) -> StmBuilder {
        StmBuilder::new(algorithm)
    }

    /// TL2 instance (the default algorithm).
    pub fn tl2() -> Self {
        Stm::new(Algorithm::Tl2)
    }

    /// Incremental-validation instance.
    pub fn incremental() -> Self {
        Stm::new(Algorithm::Incremental)
    }

    /// NOrec instance.
    pub fn norec() -> Self {
        Stm::new(Algorithm::Norec)
    }

    /// The algorithm this instance runs.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The per-transaction attempt ceiling.
    pub fn max_attempts(&self) -> u64 {
        self.max_attempts
    }

    /// Progress statistics for this instance.
    pub fn stats(&self) -> &StmStats {
        &self.stats
    }

    /// The history recorder attached via [`StmBuilder::record_history`],
    /// if any.
    pub fn recorder(&self) -> Option<&HistoryRecorder> {
        self.recorder.as_ref()
    }

    /// Runs `body` in a transaction, retrying on conflict until it
    /// commits, and returns its result.
    ///
    /// # Panics
    ///
    /// Panics if the retry budget runs out — `max_attempts` is reached
    /// (default: ten million) or the contention manager gives up. Use
    /// [`Stm::run`] to handle exhaustion as a value instead.
    pub fn atomically<A>(&self, body: impl FnMut(&mut Transaction<'_>) -> Result<A, Retry>) -> A {
        match self.run(body) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// Runs `body` in a transaction, retrying on conflict, and reports
    /// retry-budget exhaustion as an error instead of panicking.
    ///
    /// # Errors
    ///
    /// [`RetriesExhausted`] if `max_attempts` attempts all aborted or the
    /// contention manager returned [`Decision::GiveUp`].
    pub fn run<A>(
        &self,
        mut body: impl FnMut(&mut Transaction<'_>) -> Result<A, Retry>,
    ) -> Result<A, RetriesExhausted> {
        let mut log = TxLog::default();
        let mut attempt: u64 = 0;
        loop {
            let mut tx = Transaction::begin(self, log);
            match body(&mut tx) {
                Ok(out) if tx.commit() => {
                    self.stats.commit();
                    return Ok(out);
                }
                _ => {}
            }
            tx.close_aborted();
            log = tx.into_log();
            self.stats.abort();
            attempt += 1;
            if attempt >= self.max_attempts {
                return Err(RetriesExhausted { attempts: attempt });
            }
            if self.cm.on_abort(attempt - 1) == Decision::GiveUp {
                return Err(RetriesExhausted { attempts: attempt });
            }
        }
    }

    /// Runs `body` once, committing if it succeeds; returns `None` on
    /// conflict instead of retrying.
    pub fn try_once<A>(
        &self,
        body: impl FnOnce(&mut Transaction<'_>) -> Result<A, Retry>,
    ) -> Option<A> {
        let mut tx = Transaction::begin(self, TxLog::default());
        match body(&mut tx) {
            Ok(out) if tx.commit() => {
                self.stats.commit();
                Some(out)
            }
            _ => {
                tx.close_aborted();
                self.stats.abort();
                None
            }
        }
    }

    /// Reads a variable outside any transaction (single-variable
    /// snapshot).
    pub fn read_now<T: TxValue>(&self, var: &TVar<T>) -> T {
        var.load()
    }
}

/// An in-flight transaction; created by [`Stm::atomically`].
pub struct Transaction<'s> {
    stm: &'s Stm,
    /// Snapshot time (TL2: clock at begin; NOrec: sequence-lock value).
    rv: u64,
    started: bool,
    /// Set when an operation returned [`Retry`]: the attempt is doomed
    /// (and t-complete in any recorded history), so every later operation
    /// short-circuits to `Retry` and commit refuses. User code that
    /// swallows a `Retry` instead of propagating it therefore cannot
    /// commit an attempt the engine already aborted.
    poisoned: bool,
    log: TxLog,
    /// History-recording state for this attempt, when the instance has a
    /// recorder attached.
    rec: Option<RecTx>,
    /// Epoch pin: keeps every pointer this transaction may dereference
    /// alive for its whole lifetime (also makes `Transaction: !Send`).
    pin: epoch::Guard,
}

impl fmt::Debug for Transaction<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Transaction")
            .field("rv", &self.rv)
            .field("poisoned", &self.poisoned)
            .field("log", &self.log)
            .finish()
    }
}

impl<'s> Transaction<'s> {
    fn begin(stm: &'s Stm, log: TxLog) -> Self {
        Transaction {
            stm,
            rv: 0,
            started: false,
            poisoned: false,
            log,
            rec: stm.recorder.as_ref().map(HistoryRecorder::begin_tx),
            pin: epoch::pin(),
        }
    }

    /// Recovers the log for reuse by the next attempt (capacity is kept,
    /// entries are cleared).
    fn into_log(self) -> TxLog {
        let mut log = self.log;
        log.reset();
        log
    }

    /// Lazily samples the snapshot time at the first operation.
    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.rv = match self.stm.algorithm {
            Algorithm::Tl2 => self.stm.clock.load(Ordering::Acquire),
            Algorithm::Norec => loop {
                let t = self.stm.clock.load(Ordering::Acquire);
                if t & 1 == 0 {
                    break t;
                }
                std::hint::spin_loop();
            },
            Algorithm::Incremental => 0,
        };
        self.started = true;
    }

    /// Records an invocation marker (no-op without a recorder).
    fn rec_invoke(&mut self, op: TOpDesc) {
        if let Some(rec) = self.rec.as_mut() {
            rec.invoke(op);
            self.stm.stats.recorded(1);
        }
    }

    /// Records a response marker (no-op without a recorder).
    fn rec_respond(&mut self, op: TOpDesc, res: TOpResult) {
        if let Some(rec) = self.rec.as_mut() {
            rec.respond(op, res);
            self.stm.stats.recorded(1);
        }
    }

    /// Closes an abandoned attempt in the recorded history with a
    /// `tryC -> A_k` pair: a user body that returned its own error never
    /// reaches commit, but the history needs every transaction
    /// t-complete before its process starts the next one.
    fn close_aborted(&mut self) {
        if self.rec.as_ref().is_some_and(RecTx::needs_close) {
            self.rec_invoke(TOpDesc::TryCommit);
            self.rec_respond(TOpDesc::TryCommit, TOpResult::Aborted);
        }
    }

    /// Reads a variable.
    ///
    /// # Errors
    ///
    /// [`Retry`] if a concurrent commit made a consistent snapshot
    /// impossible, or if this attempt already returned [`Retry`] once;
    /// propagate it with `?`.
    pub fn read<T: TxValue>(&mut self, var: &TVar<T>) -> Result<T, Retry> {
        if self.poisoned {
            return Err(Retry);
        }
        self.ensure_started();
        self.stm.stats.read();
        let op = self.rec.as_ref().map(|r| TOpDesc::Read(r.object_of(var)));
        if let Some(op) = op {
            self.rec_invoke(op);
        }
        let out = self.read_raw(var);
        if let Some(op) = op {
            match &out {
                Ok(v) => self.rec_respond(op, TOpResult::Value(word_of(v))),
                Err(Retry) => self.rec_respond(op, TOpResult::Aborted),
            }
        }
        if out.is_err() {
            self.poisoned = true;
        }
        out
    }

    /// The algorithm-specific read path, without instrumentation.
    fn read_raw<T: TxValue>(&mut self, var: &TVar<T>) -> Result<T, Retry> {
        let id = var.id();
        if let Some(w) = self.log.lookup_write(id) {
            let v = w.value.downcast_ref::<T>().expect("write-set type");
            return Ok(v.clone());
        }
        match self.stm.algorithm {
            Algorithm::Tl2 => {
                let stripe = self.stm.orecs.stripe_of(id);
                let word = self.stm.orecs.word(stripe);
                let m1 = word.load(Ordering::Acquire);
                if orec::is_locked(m1) || orec::version_of(m1) > self.rv {
                    return Err(Retry);
                }
                let v = var.inner.read_snapshot(&self.pin);
                if word.load(Ordering::Acquire) != m1 {
                    return Err(Retry);
                }
                self.log.reads.push(VersionedRead { stripe, meta: m1 });
                Ok(v)
            }
            Algorithm::Incremental => {
                let stripe = self.stm.orecs.stripe_of(id);
                let word = self.stm.orecs.word(stripe);
                let m1 = word.load(Ordering::Acquire);
                if orec::is_locked(m1) {
                    return Err(Retry);
                }
                let v = var.inner.read_snapshot(&self.pin);
                if word.load(Ordering::Acquire) != m1 {
                    return Err(Retry);
                }
                // Incremental validation: every prior read, every time.
                self.validate_by_version(None)?;
                self.log.reads.push(VersionedRead { stripe, meta: m1 });
                Ok(v)
            }
            Algorithm::Norec => loop {
                let v = var.inner.read_snapshot(&self.pin);
                let t = self.stm.clock.load(Ordering::Acquire);
                if t == self.rv {
                    self.log.value_reads.push(ValueRead {
                        var: var.as_dyn(),
                        snapshot: Box::new(v.clone()),
                    });
                    return Ok(v);
                }
                self.rv = self.validate_by_value()?;
            },
        }
    }

    /// Reads, applies `f`, and writes back — the read-modify-write
    /// shorthand.
    ///
    /// # Errors
    ///
    /// [`Retry`] if the underlying read conflicts.
    ///
    /// # Examples
    ///
    /// ```
    /// use ptm_stm::{Stm, TVar};
    ///
    /// let stm = Stm::tl2();
    /// let v = TVar::new(10u64);
    /// stm.atomically(|tx| tx.modify(&v, |x| x * 2));
    /// assert_eq!(v.load(), 20);
    /// ```
    pub fn modify<T: TxValue>(
        &mut self,
        var: &TVar<T>,
        f: impl FnOnce(T) -> T,
    ) -> Result<(), Retry> {
        let v = self.read(var)?;
        self.write(var, f(v))
    }

    /// Buffers a write; visible to this transaction's later reads and
    /// published at commit.
    ///
    /// # Errors
    ///
    /// [`Retry`] if this attempt already returned [`Retry`] once
    /// (buffering itself never conflicts).
    pub fn write<T: TxValue>(&mut self, var: &TVar<T>, value: T) -> Result<(), Retry> {
        if self.poisoned {
            return Err(Retry);
        }
        self.ensure_started();
        self.stm.stats.write();
        let op = self
            .rec
            .as_ref()
            .map(|r| TOpDesc::Write(r.object_of(var), word_of(&value)));
        if let Some(op) = op {
            self.rec_invoke(op);
        }
        self.log
            .buffer_write(var.id(), var.as_dyn(), Box::new(value));
        if let Some(op) = op {
            self.rec_respond(op, TOpResult::Ok);
        }
        Ok(())
    }

    /// Version-equality validation of the read set; `held` lists stripes
    /// this transaction has locked, with their pre-lock words.
    fn validate_by_version(&self, held: Option<&[(usize, u64)]>) -> Result<(), Retry> {
        self.stm.stats.probes(self.log.reads.len() as u64);
        for r in &self.log.reads {
            if let Some(held) = held {
                if let Some(&(_, pre)) = held.iter().find(|(s, _)| *s == r.stripe) {
                    if pre != r.meta {
                        return Err(Retry);
                    }
                    continue;
                }
            }
            if self.stm.orecs.word(r.stripe).load(Ordering::Acquire) != r.meta {
                return Err(Retry);
            }
        }
        Ok(())
    }

    /// NOrec: waits for an even sequence value, then compares every read
    /// snapshot with the current value. Returns the validated time.
    fn validate_by_value(&mut self) -> Result<u64, Retry> {
        loop {
            let t = loop {
                let t = self.stm.clock.load(Ordering::Acquire);
                if t & 1 == 0 {
                    break t;
                }
                std::hint::spin_loop();
            };
            self.stm.stats.probes(self.log.value_reads.len() as u64);
            for r in &self.log.value_reads {
                if !r.var.value_eq(&self.pin, r.snapshot.as_ref()) {
                    return Err(Retry);
                }
            }
            if self.stm.clock.load(Ordering::Acquire) == t {
                return Ok(t);
            }
        }
    }

    /// Attempts to commit; returns whether the transaction is now durable.
    fn commit(&mut self) -> bool {
        if self.poisoned {
            return false;
        }
        self.ensure_started();
        self.rec_invoke(TOpDesc::TryCommit);
        let ok = if self.log.writes.is_empty() {
            true // read-only: serialized at its last validation
        } else {
            match self.stm.algorithm {
                Algorithm::Tl2 | Algorithm::Incremental => self.commit_versioned(),
                Algorithm::Norec => self.commit_norec(),
            }
        };
        let res = if ok {
            TOpResult::Committed
        } else {
            TOpResult::Aborted
        };
        self.rec_respond(TOpDesc::TryCommit, res);
        ok
    }

    fn commit_versioned(&mut self) -> bool {
        // The scratch buffers live in the log so a retrying transaction
        // reallocates nothing; take them out for the duration (restored
        // cleared below, on every exit path).
        let mut stripes = std::mem::take(&mut self.log.stripe_buf);
        let mut held = std::mem::take(&mut self.log.held_buf);
        let ok = self.commit_versioned_with(&mut stripes, &mut held);
        stripes.clear();
        held.clear();
        self.log.stripe_buf = stripes;
        self.log.held_buf = held;
        ok
    }

    fn commit_versioned_with(
        &mut self,
        stripes: &mut Vec<usize>,
        held: &mut Vec<(usize, u64)>,
    ) -> bool {
        // Try-lock the write set's stripes in sorted order (deduplicated:
        // several variables may share a stripe).
        stripes.extend(
            self.log
                .writes
                .iter()
                .map(|w| self.stm.orecs.stripe_of(w.id)),
        );
        stripes.sort_unstable();
        stripes.dedup();
        for &stripe in stripes.iter() {
            let word = self.stm.orecs.word(stripe);
            let m = word.load(Ordering::Acquire);
            let lock_ok = !orec::is_locked(m)
                && word
                    .compare_exchange(m, m | 1, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok();
            if !lock_ok {
                self.release(held, None);
                return false;
            }
            held.push((stripe, m));
        }
        if self.validate_by_version(Some(held)).is_err() {
            self.release(held, None);
            return false;
        }
        let wv = self.stm.clock.fetch_add(1, Ordering::AcqRel) + 1;
        let retired = self.log.publish_writes();
        self.release(held, Some(orec::stamped(wv)));
        // Retire only after every swap above: the epoch tag must postdate
        // the last moment a reader could have loaded an old pointer.
        epoch::retire_batch(retired);
        true
    }

    /// Releases held stripe locks: to their pre-lock word (on abort) or
    /// to a new stamped version (on commit).
    fn release(&self, held: &[(usize, u64)], stamp: Option<u64>) {
        for &(stripe, pre) in held {
            self.stm
                .orecs
                .word(stripe)
                .store(stamp.unwrap_or(pre), Ordering::Release);
        }
    }

    fn commit_norec(&mut self) -> bool {
        loop {
            let rv = self.rv;
            if self
                .stm
                .clock
                .compare_exchange(rv, rv + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                break;
            }
            match self.validate_by_value() {
                Ok(t) => self.rv = t,
                Err(Retry) => return false,
            }
        }
        let retired = self.log.publish_writes();
        self.stm.clock.store(self.rv + 2, Ordering::Release);
        epoch::retire_batch(retired);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cm::{CappedAttempts, ImmediateRetry};

    fn engines() -> Vec<Stm> {
        vec![Stm::tl2(), Stm::incremental(), Stm::norec()]
    }

    #[test]
    fn read_write_roundtrip_all_modes() {
        for stm in engines() {
            let v = TVar::new(1u64);
            stm.atomically(|tx| {
                let x = tx.read(&v)?;
                tx.write(&v, x + 10)?;
                Ok(())
            });
            assert_eq!(v.load(), 11, "{:?}", stm.algorithm());
        }
    }

    #[test]
    fn read_own_write_all_modes() {
        for stm in engines() {
            let v = TVar::new(5u64);
            let seen = stm.atomically(|tx| {
                tx.write(&v, 9)?;
                tx.read(&v)
            });
            assert_eq!(seen, 9);
        }
    }

    #[test]
    fn aborted_attempt_leaves_no_trace() {
        for stm in engines() {
            let v = TVar::new(0u64);
            let out = stm.try_once(|tx| {
                tx.write(&v, 99)?;
                Err::<(), Retry>(Retry)
            });
            assert!(out.is_none());
            assert_eq!(v.load(), 0);
        }
    }

    #[test]
    fn stats_track_commits_and_aborts() {
        let stm = Stm::tl2();
        let v = TVar::new(0u64);
        stm.atomically(|tx| tx.write(&v, 1));
        let _ = stm.try_once(|tx| {
            tx.read(&v)?;
            Err::<(), Retry>(Retry)
        });
        let s = stm.stats().snapshot();
        assert_eq!(s.commits, 1);
        assert_eq!(s.aborts, 1);
        assert_eq!(s.writes, 1);
    }

    #[test]
    fn incremental_mode_probes_quadratically() {
        let stm = Stm::incremental();
        let m = 32;
        let vars: Vec<TVar<u64>> = (0..m).map(|_| TVar::new(0)).collect();
        let before = stm.stats().snapshot();
        stm.atomically(|tx| {
            for v in &vars {
                tx.read(v)?;
            }
            Ok(())
        });
        let d = stm.stats().snapshot().since(&before);
        // Read i validates i-1 prior entries: m(m-1)/2 probes total.
        assert_eq!(d.validation_probes, (m * (m - 1) / 2) as u64);

        let stm2 = Stm::tl2();
        let before = stm2.stats().snapshot();
        stm2.atomically(|tx| {
            for v in &vars {
                tx.read(v)?;
            }
            Ok(())
        });
        let d2 = stm2.stats().snapshot().since(&before);
        // TL2 read-only transactions never probe the read set.
        assert_eq!(d2.validation_probes, 0);
    }

    #[test]
    fn concurrent_counter_increments_are_exact() {
        for stm in engines() {
            let stm = Arc::new(stm);
            let v = TVar::new(0u64);
            let threads = 4;
            let per = 500;
            std::thread::scope(|s| {
                for _ in 0..threads {
                    let stm = Arc::clone(&stm);
                    let v = v.clone();
                    s.spawn(move || {
                        for _ in 0..per {
                            stm.atomically(|tx| {
                                let x = tx.read(&v)?;
                                tx.write(&v, x + 1)
                            });
                        }
                    });
                }
            });
            assert_eq!(v.load(), threads * per, "{:?}", stm.algorithm());
        }
    }

    #[test]
    fn concurrent_bank_conserves_total() {
        for stm in engines() {
            let stm = Arc::new(stm);
            let accounts: Vec<TVar<u64>> = (0..8).map(|_| TVar::new(1000)).collect();
            let threads = 4;
            let per = 300;
            std::thread::scope(|s| {
                for t in 0..threads {
                    let stm = Arc::clone(&stm);
                    let accounts = accounts.clone();
                    s.spawn(move || {
                        let mut x = t as usize;
                        for i in 0..per {
                            let from = (x + i) % accounts.len();
                            let to = (x + i * 7 + 1) % accounts.len();
                            if from == to {
                                continue;
                            }
                            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                            stm.atomically(|tx| {
                                let a = tx.read(&accounts[from])?;
                                let b = tx.read(&accounts[to])?;
                                let amt = a.min(17);
                                tx.write(&accounts[from], a - amt)?;
                                tx.write(&accounts[to], b + amt)
                            });
                        }
                    });
                }
            });
            let total: u64 = accounts.iter().map(TVar::load).sum();
            assert_eq!(total, 8000, "{:?}", stm.algorithm());
        }
    }

    #[test]
    fn snapshot_isolation_is_not_allowed_write_skew() {
        // Write skew: two transactions each read both vars and write one.
        // A serializable STM must not let both commit from the same
        // snapshot; run many racing pairs and check the invariant
        // x + y <= 1 is never violated.
        for stm in engines() {
            let stm = Arc::new(stm);
            for _ in 0..200 {
                let x = TVar::new(0u64);
                let y = TVar::new(0u64);
                std::thread::scope(|s| {
                    let stm1 = Arc::clone(&stm);
                    let (x1, y1) = (x.clone(), y.clone());
                    s.spawn(move || {
                        stm1.atomically(|tx| {
                            let (a, b) = (tx.read(&x1)?, tx.read(&y1)?);
                            if a + b == 0 {
                                tx.write(&x1, 1)?;
                            }
                            Ok(())
                        });
                    });
                    let stm2 = Arc::clone(&stm);
                    let (x2, y2) = (x.clone(), y.clone());
                    s.spawn(move || {
                        stm2.atomically(|tx| {
                            let (a, b) = (tx.read(&x2)?, tx.read(&y2)?);
                            if a + b == 0 {
                                tx.write(&y2, 1)?;
                            }
                            Ok(())
                        });
                    });
                });
                assert!(x.load() + y.load() <= 1, "{:?}", stm.algorithm());
            }
        }
    }

    #[test]
    fn run_reports_exhaustion_instead_of_panicking() {
        let stm = Stm::builder(Algorithm::Tl2).max_attempts(3).build();
        let v = TVar::new(0u64);
        let out = stm.run(|tx| {
            tx.read(&v)?;
            Err::<(), Retry>(Retry)
        });
        assert_eq!(out, Err(RetriesExhausted { attempts: 3 }));
        assert_eq!(stm.stats().snapshot().aborts, 3);
    }

    #[test]
    fn contention_manager_give_up_is_honored() {
        let stm = Stm::builder(Algorithm::Norec)
            .contention_manager(CappedAttempts::wrapping(2, ImmediateRetry))
            .build();
        let out = stm.run(|_tx| Err::<(), Retry>(Retry));
        assert_eq!(out, Err(RetriesExhausted { attempts: 2 }));
    }

    #[test]
    #[should_panic(expected = "failed to commit after 1 attempts")]
    fn atomically_panics_when_budget_runs_out() {
        let stm = Stm::builder(Algorithm::Tl2).max_attempts(1).build();
        stm.atomically(|_tx| Err::<(), Retry>(Retry));
    }

    #[test]
    fn debug_output_names_policy_and_budget() {
        let stm = Stm::builder(Algorithm::Incremental)
            .max_attempts(42)
            .contention_manager(ImmediateRetry)
            .build();
        let s = format!("{stm:?}");
        assert!(s.contains("max_attempts: 42"), "{s}");
        assert!(s.contains("ImmediateRetry"), "{s}");
        assert!(s.contains("Incremental"), "{s}");
    }

    #[test]
    fn values_whose_drop_reenters_the_epoch_machinery() {
        // Regression: the collector used to drop displaced value boxes
        // while holding the thread-local epoch borrow, so a value whose
        // `Drop` pins the epoch again (here: `TVar::load` on a peer)
        // panicked with a RefCell BorrowMutError mid-commit.
        #[derive(Clone)]
        struct PinsOnDrop {
            peer: TVar<u64>,
            tag: u64,
        }
        impl PartialEq for PinsOnDrop {
            fn eq(&self, other: &Self) -> bool {
                self.tag == other.tag
            }
        }
        impl Drop for PinsOnDrop {
            fn drop(&mut self) {
                let _ = self.peer.load(); // pins the epoch
            }
        }

        let stm = Stm::tl2();
        let peer = TVar::new(0u64);
        let var = TVar::new(PinsOnDrop {
            peer: peer.clone(),
            tag: 0,
        });
        // Enough writing commits to push the thread bag past the collect
        // threshold several times over.
        for i in 1..=300u64 {
            stm.atomically(|tx| {
                tx.write(
                    &var,
                    PinsOnDrop {
                        peer: peer.clone(),
                        tag: i,
                    },
                )
            });
        }
        assert_eq!(var.load().tag, 300);
    }

    #[test]
    fn tiny_orec_table_still_serializes_correctly() {
        // One stripe: every variable conflicts with every other. The
        // engine must stay correct (if slower).
        let stm = Arc::new(Stm::builder(Algorithm::Tl2).orec_stripes(1).build());
        let a = TVar::new(0u64);
        let b = TVar::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let stm = Arc::clone(&stm);
                let (a, b) = (a.clone(), b.clone());
                s.spawn(move || {
                    for _ in 0..200 {
                        stm.atomically(|tx| {
                            let x = tx.read(&a)?;
                            let y = tx.read(&b)?;
                            tx.write(&a, x + 1)?;
                            tx.write(&b, y + 1)
                        });
                    }
                });
            }
        });
        assert_eq!(a.load(), 800);
        assert_eq!(b.load(), 800);
    }
}
