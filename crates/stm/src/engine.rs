//! The transaction engine: three validation algorithms behind one API.
//!
//! * [`Algorithm::Tl2`] — global version clock; reads validate in O(1)
//!   against the snapshot time; commit locks the write set, stamps values
//!   with a fresh clock tick, validates the read set once.
//! * [`Algorithm::Incremental`] — no clock read on the read path; every
//!   t-read re-validates the entire read set by version equality. This is
//!   the paper's invisible-read weak-DAP progressive TM transplanted to
//!   real hardware: quadratic validation work, observable in
//!   [`StmStats::snapshot`] and in wall-clock time.
//! * [`Algorithm::Norec`] — a single global sequence lock and value-based
//!   validation; no per-variable version traffic on commit besides the
//!   value itself.
//!
//! All modes buffer writes and publish them only at commit, so a failed
//! transaction never dirties shared state.

use crate::stats::StmStats;
use crate::tvar::{AnyTVar, TVar, TxValue};
use std::any::Any;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The validation algorithm an [`Stm`] instance runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Global version clock, O(1) read validation (default).
    Tl2,
    /// Full read-set re-validation on every read (paper's tight upper
    /// bound for weak-DAP + invisible reads; Θ(m²) total read cost).
    Incremental,
    /// Global sequence lock with value-based validation.
    Norec,
}

/// The transaction aborted and should be retried; returned by
/// transactional operations so user code can propagate it with `?`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Retry;

impl fmt::Display for Retry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "transaction conflict; retry")
    }
}

impl std::error::Error for Retry {}

/// Software transactional memory instance.
///
/// All transactions created from one `Stm` coordinate through its clock /
/// sequence lock; variables ([`TVar`]) are free-standing and may be used
/// with any `Stm`, but must not be shared between instances running
/// different algorithms.
pub struct Stm {
    algorithm: Algorithm,
    /// TL2/Incremental: version clock. NOrec: sequence lock (odd = busy).
    clock: AtomicU64,
    stats: Arc<StmStats>,
    max_attempts: usize,
}

impl fmt::Debug for Stm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Stm")
            .field("algorithm", &self.algorithm)
            .field("clock", &self.clock.load(Ordering::Relaxed))
            .finish()
    }
}

impl Stm {
    /// Creates an instance running the given algorithm.
    pub fn new(algorithm: Algorithm) -> Self {
        Stm {
            algorithm,
            clock: AtomicU64::new(0),
            stats: Arc::new(StmStats::default()),
            max_attempts: 10_000_000,
        }
    }

    /// TL2 instance (the default algorithm).
    pub fn tl2() -> Self {
        Stm::new(Algorithm::Tl2)
    }

    /// Incremental-validation instance.
    pub fn incremental() -> Self {
        Stm::new(Algorithm::Incremental)
    }

    /// NOrec instance.
    pub fn norec() -> Self {
        Stm::new(Algorithm::Norec)
    }

    /// The algorithm this instance runs.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// Progress statistics for this instance.
    pub fn stats(&self) -> &StmStats {
        &self.stats
    }

    /// Runs `body` in a transaction, retrying on conflict until it
    /// commits, and returns its result.
    ///
    /// # Panics
    ///
    /// Panics if the transaction still conflicts after an extreme number
    /// of attempts (ten million) — in practice only reachable if user code
    /// returns [`Retry`] unconditionally.
    pub fn atomically<A>(
        &self,
        mut body: impl FnMut(&mut Transaction<'_>) -> Result<A, Retry>,
    ) -> A {
        for attempt in 0..self.max_attempts {
            let mut tx = Transaction::new(self);
            match body(&mut tx) {
                Ok(out) => {
                    if tx.commit() {
                        self.stats.commit();
                        return out;
                    }
                }
                Err(Retry) => {}
            }
            self.stats.abort();
            backoff(attempt);
        }
        panic!("transaction failed to commit after {} attempts", self.max_attempts);
    }

    /// Runs `body` once, committing if it succeeds; returns `None` on
    /// conflict instead of retrying.
    pub fn try_once<A>(
        &self,
        body: impl FnOnce(&mut Transaction<'_>) -> Result<A, Retry>,
    ) -> Option<A> {
        let mut tx = Transaction::new(self);
        match body(&mut tx) {
            Ok(out) if tx.commit() => {
                self.stats.commit();
                Some(out)
            }
            _ => {
                self.stats.abort();
                None
            }
        }
    }

    /// Reads a variable outside any transaction (single-variable
    /// snapshot).
    pub fn read_now<T: TxValue>(&self, var: &TVar<T>) -> T {
        var.load()
    }
}

fn backoff(attempt: usize) {
    if attempt > 2 {
        for _ in 0..(1 << attempt.min(12)) {
            std::hint::spin_loop();
        }
    }
    if attempt > 16 {
        std::thread::yield_now();
    }
}

struct ReadEntry {
    id: usize,
    var: Arc<dyn AnyTVar>,
    /// Meta word observed at read time (TL2/Incremental).
    meta: u64,
    /// Value snapshot (NOrec only).
    snapshot: Option<Box<dyn Any + Send>>,
}

struct WriteEntry {
    id: usize,
    var: Arc<dyn AnyTVar>,
    value: Box<dyn Any + Send>,
}

/// An in-flight transaction; created by [`Stm::atomically`].
pub struct Transaction<'s> {
    stm: &'s Stm,
    /// Snapshot time (TL2: clock at begin; NOrec: sequence-lock value).
    rv: u64,
    started: bool,
    reads: Vec<ReadEntry>,
    writes: Vec<WriteEntry>,
}

impl fmt::Debug for Transaction<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Transaction")
            .field("rv", &self.rv)
            .field("reads", &self.reads.len())
            .field("writes", &self.writes.len())
            .finish()
    }
}

impl<'s> Transaction<'s> {
    fn new(stm: &'s Stm) -> Self {
        Transaction { stm, rv: 0, started: false, reads: Vec::new(), writes: Vec::new() }
    }

    /// Lazily samples the snapshot time at the first operation.
    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.rv = match self.stm.algorithm {
            Algorithm::Tl2 => self.stm.clock.load(Ordering::Acquire),
            Algorithm::Norec => loop {
                let t = self.stm.clock.load(Ordering::Acquire);
                if t & 1 == 0 {
                    break t;
                }
                std::hint::spin_loop();
            },
            Algorithm::Incremental => 0,
        };
        self.started = true;
    }

    /// Reads a variable.
    ///
    /// # Errors
    ///
    /// [`Retry`] if a concurrent commit made a consistent snapshot
    /// impossible; propagate it with `?`.
    pub fn read<T: TxValue>(&mut self, var: &TVar<T>) -> Result<T, Retry> {
        self.ensure_started();
        self.stm.stats.read();
        let id = var.id();
        if let Some(w) = self.writes.iter().find(|w| w.id == id) {
            let v = w.value.downcast_ref::<T>().expect("write-set type");
            return Ok(v.clone());
        }
        match self.stm.algorithm {
            Algorithm::Tl2 => {
                let m1 = var.inner.meta().load(Ordering::Acquire);
                if m1 & 1 == 1 || (m1 >> 1) > self.rv {
                    return Err(Retry);
                }
                let v = var.load();
                if var.inner.meta().load(Ordering::Acquire) != m1 {
                    return Err(Retry);
                }
                self.reads.push(ReadEntry { id, var: var.as_dyn(), meta: m1, snapshot: None });
                Ok(v)
            }
            Algorithm::Incremental => {
                let m1 = var.inner.meta().load(Ordering::Acquire);
                if m1 & 1 == 1 {
                    return Err(Retry);
                }
                let v = var.load();
                if var.inner.meta().load(Ordering::Acquire) != m1 {
                    return Err(Retry);
                }
                // Incremental validation: every prior read, every time.
                self.validate_by_version(None)?;
                self.reads.push(ReadEntry { id, var: var.as_dyn(), meta: m1, snapshot: None });
                Ok(v)
            }
            Algorithm::Norec => loop {
                let v = var.load();
                let t = self.stm.clock.load(Ordering::Acquire);
                if t == self.rv {
                    self.reads.push(ReadEntry {
                        id,
                        var: var.as_dyn(),
                        meta: 0,
                        snapshot: Some(Box::new(v.clone())),
                    });
                    return Ok(v);
                }
                self.rv = self.validate_by_value()?;
            },
        }
    }

    /// Reads, applies `f`, and writes back — the read-modify-write
    /// shorthand.
    ///
    /// # Errors
    ///
    /// [`Retry`] if the underlying read conflicts.
    ///
    /// # Examples
    ///
    /// ```
    /// use ptm_stm::{Stm, TVar};
    ///
    /// let stm = Stm::tl2();
    /// let v = TVar::new(10u64);
    /// stm.atomically(|tx| tx.modify(&v, |x| x * 2));
    /// assert_eq!(v.load(), 20);
    /// ```
    pub fn modify<T: TxValue>(
        &mut self,
        var: &TVar<T>,
        f: impl FnOnce(T) -> T,
    ) -> Result<(), Retry> {
        let v = self.read(var)?;
        self.write(var, f(v))
    }

    /// Buffers a write; visible to this transaction's later reads and
    /// published at commit.
    ///
    /// # Errors
    ///
    /// [`Retry`] is reserved for symmetry (buffering never conflicts).
    pub fn write<T: TxValue>(&mut self, var: &TVar<T>, value: T) -> Result<(), Retry> {
        self.ensure_started();
        self.stm.stats.write();
        let id = var.id();
        if let Some(w) = self.writes.iter_mut().find(|w| w.id == id) {
            w.value = Box::new(value);
        } else {
            self.writes.push(WriteEntry { id, var: var.as_dyn(), value: Box::new(value) });
        }
        Ok(())
    }

    /// Version-equality validation of the read set; `held` marks entries
    /// whose locks this transaction holds (their meta has the lock bit).
    fn validate_by_version(&self, held: Option<&[(usize, u64)]>) -> Result<(), Retry> {
        self.stm.stats.probes(self.reads.len() as u64);
        for r in &self.reads {
            if let Some(held) = held {
                if let Some(&(_, pre)) = held.iter().find(|(id, _)| *id == r.id) {
                    if pre != r.meta {
                        return Err(Retry);
                    }
                    continue;
                }
            }
            if r.var.meta().load(Ordering::Acquire) != r.meta {
                return Err(Retry);
            }
        }
        Ok(())
    }

    /// NOrec: waits for an even sequence value, then compares every read
    /// snapshot with the current value. Returns the validated time.
    fn validate_by_value(&mut self) -> Result<u64, Retry> {
        loop {
            let t = loop {
                let t = self.stm.clock.load(Ordering::Acquire);
                if t & 1 == 0 {
                    break t;
                }
                std::hint::spin_loop();
            };
            self.stm.stats.probes(self.reads.len() as u64);
            for r in &self.reads {
                let snap = r.snapshot.as_ref().expect("norec keeps snapshots");
                if !r.var.value_eq(snap.as_ref()) {
                    return Err(Retry);
                }
            }
            if self.stm.clock.load(Ordering::Acquire) == t {
                return Ok(t);
            }
        }
    }

    /// Attempts to commit; returns whether the transaction is now durable.
    fn commit(&mut self) -> bool {
        self.ensure_started();
        if self.writes.is_empty() {
            return true; // read-only: serialized at its last validation
        }
        match self.stm.algorithm {
            Algorithm::Tl2 | Algorithm::Incremental => self.commit_versioned(),
            Algorithm::Norec => self.commit_norec(),
        }
    }

    fn commit_versioned(&mut self) -> bool {
        // Try-lock the write set in id order.
        self.writes.sort_by_key(|w| w.id);
        let mut held: Vec<(usize, u64)> = Vec::with_capacity(self.writes.len());
        for w in &self.writes {
            let m = w.var.meta().load(Ordering::Acquire);
            let lock_ok = m & 1 == 0
                && w.var
                    .meta()
                    .compare_exchange(m, m | 1, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok();
            if !lock_ok {
                self.release(&held, None);
                return false;
            }
            held.push((w.id, m));
        }
        if self.validate_by_version(Some(&held)).is_err() {
            self.release(&held, None);
            return false;
        }
        let wv = self.stm.clock.fetch_add(1, Ordering::AcqRel) + 1;
        for w in &self.writes {
            w.var.write_boxed(w.value.as_ref());
        }
        self.release(&held, Some(wv << 1));
        true
    }

    /// Releases held locks: to their pre-lock meta (on abort) or to a new
    /// stamped version (on commit).
    fn release(&self, held: &[(usize, u64)], stamp: Option<u64>) {
        for &(id, pre) in held {
            let w = self
                .writes
                .iter()
                .find(|w| w.id == id)
                .expect("held lock belongs to write set");
            w.var.meta().store(stamp.unwrap_or(pre), Ordering::Release);
        }
    }

    fn commit_norec(&mut self) -> bool {
        loop {
            let rv = self.rv;
            if self
                .stm
                .clock
                .compare_exchange(rv, rv + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                break;
            }
            match self.validate_by_value() {
                Ok(t) => self.rv = t,
                Err(Retry) => return false,
            }
        }
        for w in &self.writes {
            w.var.write_boxed(w.value.as_ref());
        }
        self.stm.clock.store(self.rv + 2, Ordering::Release);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engines() -> Vec<Stm> {
        vec![Stm::tl2(), Stm::incremental(), Stm::norec()]
    }

    #[test]
    fn read_write_roundtrip_all_modes() {
        for stm in engines() {
            let v = TVar::new(1u64);
            stm.atomically(|tx| {
                let x = tx.read(&v)?;
                tx.write(&v, x + 10)?;
                Ok(())
            });
            assert_eq!(v.load(), 11, "{:?}", stm.algorithm());
        }
    }

    #[test]
    fn read_own_write_all_modes() {
        for stm in engines() {
            let v = TVar::new(5u64);
            let seen = stm.atomically(|tx| {
                tx.write(&v, 9)?;
                tx.read(&v)
            });
            assert_eq!(seen, 9);
        }
    }

    #[test]
    fn aborted_attempt_leaves_no_trace() {
        for stm in engines() {
            let v = TVar::new(0u64);
            let out = stm.try_once(|tx| {
                tx.write(&v, 99)?;
                Err::<(), Retry>(Retry)
            });
            assert!(out.is_none());
            assert_eq!(v.load(), 0);
        }
    }

    #[test]
    fn stats_track_commits_and_aborts() {
        let stm = Stm::tl2();
        let v = TVar::new(0u64);
        stm.atomically(|tx| tx.write(&v, 1));
        let _ = stm.try_once(|tx| {
            tx.read(&v)?;
            Err::<(), Retry>(Retry)
        });
        let s = stm.stats().snapshot();
        assert_eq!(s.commits, 1);
        assert_eq!(s.aborts, 1);
        assert_eq!(s.writes, 1);
    }

    #[test]
    fn incremental_mode_probes_quadratically() {
        let stm = Stm::incremental();
        let m = 32;
        let vars: Vec<TVar<u64>> = (0..m).map(|_| TVar::new(0)).collect();
        let before = stm.stats().snapshot();
        stm.atomically(|tx| {
            for v in &vars {
                tx.read(v)?;
            }
            Ok(())
        });
        let d = stm.stats().snapshot().since(&before);
        // Read i validates i-1 prior entries: m(m-1)/2 probes total.
        assert_eq!(d.validation_probes, (m * (m - 1) / 2) as u64);

        let stm2 = Stm::tl2();
        let before = stm2.stats().snapshot();
        stm2.atomically(|tx| {
            for v in &vars {
                tx.read(v)?;
            }
            Ok(())
        });
        let d2 = stm2.stats().snapshot().since(&before);
        // TL2 read-only transactions never probe the read set.
        assert_eq!(d2.validation_probes, 0);
    }

    #[test]
    fn concurrent_counter_increments_are_exact() {
        for stm in engines() {
            let stm = Arc::new(stm);
            let v = TVar::new(0u64);
            let threads = 4;
            let per = 500;
            std::thread::scope(|s| {
                for _ in 0..threads {
                    let stm = Arc::clone(&stm);
                    let v = v.clone();
                    s.spawn(move || {
                        for _ in 0..per {
                            stm.atomically(|tx| {
                                let x = tx.read(&v)?;
                                tx.write(&v, x + 1)
                            });
                        }
                    });
                }
            });
            assert_eq!(v.load(), threads * per, "{:?}", stm.algorithm());
        }
    }

    #[test]
    fn concurrent_bank_conserves_total() {
        for stm in engines() {
            let stm = Arc::new(stm);
            let accounts: Vec<TVar<u64>> = (0..8).map(|_| TVar::new(1000)).collect();
            let threads = 4;
            let per = 300;
            std::thread::scope(|s| {
                for t in 0..threads {
                    let stm = Arc::clone(&stm);
                    let accounts = accounts.clone();
                    s.spawn(move || {
                        let mut x = t as usize;
                        for i in 0..per {
                            let from = (x + i) % accounts.len();
                            let to = (x + i * 7 + 1) % accounts.len();
                            if from == to {
                                continue;
                            }
                            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                            stm.atomically(|tx| {
                                let a = tx.read(&accounts[from])?;
                                let b = tx.read(&accounts[to])?;
                                let amt = a.min(17);
                                tx.write(&accounts[from], a - amt)?;
                                tx.write(&accounts[to], b + amt)
                            });
                        }
                    });
                }
            });
            let total: u64 = accounts.iter().map(TVar::load).sum();
            assert_eq!(total, 8000, "{:?}", stm.algorithm());
        }
    }

    #[test]
    fn snapshot_isolation_is_not_allowed_write_skew() {
        // Write skew: two transactions each read both vars and write one.
        // A serializable STM must not let both commit from the same
        // snapshot; run many racing pairs and check the invariant
        // x + y <= 1 is never violated.
        for stm in engines() {
            let stm = Arc::new(stm);
            for _ in 0..200 {
                let x = TVar::new(0u64);
                let y = TVar::new(0u64);
                std::thread::scope(|s| {
                    let stm1 = Arc::clone(&stm);
                    let (x1, y1) = (x.clone(), y.clone());
                    s.spawn(move || {
                        stm1.atomically(|tx| {
                            let (a, b) = (tx.read(&x1)?, tx.read(&y1)?);
                            if a + b == 0 {
                                tx.write(&x1, 1)?;
                            }
                            Ok(())
                        });
                    });
                    let stm2 = Arc::clone(&stm);
                    let (x2, y2) = (x.clone(), y.clone());
                    s.spawn(move || {
                        stm2.atomically(|tx| {
                            let (a, b) = (tx.read(&x2)?, tx.read(&y2)?);
                            if a + b == 0 {
                                tx.write(&y2, 1)?;
                            }
                            Ok(())
                        });
                    });
                });
                assert!(x.load() + y.load() <= 1, "{:?}", stm.algorithm());
            }
        }
    }
}
