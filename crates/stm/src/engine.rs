//! The transaction engine: five validation algorithms behind one API.
//!
//! * [`Algorithm::Tl2`] — global version clock plus the striped orec
//!   table ([`crate::orec`]): reads validate in O(1) against the snapshot
//!   time with an optimistic word-check/read/re-check and **acquire no
//!   lock**; commit locks the write set's stripes in sorted order, stamps
//!   them with a fresh clock tick, validates the read set once.
//! * [`Algorithm::Incremental`] — no clock read on the read path; every
//!   t-read re-validates the entire read set by version equality. This is
//!   the paper's invisible-read weak-DAP progressive TM transplanted to
//!   real hardware: quadratic validation work, observable in
//!   [`StmStats::snapshot`] and in wall-clock time.
//! * [`Algorithm::Norec`] — a single global sequence lock and value-based
//!   validation; no per-variable version traffic on commit besides the
//!   value itself.
//! * [`Algorithm::Tlrw`] — TLRW-style **visible reads**: the first read
//!   of a stripe announces a reader on its reader–writer word and holds
//!   that read lock to commit, so reads cost O(1) with **zero
//!   validation** and writers abort on foreign readers. The other side
//!   of the paper's time–space tradeoff, measurable against the three
//!   invisible-read designs above.
//! * [`Algorithm::Adaptive`] — a mode controller that samples windowed
//!   [`StatsSnapshot`](crate::StatsSnapshot) deltas and moves the live
//!   engine between the Tl2 (invisible) and Tlrw (visible) hooks through
//!   an epoch-quiesced orec-table reinterpretation; see
//!   [`crate::AdaptiveConfig`] for the decision signals and knobs.
//!
//! The algorithm-specific read/commit/snapshot behaviour lives in the
//! [`crate::algo`] strategy layer (one module per algorithm, three hooks
//! each); this module owns everything generic: the transaction log, the
//! retry loop, instrumentation, epoch pinning, and read-lock cleanup.
//! All modes buffer writes in the shared transaction log
//! ([`crate::txlog`]) and publish them only at commit, so a failed
//! transaction never dirties shared state. Retry behaviour is a pluggable
//! [`ContentionManager`] chosen through [`StmBuilder`].

use crate::algo;
use crate::algo::adaptive::{self, AdaptiveConfig, AdaptiveState, Mode};
use crate::cm::{ContentionManager, Decision, ExponentialBackoff};
use crate::epoch;
use crate::orec::{self, OrecTable};
use crate::recorder::{word_of, HistoryRecorder, RecTx};
use crate::stats::StmStats;
use crate::tvar::{TVar, TxValue};
use crate::txlog::TxLog;
use ptm_sim::{TOpDesc, TOpResult};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The validation algorithm an [`Stm`] instance runs.
///
/// Four static design points span the paper's time–space tradeoff;
/// [`Algorithm::Adaptive`] moves between the two ends of it at runtime.
///
/// # Examples
///
/// ```
/// use ptm_stm::{Algorithm, Stm, TVar};
///
/// let v = TVar::new(0u64);
/// for algo in [
///     Algorithm::Tl2,
///     Algorithm::Incremental,
///     Algorithm::Norec,
///     Algorithm::Tlrw,
///     Algorithm::Adaptive,
/// ] {
///     let stm = Stm::new(algo);
///     stm.atomically(|tx| tx.modify(&v, |x| x + 1));
/// }
/// assert_eq!(v.load(), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Global version clock, O(1) lock-free read validation (default).
    Tl2,
    /// Full read-set re-validation on every read (paper's tight upper
    /// bound for weak-DAP + invisible reads; Θ(m²) total read cost).
    Incremental,
    /// Global sequence lock with value-based validation.
    Norec,
    /// TLRW-style visible reads (Dice–Shavit): per-stripe reader–writer
    /// lock words, O(1) reads with **no validation at all** — paid for
    /// with one shared-memory RMW inside every first read of a stripe,
    /// and with writers aborting whenever foreign readers are present.
    /// Progressive but *not* strongly progressive (two read-to-write
    /// upgraders on one stripe abort each other). The native twin of
    /// `ptm-core`'s simulated `TlrwTm`.
    Tlrw,
    /// Workload-driven switching between the invisible-read (Tl2) and
    /// visible-read (Tlrw) modes: a controller samples stats deltas over
    /// commit windows (read/write ratio, abort rate, validation probes
    /// per read, reader conflicts) and reinterprets the orec table
    /// between the versioned and reader–writer word formats through an
    /// epoch-quiesced transition — in-flight transactions always finish
    /// under the mode they started in. Starts invisible; tune with
    /// [`StmBuilder::adaptive_config`], observe through
    /// [`StatsSnapshot`](crate::StatsSnapshot)'s `mode_transitions` /
    /// `visible_mode` and [`Stm::active_mode`].
    Adaptive,
}

/// The transaction aborted and should be retried; returned by
/// transactional operations so user code can propagate it with `?`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Retry;

impl fmt::Display for Retry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "transaction conflict; retry")
    }
}

impl std::error::Error for Retry {}

/// The retry budget ran out before the transaction committed: either the
/// instance's `max_attempts` was reached or its contention manager gave
/// up. Returned by [`Stm::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetriesExhausted {
    /// Attempts consumed before giving up.
    pub attempts: u64,
}

impl fmt::Display for RetriesExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "transaction failed to commit after {} attempts",
            self.attempts
        )
    }
}

impl std::error::Error for RetriesExhausted {}

/// Configures and builds an [`Stm`] instance.
///
/// # Examples
///
/// ```
/// use ptm_stm::{Algorithm, CappedAttempts, Stm};
///
/// let stm = Stm::builder(Algorithm::Tl2)
///     .max_attempts(1_000)
///     .orec_stripes(256)
///     .contention_manager(CappedAttempts::new(500))
///     .build();
/// assert!(format!("{stm:?}").contains("max_attempts: 1000"));
/// ```
#[derive(Debug)]
pub struct StmBuilder {
    algorithm: Algorithm,
    max_attempts: u64,
    orec_stripes: usize,
    cm: Box<dyn ContentionManager>,
    recorder: Option<HistoryRecorder>,
    adaptive: AdaptiveConfig,
}

impl StmBuilder {
    /// Starts from the defaults: 10 million attempts, exponential
    /// backoff, 1024 orec stripes, no history recording, default
    /// adaptive tuning.
    pub fn new(algorithm: Algorithm) -> Self {
        StmBuilder {
            algorithm,
            max_attempts: 10_000_000,
            orec_stripes: orec::DEFAULT_STRIPES,
            cm: Box::new(ExponentialBackoff::default()),
            recorder: None,
            adaptive: AdaptiveConfig::default(),
        }
    }

    /// Hard ceiling on attempts per transaction before the engine gives
    /// up (panic from [`Stm::atomically`], error from [`Stm::run`]).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn max_attempts(mut self, n: u64) -> Self {
        assert!(n > 0, "max_attempts must be at least 1");
        self.max_attempts = n;
        self
    }

    /// Number of orec stripes (rounded up to a power of two). More
    /// stripes mean fewer false conflicts; fewer mean less memory.
    /// Ignored by NOrec, which has no orecs.
    pub fn orec_stripes(mut self, stripes: usize) -> Self {
        self.orec_stripes = stripes;
        self
    }

    /// The retry policy consulted between aborted attempts.
    pub fn contention_manager(mut self, cm: impl ContentionManager + 'static) -> Self {
        self.cm = Box::new(cm);
        self
    }

    /// Records every transaction of this instance as a t-operation
    /// history into `recorder`, for cross-checking real concurrent runs
    /// against the `ptm-model` opacity/serializability checkers. Keep a
    /// clone of the recorder to [`HistoryRecorder::drain`] afterwards.
    ///
    /// Recording adds one globally sequenced marker per operation
    /// boundary, so it perturbs timing; leave it off for benchmarks.
    pub fn record_history(mut self, recorder: HistoryRecorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Tuning knobs for [`Algorithm::Adaptive`]'s mode controller:
    /// sampling window, switch thresholds, hysteresis, drain budget.
    /// Ignored by the static algorithms.
    pub fn adaptive_config(mut self, cfg: AdaptiveConfig) -> Self {
        self.adaptive = cfg;
        self
    }

    /// Builds the instance.
    ///
    /// # Panics
    ///
    /// Panics if the algorithm is [`Algorithm::Adaptive`] and the
    /// [`AdaptiveConfig`] is inconsistent (see its field docs).
    pub fn build(self) -> Stm {
        // NOrec never touches orecs; don't pay ~128 KB of padded words
        // for a table no code path reads.
        let stripes = match self.algorithm {
            Algorithm::Norec => 1,
            Algorithm::Tl2 | Algorithm::Incremental | Algorithm::Tlrw | Algorithm::Adaptive => {
                self.orec_stripes
            }
        };
        let adaptive = match self.algorithm {
            Algorithm::Adaptive => {
                self.adaptive.validate();
                Some(AdaptiveState::new(self.adaptive))
            }
            _ => None,
        };
        let stats = Arc::new(StmStats::default());
        // Adaptive starts in its invisible mode, so only Tlrw begins
        // life visible.
        stats.set_visible_mode(self.algorithm == Algorithm::Tlrw);
        Stm {
            algorithm: self.algorithm,
            clock: AtomicU64::new(0),
            orecs: OrecTable::new(stripes),
            stats,
            max_attempts: self.max_attempts,
            cm: self.cm,
            recorder: self.recorder,
            adaptive,
        }
    }
}

/// Software transactional memory instance.
///
/// All transactions created from one `Stm` coordinate through its clock /
/// sequence lock and its orec table; variables ([`TVar`]) are
/// free-standing and may be used with any `Stm`, but must not be shared
/// between instances running concurrently.
pub struct Stm {
    pub(crate) algorithm: Algorithm,
    /// TL2/Incremental: version clock. NOrec: sequence lock (odd = busy).
    /// Tlrw: unused (consistency comes from held read locks).
    pub(crate) clock: AtomicU64,
    /// Striped metadata words: versioned locks (TL2/Incremental) or
    /// reader–writer locks (Tlrw); unused by NOrec.
    pub(crate) orecs: OrecTable,
    pub(crate) stats: Arc<StmStats>,
    max_attempts: u64,
    cm: Box<dyn ContentionManager>,
    /// Present when this instance records t-operation histories.
    recorder: Option<HistoryRecorder>,
    /// Present on `Algorithm::Adaptive` instances: the live mode, the
    /// per-mode active-transaction counters, and the window controller.
    pub(crate) adaptive: Option<AdaptiveState>,
}

impl fmt::Debug for Stm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Stm")
            .field("algorithm", &self.algorithm)
            .field("active_mode", &self.active_mode())
            .field("clock", &self.clock.load(Ordering::Relaxed))
            .field("orec_stripes", &self.orecs.len())
            .field("max_attempts", &self.max_attempts)
            .field("contention_manager", &self.cm)
            .field("recording", &self.recorder.is_some())
            .finish()
    }
}

impl Stm {
    /// Creates an instance running the given algorithm with default
    /// settings (see [`StmBuilder::new`]).
    pub fn new(algorithm: Algorithm) -> Self {
        StmBuilder::new(algorithm).build()
    }

    /// Starts configuring an instance.
    pub fn builder(algorithm: Algorithm) -> StmBuilder {
        StmBuilder::new(algorithm)
    }

    /// TL2 instance (the default algorithm).
    pub fn tl2() -> Self {
        Stm::new(Algorithm::Tl2)
    }

    /// Incremental-validation instance.
    pub fn incremental() -> Self {
        Stm::new(Algorithm::Incremental)
    }

    /// NOrec instance.
    pub fn norec() -> Self {
        Stm::new(Algorithm::Norec)
    }

    /// Tlrw (visible-reads) instance.
    pub fn tlrw() -> Self {
        Stm::new(Algorithm::Tlrw)
    }

    /// Adaptive instance (workload-driven Tl2 ⇄ Tlrw switching) with
    /// default tuning.
    pub fn adaptive() -> Self {
        Stm::new(Algorithm::Adaptive)
    }

    /// The algorithm this instance runs.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The read/commit machinery currently in force: the algorithm
    /// itself for static instances; for [`Algorithm::Adaptive`], the
    /// live mode — [`Algorithm::Tl2`] (invisible) or [`Algorithm::Tlrw`]
    /// (visible).
    ///
    /// # Examples
    ///
    /// ```
    /// use ptm_stm::{Algorithm, Stm};
    ///
    /// assert_eq!(Stm::norec().active_mode(), Algorithm::Norec);
    /// assert_eq!(Stm::adaptive().active_mode(), Algorithm::Tl2);
    /// ```
    pub fn active_mode(&self) -> Algorithm {
        match &self.adaptive {
            None => self.algorithm,
            Some(ad) => match ad.mode() {
                Mode::Invisible => Algorithm::Tl2,
                Mode::Visible => Algorithm::Tlrw,
            },
        }
    }

    /// The per-transaction attempt ceiling.
    pub fn max_attempts(&self) -> u64 {
        self.max_attempts
    }

    /// Progress statistics for this instance.
    pub fn stats(&self) -> &StmStats {
        &self.stats
    }

    /// The history recorder attached via [`StmBuilder::record_history`],
    /// if any.
    pub fn recorder(&self) -> Option<&HistoryRecorder> {
        self.recorder.as_ref()
    }

    /// Runs `body` in a transaction, retrying on conflict until it
    /// commits, and returns its result.
    ///
    /// # Panics
    ///
    /// Panics if the retry budget runs out — `max_attempts` is reached
    /// (default: ten million) or the contention manager gives up. Use
    /// [`Stm::run`] to handle exhaustion as a value instead.
    pub fn atomically<A>(&self, body: impl FnMut(&mut Transaction<'_>) -> Result<A, Retry>) -> A {
        match self.run(body) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// Runs `body` in a transaction, retrying on conflict, and reports
    /// retry-budget exhaustion as an error instead of panicking.
    ///
    /// # Errors
    ///
    /// [`RetriesExhausted`] if `max_attempts` attempts all aborted or the
    /// contention manager returned [`Decision::GiveUp`].
    pub fn run<A>(
        &self,
        mut body: impl FnMut(&mut Transaction<'_>) -> Result<A, Retry>,
    ) -> Result<A, RetriesExhausted> {
        let mut log = TxLog::default();
        let mut attempt: u64 = 0;
        loop {
            let mut tx = Transaction::begin(self, log);
            let committed = match body(&mut tx) {
                Ok(out) if tx.commit() => Some(out),
                _ => None,
            };
            if let Some(out) = committed {
                // Drop before the controller hook: the adaptive sampler
                // may quiesce the instance, which must never wait on the
                // sampling thread's own (finished) transaction.
                drop(tx);
                self.stats.commit();
                adaptive::after_commit(self);
                return Ok(out);
            }
            tx.close_aborted();
            log = tx.into_log();
            self.stats.abort();
            attempt += 1;
            if attempt >= self.max_attempts {
                return Err(RetriesExhausted { attempts: attempt });
            }
            if self.cm.on_abort(attempt - 1) == Decision::GiveUp {
                return Err(RetriesExhausted { attempts: attempt });
            }
        }
    }

    /// Runs `body` once, committing if it succeeds; returns `None` on
    /// conflict instead of retrying.
    pub fn try_once<A>(
        &self,
        body: impl FnOnce(&mut Transaction<'_>) -> Result<A, Retry>,
    ) -> Option<A> {
        let mut tx = Transaction::begin(self, TxLog::default());
        let committed = match body(&mut tx) {
            Ok(out) if tx.commit() => Some(out),
            _ => {
                tx.close_aborted();
                None
            }
        };
        drop(tx);
        match committed {
            Some(out) => {
                self.stats.commit();
                adaptive::after_commit(self);
                Some(out)
            }
            None => {
                self.stats.abort();
                None
            }
        }
    }

    /// Reads a variable outside any transaction (single-variable
    /// snapshot).
    pub fn read_now<T: TxValue>(&self, var: &TVar<T>) -> T {
        var.load()
    }
}

/// An in-flight transaction; created by [`Stm::atomically`].
pub struct Transaction<'s> {
    pub(crate) stm: &'s Stm,
    /// Snapshot time (TL2: clock at begin; NOrec: sequence-lock value;
    /// Incremental/Tlrw: unused). The NOrec read path advances it.
    pub(crate) rv: u64,
    started: bool,
    /// Set when an operation returned [`Retry`]: the attempt is doomed
    /// (and t-complete in any recorded history), so every later operation
    /// short-circuits to `Retry` and commit refuses. User code that
    /// swallows a `Retry` instead of propagating it therefore cannot
    /// commit an attempt the engine already aborted.
    poisoned: bool,
    pub(crate) log: TxLog,
    /// The concrete hook set this attempt runs: the instance's algorithm
    /// for static instances; for `Algorithm::Adaptive`, the begin hook
    /// overwrites it with the pinned mode (`Tl2` or `Tlrw`), so the
    /// per-operation dispatch costs one match — no double indirection —
    /// and stays on the pinned hooks even if the controller switches the
    /// instance mid-flight.
    pub(crate) mode: Algorithm,
    /// The adaptive mode this attempt registered in (`Algorithm::
    /// Adaptive` only): names the active counter to release on drop.
    pub(crate) pinned: Option<Mode>,
    /// History-recording state for this attempt, when the instance has a
    /// recorder attached.
    rec: Option<RecTx>,
    /// Epoch pin: keeps every pointer this transaction may dereference
    /// alive for its whole lifetime (also makes `Transaction: !Send`).
    pub(crate) pin: epoch::Guard,
}

impl Drop for Transaction<'_> {
    /// Last-resort release of visible-read locks: commit and the abort
    /// paths release them eagerly, but a panicking body (or a dropped
    /// `try_once` attempt) must not leave reader counts behind — a leaked
    /// read lock would starve every later writer on the stripe. Also
    /// deregisters the attempt from its pinned mode's active counter
    /// (adaptive instances), on which a pending mode switch may be
    /// waiting.
    fn drop(&mut self) {
        self.release_read_locks();
        adaptive::release_slot(self);
    }
}

impl fmt::Debug for Transaction<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Transaction")
            .field("rv", &self.rv)
            .field("poisoned", &self.poisoned)
            .field("log", &self.log)
            .finish()
    }
}

impl<'s> Transaction<'s> {
    fn begin(stm: &'s Stm, log: TxLog) -> Self {
        Transaction {
            stm,
            rv: 0,
            started: false,
            poisoned: false,
            log,
            mode: stm.algorithm,
            pinned: None,
            rec: stm.recorder.as_ref().map(HistoryRecorder::begin_tx),
            pin: epoch::pin(),
        }
    }

    /// Recovers the log for reuse by the next attempt (capacity is kept,
    /// entries are cleared), releasing any read locks the aborted
    /// attempt still holds.
    fn into_log(mut self) -> TxLog {
        self.release_read_locks();
        let mut log = std::mem::take(&mut self.log);
        log.reset();
        log
    }

    /// Undoes every visible-read lock this attempt still holds (no-op
    /// under the invisible-read algorithms, whose `rw_reads` stays
    /// empty). Arithmetic release: transient foreign increments survive.
    pub(crate) fn release_read_locks(&mut self) {
        for stripe in self.log.rw_drain() {
            self.stm
                .orecs
                .word(stripe)
                .fetch_sub(orec::RW_READER, Ordering::AcqRel);
        }
    }

    /// Lazily samples the snapshot time (and, for adaptive instances,
    /// pins the mode) at the first operation.
    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        algo::begin(self);
        self.started = true;
    }

    /// Records an invocation marker (no-op without a recorder).
    fn rec_invoke(&mut self, op: TOpDesc) {
        if let Some(rec) = self.rec.as_mut() {
            rec.invoke(op);
            self.stm.stats.recorded(1);
        }
    }

    /// Records a response marker (no-op without a recorder).
    fn rec_respond(&mut self, op: TOpDesc, res: TOpResult) {
        if let Some(rec) = self.rec.as_mut() {
            rec.respond(op, res);
            self.stm.stats.recorded(1);
        }
    }

    /// Closes an abandoned attempt in the recorded history with a
    /// `tryC -> A_k` pair: a user body that returned its own error never
    /// reaches commit, but the history needs every transaction
    /// t-complete before its process starts the next one.
    fn close_aborted(&mut self) {
        if self.rec.as_ref().is_some_and(RecTx::needs_close) {
            self.rec_invoke(TOpDesc::TryCommit);
            self.rec_respond(TOpDesc::TryCommit, TOpResult::Aborted);
        }
    }

    /// Reads a variable.
    ///
    /// # Errors
    ///
    /// [`Retry`] if a concurrent commit made a consistent snapshot
    /// impossible, or if this attempt already returned [`Retry`] once;
    /// propagate it with `?`.
    pub fn read<T: TxValue>(&mut self, var: &TVar<T>) -> Result<T, Retry> {
        if self.poisoned {
            return Err(Retry);
        }
        self.ensure_started();
        self.stm.stats.read();
        let op = self.rec.as_ref().map(|r| TOpDesc::Read(r.object_of(var)));
        if let Some(op) = op {
            self.rec_invoke(op);
        }
        let out = self.read_raw(var);
        if let Some(op) = op {
            match &out {
                Ok(v) => self.rec_respond(op, TOpResult::Value(word_of(v))),
                Err(Retry) => self.rec_respond(op, TOpResult::Aborted),
            }
        }
        if out.is_err() {
            self.poisoned = true;
        }
        out
    }

    /// The algorithm-specific read path (the [`crate::algo`] read hook),
    /// without instrumentation.
    fn read_raw<T: TxValue>(&mut self, var: &TVar<T>) -> Result<T, Retry> {
        if let Some(w) = self.log.lookup_write(var.id()) {
            let v = w.value.downcast_ref::<T>().expect("write-set type");
            return Ok(v.clone());
        }
        algo::read(self, var)
    }

    /// Reads, applies `f`, and writes back — the read-modify-write
    /// shorthand.
    ///
    /// # Errors
    ///
    /// [`Retry`] if the underlying read conflicts.
    ///
    /// # Examples
    ///
    /// ```
    /// use ptm_stm::{Stm, TVar};
    ///
    /// let stm = Stm::tl2();
    /// let v = TVar::new(10u64);
    /// stm.atomically(|tx| tx.modify(&v, |x| x * 2));
    /// assert_eq!(v.load(), 20);
    /// ```
    pub fn modify<T: TxValue>(
        &mut self,
        var: &TVar<T>,
        f: impl FnOnce(T) -> T,
    ) -> Result<(), Retry> {
        let v = self.read(var)?;
        self.write(var, f(v))
    }

    /// Buffers a write; visible to this transaction's later reads and
    /// published at commit.
    ///
    /// # Errors
    ///
    /// [`Retry`] if this attempt already returned [`Retry`] once
    /// (buffering itself never conflicts).
    pub fn write<T: TxValue>(&mut self, var: &TVar<T>, value: T) -> Result<(), Retry> {
        if self.poisoned {
            return Err(Retry);
        }
        self.ensure_started();
        self.stm.stats.write();
        let op = self
            .rec
            .as_ref()
            .map(|r| TOpDesc::Write(r.object_of(var), word_of(&value)));
        if let Some(op) = op {
            self.rec_invoke(op);
        }
        self.log
            .buffer_write(var.id(), var.as_dyn(), Box::new(value));
        if let Some(op) = op {
            self.rec_respond(op, TOpResult::Ok);
        }
        Ok(())
    }

    /// Attempts to commit; returns whether the transaction is now durable.
    fn commit(&mut self) -> bool {
        if self.poisoned {
            return false;
        }
        self.ensure_started();
        self.rec_invoke(TOpDesc::TryCommit);
        let ok = if self.log.writes.is_empty() {
            // Read-only: serialized at its last validation (invisible
            // reads) or under its still-held read locks (Tlrw) — either
            // way nothing to validate, nothing to publish.
            true
        } else {
            algo::commit(self)
        };
        // Visible-read algorithms hold per-stripe read locks until the
        // outcome is decided; release them whatever it was.
        self.release_read_locks();
        let res = if ok {
            TOpResult::Committed
        } else {
            TOpResult::Aborted
        };
        self.rec_respond(TOpDesc::TryCommit, res);
        ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cm::{CappedAttempts, ImmediateRetry};

    fn engines() -> Vec<Stm> {
        vec![
            Stm::tl2(),
            Stm::incremental(),
            Stm::norec(),
            Stm::tlrw(),
            Stm::adaptive(),
        ]
    }

    /// An adaptive instance tuned to switch after a handful of commits.
    fn twitchy_adaptive() -> Stm {
        Stm::builder(Algorithm::Adaptive)
            .adaptive_config(AdaptiveConfig {
                window_commits: 8,
                hysteresis_windows: 1,
                ..AdaptiveConfig::default()
            })
            .build()
    }

    /// Every orec word back to zero: no lock (versioned or RW) leaked.
    fn assert_orecs_quiescent(stm: &Stm) {
        for s in 0..stm.orecs.len() {
            let w = stm.orecs.word(s).load(Ordering::Relaxed);
            assert!(
                !orec::is_locked(w) && !orec::rw_write_locked(w),
                "stripe {s} left locked: {w:#x}"
            );
            if stm.algorithm() == Algorithm::Tlrw {
                assert_eq!(w, 0, "stripe {s} leaked a reader count: {w:#x}");
            }
        }
    }

    #[test]
    fn read_write_roundtrip_all_modes() {
        for stm in engines() {
            let v = TVar::new(1u64);
            stm.atomically(|tx| {
                let x = tx.read(&v)?;
                tx.write(&v, x + 10)?;
                Ok(())
            });
            assert_eq!(v.load(), 11, "{:?}", stm.algorithm());
        }
    }

    #[test]
    fn read_own_write_all_modes() {
        for stm in engines() {
            let v = TVar::new(5u64);
            let seen = stm.atomically(|tx| {
                tx.write(&v, 9)?;
                tx.read(&v)
            });
            assert_eq!(seen, 9);
        }
    }

    #[test]
    fn aborted_attempt_leaves_no_trace() {
        for stm in engines() {
            let v = TVar::new(0u64);
            let out = stm.try_once(|tx| {
                tx.write(&v, 99)?;
                Err::<(), Retry>(Retry)
            });
            assert!(out.is_none());
            assert_eq!(v.load(), 0);
        }
    }

    #[test]
    fn stats_track_commits_and_aborts() {
        let stm = Stm::tl2();
        let v = TVar::new(0u64);
        stm.atomically(|tx| tx.write(&v, 1));
        let _ = stm.try_once(|tx| {
            tx.read(&v)?;
            Err::<(), Retry>(Retry)
        });
        let s = stm.stats().snapshot();
        assert_eq!(s.commits, 1);
        assert_eq!(s.aborts, 1);
        assert_eq!(s.writes, 1);
    }

    #[test]
    fn incremental_mode_probes_quadratically() {
        let stm = Stm::incremental();
        let m = 32;
        let vars: Vec<TVar<u64>> = (0..m).map(|_| TVar::new(0)).collect();
        let before = stm.stats().snapshot();
        stm.atomically(|tx| {
            for v in &vars {
                tx.read(v)?;
            }
            Ok(())
        });
        let d = stm.stats().snapshot().since(&before);
        // Read i validates i-1 prior entries: m(m-1)/2 probes total.
        assert_eq!(d.validation_probes, (m * (m - 1) / 2) as u64);

        let stm2 = Stm::tl2();
        let before = stm2.stats().snapshot();
        stm2.atomically(|tx| {
            for v in &vars {
                tx.read(v)?;
            }
            Ok(())
        });
        let d2 = stm2.stats().snapshot().since(&before);
        // TL2 read-only transactions never probe the read set.
        assert_eq!(d2.validation_probes, 0);
    }

    #[test]
    fn tlrw_read_only_transactions_validate_nothing() {
        let stm = Stm::tlrw();
        let vars: Vec<TVar<u64>> = (0..64).map(|_| TVar::new(1)).collect();
        let before = stm.stats().snapshot();
        let sum = stm.atomically(|tx| {
            let mut acc = 0;
            for v in &vars {
                acc += tx.read(v)?;
            }
            Ok(acc)
        });
        assert_eq!(sum, 64);
        let d = stm.stats().snapshot().since(&before);
        // The acceptance criterion of the visible-read design: zero
        // validation probes, reads O(1) each.
        assert_eq!(d.validation_probes, 0);
        assert_eq!(d.commits, 1);
        assert_eq!(d.reader_conflicts, 0);
        assert_orecs_quiescent(&stm);
    }

    #[test]
    fn tlrw_upgrade_commit_and_abort_leave_locks_quiescent() {
        let stm = Stm::tlrw();
        let v = TVar::new(3u64);
        let w = TVar::new(0u64);
        // Read-then-write upgrade: the commit CAS consumes the read lock.
        stm.atomically(|tx| {
            let x = tx.read(&v)?;
            tx.write(&v, x + 1)
        });
        assert_eq!(v.load(), 4);
        assert_orecs_quiescent(&stm);
        // A user-aborted attempt releases its read locks too.
        let out = stm.try_once(|tx| {
            tx.read(&v)?;
            tx.read(&w)?;
            Err::<(), Retry>(Retry)
        });
        assert!(out.is_none());
        assert_orecs_quiescent(&stm);
        // And so does a panicking body (the Drop path).
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            stm.atomically(|tx| {
                tx.read(&v)?;
                panic!("body dies mid-transaction");
                #[allow(unreachable_code)]
                Ok(())
            })
        }));
        assert!(res.is_err());
        assert_orecs_quiescent(&stm);
    }

    #[test]
    fn tlrw_upgrade_rollback_restores_and_releases_read_locks() {
        // Force a multi-stripe upgrade whose second CAS fails: stripe A
        // upgrades fine, stripe B is held by a foreign reader. The
        // rollback must restore A's read lock AND release it at abort —
        // dropping it from the read set while restoring the count would
        // leak the lock and starve writers forever.
        let stm = Arc::new(Stm::builder(Algorithm::Tlrw).orec_stripes(2).build());
        // Find two vars on different stripes; `a` must sort first so the
        // commit upgrades a's stripe before failing on b's. The pool
        // keeps rejected allocations alive so fresh addresses keep
        // coming.
        let x0 = TVar::new(0u64);
        let mut pool = Vec::new();
        let x1 = loop {
            let cand = TVar::new(0u64);
            if stm.orecs.stripe_of(cand.id()) != stm.orecs.stripe_of(x0.id()) {
                break cand;
            }
            pool.push(cand);
        };
        let (a, b) = if stm.orecs.stripe_of(x0.id()) < stm.orecs.stripe_of(x1.id()) {
            (x0, x1)
        } else {
            (x1, x0)
        };
        let hold = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let release = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|s| {
            let stm2 = Arc::clone(&stm);
            let b2 = b.clone();
            let (hold2, release2) = (Arc::clone(&hold), Arc::clone(&release));
            s.spawn(move || {
                // Foreign reader camps on b's stripe until released.
                stm2.atomically(|tx| {
                    let x = tx.read(&b2)?;
                    hold2.store(true, Ordering::SeqCst);
                    while !release2.load(Ordering::SeqCst) {
                        std::thread::yield_now();
                    }
                    Ok(x)
                });
            });
            while !hold.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
            // Reads both stripes, writes both: upgrade of a succeeds,
            // upgrade of b hits the foreign reader and rolls back.
            let out = stm.try_once(|tx| {
                let x = tx.read(&a)?;
                let y = tx.read(&b)?;
                tx.write(&a, x + 1)?;
                tx.write(&b, y + 1)
            });
            assert!(out.is_none(), "foreign reader must abort the upgrade");
            assert!(stm.stats().snapshot().reader_conflicts >= 1);
            release.store(true, Ordering::SeqCst);
        });
        assert_orecs_quiescent(&stm);
        // The stripes are free again: a writer commits on both.
        stm.atomically(|tx| {
            tx.write(&a, 7)?;
            tx.write(&b, 7)
        });
        assert_eq!((a.load(), b.load()), (7, 7));
    }

    #[test]
    fn tlrw_writer_aborts_while_reader_holds_the_stripe() {
        let stm = Arc::new(Stm::builder(Algorithm::Tlrw).max_attempts(3).build());
        let v = TVar::new(0u64);
        let hold = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let release = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|s| {
            let stm2 = Arc::clone(&stm);
            let v2 = v.clone();
            let (hold2, release2) = (Arc::clone(&hold), Arc::clone(&release));
            s.spawn(move || {
                stm2.atomically(|tx| {
                    let x = tx.read(&v2)?;
                    hold2.store(true, Ordering::SeqCst);
                    while !release2.load(Ordering::SeqCst) {
                        std::thread::yield_now();
                    }
                    Ok(x)
                });
            });
            while !hold.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
            let out = stm.run(|tx| tx.write(&v, 9));
            assert_eq!(out, Err(RetriesExhausted { attempts: 3 }));
            assert_eq!(stm.stats().snapshot().reader_conflicts, 3);
            release.store(true, Ordering::SeqCst);
        });
        // Reader gone: the same write now commits.
        stm.atomically(|tx| tx.write(&v, 9));
        assert_eq!(v.load(), 9);
        assert_orecs_quiescent(&stm);
    }

    #[test]
    fn concurrent_counter_increments_are_exact() {
        for stm in engines() {
            let stm = Arc::new(stm);
            let v = TVar::new(0u64);
            let threads = 4;
            let per = 500;
            std::thread::scope(|s| {
                for _ in 0..threads {
                    let stm = Arc::clone(&stm);
                    let v = v.clone();
                    s.spawn(move || {
                        for _ in 0..per {
                            stm.atomically(|tx| {
                                let x = tx.read(&v)?;
                                tx.write(&v, x + 1)
                            });
                        }
                    });
                }
            });
            assert_eq!(v.load(), threads * per, "{:?}", stm.algorithm());
        }
    }

    #[test]
    fn concurrent_bank_conserves_total() {
        for stm in engines() {
            let stm = Arc::new(stm);
            let accounts: Vec<TVar<u64>> = (0..8).map(|_| TVar::new(1000)).collect();
            let threads = 4;
            let per = 300;
            std::thread::scope(|s| {
                for t in 0..threads {
                    let stm = Arc::clone(&stm);
                    let accounts = accounts.clone();
                    s.spawn(move || {
                        let mut x = t as usize;
                        for i in 0..per {
                            let from = (x + i) % accounts.len();
                            let to = (x + i * 7 + 1) % accounts.len();
                            if from == to {
                                continue;
                            }
                            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                            stm.atomically(|tx| {
                                let a = tx.read(&accounts[from])?;
                                let b = tx.read(&accounts[to])?;
                                let amt = a.min(17);
                                tx.write(&accounts[from], a - amt)?;
                                tx.write(&accounts[to], b + amt)
                            });
                        }
                    });
                }
            });
            let total: u64 = accounts.iter().map(TVar::load).sum();
            assert_eq!(total, 8000, "{:?}", stm.algorithm());
        }
    }

    #[test]
    fn snapshot_isolation_is_not_allowed_write_skew() {
        // Write skew: two transactions each read both vars and write one.
        // A serializable STM must not let both commit from the same
        // snapshot; run many racing pairs and check the invariant
        // x + y <= 1 is never violated.
        for stm in engines() {
            let stm = Arc::new(stm);
            for _ in 0..200 {
                let x = TVar::new(0u64);
                let y = TVar::new(0u64);
                std::thread::scope(|s| {
                    let stm1 = Arc::clone(&stm);
                    let (x1, y1) = (x.clone(), y.clone());
                    s.spawn(move || {
                        stm1.atomically(|tx| {
                            let (a, b) = (tx.read(&x1)?, tx.read(&y1)?);
                            if a + b == 0 {
                                tx.write(&x1, 1)?;
                            }
                            Ok(())
                        });
                    });
                    let stm2 = Arc::clone(&stm);
                    let (x2, y2) = (x.clone(), y.clone());
                    s.spawn(move || {
                        stm2.atomically(|tx| {
                            let (a, b) = (tx.read(&x2)?, tx.read(&y2)?);
                            if a + b == 0 {
                                tx.write(&y2, 1)?;
                            }
                            Ok(())
                        });
                    });
                });
                assert!(x.load() + y.load() <= 1, "{:?}", stm.algorithm());
            }
        }
    }

    #[test]
    fn adaptive_switches_with_the_workload_and_stays_correct() {
        let stm = twitchy_adaptive();
        assert_eq!(stm.active_mode(), Algorithm::Tl2, "starts invisible");
        let vars: Vec<TVar<u64>> = (0..32).map(|_| TVar::new(1)).collect();
        // Write-heavy: transfers (2 reads / 2 writes) drive it visible.
        for i in 0..64usize {
            let (a, b) = (i % 32, (i + 7) % 32);
            stm.atomically(|tx| {
                let x = tx.read(&vars[a])?;
                let y = tx.read(&vars[b])?;
                tx.write(&vars[a], x.wrapping_sub(1))?;
                tx.write(&vars[b], y.wrapping_add(1))
            });
        }
        assert_eq!(stm.active_mode(), Algorithm::Tlrw, "write-heavy → visible");
        let after_first = stm.stats().snapshot();
        assert!(after_first.mode_transitions >= 1);
        assert!(after_first.visible_mode);
        // Read-mostly: 16-read scans drive it back invisible.
        for _ in 0..64usize {
            let sum = stm.atomically(|tx| {
                let mut acc = 0u64;
                for v in vars.iter().take(16) {
                    acc = acc.wrapping_add(tx.read(v)?);
                }
                Ok(acc)
            });
            let _ = sum;
        }
        assert_eq!(stm.active_mode(), Algorithm::Tl2, "read-mostly → invisible");
        let snap = stm.stats().snapshot();
        assert!(snap.mode_transitions >= 2);
        assert!(!snap.visible_mode);
        // The sum is conserved across both regimes and the switches.
        assert_eq!(vars.iter().map(TVar::load).sum::<u64>(), 32);
        assert_orecs_quiescent(&stm);
    }

    #[test]
    fn adaptive_switch_is_correct_under_concurrent_mixed_load() {
        // Hammer an adaptive instance with racing read-mostly and
        // write-heavy threads so transitions happen *during* traffic;
        // the exact mode history is scheduling-dependent, but counter
        // exactness and lock quiescence must not be.
        let stm = Arc::new(twitchy_adaptive());
        let counters: Vec<TVar<u64>> = (0..8).map(|_| TVar::new(0)).collect();
        let threads = 4;
        let per = 400;
        std::thread::scope(|s| {
            for t in 0..threads {
                let stm = Arc::clone(&stm);
                let counters = counters.clone();
                s.spawn(move || {
                    for i in 0..per {
                        if (i / 50) % 2 == 0 {
                            // Write-heavy burst: increment one counter.
                            let c = (t + i) % counters.len();
                            stm.atomically(|tx| tx.modify(&counters[c], |x| x + 1));
                        } else {
                            // Read burst: scan everything, write every
                            // 16th iteration.
                            stm.atomically(|tx| {
                                let mut acc = 0u64;
                                for v in &counters {
                                    acc = acc.wrapping_add(tx.read(v)?);
                                }
                                if i % 16 == 0 {
                                    let c = (t + i) % counters.len();
                                    tx.modify(&counters[c], |x| x + 1)?;
                                }
                                Ok(acc)
                            });
                        }
                    }
                });
            }
        });
        let expected: u64 = (0..threads as u64)
            .map(|_| {
                (0..per as u64)
                    .map(|i| u64::from((i / 50) % 2 == 0 || i % 16 == 0))
                    .sum::<u64>()
            })
            .sum();
        assert_eq!(counters.iter().map(TVar::load).sum::<u64>(), expected);
        assert_orecs_quiescent(&stm);
    }

    #[test]
    fn adaptive_nested_transaction_cannot_deadlock_the_switch() {
        // A nested transaction commits (and samples) while the outer one
        // is still active on the same thread: the drain must time out
        // and keep the current mode instead of waiting on its own stack.
        let stm = Stm::builder(Algorithm::Adaptive)
            .adaptive_config(AdaptiveConfig {
                window_commits: 1,
                hysteresis_windows: 1,
                max_drain: std::time::Duration::from_millis(1),
                ..AdaptiveConfig::default()
            })
            .build();
        let v = TVar::new(0u64);
        let w = TVar::new(0u64);
        // Every commit is write-heavy, so every one-commit window votes
        // visible; the nested commits below each attempt the switch
        // while the outer transaction still occupies the invisible
        // mode's active counter.
        stm.atomically(|tx| {
            tx.write(&v, 1)?; // pins the mode, holds the active slot
            for _ in 0..4 {
                stm.atomically(|tx2| tx2.modify(&w, |y| y + 1));
            }
            tx.write(&v, 2)
        });
        assert_eq!((v.load(), w.load()), (2, 4));
        // The outer commit's own sample can finally drain and switch;
        // either way the engine is live and consistent afterwards.
        stm.atomically(|tx| tx.modify(&v, |x| x + 1));
        assert_eq!(v.load(), 3);
        assert!(stm.stats().snapshot().commits >= 6);
    }

    #[test]
    fn run_reports_exhaustion_instead_of_panicking() {
        let stm = Stm::builder(Algorithm::Tl2).max_attempts(3).build();
        let v = TVar::new(0u64);
        let out = stm.run(|tx| {
            tx.read(&v)?;
            Err::<(), Retry>(Retry)
        });
        assert_eq!(out, Err(RetriesExhausted { attempts: 3 }));
        assert_eq!(stm.stats().snapshot().aborts, 3);
    }

    #[test]
    fn contention_manager_give_up_is_honored() {
        let stm = Stm::builder(Algorithm::Norec)
            .contention_manager(CappedAttempts::wrapping(2, ImmediateRetry))
            .build();
        let out = stm.run(|_tx| Err::<(), Retry>(Retry));
        assert_eq!(out, Err(RetriesExhausted { attempts: 2 }));
    }

    #[test]
    #[should_panic(expected = "failed to commit after 1 attempts")]
    fn atomically_panics_when_budget_runs_out() {
        let stm = Stm::builder(Algorithm::Tl2).max_attempts(1).build();
        stm.atomically(|_tx| Err::<(), Retry>(Retry));
    }

    #[test]
    fn debug_output_names_policy_and_budget() {
        let stm = Stm::builder(Algorithm::Incremental)
            .max_attempts(42)
            .contention_manager(ImmediateRetry)
            .build();
        let s = format!("{stm:?}");
        assert!(s.contains("max_attempts: 42"), "{s}");
        assert!(s.contains("ImmediateRetry"), "{s}");
        assert!(s.contains("Incremental"), "{s}");
    }

    #[test]
    fn values_whose_drop_reenters_the_epoch_machinery() {
        // Regression: the collector used to drop displaced value boxes
        // while holding the thread-local epoch borrow, so a value whose
        // `Drop` pins the epoch again (here: `TVar::load` on a peer)
        // panicked with a RefCell BorrowMutError mid-commit.
        #[derive(Clone)]
        struct PinsOnDrop {
            peer: TVar<u64>,
            tag: u64,
        }
        impl PartialEq for PinsOnDrop {
            fn eq(&self, other: &Self) -> bool {
                self.tag == other.tag
            }
        }
        impl Drop for PinsOnDrop {
            fn drop(&mut self) {
                let _ = self.peer.load(); // pins the epoch
            }
        }

        let stm = Stm::tl2();
        let peer = TVar::new(0u64);
        let var = TVar::new(PinsOnDrop {
            peer: peer.clone(),
            tag: 0,
        });
        // Enough writing commits to push the thread bag past the collect
        // threshold several times over.
        for i in 1..=300u64 {
            stm.atomically(|tx| {
                tx.write(
                    &var,
                    PinsOnDrop {
                        peer: peer.clone(),
                        tag: i,
                    },
                )
            });
        }
        assert_eq!(var.load().tag, 300);
    }

    #[test]
    fn tiny_orec_table_still_serializes_correctly() {
        // One stripe: every variable conflicts with every other. The
        // engine must stay correct (if slower).
        let stm = Arc::new(Stm::builder(Algorithm::Tl2).orec_stripes(1).build());
        let a = TVar::new(0u64);
        let b = TVar::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let stm = Arc::clone(&stm);
                let (a, b) = (a.clone(), b.clone());
                s.spawn(move || {
                    for _ in 0..200 {
                        stm.atomically(|tx| {
                            let x = tx.read(&a)?;
                            let y = tx.read(&b)?;
                            tx.write(&a, x + 1)?;
                            tx.write(&b, y + 1)
                        });
                    }
                });
            }
        });
        assert_eq!(a.load(), 800);
        assert_eq!(b.load(), 800);
    }
}
