//! Opt-in durability: a group-committed, checksummed write-ahead log
//! the engine appends to from inside each algorithm's publish critical
//! section.
//!
//! ## The commit → log → fsync ordering argument
//!
//! The one invariant everything downstream (snapshots, recovery,
//! cross-shard roll-forward) leans on is:
//!
//! > **Log order on one instance respects that instance's conflict
//! > order.** If committed transaction B read or overwrote anything A
//! > wrote, A's record precedes B's record, and A's stamp < B's stamp.
//!
//! It holds because the engine calls [`DurabilityHook::record`] *inside
//! the publish critical section, after the commit tick is drawn but
//! before the write set becomes reader-visible*:
//!
//! * **Tl2 / Incremental** — between drawing `wv` and releasing the
//!   write stripes. B conflicting with A must acquire or validate a
//!   stripe A still holds, so B's entire commit (tick and append) runs
//!   after A's release, hence after A's append.
//! * **Mv** — between the clock `fetch_add` and stamping the version
//!   heads (readers spin on a pending stamp, so versions are not
//!   consumable before the append). Writer-writer conflicts serialize
//!   on the held stripes as above.
//! * **Tlrw** — before the writer bits are released; conflicting
//!   transactions are excluded physically until then.
//! * **NOrec** — before the sequence lock is released (the even clock
//!   store); the single lock serializes all commits, so log order is
//!   exactly commit order.
//!
//! The consequence for crash safety: a torn tail is a *suffix* in
//! conflict order, so replaying the surviving prefix (what
//! [`codec::decode_stream`] yields) reproduces a state the pre-crash
//! system actually passed through — the prefix-closure property the
//! crash-point harness in `ptm-server` asserts.
//!
//! Acknowledgement is the caller's second step: [`DurabilityHook::record`]
//! only buffers (so the critical section stays I/O-free) and returns an
//! LSN; the caller acks its client after [`Wal::wait_durable`] on that
//! LSN — commit, then log, then fsync, then ack.
//!
//! The pieces: [`codec`] (record framing, CRC-64, clean-prefix
//! decoding, the [`WalValue`] wire trait), [`sink`] (file / memory /
//! fault-injection byte sinks), and [`Wal`] (the two-lock group-commit
//! writer).

pub mod codec;
pub mod sink;
mod writer;

pub use codec::{Corruption, Decoded, Record, WalValue, FLAG_META, FLAG_STRAGGLER};
pub use sink::{fsync_parent_dir, FaultPlan, FaultSink, FileSink, LogSink, MemSink};
pub use writer::{RewriteStats, Wal};

use crate::stats::StmStats;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The engine-side durability callback, installed per instance with
/// [`StmBuilder::durability_hook`](crate::StmBuilder::durability_hook).
///
/// [`DurabilityHook::record`] is called from inside the publish
/// critical section of every committing transaction that staged a
/// payload ([`Transaction::stage_durable`](crate::Transaction::stage_durable)),
/// with the commit tick the algorithm drew for that transaction. The
/// implementation must be **fast and infallible** — memory-only
/// buffering; fsync happens later, outside every lock, when somebody
/// waits on the returned LSN.
pub trait DurabilityHook: Send + Sync + fmt::Debug {
    /// Logs one committed write set; returns the LSN to wait on.
    fn record(&self, stamp: u64, payload: &[u8]) -> u64;

    /// Adopts the owning instance's counters (called once at build).
    fn attach_stats(&self, stats: Arc<StmStats>) {
        let _ = stats;
    }
}

impl DurabilityHook for Wal {
    fn record(&self, stamp: u64, payload: &[u8]) -> u64 {
        self.append(stamp, 0, payload)
    }

    fn attach_stats(&self, stats: Arc<StmStats>) {
        Wal::attach_stats(self, stats);
    }
}

/// Carries a staged commit's LSN from the publish critical section back
/// to the committer: cloneable, cheap, and reusable across retried
/// attempts (only the attempt that publishes writes it).
///
/// # Examples
///
/// ```
/// use ptm_stm::wal::{DurableTicket, MemSink, Wal};
/// use ptm_stm::{Algorithm, Stm, TVar};
/// use std::sync::Arc;
///
/// let wal = Arc::new(Wal::with_sink(Box::new(MemSink::new())));
/// let stm = Stm::builder(Algorithm::Tl2)
///     .durability_hook(wal.clone())
///     .build();
/// let v = TVar::new(0u64);
/// let ticket = DurableTicket::new();
/// stm.atomically(|tx| {
///     tx.write(&v, 7)?;
///     tx.stage_durable(Arc::from(&b"v=7"[..]), &ticket);
///     Ok(())
/// });
/// let lsn = ticket.lsn().expect("commit published the staged payload");
/// wal.wait_durable(lsn).unwrap(); // fsync before acknowledging
/// ```
#[derive(Debug, Clone, Default)]
pub struct DurableTicket(Arc<AtomicU64>);

/// Sentinel for "not logged (yet)".
const UNSET: u64 = u64::MAX;

impl DurableTicket {
    /// A fresh, unfilled ticket.
    pub fn new() -> Self {
        DurableTicket(Arc::new(AtomicU64::new(UNSET)))
    }

    /// The LSN the publishing commit logged under, once it has.
    pub fn lsn(&self) -> Option<u64> {
        match self.0.load(Ordering::Acquire) {
            UNSET => None,
            lsn => Some(lsn),
        }
    }

    /// Clears a ticket for reuse by an unrelated commit.
    pub fn reset(&self) {
        self.0.store(UNSET, Ordering::Release);
    }

    pub(crate) fn set(&self, lsn: u64) {
        self.0.store(lsn, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticket_starts_unset_and_resets() {
        let t = DurableTicket::new();
        assert_eq!(t.lsn(), None);
        t.set(3);
        assert_eq!(t.lsn(), Some(3));
        let clone = t.clone();
        assert_eq!(clone.lsn(), Some(3), "clones share the slot");
        t.reset();
        assert_eq!(clone.lsn(), None);
    }

    #[test]
    fn wal_implements_the_hook() {
        let wal = Wal::with_sink(Box::new(MemSink::new()));
        let hook: &dyn DurabilityHook = &wal;
        assert_eq!(hook.record(9, b"p"), 1);
        assert_eq!(hook.record(10, b"q"), 2);
        wal.flush().unwrap();
        let d = wal.read_records().unwrap();
        assert_eq!(d.records[1].stamp, 10);
    }
}
