//! [`Wal`]: the group-committed log writer.
//!
//! ## Two locks, one convoy
//!
//! Appends land in a memory buffer under the `pending` lock — that is
//! the whole cost a committing transaction pays inside its publish
//! critical section (an encode and a buffer extend; no I/O, no fsync).
//! Durability happens in [`Wal::wait_durable`]: the caller that wants
//! its LSN on disk takes the `io` lock, *steals the entire pending
//! buffer*, writes and fsyncs it as one batch, and publishes the new
//! durable watermark. Every other waiter queued on the `io` lock
//! re-checks the watermark when it gets the lock and usually finds a
//! predecessor already flushed its record — that convoy is the group
//! commit: under load, one fsync covers every commit that arrived while
//! the previous fsync was in flight, without timers or a dedicated
//! flusher thread.
//!
//! The watermark is stored *before* the `io` lock is released, so a
//! successor that finds the pending buffer empty can trust the
//! watermark it re-reads: pending-empty while holding the `io` lock
//! means every appended record has been flushed and published.
//!
//! ## Fail-stop on I/O error
//!
//! A failed write or fsync poisons the `Wal`: the batch's durability is
//! unknown, so pretending otherwise could acknowledge a commit the disk
//! never got. Every later [`Wal::wait_durable`] (and rewrite/read)
//! returns the original error; the serving layer above translates that
//! into a crash-and-recover (see `ptm-server`), the same discipline as
//! a database PANIC on WAL failure.

use super::codec::{self, Decoded, Record};
use super::sink::{FileSink, LogSink};
use crate::stats::StmStats;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Appended-but-unflushed records.
#[derive(Debug, Default)]
struct Pending {
    buf: Vec<u8>,
    /// Records currently in `buf`.
    records: u64,
    /// Records ever appended — the LSN of the last one.
    appended: u64,
}

/// A group-committed, checksummed write-ahead log over a [`LogSink`].
/// See the module docs for the locking discipline.
#[derive(Debug)]
pub struct Wal {
    pending: Mutex<Pending>,
    io: Mutex<Box<dyn LogSink>>,
    /// LSN of the last record known durable (0 = none).
    durable: AtomicU64,
    poisoned: AtomicBool,
    /// The error that poisoned the log, kept for every later report.
    poison: Mutex<Option<String>>,
    /// Instance counters, attached when an `Stm` adopts this log.
    stats: OnceLock<Arc<StmStats>>,
}

/// What a [`Wal::rewrite`] pass did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RewriteStats {
    /// Records the keep-closure retained.
    pub kept: u64,
    /// Records it dropped.
    pub dropped: u64,
}

impl Wal {
    /// A log writing through `sink`.
    pub fn with_sink(sink: Box<dyn LogSink>) -> Self {
        Wal {
            pending: Mutex::new(Pending::default()),
            io: Mutex::new(sink),
            durable: AtomicU64::new(0),
            poisoned: AtomicBool::new(false),
            poison: Mutex::new(None),
            stats: OnceLock::new(),
        }
    }

    /// A log backed by the file at `path` (created if absent).
    ///
    /// # Errors
    ///
    /// Propagates the open failure.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<Self> {
        Ok(Wal::with_sink(Box::new(FileSink::open(path)?)))
    }

    /// Attaches the instance counters new appends and fsyncs bump.
    /// First attach wins; later calls are ignored.
    pub fn attach_stats(&self, stats: Arc<StmStats>) {
        let _ = self.stats.set(stats);
    }

    /// Appends one record to the in-memory batch and returns its LSN
    /// (1-based). Memory-only and infallible — this is the half a
    /// publish critical section may call. Durability is a separate,
    /// later [`Wal::wait_durable`] on the returned LSN.
    pub fn append(&self, stamp: u64, flags: u8, payload: &[u8]) -> u64 {
        // Frame (and checksum) outside the lock: the pending mutex is
        // shared by every committing transaction on the instance, and
        // the caller is inside its publish critical section — keep the
        // hold down to one memcpy. The frame buffer is thread-local
        // scratch so the publish path never touches the allocator.
        thread_local! {
            static FRAME: std::cell::RefCell<Vec<u8>> =
                const { std::cell::RefCell::new(Vec::new()) };
        }
        let lsn = FRAME.with(|cell| {
            let mut framed = cell.borrow_mut();
            framed.clear();
            codec::encode_record(stamp, flags, payload, &mut framed);
            let mut p = self.pending.lock().expect("wal pending lock");
            p.buf.extend_from_slice(&framed);
            p.records += 1;
            p.appended += 1;
            p.appended
        });
        if let Some(stats) = self.stats.get() {
            stats.log_append();
        }
        lsn
    }

    /// LSN of the last record known durable (0 before any fsync).
    pub fn durable_lsn(&self) -> u64 {
        self.durable.load(Ordering::Acquire)
    }

    /// LSN of the last record appended (0 on an empty log).
    pub fn appended_lsn(&self) -> u64 {
        self.pending.lock().expect("wal pending lock").appended
    }

    fn poison_err(&self) -> io::Error {
        let msg = self
            .poison
            .lock()
            .expect("wal poison lock")
            .clone()
            .unwrap_or_else(|| "wal poisoned".to_string());
        io::Error::other(format!("wal poisoned by earlier I/O failure: {msg}"))
    }

    fn poison_with(&self, err: &io::Error) {
        let mut slot = self.poison.lock().expect("wal poison lock");
        if slot.is_none() {
            *slot = Some(err.to_string());
        }
        self.poisoned.store(true, Ordering::Release);
    }

    /// Flushes the stolen batch under the held `io` lock and publishes
    /// the watermark before the lock drops.
    fn flush_batch(
        &self,
        io: &mut Box<dyn LogSink>,
        buf: &[u8],
        records: u64,
        upto: u64,
    ) -> io::Result<()> {
        if let Err(e) = io.append(buf).and_then(|()| io.sync()) {
            self.poison_with(&e);
            return Err(e);
        }
        self.durable.store(upto, Ordering::Release);
        if let Some(stats) = self.stats.get() {
            stats.fsync_batch(records);
        }
        Ok(())
    }

    /// Blocks until the record at `lsn` is on stable storage, fsyncing
    /// the whole pending batch if no other caller got there first (the
    /// group-commit convoy — see the module docs).
    ///
    /// # Errors
    ///
    /// The poisoning I/O error, now or from an earlier failed flush.
    /// After an error the durability of recent records is unknown;
    /// callers must stop acknowledging.
    pub fn wait_durable(&self, lsn: u64) -> io::Result<()> {
        loop {
            if self.durable.load(Ordering::Acquire) >= lsn {
                return Ok(());
            }
            if self.poisoned.load(Ordering::Acquire) {
                return Err(self.poison_err());
            }
            let mut io = self.io.lock().expect("wal io lock");
            // A convoy predecessor may have flushed our record while we
            // queued; the watermark is published before the lock drops,
            // so this re-check under the lock is authoritative.
            if self.durable.load(Ordering::Acquire) >= lsn {
                return Ok(());
            }
            let (buf, records, upto) = {
                let mut p = self.pending.lock().expect("wal pending lock");
                (
                    std::mem::take(&mut p.buf),
                    std::mem::take(&mut p.records),
                    p.appended,
                )
            };
            if records == 0 {
                // Nothing pending while holding the io lock: every
                // append is flushed, so the next durable load wins.
                continue;
            }
            self.flush_batch(&mut io, &buf, records, upto)?;
        }
    }

    /// Fsyncs everything appended so far (no-op on an empty batch).
    ///
    /// # Errors
    ///
    /// The poisoning I/O error, as for [`Wal::wait_durable`].
    pub fn flush(&self) -> io::Result<()> {
        let target = self.appended_lsn();
        if target == 0 {
            if self.poisoned.load(Ordering::Acquire) {
                return Err(self.poison_err());
            }
            return Ok(());
        }
        self.wait_durable(target)
    }

    /// Flushes, reads the whole log back, and decodes it with
    /// clean-prefix semantics.
    ///
    /// # Errors
    ///
    /// I/O failure or a poisoned log.
    pub fn read_records(&self) -> io::Result<Decoded> {
        self.flush()?;
        let mut io = self.io.lock().expect("wal io lock");
        let bytes = io.read_all()?;
        Ok(codec::decode_stream(&bytes))
    }

    /// Atomically rewrites the log, keeping (and possibly mutating —
    /// checkpoints set the straggler flag this way) the records `keep`
    /// approves. Pending appends are flushed first so the pass sees
    /// every record; a decode stopping early (which a live log never
    /// produces on healthy storage) drops the corrupt tail.
    ///
    /// # Errors
    ///
    /// I/O failure or a poisoned log.
    pub fn rewrite(&self, mut keep: impl FnMut(&mut Record) -> bool) -> io::Result<RewriteStats> {
        self.flush()?;
        let mut io = self.io.lock().expect("wal io lock");
        let bytes = io.read_all()?;
        let decoded = codec::decode_stream(&bytes);
        let mut out = Vec::new();
        let mut stats = RewriteStats {
            kept: 0,
            dropped: 0,
        };
        for mut r in decoded.records {
            if keep(&mut r) {
                codec::encode_record(r.stamp, r.flags, &r.payload, &mut out);
                stats.kept += 1;
            } else {
                stats.dropped += 1;
            }
        }
        if let Err(e) = io.reset_to(&out) {
            self.poison_with(&e);
            return Err(e);
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::codec::FLAG_STRAGGLER;
    use crate::wal::sink::{FaultPlan, FaultSink, MemSink};

    fn mem_wal() -> (Wal, MemSink) {
        let sink = MemSink::new();
        (Wal::with_sink(Box::new(sink.clone())), sink)
    }

    #[test]
    fn appends_are_volatile_until_waited_on() {
        let (wal, sink) = mem_wal();
        let lsn = wal.append(5, 0, b"one");
        assert_eq!(lsn, 1);
        assert_eq!(wal.durable_lsn(), 0);
        assert_eq!(sink.durable_bytes(), b"", "no fsync yet");
        wal.wait_durable(lsn).unwrap();
        assert_eq!(wal.durable_lsn(), 1);
        let d = codec::decode_stream(&sink.durable_bytes());
        assert_eq!(d.records.len(), 1);
        assert_eq!(d.records[0].stamp, 5);
        assert_eq!(d.records[0].payload, b"one");
    }

    #[test]
    fn one_wait_flushes_the_whole_batch() {
        let (wal, _sink) = mem_wal();
        let a = wal.append(1, 0, b"a");
        let b = wal.append(2, 0, b"b");
        let c = wal.append(3, 0, b"c");
        wal.wait_durable(a).unwrap();
        // The steal took everything pending, not just record `a`.
        assert_eq!(wal.durable_lsn(), c);
        wal.wait_durable(b).unwrap();
        wal.wait_durable(c).unwrap();
    }

    #[test]
    fn group_commit_batches_across_threads() {
        let (wal, _sink) = mem_wal();
        let threads = 8;
        let per = 50;
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    for i in 0..per {
                        let lsn = wal.append(i, 0, &i.to_le_bytes());
                        wal.wait_durable(lsn).unwrap();
                    }
                });
            }
        });
        assert_eq!(wal.durable_lsn(), threads * per);
        let d = wal.read_records().unwrap();
        assert_eq!(d.records.len(), (threads * per) as usize);
        assert_eq!(d.corruption, None);
    }

    #[test]
    fn group_commit_uses_fewer_fsyncs_than_commits() {
        let stats = Arc::new(StmStats::default());
        let (wal, _sink) = mem_wal();
        wal.attach_stats(stats.clone());
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..100u64 {
                        let lsn = wal.append(i, 0, b"x");
                        wal.wait_durable(lsn).unwrap();
                    }
                });
            }
        });
        let snap = stats.snapshot();
        assert_eq!(snap.log_appends, 400);
        assert_eq!(snap.group_commit_records, 400, "every record fsynced once");
        assert!(snap.fsyncs <= 400, "never more fsyncs than records");
        assert!(snap.fsyncs > 0);
    }

    #[test]
    fn io_failure_poisons_fail_stop() {
        let wal = Wal::with_sink(Box::new(FaultSink::new(FaultPlan {
            fail_sync_after: Some(1),
            ..FaultPlan::default()
        })));
        let a = wal.append(1, 0, b"a");
        wal.wait_durable(a).unwrap();
        let b = wal.append(2, 0, b"b");
        assert!(wal.wait_durable(b).is_err(), "failed fsync must surface");
        // Poisoned forever, even for already-durable LSNs reached via
        // the flush path.
        assert!(wal.flush().is_err());
        let c = wal.append(3, 0, b"c");
        assert!(wal.wait_durable(c).is_err());
        // The already-published watermark is still readable.
        assert_eq!(wal.durable_lsn(), 1);
    }

    #[test]
    fn rewrite_filters_and_mutates() {
        let (wal, _sink) = mem_wal();
        for i in 1..=4u64 {
            wal.append(i, 0, &[i as u8]);
        }
        let st = wal
            .rewrite(|r| {
                if r.stamp == 2 {
                    return false;
                }
                if r.stamp == 3 {
                    r.flags |= FLAG_STRAGGLER;
                }
                true
            })
            .unwrap();
        assert_eq!(
            st,
            RewriteStats {
                kept: 3,
                dropped: 1
            }
        );
        let d = wal.read_records().unwrap();
        let stamps: Vec<u64> = d.records.iter().map(|r| r.stamp).collect();
        assert_eq!(stamps, [1, 3, 4]);
        assert!(d.records[1].straggler());
        assert_eq!(d.corruption, None);
    }

    #[test]
    fn append_after_rewrite_lands_after_the_kept_records() {
        let (wal, _sink) = mem_wal();
        wal.append(1, 0, b"old");
        wal.rewrite(|_| true).unwrap();
        let lsn = wal.append(9, 0, b"new");
        wal.wait_durable(lsn).unwrap();
        let d = wal.read_records().unwrap();
        let stamps: Vec<u64> = d.records.iter().map(|r| r.stamp).collect();
        assert_eq!(stamps, [1, 9]);
    }

    #[test]
    fn torn_write_surfaces_and_leaves_a_clean_prefix() {
        let sink = FaultSink::new(FaultPlan {
            tear_after_bytes: Some(40),
            ..FaultPlan::default()
        });
        let mem = sink.mem().clone();
        let wal = Wal::with_sink(Box::new(sink));
        let a = wal.append(1, 0, b"0123456789"); // framed: 35 bytes
        wal.wait_durable(a).unwrap();
        let b = wal.append(2, 0, b"0123456789");
        assert!(wal.wait_durable(b).is_err(), "torn batch must not ack");
        let d = codec::decode_stream(&mem.all_bytes());
        assert_eq!(d.records.len(), 1, "only the first record survives");
        assert_eq!(d.records[0].stamp, 1);
        assert!(d.corruption.is_some());
    }
}
