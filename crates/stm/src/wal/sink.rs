//! Byte sinks a [`Wal`](super::Wal) writes through: a real file, an
//! in-memory buffer for tests, and a fault-injecting wrapper that tears
//! writes and flips bits on cue — the crash-point harness's way of
//! producing every torn-tail shape without actually crashing.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Where a log's bytes go. Implementations are sequenced by the `Wal`'s
/// io lock, so they take `&mut self` and need no internal locking.
///
/// The contract recovery relies on: after a crash, the bytes
/// [`read_all`](LogSink::read_all) returns are some prefix of everything
/// appended, extended by at most one torn suffix of the remainder — and
/// everything appended before the last successful [`sync`](LogSink::sync)
/// is in that prefix.
pub trait LogSink: Send + fmt::Debug {
    /// Appends `bytes` at the end of the log.
    fn append(&mut self, bytes: &[u8]) -> io::Result<()>;
    /// Forces every appended byte to stable storage.
    fn sync(&mut self) -> io::Result<()>;
    /// Reads the entire log back.
    fn read_all(&mut self) -> io::Result<Vec<u8>>;
    /// Replaces the log's contents wholesale (checkpoint rewrites).
    /// Implementations make the switch as atomic as the medium allows.
    fn reset_to(&mut self, bytes: &[u8]) -> io::Result<()>;
}

/// A log backed by one append-only file. Rewrites go through a
/// write-new-then-rename sidecar so a crash mid-rewrite leaves either
/// the old log or the new one, never a splice.
///
/// On Linux the file is opened `O_DSYNC`, so the one batch write a
/// group commit issues carries datasync semantics itself and
/// [`sync`](LogSink::sync) is a no-op — one syscall per fsync batch
/// instead of two (the same trade `wal_sync_method = open_datasync`
/// makes). Elsewhere, `sync` falls back to `fdatasync`.
pub struct FileSink {
    path: PathBuf,
    file: File,
    /// Writes already carry datasync semantics (`O_DSYNC`).
    dsync: bool,
}

impl fmt::Debug for FileSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FileSink")
            .field("path", &self.path)
            .finish()
    }
}

/// Opens `path` append-only, `O_DSYNC` where supported; returns the
/// handle and whether it got the flag.
fn open_log(path: &Path, create: bool) -> io::Result<(File, bool)> {
    #[cfg(target_os = "linux")]
    {
        use std::os::unix::fs::OpenOptionsExt;
        const O_DSYNC: i32 = 0x1000;
        // A filesystem that refuses the flag still gets a correct
        // (two-syscall) sink below.
        if let Ok(f) = OpenOptions::new()
            .read(true)
            .append(true)
            .create(create)
            .custom_flags(O_DSYNC)
            .open(path)
        {
            return Ok((f, true));
        }
    }
    let file = OpenOptions::new()
        .read(true)
        .append(true)
        .create(create)
        .open(path)?;
    Ok((file, false))
}

/// Fsyncs the directory containing `path`, making a rename in it
/// durable. Rename atomicity alone only orders the *contents*; the
/// directory entry itself needs its own barrier on POSIX.
pub fn fsync_parent_dir(path: &Path) -> io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    File::open(parent)?.sync_all()
}

impl FileSink {
    /// Opens (creating if absent) the log file at `path`.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<Self> {
        let path = path.into();
        let (file, dsync) = open_log(&path, true)?;
        Ok(FileSink { path, file, dsync })
    }

    /// The file this sink appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl LogSink for FileSink {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.file.write_all(bytes)
    }

    fn sync(&mut self) -> io::Result<()> {
        if self.dsync {
            return Ok(());
        }
        self.file.sync_data()
    }

    fn read_all(&mut self) -> io::Result<Vec<u8>> {
        let mut out = Vec::new();
        self.file.seek(SeekFrom::Start(0))?;
        self.file.read_to_end(&mut out)?;
        Ok(out)
    }

    fn reset_to(&mut self, bytes: &[u8]) -> io::Result<()> {
        let tmp = self.path.with_extension("rewrite");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        fsync_parent_dir(&self.path)?;
        // Reopen: the old handle still points at the unlinked inode.
        // Going through `open_log` keeps O_DSYNC semantics (or the
        // fdatasync fallback) on the new handle — `dsync` must describe
        // this handle, or every later sync() silently stops syncing.
        let (file, dsync) = open_log(&self.path, false)?;
        self.file = file;
        self.dsync = dsync;
        Ok(())
    }
}

/// An in-memory log that models a volatile write cache: bytes become
/// "durable" only at [`sync`](LogSink::sync). [`MemSink::durable_bytes`]
/// reads back what a crash right now would preserve, which is how the
/// in-process crash tests simulate power loss without a child process.
#[derive(Debug, Clone, Default)]
pub struct MemSink {
    state: Arc<Mutex<MemState>>,
}

#[derive(Debug, Default)]
struct MemState {
    bytes: Vec<u8>,
    synced_len: usize,
}

impl MemSink {
    /// A fresh, empty in-memory log.
    pub fn new() -> Self {
        MemSink::default()
    }

    /// Everything appended so far, synced or not.
    pub fn all_bytes(&self) -> Vec<u8> {
        self.state.lock().expect("mem sink lock").bytes.clone()
    }

    /// The prefix a crash at this instant would preserve: every byte up
    /// to the last [`sync`](LogSink::sync).
    pub fn durable_bytes(&self) -> Vec<u8> {
        let st = self.state.lock().expect("mem sink lock");
        st.bytes[..st.synced_len].to_vec()
    }
}

impl LogSink for MemSink {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.state
            .lock()
            .expect("mem sink lock")
            .bytes
            .extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        let mut st = self.state.lock().expect("mem sink lock");
        st.synced_len = st.bytes.len();
        Ok(())
    }

    fn read_all(&mut self) -> io::Result<Vec<u8>> {
        Ok(self.all_bytes())
    }

    fn reset_to(&mut self, bytes: &[u8]) -> io::Result<()> {
        let mut st = self.state.lock().expect("mem sink lock");
        st.bytes = bytes.to_vec();
        st.synced_len = st.bytes.len();
        Ok(())
    }
}

/// What a [`FaultSink`] should break, counted in bytes appended /
/// syncs performed through it.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultPlan {
    /// Stop accepting bytes after this many have been appended: the
    /// append that crosses the limit writes only the bytes that fit
    /// (a torn write) and fails; later appends fail outright.
    pub tear_after_bytes: Option<u64>,
    /// XOR this mask into the byte at this append-stream offset as it
    /// goes through (silent corruption — the append still succeeds).
    pub flip: Option<(u64, u8)>,
    /// Fail every sync after this many have succeeded.
    pub fail_sync_after: Option<u64>,
}

/// A sink wrapper that injects the [`FaultPlan`]'s failures into an
/// inner [`MemSink`], for exercising recovery against torn and
/// corrupted logs deterministically.
#[derive(Debug)]
pub struct FaultSink {
    inner: MemSink,
    plan: FaultPlan,
    appended: u64,
    syncs: u64,
}

impl FaultSink {
    /// Wraps a fresh [`MemSink`] with `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        FaultSink {
            inner: MemSink::new(),
            plan,
            appended: 0,
            syncs: 0,
        }
    }

    /// The wrapped sink, for reading the surviving bytes back.
    pub fn mem(&self) -> &MemSink {
        &self.inner
    }
}

impl LogSink for FaultSink {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        let mut bytes = bytes.to_vec();
        if let Some((at, mask)) = self.plan.flip {
            let start = self.appended;
            if at >= start && at < start + bytes.len() as u64 {
                bytes[(at - start) as usize] ^= mask;
            }
        }
        if let Some(limit) = self.plan.tear_after_bytes {
            let room = limit.saturating_sub(self.appended);
            if (bytes.len() as u64) > room {
                let keep = &bytes[..room as usize];
                self.inner.append(keep)?;
                self.appended += keep.len() as u64;
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "fault injection: torn write",
                ));
            }
        }
        self.appended += bytes.len() as u64;
        self.inner.append(&bytes)
    }

    fn sync(&mut self) -> io::Result<()> {
        if let Some(budget) = self.plan.fail_sync_after {
            if self.syncs >= budget {
                return Err(io::Error::other("fault injection: sync failed"));
            }
        }
        self.syncs += 1;
        self.inner.sync()
    }

    fn read_all(&mut self) -> io::Result<Vec<u8>> {
        self.inner.read_all()
    }

    fn reset_to(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.inner.reset_to(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_sink_models_the_volatile_cache() {
        let mut s = MemSink::new();
        s.append(b"abc").unwrap();
        assert_eq!(s.durable_bytes(), b"");
        s.sync().unwrap();
        s.append(b"def").unwrap();
        assert_eq!(s.durable_bytes(), b"abc");
        assert_eq!(s.all_bytes(), b"abcdef");
        s.reset_to(b"xy").unwrap();
        assert_eq!(s.durable_bytes(), b"xy");
    }

    #[test]
    fn fault_sink_tears_at_the_byte_limit() {
        let mut s = FaultSink::new(FaultPlan {
            tear_after_bytes: Some(4),
            ..FaultPlan::default()
        });
        s.append(b"ab").unwrap();
        let err = s.append(b"cdef").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
        assert_eq!(s.mem().all_bytes(), b"abcd", "torn mid-append");
        assert!(s.append(b"x").is_err(), "sink stays broken");
    }

    #[test]
    fn fault_sink_flips_the_planned_byte() {
        let mut s = FaultSink::new(FaultPlan {
            flip: Some((2, 0xFF)),
            ..FaultPlan::default()
        });
        s.append(b"\0\0\0\0").unwrap();
        assert_eq!(s.mem().all_bytes(), [0, 0, 0xFF, 0]);
    }

    #[test]
    fn fault_sink_fails_sync_on_budget() {
        let mut s = FaultSink::new(FaultPlan {
            fail_sync_after: Some(1),
            ..FaultPlan::default()
        });
        s.append(b"a").unwrap();
        s.sync().unwrap();
        assert!(s.sync().is_err());
    }

    #[test]
    fn file_sink_appends_reads_and_rewrites() {
        let dir = std::env::temp_dir().join(format!("ptm-wal-sink-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.wal");
        let _ = std::fs::remove_file(&path);
        {
            let mut s = FileSink::open(&path).unwrap();
            s.append(b"hello ").unwrap();
            s.append(b"world").unwrap();
            s.sync().unwrap();
            assert_eq!(s.read_all().unwrap(), b"hello world");
            s.reset_to(b"fresh").unwrap();
            assert_eq!(s.read_all().unwrap(), b"fresh");
            s.append(b"!").unwrap();
            assert_eq!(s.read_all().unwrap(), b"fresh!");
        }
        // Reopen picks the rewritten contents back up.
        let mut s = FileSink::open(&path).unwrap();
        assert_eq!(s.read_all().unwrap(), b"fresh!");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn file_sink_rewrite_preserves_sync_mode() {
        let dir = std::env::temp_dir().join(format!("ptm-wal-dsync-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mode.wal");
        let _ = std::fs::remove_file(&path);
        let mut s = FileSink::open(&path).unwrap();
        let opened_with = s.dsync;
        s.append(b"a").unwrap();
        s.reset_to(b"b").unwrap();
        // The reopened handle must carry the same durability mode the
        // original open negotiated: a handle without O_DSYNC but with
        // dsync == true would make sync() a permanent no-op.
        assert_eq!(
            s.dsync, opened_with,
            "reset_to changed the sink's sync mode"
        );
        s.append(b"c").unwrap();
        s.sync().unwrap();
        assert_eq!(s.read_all().unwrap(), b"bc");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }
}
