//! The on-disk record framing and its corruption-tolerant decoder.
//!
//! One log is a flat byte stream of self-delimiting records:
//!
//! ```text
//! | magic "PWAL" | flags u8 | len u32 LE | stamp u64 LE | payload .. | crc64 LE |
//! ```
//!
//! `stamp` is the commit tick the engine drew inside the publish
//! critical section (see [`crate::wal`]); `flags` carries recovery
//! metadata ([`FLAG_STRAGGLER`], [`FLAG_META`]); the CRC-64 covers
//! everything after the magic (flags, len, stamp, payload), so a torn
//! or bit-flipped record cannot decode to a *different* record — it
//! decodes to nothing.
//!
//! ## Clean-prefix semantics
//!
//! [`decode_stream`] never guesses: it walks records front to back and
//! stops at the first byte that fails any check (magic, length bounds,
//! checksum), returning every record before it plus a description of
//! what broke. A crash mid-append therefore costs exactly the torn
//! suffix — the decoder yields the longest checksummed prefix and
//! recovery replays that. The proptests in `crates/stm/tests/wal_codec.rs`
//! hold this line: truncation at *every* byte offset and a flip of
//! *every* byte must yield a prefix of the original records, never a
//! record that was not written.

/// Every record starts with these four bytes.
pub const MAGIC: [u8; 4] = *b"PWAL";

/// Fixed bytes before the payload: magic, flags, len, stamp.
pub const HEADER_LEN: usize = 4 + 1 + 4 + 8;

/// Fixed bytes after the payload: the CRC-64.
pub const TRAILER_LEN: usize = 8;

/// Flag bit: this record's effects are already contained in some
/// participant's snapshot but not this shard's own — recovery must
/// treat it as roll-forward evidence regardless of its stamp (set by
/// checkpoint rewrites; see `ptm-server`'s durability layer).
pub const FLAG_STRAGGLER: u8 = 1 << 0;

/// Flag bit: a log-file header record (era and shard identity), not a
/// committed write set. Always the first record of a well-formed log.
pub const FLAG_META: u8 = 1 << 1;

/// CRC-64/XZ (reflected, poly `0x42F0E1EBA9EA3693`), table built at
/// compile time so the per-record cost is one table walk.
const CRC64_POLY_REFLECTED: u64 = 0xC96C_5795_D787_0F42;

const fn crc64_table() -> [u64; 256] {
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u64;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ CRC64_POLY_REFLECTED
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC64_TABLE: [u64; 256] = crc64_table();

/// CRC-64/XZ of `bytes`.
pub fn crc64(bytes: &[u8]) -> u64 {
    let mut crc = !0u64;
    for &b in bytes {
        crc = CRC64_TABLE[((crc ^ b as u64) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// One decoded log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Commit tick drawn inside the publish critical section (0 for
    /// meta records).
    pub stamp: u64,
    /// Flag bits ([`FLAG_STRAGGLER`], [`FLAG_META`]).
    pub flags: u8,
    /// Opaque payload (the server's encoded write set).
    pub payload: Vec<u8>,
}

impl Record {
    /// Whether the straggler flag is set.
    pub fn straggler(&self) -> bool {
        self.flags & FLAG_STRAGGLER != 0
    }

    /// Whether this is a log-file header record.
    pub fn is_meta(&self) -> bool {
        self.flags & FLAG_META != 0
    }
}

/// Appends one framed record to `out`.
pub fn encode_record(stamp: u64, flags: u8, payload: &[u8], out: &mut Vec<u8>) {
    assert!(payload.len() <= u32::MAX as usize, "payload too large");
    let start = out.len();
    out.extend_from_slice(&MAGIC);
    out.push(flags);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&stamp.to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc64(&out[start + MAGIC.len()..]);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// The framed size of a record carrying `payload_len` payload bytes.
pub fn framed_len(payload_len: usize) -> usize {
    HEADER_LEN + payload_len + TRAILER_LEN
}

/// Why decoding stopped before the end of the buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// The buffer ends inside a record (torn tail): fewer bytes remain
    /// than the header, or than the header's declared length.
    Truncated {
        /// Byte offset of the record that tore.
        offset: usize,
    },
    /// The next four bytes are not [`MAGIC`].
    BadMagic {
        /// Byte offset where the magic was expected.
        offset: usize,
    },
    /// The record framed correctly but its CRC-64 does not match.
    BadChecksum {
        /// Byte offset of the corrupt record.
        offset: usize,
    },
}

/// The result of decoding a log byte stream front to back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decoded {
    /// Every record before the first corruption, in log order.
    pub records: Vec<Record>,
    /// Bytes consumed by those records — the clean prefix length.
    pub clean_len: usize,
    /// What stopped the walk, if anything did. `None` means the buffer
    /// was consumed exactly.
    pub corruption: Option<Corruption>,
}

/// Decodes as many whole, checksummed records as `buf` holds, stopping
/// at the first byte that fails a check (see the module docs).
pub fn decode_stream(buf: &[u8]) -> Decoded {
    let mut records = Vec::new();
    let mut off = 0;
    let corruption = loop {
        if off == buf.len() {
            break None;
        }
        let rest = &buf[off..];
        if rest.len() < HEADER_LEN {
            break Some(Corruption::Truncated { offset: off });
        }
        if rest[..4] != MAGIC {
            break Some(Corruption::BadMagic { offset: off });
        }
        let flags = rest[4];
        let len = u32::from_le_bytes(rest[5..9].try_into().expect("4 bytes")) as usize;
        let stamp = u64::from_le_bytes(rest[9..17].try_into().expect("8 bytes"));
        let total = framed_len(len);
        if rest.len() < total {
            break Some(Corruption::Truncated { offset: off });
        }
        let crc_stored =
            u64::from_le_bytes(rest[HEADER_LEN + len..total].try_into().expect("8 bytes"));
        if crc64(&rest[4..HEADER_LEN + len]) != crc_stored {
            break Some(Corruption::BadChecksum { offset: off });
        }
        records.push(Record {
            stamp,
            flags,
            payload: rest[HEADER_LEN..HEADER_LEN + len].to_vec(),
        });
        off += total;
    };
    Decoded {
        records,
        clean_len: off,
        corruption,
    }
}

/// A value with a hand-rolled, length-prefixed wire form, so the server
/// can log arbitrary key/value types without a serialization dependency.
///
/// The decode half takes a cursor (`&mut &[u8]`) and advances it past
/// the consumed bytes; `None` means the bytes do not form a value —
/// decoders must never panic on foreign input, because recovery feeds
/// them checksummed-but-application-foreign payloads only in tests and
/// corrupted payloads never (the CRC rejects those first).
pub trait WalValue: Sized {
    /// Appends this value's wire form to `out`.
    fn encode_wal(&self, out: &mut Vec<u8>);
    /// Consumes one value from the front of `buf`.
    fn decode_wal(buf: &mut &[u8]) -> Option<Self>;
}

/// Consumes `n` bytes from the front of the cursor.
fn take<'a>(buf: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
    if buf.len() < n {
        return None;
    }
    let (head, rest) = buf.split_at(n);
    *buf = rest;
    Some(head)
}

macro_rules! wal_int {
    ($($t:ty),*) => {$(
        impl WalValue for $t {
            fn encode_wal(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode_wal(buf: &mut &[u8]) -> Option<Self> {
                let bytes = take(buf, std::mem::size_of::<$t>())?;
                Some(<$t>::from_le_bytes(bytes.try_into().expect("sized take")))
            }
        }
    )*};
}

wal_int!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128);

impl WalValue for usize {
    fn encode_wal(&self, out: &mut Vec<u8>) {
        (*self as u64).encode_wal(out);
    }
    fn decode_wal(buf: &mut &[u8]) -> Option<Self> {
        usize::try_from(u64::decode_wal(buf)?).ok()
    }
}

impl WalValue for bool {
    fn encode_wal(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    fn decode_wal(buf: &mut &[u8]) -> Option<Self> {
        match take(buf, 1)?[0] {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

impl WalValue for Vec<u8> {
    fn encode_wal(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode_wal(out);
        out.extend_from_slice(self);
    }
    fn decode_wal(buf: &mut &[u8]) -> Option<Self> {
        let len = usize::decode_wal(buf)?;
        Some(take(buf, len)?.to_vec())
    }
}

impl WalValue for String {
    fn encode_wal(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode_wal(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode_wal(buf: &mut &[u8]) -> Option<Self> {
        let len = usize::decode_wal(buf)?;
        String::from_utf8(take(buf, len)?.to_vec()).ok()
    }
}

impl<T: WalValue> WalValue for Option<T> {
    fn encode_wal(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode_wal(out);
            }
        }
    }
    fn decode_wal(buf: &mut &[u8]) -> Option<Self> {
        match take(buf, 1)?[0] {
            0 => Some(None),
            1 => Some(Some(T::decode_wal(buf)?)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> (Vec<u8>, Vec<Record>) {
        let mut buf = Vec::new();
        let records = vec![
            Record {
                stamp: 0,
                flags: FLAG_META,
                payload: vec![7, 7],
            },
            Record {
                stamp: 3,
                flags: 0,
                payload: b"first".to_vec(),
            },
            Record {
                stamp: 9,
                flags: FLAG_STRAGGLER,
                payload: Vec::new(),
            },
        ];
        for r in &records {
            encode_record(r.stamp, r.flags, &r.payload, &mut buf);
        }
        (buf, records)
    }

    #[test]
    fn roundtrips_cleanly() {
        let (buf, records) = sample_log();
        let d = decode_stream(&buf);
        assert_eq!(d.records, records);
        assert_eq!(d.clean_len, buf.len());
        assert_eq!(d.corruption, None);
        assert!(d.records[0].is_meta());
        assert!(d.records[2].straggler());
    }

    #[test]
    fn crc64_matches_the_xz_check_value() {
        // The CRC-64/XZ check value for "123456789".
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
    }

    #[test]
    fn truncation_yields_the_clean_prefix() {
        let (buf, records) = sample_log();
        let first_two = framed_len(records[0].payload.len()) + framed_len(records[1].payload.len());
        let boundaries: Vec<usize> = records
            .iter()
            .scan(0, |off, r| {
                let at = *off;
                *off += framed_len(r.payload.len());
                Some(at)
            })
            .collect();
        for cut in 0..buf.len() {
            let d = decode_stream(&buf[..cut]);
            assert!(d.records.len() <= records.len());
            assert_eq!(d.records[..], records[..d.records.len()], "cut={cut}");
            if boundaries.contains(&cut) {
                // A cut exactly at a record boundary is a *clean* prefix
                // — the crash lost whole records, nothing to report.
                assert_eq!(d.corruption, None, "cut={cut}");
            } else {
                assert!(
                    matches!(d.corruption, Some(Corruption::Truncated { .. })),
                    "cut={cut} tore a record"
                );
            }
            if cut == first_two {
                assert_eq!(d.records.len(), 2);
            }
        }
    }

    #[test]
    fn a_flipped_byte_never_decodes_to_a_different_value() {
        let (buf, records) = sample_log();
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x40;
            let d = decode_stream(&bad);
            // Whatever decodes must be a prefix of what was written.
            assert!(
                d.records.len() < records.len() || d.corruption.is_none(),
                "flip at {i}"
            );
            for (got, want) in d.records.iter().zip(&records) {
                assert_eq!(got, want, "flip at {i} altered a decoded record");
            }
            assert!(d.corruption.is_some(), "flip at {i} went unnoticed");
        }
    }

    #[test]
    fn wal_value_roundtrips() {
        let mut out = Vec::new();
        42u64.encode_wal(&mut out);
        (-7i32).encode_wal(&mut out);
        true.encode_wal(&mut out);
        "héllo".to_string().encode_wal(&mut out);
        vec![1u8, 2, 3].encode_wal(&mut out);
        Some(5u16).encode_wal(&mut out);
        None::<String>.encode_wal(&mut out);
        let mut cur = &out[..];
        assert_eq!(u64::decode_wal(&mut cur), Some(42));
        assert_eq!(i32::decode_wal(&mut cur), Some(-7));
        assert_eq!(bool::decode_wal(&mut cur), Some(true));
        assert_eq!(String::decode_wal(&mut cur).as_deref(), Some("héllo"));
        assert_eq!(Vec::<u8>::decode_wal(&mut cur), Some(vec![1, 2, 3]));
        assert_eq!(Option::<u16>::decode_wal(&mut cur), Some(Some(5)));
        assert_eq!(Option::<String>::decode_wal(&mut cur), Some(None));
        assert!(cur.is_empty());
        assert_eq!(u64::decode_wal(&mut cur), None, "empty cursor is None");
    }

    #[test]
    fn short_buffers_decode_to_none_not_panic() {
        for len in 0..4 {
            let bytes = vec![1u8; len];
            let mut cur = &bytes[..];
            assert_eq!(u32::decode_wal(&mut cur), None);
        }
        let mut cur: &[u8] = &[1, 200]; // Some(..) tag but garbage bool.
        assert_eq!(Option::<bool>::decode_wal(&mut cur), None);
        let mut cur: &[u8] = &[255, 255, 255, 255, 255, 255, 255, 255, 1];
        assert_eq!(Vec::<u8>::decode_wal(&mut cur), None, "huge length prefix");
    }
}
