//! Per-stripe waiter parking: the blocking half of `retry`/`or_else`.
//!
//! A transaction that cannot proceed — logically (`Transaction::retry`:
//! the data it read says "wait") or physically (the contention manager
//! answered [`Decision::Park`](crate::Decision::Park)) — must get out of
//! the way instead of stealing cycles from the transaction that can
//! proceed. This module supplies the mechanism: one [`WaitBucket`] per
//! orec stripe (hung off the [`OrecTable`](crate::orec::OrecTable), so
//! the wait channels are keyed exactly like the conflict metadata), a
//! [`WaitCell`] per parked attempt, and a wake sweep that committing
//! writers run over their write stripes after releasing their locks.
//!
//! ## The lost-wakeup argument
//!
//! The parker and the committing writer race: the parker decides "no
//! relevant commit has happened" and sleeps; the writer decides "nobody
//! is waiting" and skips the wake. The protocol closes the window with a
//! registration-then-revalidate handshake ordered by `SeqCst` fences —
//! the classic store-buffering shape:
//!
//! * **parker**: push cell + bump `count` (under the bucket lock) for
//!   every footprint stripe, `fence(SeqCst)` (the tail of
//!   [`WaiterTable::register`]), then *revalidate* the read set against
//!   the orec words / clock, and only park if still consistent;
//! * **writer**: release-store its stripe words (the commit's normal
//!   lock release), `fence(SeqCst)` (the head of
//!   [`WaiterTable::wake_stripes`]), then load the waiter counts.
//!
//! Sequentially-consistent fences forbid the outcome where *both* the
//! parker misses the writer's stripe stamps *and* the writer misses the
//! parker's count increment. So either the parker's revalidation fails
//! (it reruns immediately — no sleep, nothing to wake) or the writer
//! observes `count > 0` and drains the bucket, whose mutex guarantees
//! the pushed cell is visible to the drain. Tlrw needs no fence argument
//! at all: registration happens while the parker still *holds* its read
//! locks, so a conflicting writer can only commit after the release that
//! follows registration in program order — its count load is ordered
//! after the push by the lock-word synchronization itself.
//!
//! Parks still carry a timeout ([`RETRY_PARK_TIMEOUT`] /
//! [`CONFLICT_PARK_TIMEOUT`]) purely as a safety net — a timeout expiry
//! is counted as a `spurious_wake` in [`StmStats`](crate::StmStats), and
//! the torture suite asserts the net stays unused.

use std::collections::BinaryHeap;
use std::sync::atomic::{fence, AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, Once, OnceLock, Weak};
use std::task::Waker;
use std::time::{Duration, Instant};

/// Safety-net ceiling on a logical wait (`Transaction::retry`): a parked
/// thread re-checks its predicate at least this often even if every wake
/// were lost. Long, because the wake path makes expiry the exception.
pub(crate) const RETRY_PARK_TIMEOUT: Duration = Duration::from_millis(250);

/// Park slice for a contention-manager [`Decision::Park`]
/// (crate::Decision::Park): short, because a conflict park has a weaker
/// wake guarantee — the conflicting commit may already be finished, with
/// no later commit due on any overlapping stripe.
pub(crate) const CONFLICT_PARK_TIMEOUT: Duration = Duration::from_millis(1);

/// What a wake delivers to: a parked thread or a pending future's waker.
enum WakeTarget {
    Thread(std::thread::Thread),
    Waker(Waker),
}

/// One parked (or pending) attempt: a notification flag plus the wake
/// target. Shared between the waiter buckets it is registered in and the
/// parked attempt itself; `notify` delivers at most once however many
/// buckets drain it.
pub(crate) struct WaitCell {
    notified: AtomicBool,
    /// Set (before the wake fires) when the delivering notifier was the
    /// timer watchdog rather than a committing writer, so an async park
    /// can count the expiry as a spurious wake — the same ledger the
    /// blocking path keeps via `park`'s return value.
    timed_out: AtomicBool,
    target: WakeTarget,
}

impl WaitCell {
    /// A cell that wakes the calling thread (`thread::unpark`).
    pub(crate) fn for_thread() -> Arc<Self> {
        Arc::new(WaitCell {
            notified: AtomicBool::new(false),
            timed_out: AtomicBool::new(false),
            target: WakeTarget::Thread(std::thread::current()),
        })
    }

    /// A cell that wakes a future (`Waker::wake_by_ref`).
    pub(crate) fn for_waker(waker: Waker) -> Arc<Self> {
        Arc::new(WaitCell {
            notified: AtomicBool::new(false),
            timed_out: AtomicBool::new(false),
            target: WakeTarget::Waker(waker),
        })
    }

    /// Whether the cell has been notified (a pending future polls this
    /// indirectly by being woken; tests poll it directly).
    pub(crate) fn is_notified(&self) -> bool {
        self.notified.load(Ordering::Acquire)
    }

    /// Whether the delivering notifier was the timer watchdog. Read
    /// after the wake arrived.
    pub(crate) fn was_timeout(&self) -> bool {
        self.timed_out.load(Ordering::Acquire)
    }

    /// Delivers the wake exactly once; returns whether this call was the
    /// delivering one (a cell drained from several buckets is woken by
    /// the first and counted once).
    pub(crate) fn notify(&self) -> bool {
        self.deliver(false)
    }

    /// The timer watchdog's notify: same once-only delivery, but labels
    /// the wake a timeout so the woken poll can count it spurious. A
    /// cell a real commit already woke stays labelled real.
    pub(crate) fn notify_timeout(&self) -> bool {
        self.deliver(true)
    }

    fn deliver(&self, timed_out: bool) -> bool {
        if self.notified.swap(true, Ordering::SeqCst) {
            return false;
        }
        if timed_out {
            // Labelled before the wake fires, so the woken side's load
            // (which the wake itself orders after this store) sees it.
            self.timed_out.store(true, Ordering::Release);
        }
        match &self.target {
            WakeTarget::Thread(t) => t.unpark(),
            WakeTarget::Waker(w) => w.wake_by_ref(),
        }
        true
    }

    /// Parks the calling thread until notified or `timeout` elapses.
    /// Returns `true` on a real wake, `false` on timeout. Tolerates the
    /// spurious returns `park_timeout` permits and stray unpark tokens
    /// left by late notifiers of *previous* cells.
    pub(crate) fn park(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while !self.notified.load(Ordering::Acquire) {
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                // Deadline passed; one last look so a wake that raced the
                // clock still counts as a wake.
                return self.notified.load(Ordering::Acquire);
            };
            std::thread::park_timeout(remaining);
        }
        true
    }
}

impl std::fmt::Debug for WaitCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WaitCell")
            .field("notified", &self.is_notified())
            .finish_non_exhaustive()
    }
}

/// One stripe's waiter list. `count` mirrors `cells.len()` so the commit
/// hot path can skip cold stripes with one relaxed load instead of a
/// lock acquisition.
#[derive(Debug, Default)]
struct WaitBucket {
    count: AtomicUsize,
    cells: Mutex<Vec<Arc<WaitCell>>>,
}

/// The waiter lists for one orec table: one bucket per stripe, plus a
/// table-wide population count that lets an uncontended commit skip the
/// whole sweep with a single load. Buckets are deliberately *not*
/// cache-padded: they are touched only by parking transactions and by
/// the (read-mostly) skip loads, never on the per-read hot path.
#[derive(Debug)]
pub(crate) struct WaiterTable {
    buckets: Box<[WaitBucket]>,
    population: AtomicUsize,
}

impl WaiterTable {
    /// A table with one bucket per stripe.
    pub(crate) fn new(stripes: usize) -> Self {
        WaiterTable {
            buckets: (0..stripes).map(|_| WaitBucket::default()).collect(),
            population: AtomicUsize::new(0),
        }
    }

    /// Registers `cell` on every stripe in `stripes`, then issues the
    /// `SeqCst` fence that orders the registration before the caller's
    /// revalidation loads (the parker's half of the store-buffering
    /// handshake — see the module docs).
    pub(crate) fn register(&self, stripes: &[usize], cell: &Arc<WaitCell>) {
        for &s in stripes {
            let b = &self.buckets[s];
            let mut cells = b.cells.lock().expect("waiter bucket poisoned");
            cells.push(Arc::clone(cell));
            b.count.fetch_add(1, Ordering::SeqCst);
            self.population.fetch_add(1, Ordering::SeqCst);
        }
        fence(Ordering::SeqCst);
    }

    /// Removes `cell` from whichever of `stripes` still hold it: a woken
    /// (or timed-out) attempt must not leave dangling registrations for
    /// later commits to re-notify.
    pub(crate) fn deregister(&self, stripes: &[usize], cell: &Arc<WaitCell>) {
        for &s in stripes {
            let b = &self.buckets[s];
            let mut cells = b.cells.lock().expect("waiter bucket poisoned");
            if let Some(i) = cells.iter().position(|c| Arc::ptr_eq(c, cell)) {
                cells.swap_remove(i);
                b.count.fetch_sub(1, Ordering::Relaxed);
                self.population.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }

    /// The committing writer's wake sweep: fence (its half of the
    /// handshake), then drain and notify every waiter on the given
    /// stripes. Returns how many waiters this call actually woke. With
    /// nobody parked anywhere the cost is the fence plus one load.
    pub(crate) fn wake_stripes(&self, stripes: &[usize]) -> u64 {
        fence(Ordering::SeqCst);
        if self.population.load(Ordering::Relaxed) == 0 {
            return 0;
        }
        let mut woken = 0;
        for &s in stripes {
            let b = &self.buckets[s];
            if b.count.load(Ordering::Relaxed) == 0 {
                continue;
            }
            let drained = {
                let mut cells = b.cells.lock().expect("waiter bucket poisoned");
                let n = cells.len();
                if n > 0 {
                    b.count.fetch_sub(n, Ordering::Relaxed);
                    self.population.fetch_sub(n, Ordering::Relaxed);
                }
                std::mem::take(&mut *cells)
            };
            // Notify outside the bucket lock: an async wake can run
            // arbitrary waker code.
            for cell in drained {
                if cell.notify() {
                    woken += 1;
                }
            }
        }
        woken
    }

    /// Wake sweep over *every* bucket: NOrec has no per-variable
    /// metadata (its table is one stripe), so each commit wakes the one
    /// global channel.
    pub(crate) fn wake_all(&self) -> u64 {
        fence(Ordering::SeqCst);
        if self.population.load(Ordering::Relaxed) == 0 {
            return 0;
        }
        let mut woken = 0;
        for s in 0..self.buckets.len() {
            woken += self.wake_bucket(s);
        }
        woken
    }

    fn wake_bucket(&self, s: usize) -> u64 {
        let b = &self.buckets[s];
        if b.count.load(Ordering::Relaxed) == 0 {
            return 0;
        }
        let drained = {
            let mut cells = b.cells.lock().expect("waiter bucket poisoned");
            let n = cells.len();
            if n > 0 {
                b.count.fetch_sub(n, Ordering::Relaxed);
                self.population.fetch_sub(n, Ordering::Relaxed);
            }
            std::mem::take(&mut *cells)
        };
        drained.into_iter().filter(|c| c.notify()).count() as u64
    }
}

/// The async parking path's safety net: a lazily-started global timer
/// thread that [`WaitCell::notify_timeout`]s registered cells when their
/// deadline passes.
///
/// A *blocking* park carries its own timeout (`park_timeout`), but a
/// pending future is only re-polled when something fires its waker — and
/// a conflict park's wake guarantee is weak (the conflicting winner may
/// have committed and gone before the registration landed). Without a
/// runtime to lean on (the engine is executor-agnostic), this thread is
/// what re-polls such a future if no commit ever does. Cells are held
/// weakly, so a cancelled (dropped) future costs the timer nothing but a
/// failed upgrade; an already-woken cell's `notify_timeout` is a no-op.
/// One thread serves every `Stm` instance in the process — it spends its
/// life asleep in `Condvar::wait` and wakes at most once per outstanding
/// async conflict park.
struct TimerQueue {
    heap: Mutex<BinaryHeap<TimerEntry>>,
    cv: Condvar,
}

struct TimerEntry {
    deadline: Instant,
    cell: Weak<WaitCell>,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline
    }
}

impl Eq for TimerEntry {}

impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TimerEntry {
    /// Reversed: `BinaryHeap` is a max-heap and the timer wants the
    /// earliest deadline on top.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.deadline.cmp(&self.deadline)
    }
}

/// Arms the watchdog for `cell`: after `timeout`, the timer thread
/// delivers [`WaitCell::notify_timeout`] unless a real wake (or a
/// dropped future) got there first.
pub(crate) fn watchdog(cell: &Arc<WaitCell>, timeout: Duration) {
    let q = timer();
    let mut heap = q.heap.lock().expect("timer heap poisoned");
    heap.push(TimerEntry {
        deadline: Instant::now() + timeout,
        cell: Arc::downgrade(cell),
    });
    drop(heap);
    q.cv.notify_one();
}

fn timer() -> &'static TimerQueue {
    static TIMER: OnceLock<TimerQueue> = OnceLock::new();
    static SPAWN: Once = Once::new();
    let q = TIMER.get_or_init(|| TimerQueue {
        heap: Mutex::new(BinaryHeap::new()),
        cv: Condvar::new(),
    });
    SPAWN.call_once(|| {
        std::thread::Builder::new()
            .name("ptm-stm-timer".into())
            .spawn(move || timer_loop(q))
            .expect("spawn timer thread");
    });
    q
}

fn timer_loop(q: &'static TimerQueue) -> ! {
    let mut due: Vec<Arc<WaitCell>> = Vec::new();
    let mut heap = q.heap.lock().expect("timer heap poisoned");
    loop {
        let now = Instant::now();
        while heap.peek().is_some_and(|e| e.deadline <= now) {
            let entry = heap.pop().expect("peeked entry");
            // A dead Weak is a cancelled or already-resolved future.
            if let Some(cell) = entry.cell.upgrade() {
                due.push(cell);
            }
        }
        if !due.is_empty() {
            // Notify outside the heap lock: a waker can run arbitrary
            // executor code, and `watchdog` must never block behind it.
            drop(heap);
            for cell in due.drain(..) {
                cell.notify_timeout();
            }
            heap = q.heap.lock().expect("timer heap poisoned");
            continue;
        }
        heap = match heap.peek() {
            Some(e) => {
                let wait = e.deadline.saturating_duration_since(now);
                q.cv.wait_timeout(heap, wait).expect("timer condvar").0
            }
            None => q.cv.wait(heap).expect("timer condvar"),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::task::Wake;

    #[test]
    fn notify_delivers_exactly_once() {
        let cell = WaitCell::for_thread();
        assert!(!cell.is_notified());
        assert!(cell.notify(), "first delivery");
        assert!(!cell.notify(), "second delivery suppressed");
        assert!(cell.is_notified());
        assert!(
            cell.park(Duration::from_secs(5)),
            "already-notified park returns at once"
        );
    }

    #[test]
    fn park_times_out_without_a_notifier() {
        let cell = WaitCell::for_thread();
        let start = Instant::now();
        assert!(!cell.park(Duration::from_millis(10)));
        assert!(start.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn register_wake_deregister_keep_counts_balanced() {
        let t = WaiterTable::new(8);
        let a = WaitCell::for_thread();
        let b = WaitCell::for_thread();
        t.register(&[1, 3], &a);
        t.register(&[3, 5], &b);
        assert_eq!(t.population.load(Ordering::Relaxed), 4);
        // Waking stripe 3 drains both cells there; each is notified once.
        assert_eq!(t.wake_stripes(&[3]), 2);
        assert_eq!(t.population.load(Ordering::Relaxed), 2);
        // Re-waking their other stripes drains the cells but delivers
        // nothing new.
        assert_eq!(t.wake_stripes(&[1, 5]), 0);
        assert_eq!(t.population.load(Ordering::Relaxed), 0);
        // Deregistration after the drain is a no-op, not a double-count.
        t.deregister(&[1, 3], &a);
        t.deregister(&[3, 5], &b);
        assert_eq!(t.population.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn deregister_removes_only_the_given_cell() {
        let t = WaiterTable::new(4);
        let a = WaitCell::for_thread();
        let b = WaitCell::for_thread();
        t.register(&[2], &a);
        t.register(&[2], &b);
        t.deregister(&[2], &a);
        assert_eq!(t.population.load(Ordering::Relaxed), 1);
        assert_eq!(t.wake_stripes(&[2]), 1, "only b remains to wake");
        assert!(b.is_notified());
        assert!(!a.is_notified());
    }

    #[test]
    fn waker_cells_fire_the_waker() {
        struct CountingWaker(AtomicUsize);
        impl Wake for CountingWaker {
            fn wake(self: Arc<Self>) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let counter = Arc::new(CountingWaker(AtomicUsize::new(0)));
        let cell = WaitCell::for_waker(Waker::from(Arc::clone(&counter)));
        let t = WaiterTable::new(2);
        t.register(&[0, 1], &cell);
        assert_eq!(t.wake_all(), 1);
        assert_eq!(counter.0.load(Ordering::SeqCst), 1, "woken exactly once");
    }

    #[test]
    fn timeout_label_rides_only_the_delivering_wake() {
        // A real wake first: the later timeout delivery is suppressed
        // and must not relabel the cell.
        let real = WaitCell::for_thread();
        assert!(real.notify());
        assert!(!real.notify_timeout(), "second delivery suppressed");
        assert!(!real.was_timeout(), "a commit-delivered wake stays real");

        // A timeout first: labelled before the wake fires.
        let timed = WaitCell::for_thread();
        assert!(timed.notify_timeout());
        assert!(timed.was_timeout());
        assert!(!timed.notify(), "late real wake suppressed");
    }

    #[test]
    fn watchdog_delivers_a_timeout_wake() {
        let cell = WaitCell::for_thread();
        watchdog(&cell, Duration::from_millis(5));
        assert!(
            cell.park(Duration::from_secs(30)),
            "the timer thread's notify counts as a wake"
        );
        assert!(cell.was_timeout(), "watchdog wakes are labelled timeouts");
    }

    #[test]
    fn watchdog_tolerates_a_dropped_cell() {
        // A cancelled future drops its cell; the timer's Weak upgrade
        // fails and the expiry is a no-op. Arm a sibling afterwards to
        // prove the thread survived the dead entry.
        let doomed = WaitCell::for_thread();
        watchdog(&doomed, Duration::from_millis(1));
        drop(doomed);
        let cell = WaitCell::for_thread();
        watchdog(&cell, Duration::from_millis(10));
        assert!(cell.park(Duration::from_secs(30)));
    }

    #[test]
    fn cross_thread_wake_unparks() {
        let t = Arc::new(WaiterTable::new(1));
        let cell = WaitCell::for_thread();
        t.register(&[0], &cell);
        let waker = {
            let t = Arc::clone(&t);
            std::thread::spawn(move || t.wake_stripes(&[0]))
        };
        assert!(cell.park(Duration::from_secs(30)), "woken, not timed out");
        assert_eq!(waker.join().expect("waker thread"), 1);
    }
}
