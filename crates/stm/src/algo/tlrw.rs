//! Tlrw: TLRW-style **visible reads** (Dice–Shavit, SPAA'10) — the other
//! side of the paper's time–space tradeoff, on real hardware.
//!
//! Where the invisible-read algorithms pay validation work (up to Θ(m²)
//! for Incremental), Tlrw pays **synchronization inside every read**: the
//! first read of a stripe announces itself with one `fetch_add` on the
//! stripe's reader–writer word and holds that read lock until the
//! transaction resolves. A held read lock excludes writers from the whole
//! stripe, so reads are trivially consistent — **no validation, ever**;
//! read-only transactions commit with zero probes
//! (`StatsSnapshot::validation_probes` stays 0).
//!
//! ## Protocol (per stripe word, see [`crate::orec`])
//!
//! * **read**: if the stripe is already read-locked by this transaction,
//!   just load the value. Otherwise `fetch_add(+RW_READER)`; if the
//!   writer flag was set, undo with `fetch_add(-RW_READER)` and abort.
//! * **write**: buffered (generic engine path).
//! * **commit**: for each write stripe in sorted order, CAS the word from
//!   exactly "no foreign owner" (our own read lock, or nothing) to the
//!   writer flag — any other state proves a concurrent reader or writer
//!   and aborts. Publish values, release write locks, then the engine
//!   releases the remaining read locks.
//!
//! All lock releases are arithmetic (`fetch_add`/`fetch_sub`, never blind
//! stores), so transient reader increments racing with a rollback
//! survive. A failed upgrade CAS restores the consumed read lock *and*
//! re-registers it in `TxLog::rw_reads` — dropping it from the set while
//! restoring the count would leak the lock and starve every later writer
//! on the stripe (the simulated twin in `ptm-core` had exactly this bug
//! in its rollback path).
//!
//! Aborts happen only when the lock word proves a concurrent conflicting
//! transaction — progressive. It is **not strongly progressive**: two
//! read-to-write upgraders on the same stripe each see the other's read
//! lock and both abort; the pluggable contention manager (backoff) is
//! what makes them eventually diverge.

use crate::engine::{Retry, Stm, Transaction};
use crate::epoch;
use crate::orec::{rw_write_locked, RW_READER, RW_WRITER};
use crate::tvar::{TVar, TxValue};
use std::sync::atomic::Ordering;

/// No snapshot clock: consistency comes from the held read locks.
pub(crate) fn begin(_stm: &Stm) -> u64 {
    0
}

/// Visible read: announce a reader on the stripe (one `fetch_add`), then
/// load the value under the held lock. O(1), no validation.
pub(crate) fn read<T: TxValue>(tx: &mut Transaction<'_>, var: &TVar<T>) -> Result<T, Retry> {
    let stripe = tx.stm.orecs.stripe_of(var.id());
    if !tx.log.rw_contains(stripe) {
        let word = tx.stm.orecs.word(stripe);
        let prev = word.fetch_add(RW_READER, Ordering::AcqRel);
        if rw_write_locked(prev) {
            // A writer owns the stripe: undo the announcement and abort.
            word.fetch_sub(RW_READER, Ordering::AcqRel);
            tx.tally.reader_conflict();
            return Err(Retry);
        }
        tx.log.rw_insert(stripe);
    }
    // The held read lock excludes writers until this transaction
    // resolves, so the loaded value cannot be concurrently replaced.
    Ok(var.inner.read_snapshot(&tx.pin))
}

/// Commit hook: upgrade/acquire write locks stripe by stripe, publish,
/// release. Read locks that were not upgraded are released by the
/// engine's generic path right after this returns.
pub(crate) fn commit(tx: &mut Transaction<'_>) -> bool {
    super::with_write_stripes(tx, commit_with)
}

/// `held` entries are `(stripe, was_read)`: whether the write lock was
/// acquired by upgrading our own read lock (1) or from an unowned word
/// (0) — rollback and release must undo exactly what was done.
fn commit_with(tx: &mut Transaction<'_>, stripes: &[usize], held: &mut Vec<(usize, u64)>) -> bool {
    if !prepare_with(tx, stripes, held) {
        return false;
    }
    publish_with(tx, stripes, held);
    true
}

/// First commit half: upgrade/acquire the write locks, publishing
/// nothing. On failure every acquired lock is rolled back (consumed read
/// locks restored and re-registered) and `held` is left empty. Exposed
/// to the engine's two-phase commit.
pub(crate) fn prepare_with(
    tx: &mut Transaction<'_>,
    stripes: &[usize],
    held: &mut Vec<(usize, u64)>,
) -> bool {
    for &stripe in stripes.iter() {
        let upgrading = tx.log.rw_contains(stripe);
        let expected = if upgrading { RW_READER } else { 0 };
        let word = tx.stm.orecs.word(stripe);
        if word
            .compare_exchange(expected, RW_WRITER, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            // Foreign readers or a writer hold the stripe: roll back.
            rollback(tx, held);
            held.clear();
            tx.tally.reader_conflict();
            return false;
        }
        if upgrading {
            // The CAS consumed our read lock; track it as a write lock.
            tx.log.rw_remove(stripe);
        }
        held.push((stripe, u64::from(upgrading)));
    }
    true
}

/// Second commit half: publish under the write locks [`prepare_with`]
/// acquired and drop them. Infallible. (Read locks that were not
/// upgraded stay held; the engine releases them right after.)
pub(crate) fn publish_with(tx: &mut Transaction<'_>, stripes: &[usize], held: &[(usize, u64)]) {
    // Tlrw's own protocol never touches the clock; a durable commit
    // draws a tick here purely as a log stamp, while the write locks
    // still exclude every conflicting transaction — so stamps (and log
    // order) respect conflict order (see `crate::wal`). Non-durable
    // commits skip the draw entirely.
    if tx.has_staged() {
        let stamp = tx.stm.clock.fetch_add(1, Ordering::AcqRel) + 1;
        tx.durability_record(stamp);
    }
    let retired = tx.log.publish_writes();
    for &(stripe, _) in held.iter() {
        tx.stm
            .orecs
            .word(stripe)
            .fetch_sub(RW_WRITER, Ordering::AcqRel);
    }
    epoch::retire_batch(retired);
    // Wake waiters parked on the written stripes — after the write
    // locks drop, so a woken reader can immediately re-acquire.
    tx.stm.wake_stripes(stripes);
}

/// Undoes the write locks a failed or abandoned prepare acquired:
/// upgraded stripes get their read lock back (and re-registered),
/// fresh acquisitions drop to unowned. `pub(crate)` for the engine's
/// two-phase abort path.
pub(crate) fn rollback(tx: &mut Transaction<'_>, held: &[(usize, u64)]) {
    for &(stripe, was_read) in held {
        let word = tx.stm.orecs.word(stripe);
        if was_read == 1 {
            // Restore the consumed read lock (writer flag off, our
            // reader back) and re-register it so abort cleanup releases
            // it — restoring the count without re-registering would leak
            // the lock.
            word.fetch_add(RW_READER.wrapping_sub(RW_WRITER), Ordering::AcqRel);
            tx.log.rw_insert(stripe);
        } else {
            word.fetch_sub(RW_WRITER, Ordering::AcqRel);
        }
    }
}
