//! Incremental: the paper's invisible-read weak-DAP progressive TM
//! transplanted to real hardware.
//!
//! No clock read on the read path; every t-read re-validates the entire
//! read set by version equality — quadratic validation work, observable
//! in [`StmStats::snapshot`](crate::StmStats::snapshot) and in
//! wall-clock time. Commit is the shared versioned-orec path
//! ([`super::versioned`]).

use crate::engine::{Retry, Stm, Transaction};
use crate::orec;
use crate::tvar::{TVar, TxValue};
use std::sync::atomic::Ordering;

pub(crate) use super::versioned::commit;

/// No snapshot clock: consistency comes from re-validation alone.
pub(crate) fn begin(_stm: &Stm) -> u64 {
    0
}

/// Invisible read followed by full read-set re-validation — every prior
/// read, every time (the Θ(m²) signature of Theorem 3(1)).
pub(crate) fn read<T: TxValue>(tx: &mut Transaction<'_>, var: &TVar<T>) -> Result<T, Retry> {
    let stripe = tx.stm.orecs.stripe_of(var.id());
    let word = tx.stm.orecs.word(stripe);
    let m1 = word.load(Ordering::Acquire);
    if orec::is_locked(m1) {
        return Err(Retry);
    }
    let v = var.inner.read_snapshot(&tx.pin);
    if word.load(Ordering::Acquire) != m1 {
        return Err(Retry);
    }
    super::versioned::validate(tx, None)?;
    super::versioned::record_read(tx, stripe, m1);
    Ok(v)
}
