//! Mv: multi-version invisible reads — the paper's *space* axis on real
//! threads (Perelman–Fan–Keidar, PODC'10, the design `ptm-core`'s
//! simulated `MvTm` models with a bounded ring).
//!
//! Every transaction draws a snapshot timestamp from the global clock at
//! its first operation and registers it in the instance's
//! [`SnapshotRegistry`](crate::epoch::SnapshotRegistry). A read then
//! walks the variable's version chain to the newest version stamped at
//! or before the snapshot — **zero orec probes, zero validation, zero
//! shared-memory writes** — so a read-only transaction observes the
//! consistent cut named by its start time and commits without ever
//! aborting, no matter how hard writers storm. Where the bounded-ring
//! simulator aborts a reader whose snapshot aged out of the ring, the
//! native chain is trimmed by *liveness* (the low watermark), so a
//! retained snapshot is never evicted.
//!
//! Updating transactions pay the usual single-version price: commit
//! locks the write set's stripes in sorted order (the same versioned
//! orec words TL2 uses), validates that no stripe a read touched has
//! advanced past the snapshot, and then **appends** a version stamped
//! with a freshly drawn commit timestamp instead of replacing the value:
//!
//! 1. append each written value with a *pending* stamp (past this point
//!    the commit cannot fail — validation already passed under the held
//!    locks);
//! 2. draw `wv` with one `fetch_add` on the clock — **not** the
//!    GV4-style pass-on-failure CAS the single-version commits use (see
//!    `versioned::draw_wv` for why Mv is excluded from that
//!    optimization);
//! 3. resolve the pending stamps to `wv` (readers that raced into the
//!    one-RMW window spin it out rather than guessing);
//! 4. trim each written chain against the registry's **cached** low
//!    watermark (a full registry scan under stripe locks would put every
//!    camped reader on the commit critical path; the cache is refreshed
//!    off the hot path and can only lag *below* the true floor, so
//!    staleness under-trims — see `crate::epoch`), then enforce the
//!    optional [`MvConfig::max_versions`](crate::MvConfig) bound by
//!    evicting the oldest suffix, retiring detached versions through the
//!    epoch collector;
//! 5. release the stripe locks restamped to `wv` (and then refresh the
//!    watermark cache if the clock has advanced far enough).
//!
//! Under a `max_versions` bound Mv recovers the simulator's ring
//! semantics: a camped snapshot whose version was evicted aborts at its
//! next read (`eviction_aborts` in [`StatsSnapshot`](crate::StatsSnapshot))
//! and retries on a fresh, retained snapshot — space stays bounded no
//! matter how long a reader camps.
//!
//! The clock-draw-after-append order is what makes snapshots sound: a
//! reader can only draw `rv >= wv` after the clock reached `wv`, by
//! which time every `wv`-stamped version is already reachable (pending,
//! resolved by the time the reader's traversal needs its stamp). A
//! reader with `rv < wv` skips the new versions and finds the ones its
//! snapshot names — which the watermark (a lower bound on every active
//! `rv`) keeps alive.
//!
//! That argument needs more than program order: the reader must
//! *happens-after* the appends. Snapshot reads do zero orec probes and
//! read-only transactions never validate, so the clock itself is the
//! only location that can carry the edge — which is why step 2 must be
//! an RMW that **always writes**. Every clock write is then a release
//! operation in the clock's modification order, so a reader whose
//! acquire load returns `c >= wv` synchronizes (through the release
//! sequence of RMWs ending at `c`) with the committer that wrote `wv`,
//! and therefore sees its appended heads. A failed CAS writes nothing
//! and provides no such edge — a reader could adopt-era `rv >= wv` yet
//! miss the loser's appends on some chains, tearing the snapshot.
//!
//! Costs, in the paper's terms: weak DAP is given up (the global clock
//! orders commits) and space is spent on superseded versions —
//! `versions_trimmed` / `max_chain_len` in
//! [`StatsSnapshot`](crate::StatsSnapshot) watch that budget, and
//! `snapshot_reads` counts the reads that paid no validation for it.

use super::versioned;
use crate::engine::{Retry, Transaction};
use crate::epoch;
use crate::orec::{self, stamped};
use crate::tvar::{Evicted, TVar, TxValue};
use crate::txlog::VersionedRead;
use std::sync::atomic::Ordering;

/// Snapshot time: the global clock at begin, published in the snapshot
/// registry so the low-watermark collector keeps this transaction's cut
/// reachable until it resolves.
pub(crate) fn begin(tx: &mut Transaction<'_>) -> u64 {
    let reg = tx
        .stm
        .snapshots
        .as_ref()
        .expect("Algorithm::Mv instances carry a snapshot registry");
    let (rv, guard) = reg.pin(&tx.stm.clock);
    tx.snap = Some(guard);
    rv
}

/// Snapshot read: walk the chain to the newest version stamped at or
/// before `rv`. No orec probe, no validation; the read set records only
/// the stripe and the snapshot bound, for the *commit-time* validation
/// an updating transaction must still pass. The only abort is the
/// oldest-snapshot rule: under a [`max_versions`](crate::MvConfig)
/// bound, a snapshot whose version was evicted retries with a fresh
/// (hence retained) snapshot.
pub(crate) fn read<T: TxValue>(tx: &mut Transaction<'_>, var: &TVar<T>) -> Result<T, Retry> {
    let stripe = tx.stm.orecs.stripe_of(var.id());
    tx.log.reads.push(VersionedRead {
        stripe,
        meta: tx.rv,
    });
    tx.tally.snapshot_read();
    match var.inner.read_at_counted(&tx.pin, tx.rv) {
        Ok((value, steps)) => {
            tx.tally.chain_walk(steps);
            Ok(value)
        }
        Err(Evicted) => {
            tx.stm.stats.eviction_abort();
            Err(Retry)
        }
    }
}

/// Upper-bound validation of the read set: a stripe that is locked, or
/// stamped past the snapshot, proves a commit this transaction's reads
/// did not see. `held` lists stripes this transaction has locked, with
/// their pre-lock words.
pub(crate) fn validate(tx: &Transaction<'_>, held: &[(usize, u64)]) -> Result<(), Retry> {
    tx.tally.probes(tx.log.reads.len() as u64);
    for r in &tx.log.reads {
        let word = if let Some(pre) = versioned::held_word(held, r.stripe) {
            pre
        } else {
            tx.stm.orecs.word(r.stripe).load(Ordering::Acquire)
        };
        if orec::is_locked(word) || orec::version_of(word) > r.meta {
            return Err(Retry);
        }
    }
    Ok(())
}

/// Commit hook (updating transactions only; read-only commits are the
/// engine's generic no-op): lock, validate, append, stamp, trim,
/// release.
pub(crate) fn commit(tx: &mut Transaction<'_>) -> bool {
    super::with_write_stripes(tx, commit_with)
}

fn commit_with(tx: &mut Transaction<'_>, stripes: &[usize], held: &mut Vec<(usize, u64)>) -> bool {
    if !prepare_with(tx, stripes, held) {
        return false;
    }
    publish_with(tx, stripes, held);
    true
}

/// First commit half: lock the write stripes and run the upper-bound
/// validation, appending nothing. On failure every lock is released and
/// `held` is left empty. Exposed to the engine's two-phase commit.
pub(crate) fn prepare_with(
    tx: &mut Transaction<'_>,
    stripes: &[usize],
    held: &mut Vec<(usize, u64)>,
) -> bool {
    if !versioned::lock_stripes(tx, stripes, held) {
        held.clear();
        return false;
    }
    if validate(tx, held).is_err() {
        versioned::release(tx, held, None);
        held.clear();
        return false;
    }
    true
}

/// Second commit half: append the pending versions, stamp, trim, and
/// release under the locks [`prepare_with`] acquired. Infallible.
pub(crate) fn publish_with(tx: &mut Transaction<'_>, stripes: &[usize], held: &[(usize, u64)]) {
    // Point of no return: append pending versions, then make them real.
    // The clock draw must be an RMW that always writes (never the
    // pass-on-failure CAS of `versioned::draw_wv`): snapshot readers
    // probe no orecs, so this release write to the clock is the only
    // happens-before edge from the appends above to a reader drawing
    // `rv >= wv` — see the module docs.
    let written = tx.log.append_writes();
    let wv = tx.stm.clock.fetch_add(1, Ordering::AcqRel) + 1;
    // Log the staged durability payload before the pending stamps
    // resolve: a snapshot reader cannot consume a `wv` version until
    // `stamp_head` lands, so the record is in the log before anything
    // observes the commit (see `crate::wal`). Memory-only.
    tx.durability_record(wv);
    for var in &written {
        var.stamp_head(wv);
    }
    // Trim under the still-held stripe locks (one chain mutator at a
    // time); the watermark lower-bounds every active and future
    // snapshot, so nothing a reader can still walk to is detached. The
    // *cached* watermark keeps the registry scan out of this locked
    // section: a stale cache is only ever below the true floor
    // (watermarks never decrease), so staleness under-trims — extra
    // retained versions, never a torn snapshot (see `crate::epoch`).
    let reg = tx
        .stm
        .snapshots
        .as_ref()
        .expect("Algorithm::Mv instances carry a snapshot registry");
    let watermark = reg.cached_watermark(&tx.stm.clock);
    let mut retired = Vec::new();
    for var in &written {
        let (retained, trimmed) = var.trim_chain(watermark, &mut retired);
        tx.stm
            .stats
            .trim((retained + trimmed) as u64, trimmed as u64);
        // The space bound: if liveness-based trimming still leaves the
        // chain over `max_versions`, evict the oldest suffix anyway and
        // record the cut — a camped snapshot older than the cut aborts
        // at its next read of this chain (oldest-snapshot-abort) instead
        // of holding memory hostage.
        if let Some(max) = tx.stm.mv.max_versions {
            if retained > max {
                let evicted = var.cap_chain(max, &mut retired);
                tx.stm.stats.evict(evicted as u64);
            }
        }
    }
    versioned::release(tx, held, Some(stamped(wv)));
    // Refresh the watermark cache off the hot path (no locks held), rate
    // limited by clock distance so a commit storm amortizes the registry
    // scan to one every `WATERMARK_REFRESH_TICKS` ticks.
    reg.refresh_if_stale(&tx.stm.clock);
    // Retire only after every append above: the epoch tag must postdate
    // the last moment a reader could have loaded a detached pointer.
    epoch::retire_batch(retired);
    // Wake waiters parked on the written stripes (after the release
    // restamp, so a woken reader's revalidation sees version > bound).
    tx.stm.wake_stripes(stripes);
}
