//! Shared machinery of the versioned-orec algorithms (Tl2 and
//! Incremental): version-equality validation of the read set and the
//! lock–validate–stamp commit over the striped orec table.

use crate::engine::{Retry, Transaction};
use crate::orec;
use crate::{epoch, txlog::VersionedRead};
use std::sync::atomic::Ordering;

/// Pushes one versioned read observation into the log.
pub(super) fn record_read(tx: &mut Transaction<'_>, stripe: usize, meta: u64) {
    tx.log.reads.push(VersionedRead { stripe, meta });
}

/// Version-equality validation of the read set; `held` lists stripes
/// this transaction has locked, with their pre-lock words.
pub(crate) fn validate(tx: &Transaction<'_>, held: Option<&[(usize, u64)]>) -> Result<(), Retry> {
    tx.stm.stats.probes(tx.log.reads.len() as u64);
    for r in &tx.log.reads {
        if let Some(held) = held {
            if let Some(&(_, pre)) = held.iter().find(|(s, _)| *s == r.stripe) {
                if pre != r.meta {
                    return Err(Retry);
                }
                continue;
            }
        }
        if tx.stm.orecs.word(r.stripe).load(Ordering::Acquire) != r.meta {
            return Err(Retry);
        }
    }
    Ok(())
}

/// Commit hook shared by Tl2 and Incremental: try-lock the write set's
/// stripes in sorted order, validate the read set once against the held
/// locks, stamp a fresh clock tick, publish.
pub(crate) fn commit(tx: &mut Transaction<'_>) -> bool {
    super::with_write_stripes(tx, commit_with)
}

fn commit_with(tx: &mut Transaction<'_>, stripes: &[usize], held: &mut Vec<(usize, u64)>) -> bool {
    if !lock_stripes(tx, stripes, held) {
        return false;
    }
    if validate(tx, Some(held)).is_err() {
        release(tx, held, None);
        return false;
    }
    let wv = tx.stm.clock.fetch_add(1, Ordering::AcqRel) + 1;
    let retired = tx.log.publish_writes();
    release(tx, held, Some(orec::stamped(wv)));
    // Retire only after every swap above: the epoch tag must postdate
    // the last moment a reader could have loaded an old pointer.
    epoch::retire_batch(retired);
    true
}

/// Try-locks the given (sorted, deduplicated) stripes, recording each
/// `(stripe, pre-lock word)` in `held`. On any already-locked or lost
/// CAS, releases everything taken so far and returns `false`. Shared by
/// every versioned-word commit (Tl2/Incremental's and Mv's), so the
/// locking protocol has exactly one implementation.
pub(super) fn lock_stripes(
    tx: &mut Transaction<'_>,
    stripes: &[usize],
    held: &mut Vec<(usize, u64)>,
) -> bool {
    for &stripe in stripes.iter() {
        let word = tx.stm.orecs.word(stripe);
        let m = word.load(Ordering::Acquire);
        let lock_ok = !orec::is_locked(m)
            && word
                .compare_exchange(m, m | 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok();
        if !lock_ok {
            release(tx, held, None);
            return false;
        }
        held.push((stripe, m));
    }
    true
}

/// Releases held stripe locks: to their pre-lock word (on abort) or to a
/// new stamped word (on commit).
pub(super) fn release(tx: &Transaction<'_>, held: &[(usize, u64)], stamp: Option<u64>) {
    for &(stripe, pre) in held {
        tx.stm
            .orecs
            .word(stripe)
            .store(stamp.unwrap_or(pre), Ordering::Release);
    }
}
