//! Shared machinery of the versioned-orec algorithms (Tl2 and
//! Incremental): version-equality validation of the read set and the
//! lock–validate–stamp commit over the striped orec table.

use crate::engine::{Retry, Transaction};
use crate::orec;
use crate::{epoch, txlog::VersionedRead};
use std::sync::atomic::Ordering;

/// Pushes one versioned read observation into the log.
pub(super) fn record_read(tx: &mut Transaction<'_>, stripe: usize, meta: u64) {
    tx.log.reads.push(VersionedRead { stripe, meta });
}

/// Held-stripe counts up to this are probed by linear scan during
/// validation; larger sets binary-search (the list is sorted — see
/// [`held_word`]). Same hybrid rationale as the log's registries: tiny
/// scans are cache-hot, big ones must not turn validation into an
/// O(reads × writes) corner.
const HELD_LINEAR_MAX: usize = 8;

/// The pre-lock word for `stripe`, if it is among this commit's held
/// locks. `held` is in ascending stripe order by construction
/// ([`lock_stripes`] walks the sorted, deduplicated write stripes), so
/// sets past [`HELD_LINEAR_MAX`] resolve in O(log w).
pub(super) fn held_word(held: &[(usize, u64)], stripe: usize) -> Option<u64> {
    debug_assert!(
        held.windows(2).all(|w| w[0].0 < w[1].0),
        "held-lock list must be strictly sorted by stripe"
    );
    if held.len() <= HELD_LINEAR_MAX {
        held.iter()
            .find(|&&(s, _)| s == stripe)
            .map(|&(_, pre)| pre)
    } else {
        held.binary_search_by_key(&stripe, |&(s, _)| s)
            .ok()
            .map(|i| held[i].1)
    }
}

/// Version-equality validation of the read set; `held` lists stripes
/// this transaction has locked, with their pre-lock words.
pub(crate) fn validate(tx: &Transaction<'_>, held: Option<&[(usize, u64)]>) -> Result<(), Retry> {
    tx.tally.probes(tx.log.reads.len() as u64);
    for r in &tx.log.reads {
        if let Some(held) = held {
            if let Some(pre) = held_word(held, r.stripe) {
                if pre != r.meta {
                    return Err(Retry);
                }
                continue;
            }
        }
        if tx.stm.orecs.word(r.stripe).load(Ordering::Acquire) != r.meta {
            return Err(Retry);
        }
    }
    Ok(())
}

/// Commit hook shared by Tl2 and Incremental: try-lock the write set's
/// stripes in sorted order, validate the read set once against the held
/// locks, draw a commit timestamp, publish.
pub(crate) fn commit(tx: &mut Transaction<'_>) -> bool {
    super::with_write_stripes(tx, commit_with)
}

/// Draws this commit's write version from the global clock — GV4-style
/// "pass on failure": one CAS to advance the clock; a loser adopts the
/// winner's value instead of retrying, so k racing committers cost k CAS
/// attempts total rather than k serialized wins on the hottest line in
/// the system.
///
/// **Single-version commits only** (Tl2/Incremental, `commit_with`
/// below). Mv's commit must not use this: a failed CAS performs no
/// write, so an adopting loser leaves **no release edge on the clock**
/// between its work and a reader that drew `rv >= wv` from the winner's
/// write. That is fine here — invisible single-version readers always
/// probe the stripe's orec word around the value load, and the
/// committer's lock CAS / release-stamp of that word carries the
/// happens-before — but Mv's snapshot readers probe *nothing* except
/// the clock, so Mv draws its tick with an always-writing `fetch_add`
/// instead (see `mv::commit_with` and the `mv` module docs).
///
/// Why adopting a foreign tick is safe — the caller must invoke this
/// only **after** its stripe locks are held:
///
/// * **Racing committers write disjoint stripes.** Both hold their write
///   sets' stripe locks at the CAS, so two commits can share a `wv` only
///   if their write sets are disjoint — same-timestamp commits never
///   order against each other, and serializing them arbitrarily is
///   consistent.
/// * **Stripe stamps still advance.** The stripe's pre-lock version was
///   ≤ the clock when we loaded it (only stamp/append of an
///   already-drawn tick publishes a version, and drawing never exceeds
///   the clock), and `wv` ≥ that load + 1 in the win case or the
///   winner's strictly larger tick in the loss case — either way the
///   new stamp strictly exceeds the old.
/// * **Readers cannot miss an adopted tick.** An invisible reader's
///   check/read/re-check brackets every value load with acquire loads of
///   the stripe's orec word, and the committer writes that word twice
///   (lock CAS, release restamp) around its value swap — so whichever
///   word the reader observes (pre-lock: old value, consistent;
///   locked: retry; restamped: new value, published before the restamp
///   it acquired) the happens-before runs through the **orec word**,
///   never through the clock. The adopted tick only has to be a correct
///   *number*, which the two bullets above establish; it never has to
///   carry an ordering edge.
fn draw_wv(tx: &Transaction<'_>) -> u64 {
    let clock = &tx.stm.clock;
    let seen = clock.load(Ordering::Acquire);
    match clock.compare_exchange(seen, seen + 1, Ordering::AcqRel, Ordering::Acquire) {
        Ok(_) => seen + 1,
        // Strong CAS: failure means another committer moved the clock
        // past `seen`; its tick is ours too.
        Err(current) => current,
    }
}

fn commit_with(tx: &mut Transaction<'_>, stripes: &[usize], held: &mut Vec<(usize, u64)>) -> bool {
    if !prepare_with(tx, stripes, held) {
        return false;
    }
    publish_with(tx, stripes, held);
    true
}

/// First commit half: try-lock the write stripes and validate the read
/// set against the held locks, without publishing anything. On failure
/// every lock taken is released and `held` is left empty. Exposed to the
/// engine's two-phase commit ([`Transaction::prepare_commit`]), which
/// holds several instances' prepares open before publishing any.
///
/// [`Transaction::prepare_commit`]: crate::Transaction::prepare_commit
pub(crate) fn prepare_with(
    tx: &mut Transaction<'_>,
    stripes: &[usize],
    held: &mut Vec<(usize, u64)>,
) -> bool {
    if !lock_stripes(tx, stripes, held) {
        held.clear();
        return false;
    }
    if validate(tx, Some(held)).is_err() {
        release(tx, held, None);
        held.clear();
        return false;
    }
    true
}

/// Second commit half: publish the write set under the locks
/// [`prepare_with`] acquired and release them stamped. Infallible — the
/// prepare already decided the outcome.
pub(crate) fn publish_with(tx: &mut Transaction<'_>, stripes: &[usize], held: &[(usize, u64)]) {
    // Locks held: safe to share a lost race's tick (see `draw_wv`).
    let wv = draw_wv(tx);
    // Log the staged durability payload before the release below makes
    // the write set reader-visible: a conflicting commit serializes on
    // the held stripes, so log order respects conflict order (see
    // `crate::wal`). Memory-only — no I/O under the locks.
    tx.durability_record(wv);
    let retired = tx.log.publish_writes();
    release(tx, held, Some(orec::stamped(wv)));
    // Retire only after every swap above: the epoch tag must postdate
    // the last moment a reader could have loaded an old pointer.
    epoch::retire_batch(retired);
    // Wake waiters parked on the written stripes — after the release
    // stores above, so a woken reader re-reading the stripe sees the
    // new stamp (and the SeqCst fence inside pairs with registration;
    // see `crate::waiter`).
    tx.stm.wake_stripes(stripes);
}

/// Try-locks the given (sorted, deduplicated) stripes, recording each
/// `(stripe, pre-lock word)` in `held`. On any already-locked or lost
/// CAS, releases everything taken so far and returns `false`. Shared by
/// every versioned-word commit (Tl2/Incremental's and Mv's), so the
/// locking protocol has exactly one implementation.
pub(super) fn lock_stripes(
    tx: &mut Transaction<'_>,
    stripes: &[usize],
    held: &mut Vec<(usize, u64)>,
) -> bool {
    for &stripe in stripes.iter() {
        let word = tx.stm.orecs.word(stripe);
        let m = word.load(Ordering::Acquire);
        let lock_ok = !orec::is_locked(m)
            && word
                .compare_exchange(m, m | 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok();
        if !lock_ok {
            release(tx, held, None);
            return false;
        }
        held.push((stripe, m));
    }
    true
}

/// Releases held stripe locks: to their pre-lock word (on abort) or to a
/// new stamped word (on commit). `pub(crate)` so the engine's two-phase
/// commit can abort a prepared (locked, validated, unpublished) attempt.
pub(crate) fn release(tx: &Transaction<'_>, held: &[(usize, u64)], stamp: Option<u64>) {
    for &(stripe, pre) in held {
        tx.stm
            .orecs
            .word(stripe)
            .store(stamp.unwrap_or(pre), Ordering::Release);
    }
}
