//! Adaptive: workload-driven switching across the paper's time–space
//! tradeoff.
//!
//! The static single-version algorithms force the user to pick a side
//! of the tradeoff at [`StmBuilder`](crate::StmBuilder) time: invisible reads
//! (Tl2) pay validation time and abort–rescan churn when writers are
//! frequent, visible reads (Tlrw) pay one shared-memory RMW inside every
//! first read of a stripe and reader–writer conflicts when readers
//! dominate. `Algorithm::Adaptive` makes the tradeoff a *runtime*
//! quantity: a mode controller samples [`StatsSnapshot`] deltas over
//! commit windows and moves the live engine between
//!
//! * **invisible mode** — the Tl2 read/commit hooks over versioned orec
//!   words (read-mostly phases: reads are two plain loads, no
//!   shared-memory write),
//! * **visible mode** — the Tlrw read/commit hooks over reader–writer
//!   orec words (write-heavy or abort-thrashing phases: per-stripe write
//!   locks, no global clock hotspot, no read-set validation), and
//! * **multiversion mode** — the Mv hooks over versioned orec words
//!   (scan-heavy phases: long read-only transactions read the snapshot
//!   named by their start time and *cannot* abort, paying in retained
//!   versions — the paper's space axis as a routing target).
//!
//! ## The decision signals
//!
//! Each window of [`AdaptiveConfig::window_commits`] commits, the
//! controller computes from the stats delta (reads here meaning `reads +
//! snapshot_reads`, so the signals stay comparable across modes):
//!
//! * the **read/write-set size ratio** `reads / writes` — the primary
//!   time-axis signal: at or below
//!   [`AdaptiveConfig::write_ratio_visible`] the window was write-heavy
//!   (go visible), at or above [`AdaptiveConfig::read_ratio_invisible`]
//!   it was read-mostly (leave visible); the band between the two
//!   thresholds is dead — no switching pressure either way;
//! * the **scan length** `reads / commits` — the space-axis signal: at
//!   or above [`AdaptiveConfig::mv_scan_reads`] the window's
//!   transactions are long scans, which Mv serves without aborts or
//!   validation; read-mostly departures from the other modes route to
//!   multiversion instead of invisible when this fires;
//! * the **abort rate** and **validation probes per read** — fast-path
//!   accelerators out of invisible mode: when optimistic execution is
//!   thrashing (aborted attempts re-running, validation work exceeding
//!   the read work it protects), the switch skips hysteresis;
//! * **reader conflicts per commit** — an accelerant *out of* visible
//!   mode: visible-read lock churn means the pessimistic side is paying
//!   for a workload it no longer fits;
//! * **eviction aborts** — an accelerant out of multiversion mode: under
//!   a [`MvConfig`](crate::MvConfig) space bound, snapshots aging out of
//!   capped chains mean the space budget no longer fits the camping
//!   pattern, and invisible reads serve it with no chains at all.
//!
//! A switch additionally requires the same target mode for
//! [`AdaptiveConfig::hysteresis_windows`] consecutive windows, so a
//! workload oscillating around a threshold does not flap.
//!
//! ## The epoch-quiesced transition
//!
//! The modes interpret the *same* orec table under different word
//! formats (`version << 1 | locked` for Tl2 and Mv vs `readers << 1 |
//! writer` for Tlrw), so a switch must never let transactions of
//! different modes overlap. Every adaptive transaction registers in a
//! per-mode active counter at its first operation and **pins its
//! starting mode for the whole attempt**; the switcher
//!
//! 1. raises a *draining* flag — new transactions spin (yielding) until
//!    the transition resolves, in-flight ones finish under their pinned
//!    mode;
//! 2. waits for the old mode's active count to reach zero, giving up
//!    (and lowering the flag) after [`AdaptiveConfig::max_drain`] so a
//!    long-running or nested transaction stalls the switch, never the
//!    system;
//! 3. reinterprets the quiesced table by resetting every word to zero —
//!    sound in every direction: a zero word is "unlocked, version 0" to
//!    the versioned format and "no readers, no writer" to the
//!    reader–writer format, and every commit published under the old
//!    mode happened-before the barrier, so the new mode never needs the
//!    discarded versions to detect a conflict that predates it (the
//!    global clock is *not* reset, keeping Tl2 and Mv snapshots
//!    monotonic across any number of round trips). Quiescence also
//!    leaves the snapshot registry empty — an Mv transaction holds its
//!    registry slot for its whole pinned attempt — so a switch out of
//!    multiversion mode strands no snapshot, and the switcher rebases
//!    the registry's cached watermark to the current clock, releasing
//!    every version the departed mode retained;
//! 4. publishes the new mode, which releases the spinning beginners.
//!
//! Histories recorded across a switch stay opaque for the same reason
//! the reset is sound: the quiesce barrier totally orders old-mode
//! transactions before new-mode ones in real time, so a switch can only
//! *restrict* the interleavings the checker must serialize.

use crate::engine::{Algorithm, Stm, Transaction};
use crate::stats::{ActiveMode, StatsSnapshot};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use super::{mv, tl2, tlrw};

/// Tuning knobs for [`Algorithm::Adaptive`](crate::Algorithm::Adaptive)'s
/// mode controller, set through
/// [`StmBuilder::adaptive_config`](crate::StmBuilder::adaptive_config).
///
/// The defaults suit transaction mixes in the tens-of-operations range;
/// shrink `window_commits` (and `hysteresis_windows`) to make tests and
/// short workloads switch quickly.
///
/// # Examples
///
/// ```
/// use ptm_stm::{AdaptiveConfig, Algorithm, Stm};
///
/// let stm = Stm::builder(Algorithm::Adaptive)
///     .adaptive_config(AdaptiveConfig {
///         window_commits: 64,
///         hysteresis_windows: 1,
///         ..AdaptiveConfig::default()
///     })
///     .build();
/// assert_eq!(stm.active_mode(), Algorithm::Tl2); // starts invisible
/// ```
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveConfig {
    /// Commits per sampling window: the controller inspects the stats
    /// delta once every `window_commits` commits. Must be at least 1.
    pub window_commits: u64,
    /// Read/write ratio at or below which a window counts as
    /// write-heavy and votes for **visible** mode. Must stay below
    /// `read_ratio_invisible`; the gap between them is the dead band
    /// that prevents flapping on mixed workloads.
    pub write_ratio_visible: f64,
    /// Read/write ratio at or above which a window counts as
    /// read-mostly and votes for **invisible** mode.
    pub read_ratio_invisible: f64,
    /// Abort rate (aborts / attempts) at or above which a vote for
    /// visible mode skips hysteresis: optimistic execution is thrashing
    /// and every extra window spent invisible re-runs work.
    pub abort_rate_fast: f64,
    /// Validation probes per read at or above which a vote for visible
    /// mode skips hysteresis: validation re-work has outgrown the read
    /// work it protects.
    pub probe_rate_fast: f64,
    /// Reader conflicts per commit at or above which visible mode is
    /// abandoned regardless of the read/write ratio: visible-read lock
    /// churn is aborting transactions the invisible mode would commit.
    pub reader_conflict_rate: f64,
    /// Reads per commit (scan length, counting snapshot reads) at or
    /// above which a read-leaning window counts as scan-heavy and
    /// routes to **multiversion** mode, where long read-only
    /// transactions never validate and never abort. Must be at least 1.
    pub mv_scan_reads: f64,
    /// Consecutive windows that must agree on a target mode before the
    /// switch executes (fast-path signals override). Must be at least 1.
    pub hysteresis_windows: u32,
    /// How long a switch may wait for in-flight transactions of the old
    /// mode to finish before giving up and keeping the current mode
    /// (retried at the next window). Bounds the stall a long-running —
    /// or nested, hence undrainable — transaction can impose.
    pub max_drain: Duration,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            window_commits: 256,
            write_ratio_visible: 3.0,
            read_ratio_invisible: 8.0,
            abort_rate_fast: 0.25,
            probe_rate_fast: 2.0,
            reader_conflict_rate: 0.5,
            mv_scan_reads: 64.0,
            hysteresis_windows: 2,
            max_drain: Duration::from_millis(5),
        }
    }
}

impl AdaptiveConfig {
    /// Panics on inconsistent settings; called by
    /// [`StmBuilder::build`](crate::StmBuilder::build).
    pub(crate) fn validate(&self) {
        assert!(
            self.window_commits >= 1,
            "window_commits must be at least 1"
        );
        assert!(
            self.hysteresis_windows >= 1,
            "hysteresis_windows must be at least 1"
        );
        assert!(
            self.write_ratio_visible < self.read_ratio_invisible,
            "the visible/invisible ratio thresholds must leave a dead band \
             (write_ratio_visible < read_ratio_invisible)"
        );
        assert!(
            self.mv_scan_reads >= 1.0,
            "mv_scan_reads must be at least 1"
        );
    }
}

/// The three hook sets an adaptive instance moves between.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Mode {
    /// Tl2 hooks: versioned lock words, optimistic invisible reads.
    Invisible = 0,
    /// Tlrw hooks: reader–writer lock words, announced visible reads.
    Visible = 1,
    /// Mv hooks: versioned lock words, snapshot reads over version
    /// chains — abort-free read-only transactions at a space cost.
    Multiversion = 2,
}

impl Mode {
    /// Decodes the mode bits of the packed state word.
    fn from_bits(bits: u64) -> Mode {
        match bits & MODE_MASK {
            1 => Mode::Visible,
            2 => Mode::Multiversion,
            _ => Mode::Invisible,
        }
    }

    /// The public three-valued mode this maps to in [`StatsSnapshot`].
    fn active(self) -> ActiveMode {
        match self {
            Mode::Invisible => ActiveMode::Invisible,
            Mode::Visible => ActiveMode::Visible,
            Mode::Multiversion => ActiveMode::Multiversion,
        }
    }
}

/// Mode bits in the packed state word.
const MODE_MASK: u64 = 3;

/// Draining flag in the packed state word (bits 0–1 are the mode).
const DRAIN: u64 = 4;

/// Controller bookkeeping, touched once per window under the `ctl` lock.
#[derive(Default)]
struct Ctl {
    /// Stats at the previous sample, for windowed deltas.
    last: StatsSnapshot,
    /// Mode the recent windows have been voting for, if any.
    target: Option<Mode>,
    /// Consecutive windows that voted for `target`.
    streak: u32,
}

/// Live mode-controller state owned by an adaptive [`Stm`].
pub(crate) struct AdaptiveState {
    cfg: AdaptiveConfig,
    /// Packed `mode | DRAIN?` word; only the controller mutates it.
    state: AtomicU64,
    /// In-flight transactions per mode; a switch drains the old mode's
    /// count to zero before reinterpreting the orec table.
    active: [AtomicU64; 3],
    /// Commit count at the last sample; the window check compares it
    /// against the live commit counter (one plain load per stats shard),
    /// so the per-commit hot path pays no extra RMW.
    last_sample: AtomicU64,
    ctl: Mutex<Ctl>,
}

impl std::fmt::Debug for AdaptiveState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdaptiveState")
            .field("mode", &self.mode())
            .field("cfg", &self.cfg)
            .finish()
    }
}

impl AdaptiveState {
    pub(crate) fn new(cfg: AdaptiveConfig) -> Self {
        AdaptiveState {
            cfg,
            state: AtomicU64::new(Mode::Invisible as u64),
            active: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
            last_sample: AtomicU64::new(0),
            ctl: Mutex::new(Ctl::default()),
        }
    }

    /// The mode currently (or about to be) in force.
    pub(crate) fn mode(&self) -> Mode {
        Mode::from_bits(self.state.load(Ordering::SeqCst))
    }
}

/// Begin hook: pin the current mode for this attempt (spinning out any
/// in-progress transition), register in its active counter, and sample
/// the mode's snapshot time.
pub(crate) fn begin(tx: &mut Transaction<'_>) -> u64 {
    let ad = tx
        .stm
        .adaptive
        .as_ref()
        .expect("Algorithm::Adaptive instances carry adaptive state");
    loop {
        let s = ad.state.load(Ordering::SeqCst);
        if s & DRAIN != 0 {
            // A switch is draining the old mode; it needs those threads
            // scheduled, so yield rather than burn the timeslice.
            std::thread::yield_now();
            continue;
        }
        let mode = Mode::from_bits(s);
        ad.active[mode as usize].fetch_add(1, Ordering::SeqCst);
        // Registration races the switcher's drain flag: re-check, and
        // back out if a transition started in between (the switcher
        // either saw our increment and is waiting for it, or we saw its
        // flag — never neither).
        if ad.state.load(Ordering::SeqCst) == s {
            tx.pinned = Some(mode);
            return match mode {
                Mode::Invisible => {
                    // Resolve the per-operation dispatch to the pinned
                    // hooks: later reads/commits cost one match, exactly
                    // like a static instance.
                    tx.mode = Algorithm::Tl2;
                    tl2::begin(tx.stm)
                }
                Mode::Visible => {
                    tx.mode = Algorithm::Tlrw;
                    tlrw::begin(tx.stm)
                }
                Mode::Multiversion => {
                    tx.mode = Algorithm::Mv;
                    mv::begin(tx)
                }
            };
        }
        ad.active[mode as usize].fetch_sub(1, Ordering::SeqCst);
    }
}

/// Deregisters an attempt from its mode's active counter; called from
/// the transaction's `Drop` (every attempt, every exit path) and
/// idempotent through `Option::take`. No-op for static instances.
pub(crate) fn release_slot(tx: &mut Transaction<'_>) {
    if let Some(mode) = tx.pinned.take() {
        if let Some(ad) = tx.stm.adaptive.as_ref() {
            ad.active[mode as usize].fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// Commit-path controller hook: counts the commit towards the sampling
/// window and, on a window boundary, samples the stats delta and
/// possibly performs a mode switch. Called by the engine *after* the
/// committing transaction has been dropped, so the caller never holds an
/// active-mode slot while the switch drains. No-op for static instances.
pub(crate) fn after_commit(stm: &Stm) {
    let Some(ad) = stm.adaptive.as_ref() else {
        return;
    };
    // Window check on the commit counter the stats layer already
    // maintains: plain loads (one per stats shard), no extra RMW. The
    // committing transaction was dropped before this runs, so its
    // operation tallies are already flushed into any snapshot sampled
    // here.
    let commits = stm.stats.commit_count();
    if commits.wrapping_sub(ad.last_sample.load(Ordering::Relaxed)) < ad.cfg.window_commits {
        return;
    }
    // One sampler at a time; a lost race just means another thread is
    // already looking at this window.
    let Ok(mut ctl) = ad.ctl.try_lock() else {
        return;
    };
    ad.last_sample.store(commits, Ordering::Relaxed);
    sample(stm, ad, &mut ctl);
}

/// Inspects the window's stats delta and runs the hysteresis/switch
/// logic.
fn sample(stm: &Stm, ad: &AdaptiveState, ctl: &mut Ctl) {
    let snap = stm.stats().snapshot();
    let d = snap.since(&ctl.last);
    ctl.last = snap;
    let mode = ad.mode();
    let Some(want) = desired(&ad.cfg, mode, &d) else {
        ctl.target = None;
        ctl.streak = 0;
        return;
    };
    if ctl.target == Some(want) {
        ctl.streak += 1;
    } else {
        ctl.target = Some(want);
        ctl.streak = 1;
    }
    let decided = ctl.streak >= ad.cfg.hysteresis_windows || fast_path(&ad.cfg, mode, &d);
    // A failed drain keeps the streak: the switch re-fires at the next
    // window boundary without re-earning hysteresis.
    if decided && try_switch(stm, ad, mode, want) {
        ctl.target = None;
        ctl.streak = 0;
    }
}

/// The mode this window's signals vote for, if any (`None` inside the
/// dead band). Reads are counted mode-independently (`reads +
/// snapshot_reads`), so the ratio and scan-length signals mean the same
/// thing whichever hooks produced them.
fn desired(cfg: &AdaptiveConfig, mode: Mode, d: &StatsSnapshot) -> Option<Mode> {
    if d.commits == 0 {
        return None;
    }
    let reads = d.reads + d.snapshot_reads;
    let ratio = reads as f64 / d.writes.max(1) as f64;
    // Scan-heavy: transactions long enough that Mv's abort-free
    // validation-free snapshot reads beat both single-version modes.
    let scanny = reads as f64 / d.commits as f64 >= cfg.mv_scan_reads;
    match mode {
        Mode::Invisible => {
            if scanny && ratio > cfg.write_ratio_visible {
                Some(Mode::Multiversion)
            } else {
                (ratio <= cfg.write_ratio_visible || fast_path(cfg, mode, d))
                    .then_some(Mode::Visible)
            }
        }
        Mode::Visible => {
            let conflicts = d.reader_conflicts as f64 / d.commits as f64;
            (ratio >= cfg.read_ratio_invisible || conflicts >= cfg.reader_conflict_rate).then_some(
                if scanny {
                    Mode::Multiversion
                } else {
                    Mode::Invisible
                },
            )
        }
        Mode::Multiversion => {
            if ratio <= cfg.write_ratio_visible {
                // Write-heavy: chains churn for readers that no longer
                // scan; the visible side serves writers best.
                Some(Mode::Visible)
            } else {
                // Short transactions no longer need snapshots, and
                // eviction aborts mean the space bound no longer fits
                // the camping pattern — either way invisible reads serve
                // the read side without the chains.
                (!scanny || d.eviction_aborts > 0).then_some(Mode::Invisible)
            }
        }
    }
}

/// Whether the window shows optimistic execution thrashing badly enough
/// to skip hysteresis on the way out of invisible mode.
fn fast_path(cfg: &AdaptiveConfig, mode: Mode, d: &StatsSnapshot) -> bool {
    if mode != Mode::Invisible {
        return false;
    }
    let attempts = (d.commits + d.aborts).max(1) as f64;
    let abort_rate = d.aborts as f64 / attempts;
    let probes_per_read = d.validation_probes as f64 / d.reads.max(1) as f64;
    abort_rate >= cfg.abort_rate_fast || probes_per_read >= cfg.probe_rate_fast
}

/// The epoch-quiesced transition itself; returns whether it completed.
fn try_switch(stm: &Stm, ad: &AdaptiveState, from: Mode, to: Mode) -> bool {
    debug_assert_ne!(from, to);
    ad.state.store(from as u64 | DRAIN, Ordering::SeqCst);
    let deadline = Instant::now() + ad.cfg.max_drain;
    while ad.active[from as usize].load(Ordering::SeqCst) != 0 {
        if Instant::now() >= deadline {
            // In-flight old-mode transactions (a long body, or a nested
            // transaction on the caller's own stack) did not finish in
            // time: keep the current mode rather than stall beginners.
            ad.state.store(from as u64, Ordering::SeqCst);
            return false;
        }
        std::thread::yield_now();
    }
    // Quiesced: no transaction of any mode is active (beginners spin on
    // the drain flag, the other modes' counts are zero by the stable-
    // state invariant), so no thread holds or interprets any orec word.
    stm.orecs.reset_all();
    // Quiescence also empties the snapshot registry (an Mv transaction
    // holds its slot for its whole pinned attempt), so rebase its cached
    // watermark to the current clock: every version the departing mode
    // retained for its snapshots is releasable, and the next Mv window
    // starts from an exact cache instead of a stale floor.
    if let Some(reg) = stm.snapshots.as_ref() {
        reg.refresh_watermark(&stm.clock);
    }
    stm.stats.mode_transition(to.active());
    // The SeqCst store publishing the new mode orders the resets above
    // before any beginner that observes it.
    ad.state.store(to as u64, Ordering::SeqCst);
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delta(commits: u64, aborts: u64, reads: u64, writes: u64) -> StatsSnapshot {
        StatsSnapshot {
            commits,
            aborts,
            reads,
            writes,
            ..StatsSnapshot::default()
        }
    }

    #[test]
    fn ratio_thresholds_vote_with_a_dead_band() {
        let cfg = AdaptiveConfig::default();
        // Write-heavy: 2 reads / 2 writes per commit.
        let d = delta(100, 0, 200, 200);
        assert_eq!(desired(&cfg, Mode::Invisible, &d), Some(Mode::Visible));
        assert_eq!(desired(&cfg, Mode::Visible, &d), None);
        // Read-mostly: 16 reads per write.
        let d = delta(100, 0, 1600, 100);
        assert_eq!(desired(&cfg, Mode::Visible, &d), Some(Mode::Invisible));
        assert_eq!(desired(&cfg, Mode::Invisible, &d), None);
        // Dead band: neither threshold crossed, no pressure either way.
        let d = delta(100, 0, 500, 100);
        assert_eq!(desired(&cfg, Mode::Invisible, &d), None);
        assert_eq!(desired(&cfg, Mode::Visible, &d), None);
    }

    #[test]
    fn empty_windows_vote_for_nothing() {
        let cfg = AdaptiveConfig::default();
        let d = delta(0, 0, 0, 0);
        assert_eq!(desired(&cfg, Mode::Invisible, &d), None);
        assert_eq!(desired(&cfg, Mode::Visible, &d), None);
    }

    #[test]
    fn thrashing_takes_the_fast_path_to_visible() {
        let cfg = AdaptiveConfig::default();
        // Read-mostly by ratio, but every other attempt aborts: the
        // abort-rate accelerator votes visible anyway.
        let d = delta(100, 120, 3200, 100);
        assert!(fast_path(&cfg, Mode::Invisible, &d));
        assert_eq!(desired(&cfg, Mode::Invisible, &d), Some(Mode::Visible));
        // Validation re-work exceeding double the reads trips the probe
        // accelerator even with a zero abort rate.
        let d = StatsSnapshot {
            validation_probes: 8000,
            ..delta(100, 0, 3200, 100)
        };
        assert!(fast_path(&cfg, Mode::Invisible, &d));
        // The fast path never applies to leaving visible mode.
        assert!(!fast_path(&cfg, Mode::Visible, &d));
    }

    #[test]
    fn reader_conflicts_evict_visible_mode() {
        let cfg = AdaptiveConfig::default();
        // Write-leaning ratio would keep visible mode, but the lock
        // churn signal forces the way out.
        let d = StatsSnapshot {
            reader_conflicts: 80,
            ..delta(100, 80, 400, 100)
        };
        assert_eq!(desired(&cfg, Mode::Visible, &d), Some(Mode::Invisible));
    }

    #[test]
    fn scan_heavy_windows_route_to_multiversion() {
        let cfg = AdaptiveConfig::default();
        // 100 reads per commit, read-mostly: the scan signal redirects
        // the read-side departure to multiversion from either
        // single-version mode.
        let d = delta(100, 0, 10_000, 100);
        assert_eq!(desired(&cfg, Mode::Invisible, &d), Some(Mode::Multiversion));
        assert_eq!(desired(&cfg, Mode::Visible, &d), Some(Mode::Multiversion));
        // Snapshot reads count as reads: a window already in
        // multiversion mode keeps voting to stay (no pressure).
        let d = StatsSnapshot {
            snapshot_reads: 10_000,
            ..delta(100, 0, 0, 100)
        };
        assert_eq!(desired(&cfg, Mode::Multiversion, &d), None);
        // Long scans but write-heavy overall: versions churn on every
        // commit, visible mode wins the writes.
        let d = delta(100, 0, 10_000, 5_000);
        assert_eq!(desired(&cfg, Mode::Invisible, &d), Some(Mode::Visible));
        assert_eq!(desired(&cfg, Mode::Multiversion, &d), Some(Mode::Visible));
    }

    #[test]
    fn eviction_pressure_and_short_transactions_leave_multiversion() {
        let cfg = AdaptiveConfig::default();
        // Read-mostly but short transactions: snapshots buy nothing.
        let d = StatsSnapshot {
            snapshot_reads: 1600,
            ..delta(100, 0, 0, 100)
        };
        assert_eq!(desired(&cfg, Mode::Multiversion, &d), Some(Mode::Invisible));
        // Still scan-heavy, but snapshots are aging out of the capped
        // chains: the space bound no longer fits the camping pattern.
        let d = StatsSnapshot {
            snapshot_reads: 10_000,
            eviction_aborts: 3,
            ..delta(100, 0, 0, 100)
        };
        assert_eq!(desired(&cfg, Mode::Multiversion, &d), Some(Mode::Invisible));
    }

    #[test]
    #[should_panic(expected = "mv_scan_reads")]
    fn sub_one_scan_threshold_is_rejected() {
        AdaptiveConfig {
            mv_scan_reads: 0.5,
            ..AdaptiveConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "dead band")]
    fn overlapping_thresholds_are_rejected() {
        AdaptiveConfig {
            write_ratio_visible: 8.0,
            read_ratio_invisible: 3.0,
            ..AdaptiveConfig::default()
        }
        .validate();
    }
}
