//! The algorithm-strategy layer: one module per validation algorithm,
//! three hooks each.
//!
//! The engine ([`crate::Stm`] / [`crate::Transaction`]) owns everything
//! algorithm-*independent* — the transaction log, the retry loop,
//! contention management, epoch pinning, history recording, statistics —
//! and delegates the algorithm-*specific* steps to this layer through
//! exactly three hooks, dispatched once each:
//!
//! | hook | contract |
//! |------|----------|
//! | `begin(tx)` | sample the snapshot time (clock, sequence lock, or nothing) at the transaction's first operation — and, for the adaptive controller, pin the attempt's mode |
//! | `read(tx, var) -> Result<T, Retry>` | produce a value consistent with every earlier read of the attempt, recording whatever the commit hook needs (versioned read, value snapshot, or a held read lock) |
//! | `commit(tx) -> bool` | atomically publish the buffered write set or fail without trace; only called when the write set is non-empty |
//!
//! Read-only commits are generic: an attempt whose last read validated
//! (invisible-read algorithms), whose read locks are still held (Tlrw),
//! or whose every read resolved against its start-time snapshot (Mv) is
//! already serialized, so the engine commits it without calling back
//! in here. Likewise generic is read-lock release — the engine undoes
//! `TxLog::rw_reads` on every exit path, including `Drop`, so a panicking
//! body cannot leak a visible read's lock.
//!
//! Validation helpers shared between algorithms live in [`versioned`]
//! (orec version equality, used by Tl2 and Incremental) and in the
//! modules that own them; a new algorithm is one new module plus one
//! arm in each dispatch below — exactly how [`adaptive`] (the fifth)
//! arrived, composing the Tl2 and Tlrw hooks behind a mode controller,
//! and how [`mv`] (the sixth) arrived, swapping the read hook for a
//! version-chain snapshot walk and the commit hook for an appending
//! variant of the versioned path — neither touched the engine's generic
//! machinery.

pub(crate) mod adaptive;
pub(crate) mod incremental;
pub(crate) mod mv;
pub(crate) mod norec;
pub(crate) mod tl2;
pub(crate) mod tlrw;
pub(crate) mod versioned;

use crate::engine::{Algorithm, Retry, Transaction};
use crate::tvar::{TVar, TxValue};

/// Runs a locking commit body with the write set's stripes collected,
/// sorted, and deduplicated (several variables may share a stripe), and
/// with the log's recycled scratch buffers — restored cleared on every
/// exit path, so a retrying transaction reallocates nothing. Shared by
/// every stripe-locking commit hook (versioned and Tlrw).
fn with_write_stripes(
    tx: &mut Transaction<'_>,
    body: impl FnOnce(&mut Transaction<'_>, &[usize], &mut Vec<(usize, u64)>) -> bool,
) -> bool {
    let mut stripes = std::mem::take(&mut tx.log.stripe_buf);
    let mut held = std::mem::take(&mut tx.log.held_buf);
    stripes.extend(tx.log.writes.iter().map(|w| tx.stm.orecs.stripe_of(w.id)));
    stripes.sort_unstable();
    stripes.dedup();
    let ok = body(tx, &stripes, &mut held);
    stripes.clear();
    held.clear();
    tx.log.stripe_buf = stripes;
    tx.log.held_buf = held;
    ok
}

/// Begin hook: samples the algorithm's snapshot time into `tx.rv`
/// lazily at the attempt's first operation (and pins the adaptive
/// mode, where applicable).
pub(crate) fn begin(tx: &mut Transaction<'_>) {
    tx.rv = match tx.stm.algorithm {
        Algorithm::Tl2 => tl2::begin(tx.stm),
        Algorithm::Incremental => incremental::begin(tx.stm),
        Algorithm::Norec => norec::begin(tx.stm),
        Algorithm::Tlrw => tlrw::begin(tx.stm),
        Algorithm::Mv => mv::begin(tx),
        Algorithm::Adaptive => adaptive::begin(tx),
    };
}

/// Read hook: the algorithm-specific consistent-read path (the engine
/// has already consulted the write set). Dispatches on the
/// *transaction's* resolved mode, so an adaptive attempt costs exactly
/// one match here — the same as a static instance.
pub(crate) fn read<T: TxValue>(tx: &mut Transaction<'_>, var: &TVar<T>) -> Result<T, Retry> {
    match tx.mode {
        Algorithm::Tl2 => tl2::read(tx, var),
        Algorithm::Incremental => incremental::read(tx, var),
        Algorithm::Norec => norec::read(tx, var),
        Algorithm::Tlrw => tlrw::read(tx, var),
        Algorithm::Mv => mv::read(tx, var),
        Algorithm::Adaptive => unreachable!("adaptive begin pins Tl2, Tlrw, or Mv as the mode"),
    }
}

/// Commit hook: publish the (non-empty) write set atomically, or fail
/// leaving shared state untouched.
pub(crate) fn commit(tx: &mut Transaction<'_>) -> bool {
    match tx.mode {
        Algorithm::Tl2 => tl2::commit(tx),
        Algorithm::Incremental => incremental::commit(tx),
        Algorithm::Norec => norec::commit(tx),
        Algorithm::Tlrw => tlrw::commit(tx),
        Algorithm::Mv => mv::commit(tx),
        Algorithm::Adaptive => unreachable!("adaptive begin pins Tl2, Tlrw, or Mv as the mode"),
    }
}
