//! Tl2: global version clock, invisible O(1) reads.
//!
//! A read validates in O(1) against the snapshot time with an optimistic
//! word-check / read / re-check and **acquires no lock**; commit is the
//! shared versioned-orec path ([`super::versioned`]): lock the write
//! set's stripes in sorted order, validate the read set once, stamp the
//! stripes with a commit timestamp drawn by one GV4-style pass-on-failure
//! CAS on the global clock.

use crate::engine::{Retry, Stm, Transaction};
use crate::orec;
use crate::tvar::{TVar, TxValue};
use std::sync::atomic::Ordering;

pub(crate) use super::versioned::commit;

/// Snapshot time: the global version clock at transaction begin.
pub(crate) fn begin(stm: &Stm) -> u64 {
    stm.clock.load(Ordering::Acquire)
}

/// Optimistic invisible read: any stripe version newer than the
/// snapshot (or a held lock) means a concurrent commit and aborts.
pub(crate) fn read<T: TxValue>(tx: &mut Transaction<'_>, var: &TVar<T>) -> Result<T, Retry> {
    let stripe = tx.stm.orecs.stripe_of(var.id());
    let word = tx.stm.orecs.word(stripe);
    let m1 = word.load(Ordering::Acquire);
    if orec::is_locked(m1) || orec::version_of(m1) > tx.rv {
        return Err(Retry);
    }
    let v = var.inner.read_snapshot(&tx.pin);
    if word.load(Ordering::Acquire) != m1 {
        return Err(Retry);
    }
    super::versioned::record_read(tx, stripe, m1);
    Ok(v)
}
