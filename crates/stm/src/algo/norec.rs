//! NOrec: a single global sequence lock and value-based validation.
//!
//! No per-variable version traffic on commit besides the value itself;
//! reads snapshot values and revalidate the whole read set *by value*
//! whenever the sequence clock moves, which makes equal-value
//! write-backs (value-level ABA) invisible instead of abort-inducing.

use crate::engine::{Retry, Stm, Transaction};
use crate::epoch;
use crate::tvar::{TVar, TxValue};
use crate::txlog::ValueRead;
use std::sync::atomic::Ordering;

/// Snapshot time: the sequence lock, spun to an even (quiescent) value.
pub(crate) fn begin(stm: &Stm) -> u64 {
    loop {
        let t = stm.clock.load(Ordering::Acquire);
        if t & 1 == 0 {
            return t;
        }
        std::hint::spin_loop();
    }
}

/// Value-snapshot read: consistent as long as the sequence clock has not
/// moved; otherwise revalidate everything by value and retry the read.
pub(crate) fn read<T: TxValue>(tx: &mut Transaction<'_>, var: &TVar<T>) -> Result<T, Retry> {
    loop {
        let v = var.inner.read_snapshot(&tx.pin);
        let t = tx.stm.clock.load(Ordering::Acquire);
        if t == tx.rv {
            tx.log.value_reads.push(ValueRead {
                var: var.as_dyn(),
                snapshot: Box::new(v.clone()),
            });
            return Ok(v);
        }
        tx.rv = validate(tx)?;
    }
}

/// Waits for an even sequence value, then compares every read snapshot
/// with the current value. Returns the validated time.
pub(crate) fn validate(tx: &Transaction<'_>) -> Result<u64, Retry> {
    loop {
        let t = loop {
            let t = tx.stm.clock.load(Ordering::Acquire);
            if t & 1 == 0 {
                break t;
            }
            std::hint::spin_loop();
        };
        tx.tally.probes(tx.log.value_reads.len() as u64);
        for r in &tx.log.value_reads {
            if !r.var.value_eq(&tx.pin, r.snapshot.as_ref()) {
                return Err(Retry);
            }
        }
        if tx.stm.clock.load(Ordering::Acquire) == t {
            return Ok(t);
        }
    }
}

/// Commit hook: acquire the sequence lock (odd value), publish, bump to
/// the next even value.
pub(crate) fn commit(tx: &mut Transaction<'_>) -> bool {
    if !acquire_seqlock(tx) {
        return false;
    }
    publish_locked(tx);
    true
}

/// First commit half: win the sequence lock (CAS even `rv` to the odd
/// `rv + 1`), revalidating by value after every lost race. Returns
/// `false` if validation proves a conflicting commit. On success the
/// instance's clock is odd and owned by this transaction — every other
/// reader and committer of the instance waits — so the caller must
/// promptly [`publish_locked`] or [`release_seqlock`]. Exposed to the
/// engine's two-phase commit.
pub(crate) fn acquire_seqlock(tx: &mut Transaction<'_>) -> bool {
    loop {
        let rv = tx.rv;
        if tx
            .stm
            .clock
            .compare_exchange(rv, rv + 1, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            return true;
        }
        match validate(tx) {
            Ok(t) => tx.rv = t,
            Err(Retry) => return false,
        }
    }
}

/// Second commit half: publish under the held sequence lock and bump the
/// clock to the next even value. Infallible.
pub(crate) fn publish_locked(tx: &mut Transaction<'_>) {
    let retired = tx.log.publish_writes();
    // Log the staged durability payload, stamped with the commit's
    // even sequence value, before the clock store below lets any other
    // transaction proceed: the sequence lock serializes all commits, so
    // log order is exactly commit order (see `crate::wal`).
    let stamp = tx.rv + 2;
    tx.durability_record(stamp);
    tx.stm.clock.store(tx.rv + 2, Ordering::Release);
    epoch::retire_batch(retired);
    // One sequence lock means one conflict channel: every commit may
    // ready every waiter (they all wait on the clock, registered under
    // stripe 0 — see `Transaction::wait_stripes`).
    tx.stm.wake_all_stripes();
}

/// Abandons a won sequence lock without publishing: restore the even
/// pre-acquire value so readers and committers proceed as if the prepare
/// never happened. For the engine's two-phase abort path.
pub(crate) fn release_seqlock(tx: &Transaction<'_>) {
    tx.stm.clock.store(tx.rv, Ordering::Release);
}
