//! Progress statistics, the native-side instrument for Theorem 3(1).
//!
//! The simulator counts steps exactly; on real hardware we count the
//! analogous quantities: commits, aborts, and — crucially — *validation
//! probes* (one per read-set entry re-checked). The
//! `bench_native_validation` experiment shows probes growing
//! quadratically with the read-set size in incremental mode and linearly
//! in TL2 mode, the hardware echo of the paper's bound.
//!
//! ## Why the counters are sharded
//!
//! The instrument must not distort what it measures. A single shared
//! counter block would put one RMW (`fetch_add`) on a globally shared
//! cache line inside *every* t-read — exactly the expensive
//! synchronization pattern the paper's RMR metric charges algorithms
//! for, paid here by algorithms whose whole point is to avoid it (a Tl2
//! read is two plain loads). Two layers remove that cost:
//!
//! * **per-transaction tallies** ([`OpTally`]): the per-operation
//!   counters (reads, writes, probes, snapshot reads, reader conflicts,
//!   recorder markers) are plain non-atomic bumps on the transaction's
//!   own stack, flushed into the shared counters exactly once when the
//!   attempt resolves — so the per-read cost is an add on an
//!   already-hot line, zero RMWs;
//! * **thread-hashed shards**: the shared counters themselves are a
//!   fixed array of cache-line-padded slots indexed by a hash of the
//!   thread id (uniform under thread churn — see [`SHARDS`]), so the
//!   once-per-attempt flush (and the per-commit `commits` bump) lands
//!   on a line that, with high probability, no other thread is
//!   hammering.
//!   [`StmStats::snapshot`] sums the slots; since every slot is
//!   monotonic, two snapshots taken by one thread (or otherwise ordered
//!   by happens-before) still difference cleanly through
//!   [`StatsSnapshot::since`].
//!
//! The visible consequence: a snapshot observes a transaction's
//! operation counts when the attempt resolves (commit, abort, or drop),
//! not mid-flight. Every windowed consumer — the adaptive controller
//! samples *after* the committing transaction is dropped — already
//! orders itself after the flush.

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// The read regime an instance is running: which hook family serves its
/// reads, and therefore where on the paper's time–space tradeoff it
/// sits. Static algorithms are fixed at build time; `Algorithm::Adaptive`
/// moves between all three at runtime (see
/// [`StatsSnapshot::active_mode`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ActiveMode {
    /// Invisible single-version reads (Tl2-family hooks): optimistic
    /// loads validated against versioned orec words.
    #[default]
    Invisible,
    /// Visible reads (Tlrw hooks): announced per-stripe read locks.
    Visible,
    /// Multi-version snapshot reads (Mv hooks): version-chain walks at a
    /// registered snapshot timestamp, never validated.
    Multiversion,
}

impl ActiveMode {
    fn from_u8(v: u8) -> ActiveMode {
        match v {
            1 => ActiveMode::Visible,
            2 => ActiveMode::Multiversion,
            _ => ActiveMode::Invisible,
        }
    }
}

impl fmt::Display for ActiveMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ActiveMode::Invisible => "invisible",
            ActiveMode::Visible => "visible",
            ActiveMode::Multiversion => "multiversion",
        })
    }
}

/// Counter shards per [`StmStats`] instance (power of two). Slots are
/// hashed from the thread id, so collisions between concurrent threads
/// are possible but uniform — and, unlike a round-robin assignment,
/// independent of thread-creation order, so thread churn (short-lived
/// pool workers burning through slots) cannot pile the long-lived
/// threads onto one shard. A collision costs line sharing only;
/// counts stay exact either way.
const SHARDS: usize = 16;

std::thread_local! {
    /// This thread's shard slot, hashed once per thread from its id.
    static THREAD_SLOT: usize = {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        std::thread::current().id().hash(&mut h);
        h.finish() as usize % SHARDS
    };
}

/// The calling thread's shard slot.
fn thread_slot() -> usize {
    THREAD_SLOT.with(|s| *s)
}

/// One cache-line-padded block of monotonic counters. All increments
/// stay `fetch_add`s — but on a line private to (at most) one running
/// thread, so they never ping-pong.
#[derive(Debug, Default)]
#[repr(align(128))]
struct Shard {
    commits: AtomicU64,
    aborts: AtomicU64,
    validation_probes: AtomicU64,
    reader_conflicts: AtomicU64,
    reads: AtomicU64,
    writes: AtomicU64,
    snapshot_reads: AtomicU64,
    chain_walk_steps: AtomicU64,
    versions_trimmed: AtomicU64,
    versions_evicted: AtomicU64,
    eviction_aborts: AtomicU64,
    /// High-water mark, not a counter (`fetch_max`, summed by `max`).
    max_chain_len: AtomicU64,
    /// High-water mark of the post-trim retained chain length — the
    /// standing space bill, as opposed to `max_chain_len`'s pre-trim
    /// spike.
    versions_retained: AtomicU64,
    recorded_events: AtomicU64,
    mode_transitions: AtomicU64,
    parks: AtomicU64,
    wakes: AtomicU64,
    spurious_wakes: AtomicU64,
    async_yields: AtomicU64,
    log_appends: AtomicU64,
    fsyncs: AtomicU64,
    group_commit_records: AtomicU64,
}

/// Monotonic event counters for one [`Stm`](crate::Stm) instance,
/// sharded across cache-padded slots (see the module docs).
#[derive(Debug)]
pub struct StmStats {
    shards: Box<[Shard]>,
    /// Not a counter: the read regime currently in force (static for the
    /// fixed algorithms, live for `Adaptive`). Written only at build
    /// time and on mode switches, so it stays unsharded. Encodes an
    /// [`ActiveMode`] discriminant.
    active_mode: AtomicU8,
}

impl Default for StmStats {
    fn default() -> Self {
        StmStats {
            shards: (0..SHARDS).map(|_| Shard::default()).collect(),
            active_mode: AtomicU8::new(ActiveMode::Invisible as u8),
        }
    }
}

/// Per-transaction operation tallies: plain (non-atomic) counters bumped
/// on the hot path and flushed into the instance's sharded counters
/// exactly once, by the transaction's `Drop`. `Cell`-based so the
/// validation helpers, which hold the transaction by shared reference,
/// can still tally probes.
#[derive(Debug, Default)]
pub(crate) struct OpTally {
    reads: Cell<u64>,
    writes: Cell<u64>,
    validation_probes: Cell<u64>,
    reader_conflicts: Cell<u64>,
    snapshot_reads: Cell<u64>,
    chain_walk_steps: Cell<u64>,
    recorded_events: Cell<u64>,
}

fn bump(c: &Cell<u64>, n: u64) {
    c.set(c.get().wrapping_add(n));
}

impl OpTally {
    pub(crate) fn read(&self) {
        bump(&self.reads, 1);
    }

    pub(crate) fn write(&self) {
        bump(&self.writes, 1);
    }

    pub(crate) fn probes(&self, n: u64) {
        bump(&self.validation_probes, n);
    }

    pub(crate) fn reader_conflict(&self) {
        bump(&self.reader_conflicts, 1);
    }

    pub(crate) fn snapshot_read(&self) {
        bump(&self.snapshot_reads, 1);
    }

    pub(crate) fn chain_walk(&self, steps: u64) {
        bump(&self.chain_walk_steps, steps);
    }

    pub(crate) fn recorded(&self, n: u64) {
        bump(&self.recorded_events, n);
    }
}

/// A point-in-time copy of the counters.
///
/// # Examples
///
/// Windowed deltas via [`StatsSnapshot::since`] — the idiom the
/// adaptive controller itself uses:
///
/// ```
/// use ptm_stm::{Stm, TVar};
///
/// let stm = Stm::tl2();
/// let v = TVar::new(0u64);
/// let before = stm.stats().snapshot();
/// stm.atomically(|tx| tx.modify(&v, |x| x + 1));
/// let d = stm.stats().snapshot().since(&before);
/// assert_eq!((d.commits, d.reads, d.writes), (1, 1, 1));
/// assert_eq!(
///     d.active_mode,
///     ptm_stm::ActiveMode::Invisible,
///     "Tl2 runs invisible reads"
/// );
/// assert!(d.to_string().contains("commits=1"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Transactions that committed.
    pub commits: u64,
    /// Transaction attempts that aborted.
    pub aborts: u64,
    /// Individual read-set entries re-checked during validation.
    pub validation_probes: u64,
    /// Aborts forced by visible-read lock conflicts (`Algorithm::Tlrw`):
    /// a t-read that hit a write-locked stripe, or a committing writer
    /// that found foreign readers (or another writer) on a write stripe.
    /// Always 0 under the invisible-read algorithms.
    pub reader_conflicts: u64,
    /// `read` operations executed.
    pub reads: u64,
    /// `write` operations executed.
    pub writes: u64,
    /// Reads served from a version chain by snapshot timestamp
    /// ([`Algorithm::Mv`](crate::Algorithm::Mv)): zero orec probes, zero
    /// validation, never an abort. Always 0 under the single-version
    /// algorithms.
    pub snapshot_reads: u64,
    /// Version-chain hops snapshot reads performed past the head
    /// ([`Algorithm::Mv`](crate::Algorithm::Mv)): 0 when every read was
    /// served by the newest version. The cost of camping — with skip
    /// pointers it grows logarithmically in the chain length, not
    /// linearly (see the `long_scan` camped-reader bench rung).
    pub chain_walk_steps: u64,
    /// Superseded versions detached from their chains by the
    /// low-watermark collector (`Algorithm::Mv` commits). The space the
    /// multi-version design pays — and reclaims.
    pub versions_trimmed: u64,
    /// Versions cut *past* the low watermark by the
    /// [`MvConfig::max_versions`](crate::MvConfig::max_versions) bound —
    /// versions an active snapshot might still have needed. Always 0
    /// without the bound.
    pub versions_evicted: u64,
    /// Snapshot reads aborted because the version their snapshot named
    /// had been evicted by the space bound (the oldest-snapshot-abort
    /// rule; the retried attempt draws a fresh snapshot and succeeds).
    /// Always 0 without the bound.
    pub eviction_aborts: u64,
    /// The longest version chain any trim pass observed — a high-water
    /// mark, not a counter: [`since`](StatsSnapshot::since) carries the
    /// *later* snapshot's value through unchanged. Bounded by the span
    /// between the oldest active snapshot and the newest commit; stays 0
    /// under the single-version algorithms (only Mv commits trim, and
    /// their chains never grow).
    pub max_chain_len: u64,
    /// The longest *post-trim* chain any trim pass left behind — the
    /// standing space bill (versions no watermark could free), where
    /// `max_chain_len` is the pre-trim spike. A high-water mark like
    /// `max_chain_len`: [`since`](StatsSnapshot::since) carries the
    /// later snapshot's value through. Watch it against
    /// [`MvConfig::max_versions`](crate::MvConfig::max_versions) to see
    /// eviction pressure building.
    pub versions_retained: u64,
    /// History markers captured by an attached
    /// [`HistoryRecorder`](crate::HistoryRecorder) (0 when recording is
    /// off).
    pub recorded_events: u64,
    /// Mode switches performed by the
    /// [`Algorithm::Adaptive`](crate::Algorithm::Adaptive) controller
    /// (always 0 for the static algorithms).
    pub mode_transitions: u64,
    /// Attempts that parked on the orec table's waiter lists instead of
    /// re-running: logical waits (`Transaction::retry`) and
    /// contention-manager [`Decision::Park`](crate::Decision::Park)
    /// escalations. A parked attempt does no spinning and no validation
    /// probing until woken.
    pub parks: u64,
    /// Parked waiters actually woken by a committing writer's wake sweep
    /// over an overlapping stripe.
    pub wakes: u64,
    /// Parks that ended by safety-net timeout rather than a writer's
    /// wake — the lost-wakeup canary (≈ 0 in a healthy run; an idle
    /// `retry` with nothing ever committing also lands here).
    pub spurious_wakes: u64,
    /// Cooperative yields taken by [`Stm::run_async`](crate::Stm::run_async)
    /// polls: the async loop's translation of the contention manager's
    /// wait tiers (a poll that exhausted its inline retry budget
    /// reschedules itself instead of spinning on the executor thread).
    /// Observes the degradation the async path accepts under contention;
    /// always 0 for purely blocking workloads.
    pub async_yields: u64,
    /// Committed write sets appended to an attached write-ahead log
    /// ([`crate::wal`]): one per durable commit. Always 0 without a
    /// durability hook.
    pub log_appends: u64,
    /// Fsync batches the log performed. Under group commit this stays
    /// well below `log_appends` — the ratio is the whole point.
    pub fsyncs: u64,
    /// Records covered by those fsync batches (every record is covered
    /// exactly once, so this equals `log_appends` once quiescent);
    /// [`StatsSnapshot::group_commit_size`] derives the mean batch.
    pub group_commit_records: u64,
    /// The read regime in force when the snapshot was taken:
    /// [`ActiveMode::Visible`] for `Tlrw`, [`ActiveMode::Multiversion`]
    /// for `Mv`, [`ActiveMode::Invisible`] for the other static
    /// algorithms — and, for `Adaptive`, wherever the controller
    /// currently sits. Point-in-time state, not a counter — [`since`]
    /// carries the *later* snapshot's value through unchanged.
    ///
    /// [`since`]: StatsSnapshot::since
    pub active_mode: ActiveMode,
}

impl StmStats {
    /// The calling thread's shard.
    fn local(&self) -> &Shard {
        &self.shards[thread_slot() & (self.shards.len() - 1)]
    }

    /// Folds a resolved attempt's operation tallies into the shared
    /// counters: one shard lookup, at most one RMW per non-zero counter,
    /// on a thread-private line.
    pub(crate) fn flush(&self, t: &OpTally) {
        let s = self.local();
        let add = |counter: &AtomicU64, cell: &Cell<u64>| {
            let n = cell.get();
            if n != 0 {
                counter.fetch_add(n, Ordering::Relaxed);
            }
        };
        add(&s.reads, &t.reads);
        add(&s.writes, &t.writes);
        add(&s.validation_probes, &t.validation_probes);
        add(&s.reader_conflicts, &t.reader_conflicts);
        add(&s.snapshot_reads, &t.snapshot_reads);
        add(&s.chain_walk_steps, &t.chain_walk_steps);
        add(&s.recorded_events, &t.recorded_events);
    }

    pub(crate) fn commit(&self) {
        self.local().commits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn abort(&self) {
        self.local().aborts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a trim pass: `trimmed` versions detached from a chain
    /// that held `chain_len` versions before the trim (so `chain_len -
    /// trimmed` survive, feeding the retained high-water mark).
    pub(crate) fn trim(&self, chain_len: u64, trimmed: u64) {
        let s = self.local();
        s.versions_trimmed.fetch_add(trimmed, Ordering::Relaxed);
        s.max_chain_len.fetch_max(chain_len, Ordering::Relaxed);
        s.versions_retained
            .fetch_max(chain_len.saturating_sub(trimmed), Ordering::Relaxed);
    }

    /// Records `evicted` versions cut past the watermark by the
    /// `max_versions` bound.
    pub(crate) fn evict(&self, evicted: u64) {
        if evicted != 0 {
            self.local()
                .versions_evicted
                .fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Records a snapshot read aborted by eviction (cold path — the
    /// attempt is about to retry — so it writes the shard directly).
    pub(crate) fn eviction_abort(&self) {
        self.local().eviction_aborts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one attempt parking on the waiter lists. Cold path by
    /// construction (the attempt is about to sleep), so it writes the
    /// shard directly instead of riding an [`OpTally`].
    pub(crate) fn park(&self) {
        self.local().parks.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` waiters woken by a commit's wake sweep.
    pub(crate) fn woke(&self, n: u64) {
        if n != 0 {
            self.local().wakes.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Records a park that ended by timeout instead of a wake.
    pub(crate) fn spurious_wake(&self) {
        self.local().spurious_wakes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an async poll rescheduling itself (waker-mediated yield)
    /// instead of spinning out the contention manager's wait on the
    /// executor thread.
    pub(crate) fn async_yield(&self) {
        self.local().async_yields.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one write set appended to the attached write-ahead log
    /// (memory-only; the fsync is counted separately when a batch
    /// flushes).
    pub(crate) fn log_append(&self) {
        self.local().log_appends.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one fsync batch covering `records` appended records.
    pub(crate) fn fsync_batch(&self, records: u64) {
        let s = self.local();
        s.fsyncs.fetch_add(1, Ordering::Relaxed);
        s.group_commit_records.fetch_add(records, Ordering::Relaxed);
    }

    /// Records an adaptive mode switch and the regime it landed in.
    pub(crate) fn mode_transition(&self, mode: ActiveMode) {
        self.local()
            .mode_transitions
            .fetch_add(1, Ordering::Relaxed);
        self.active_mode.store(mode as u8, Ordering::Relaxed);
    }

    /// Sets the initial read regime (builder-time).
    pub(crate) fn set_active_mode(&self, mode: ActiveMode) {
        self.active_mode.store(mode as u8, Ordering::Relaxed);
    }

    /// The bare commit count, for hot paths that must not pay a full
    /// snapshot (the adaptive controller's window check): one plain load
    /// per shard, no RMW.
    pub(crate) fn commit_count(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.commits.load(Ordering::Relaxed))
            .fold(0, u64::wrapping_add)
    }

    /// Takes a snapshot of all counters: counters sum across the shards,
    /// the chain-length high-water mark takes their max.
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut out = StatsSnapshot {
            active_mode: ActiveMode::from_u8(self.active_mode.load(Ordering::Relaxed)),
            ..StatsSnapshot::default()
        };
        for s in self.shards.iter() {
            let ld = |c: &AtomicU64| c.load(Ordering::Relaxed);
            out.commits += ld(&s.commits);
            out.aborts += ld(&s.aborts);
            out.validation_probes += ld(&s.validation_probes);
            out.reader_conflicts += ld(&s.reader_conflicts);
            out.reads += ld(&s.reads);
            out.writes += ld(&s.writes);
            out.snapshot_reads += ld(&s.snapshot_reads);
            out.chain_walk_steps += ld(&s.chain_walk_steps);
            out.versions_trimmed += ld(&s.versions_trimmed);
            out.versions_evicted += ld(&s.versions_evicted);
            out.eviction_aborts += ld(&s.eviction_aborts);
            out.max_chain_len = out.max_chain_len.max(ld(&s.max_chain_len));
            out.versions_retained = out.versions_retained.max(ld(&s.versions_retained));
            out.recorded_events += ld(&s.recorded_events);
            out.mode_transitions += ld(&s.mode_transitions);
            out.parks += ld(&s.parks);
            out.wakes += ld(&s.wakes);
            out.spurious_wakes += ld(&s.spurious_wakes);
            out.async_yields += ld(&s.async_yields);
            out.log_appends += ld(&s.log_appends);
            out.fsyncs += ld(&s.fsyncs);
            out.group_commit_records += ld(&s.group_commit_records);
        }
        out
    }
}

impl StatsSnapshot {
    /// Mean records per fsync batch — the group-commit amortization
    /// factor (1.0 means every commit paid its own fsync; 0.0 means no
    /// batch has flushed yet).
    pub fn group_commit_size(&self) -> f64 {
        if self.fsyncs == 0 {
            return 0.0;
        }
        self.group_commit_records as f64 / self.fsyncs as f64
    }

    /// Counter-wise difference from an earlier snapshot.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is not actually earlier.
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        let d = |a: u64, b: u64| a.checked_sub(b).expect("snapshot order");
        StatsSnapshot {
            commits: d(self.commits, earlier.commits),
            aborts: d(self.aborts, earlier.aborts),
            validation_probes: d(self.validation_probes, earlier.validation_probes),
            reader_conflicts: d(self.reader_conflicts, earlier.reader_conflicts),
            reads: d(self.reads, earlier.reads),
            writes: d(self.writes, earlier.writes),
            snapshot_reads: d(self.snapshot_reads, earlier.snapshot_reads),
            chain_walk_steps: d(self.chain_walk_steps, earlier.chain_walk_steps),
            versions_trimmed: d(self.versions_trimmed, earlier.versions_trimmed),
            versions_evicted: d(self.versions_evicted, earlier.versions_evicted),
            eviction_aborts: d(self.eviction_aborts, earlier.eviction_aborts),
            // High-water marks, not counters: the delta reports the
            // later snapshot's mark.
            max_chain_len: self.max_chain_len,
            versions_retained: self.versions_retained,
            recorded_events: d(self.recorded_events, earlier.recorded_events),
            mode_transitions: d(self.mode_transitions, earlier.mode_transitions),
            parks: d(self.parks, earlier.parks),
            wakes: d(self.wakes, earlier.wakes),
            spurious_wakes: d(self.spurious_wakes, earlier.spurious_wakes),
            async_yields: d(self.async_yields, earlier.async_yields),
            log_appends: d(self.log_appends, earlier.log_appends),
            fsyncs: d(self.fsyncs, earlier.fsyncs),
            group_commit_records: d(self.group_commit_records, earlier.group_commit_records),
            // State, not a counter: the delta reports where the window
            // *ended up*.
            active_mode: self.active_mode,
        }
    }
}

impl fmt::Display for StatsSnapshot {
    /// One-line counter summary, so bench output and tests do not format
    /// counters by hand.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "commits={} aborts={} reads={} writes={} probes={} reader_conflicts={} \
             snapshot_reads={} walk_steps={} trimmed={} evicted={} eviction_aborts={} \
             max_chain={} retained={} recorded={} transitions={} \
             parks={} wakes={} spurious={} yields={} log_appends={} fsyncs={} \
             group_commit={} mode={}",
            self.commits,
            self.aborts,
            self.reads,
            self.writes,
            self.validation_probes,
            self.reader_conflicts,
            self.snapshot_reads,
            self.chain_walk_steps,
            self.versions_trimmed,
            self.versions_evicted,
            self.eviction_aborts,
            self.max_chain_len,
            self.versions_retained,
            self.recorded_events,
            self.mode_transitions,
            self.parks,
            self.wakes,
            self.spurious_wakes,
            self.async_yields,
            self.log_appends,
            self.fsyncs,
            self.group_commit_records,
            self.active_mode,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Flushes a one-off tally built by `f`, the way a transaction's
    /// drop does.
    fn tally(s: &StmStats, f: impl FnOnce(&OpTally)) {
        let t = OpTally::default();
        f(&t);
        s.flush(&t);
    }

    #[test]
    fn counters_accumulate() {
        let s = StmStats::default();
        s.commit();
        s.commit();
        s.abort();
        tally(&s, |t| {
            t.probes(5);
            t.reader_conflict();
            t.read();
            t.write();
            t.recorded(4);
            t.snapshot_read();
            t.snapshot_read();
            t.chain_walk(7);
        });
        s.trim(5, 3);
        s.trim(2, 1);
        s.evict(2);
        s.evict(0);
        s.eviction_abort();
        s.mode_transition(ActiveMode::Visible);
        s.park();
        s.park();
        s.woke(3);
        s.woke(0);
        s.spurious_wake();
        s.async_yield();
        s.async_yield();
        s.log_append();
        s.log_append();
        s.log_append();
        s.fsync_batch(3);
        let snap = s.snapshot();
        assert_eq!(snap.commits, 2);
        assert_eq!(snap.aborts, 1);
        assert_eq!(snap.validation_probes, 5);
        assert_eq!(snap.reader_conflicts, 1);
        assert_eq!(snap.reads, 1);
        assert_eq!(snap.writes, 1);
        assert_eq!(snap.recorded_events, 4);
        assert_eq!(snap.snapshot_reads, 2);
        assert_eq!(snap.chain_walk_steps, 7);
        assert_eq!(snap.versions_trimmed, 4);
        assert_eq!(snap.versions_evicted, 2);
        assert_eq!(snap.eviction_aborts, 1);
        assert_eq!(snap.max_chain_len, 5, "high-water mark, not a sum");
        assert_eq!(snap.versions_retained, 2, "post-trim high-water mark");
        assert_eq!(snap.mode_transitions, 1);
        assert_eq!(snap.parks, 2);
        assert_eq!(snap.wakes, 3);
        assert_eq!(snap.spurious_wakes, 1);
        assert_eq!(snap.async_yields, 2);
        assert_eq!(snap.log_appends, 3);
        assert_eq!(snap.fsyncs, 1);
        assert_eq!(snap.group_commit_records, 3);
        assert_eq!(snap.group_commit_size(), 3.0);
        assert_eq!(snap.active_mode, ActiveMode::Visible);
        s.mode_transition(ActiveMode::Multiversion);
        let snap = s.snapshot();
        assert_eq!(snap.mode_transitions, 2);
        assert_eq!(snap.active_mode, ActiveMode::Multiversion);
        s.mode_transition(ActiveMode::Invisible);
        assert_eq!(s.snapshot().active_mode, ActiveMode::Invisible);
    }

    #[test]
    fn display_summarizes_every_counter() {
        let s = StmStats::default();
        s.commit();
        tally(&s, |t| {
            t.probes(2);
            t.reader_conflict();
            t.recorded(6);
        });
        s.park();
        s.woke(1);
        s.async_yield();
        let line = s.snapshot().to_string();
        assert_eq!(
            line,
            "commits=1 aborts=0 reads=0 writes=0 probes=2 reader_conflicts=1 snapshot_reads=0 \
             walk_steps=0 trimmed=0 evicted=0 eviction_aborts=0 max_chain=0 retained=0 \
             recorded=6 transitions=0 parks=1 wakes=1 spurious=0 \
             yields=1 log_appends=0 fsyncs=0 group_commit=0 mode=invisible"
        );
        s.mode_transition(ActiveMode::Visible);
        s.log_append();
        s.fsync_batch(1);
        let line = s.snapshot().to_string();
        assert!(
            line.ends_with(
                "transitions=1 parks=1 wakes=1 spurious=0 yields=1 log_appends=1 fsyncs=1 \
                 group_commit=1 mode=visible"
            ),
            "{line}"
        );
        s.mode_transition(ActiveMode::Multiversion);
        let line = s.snapshot().to_string();
        assert!(line.ends_with("mode=multiversion"), "{line}");
    }

    #[test]
    fn since_differences() {
        let s = StmStats::default();
        s.commit();
        let a = s.snapshot();
        s.commit();
        tally(&s, |t| t.probes(3));
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.commits, 1);
        assert_eq!(d.validation_probes, 3);
    }

    #[test]
    fn since_carries_the_later_mode_through() {
        let s = StmStats::default();
        s.set_active_mode(ActiveMode::Visible);
        let a = s.snapshot();
        s.mode_transition(ActiveMode::Multiversion);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.mode_transitions, 1);
        assert_eq!(
            d.active_mode,
            ActiveMode::Multiversion,
            "delta reports where the window ended up"
        );
    }

    #[test]
    fn sharded_counters_aggregate_exactly_across_threads() {
        // N threads (more than there are shards, so slots are shared)
        // hammer one instance through the same tally-and-flush path a
        // transaction uses; the summed snapshot must be exact — sharding
        // may never lose or double-count an event.
        let s = StmStats::default();
        let threads = SHARDS + 4;
        let per: u64 = 2_000;
        std::thread::scope(|sc| {
            for i in 0..threads {
                let s = &s;
                sc.spawn(move || {
                    for k in 0..per {
                        tally(s, |t| {
                            t.read();
                            t.read();
                            t.read();
                            t.write();
                            t.probes(2);
                            if k % 4 == 0 {
                                t.reader_conflict();
                                t.snapshot_read();
                                t.recorded(3);
                            }
                        });
                        s.commit();
                        if k % 8 == 0 {
                            s.abort();
                        }
                    }
                    s.trim(i as u64, 1);
                });
            }
        });
        let n = threads as u64;
        let snap = s.snapshot();
        assert_eq!(snap.reads, 3 * per * n);
        assert_eq!(snap.writes, per * n);
        assert_eq!(snap.validation_probes, 2 * per * n);
        assert_eq!(snap.commits, per * n);
        assert_eq!(snap.aborts, per.div_ceil(8) * n);
        assert_eq!(snap.reader_conflicts, per.div_ceil(4) * n);
        assert_eq!(snap.snapshot_reads, per.div_ceil(4) * n);
        assert_eq!(snap.recorded_events, 3 * per.div_ceil(4) * n);
        assert_eq!(snap.versions_trimmed, n);
        assert_eq!(snap.max_chain_len, threads as u64 - 1, "max across shards");
        assert_eq!(snap.versions_retained, threads as u64 - 2);
    }

    #[test]
    fn empty_tallies_flush_nothing() {
        let s = StmStats::default();
        tally(&s, |_| {});
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }
}
