//! Progress statistics, the native-side instrument for Theorem 3(1).
//!
//! The simulator counts steps exactly; on real hardware we count the
//! analogous quantities with atomic counters: commits, aborts, and —
//! crucially — *validation probes* (one per read-set entry re-checked).
//! The `bench_native_validation` experiment shows probes growing
//! quadratically with the read-set size in incremental mode and linearly
//! in TL2 mode, the hardware echo of the paper's bound.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic event counters for one [`Stm`](crate::Stm) instance.
#[derive(Debug, Default)]
pub struct StmStats {
    commits: AtomicU64,
    aborts: AtomicU64,
    validation_probes: AtomicU64,
    reader_conflicts: AtomicU64,
    reads: AtomicU64,
    writes: AtomicU64,
    recorded_events: AtomicU64,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Transactions that committed.
    pub commits: u64,
    /// Transaction attempts that aborted.
    pub aborts: u64,
    /// Individual read-set entries re-checked during validation.
    pub validation_probes: u64,
    /// Aborts forced by visible-read lock conflicts (`Algorithm::Tlrw`):
    /// a t-read that hit a write-locked stripe, or a committing writer
    /// that found foreign readers (or another writer) on a write stripe.
    /// Always 0 under the invisible-read algorithms.
    pub reader_conflicts: u64,
    /// `read` operations executed.
    pub reads: u64,
    /// `write` operations executed.
    pub writes: u64,
    /// History markers captured by an attached
    /// [`HistoryRecorder`](crate::HistoryRecorder) (0 when recording is
    /// off).
    pub recorded_events: u64,
}

impl StmStats {
    pub(crate) fn commit(&self) {
        self.commits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn abort(&self) {
        self.aborts.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn probes(&self, n: u64) {
        self.validation_probes.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn reader_conflict(&self) {
        self.reader_conflicts.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn read(&self) {
        self.reads.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn write(&self) {
        self.writes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn recorded(&self, n: u64) {
        self.recorded_events.fetch_add(n, Ordering::Relaxed);
    }

    /// Takes a snapshot of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            commits: self.commits.load(Ordering::Relaxed),
            aborts: self.aborts.load(Ordering::Relaxed),
            validation_probes: self.validation_probes.load(Ordering::Relaxed),
            reader_conflicts: self.reader_conflicts.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            recorded_events: self.recorded_events.load(Ordering::Relaxed),
        }
    }
}

impl StatsSnapshot {
    /// Counter-wise difference from an earlier snapshot.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is not actually earlier.
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        let d = |a: u64, b: u64| a.checked_sub(b).expect("snapshot order");
        StatsSnapshot {
            commits: d(self.commits, earlier.commits),
            aborts: d(self.aborts, earlier.aborts),
            validation_probes: d(self.validation_probes, earlier.validation_probes),
            reader_conflicts: d(self.reader_conflicts, earlier.reader_conflicts),
            reads: d(self.reads, earlier.reads),
            writes: d(self.writes, earlier.writes),
            recorded_events: d(self.recorded_events, earlier.recorded_events),
        }
    }
}

impl fmt::Display for StatsSnapshot {
    /// One-line counter summary, so bench output and tests do not format
    /// counters by hand.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "commits={} aborts={} reads={} writes={} probes={} reader_conflicts={} recorded={}",
            self.commits,
            self.aborts,
            self.reads,
            self.writes,
            self.validation_probes,
            self.reader_conflicts,
            self.recorded_events
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = StmStats::default();
        s.commit();
        s.commit();
        s.abort();
        s.probes(5);
        s.reader_conflict();
        s.read();
        s.write();
        s.recorded(4);
        let snap = s.snapshot();
        assert_eq!(snap.commits, 2);
        assert_eq!(snap.aborts, 1);
        assert_eq!(snap.validation_probes, 5);
        assert_eq!(snap.reader_conflicts, 1);
        assert_eq!(snap.reads, 1);
        assert_eq!(snap.writes, 1);
        assert_eq!(snap.recorded_events, 4);
    }

    #[test]
    fn display_summarizes_every_counter() {
        let s = StmStats::default();
        s.commit();
        s.probes(2);
        s.reader_conflict();
        s.recorded(6);
        let line = s.snapshot().to_string();
        assert_eq!(
            line,
            "commits=1 aborts=0 reads=0 writes=0 probes=2 reader_conflicts=1 recorded=6"
        );
    }

    #[test]
    fn since_differences() {
        let s = StmStats::default();
        s.commit();
        let a = s.snapshot();
        s.commit();
        s.probes(3);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.commits, 1);
        assert_eq!(d.validation_probes, 3);
    }
}
