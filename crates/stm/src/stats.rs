//! Progress statistics, the native-side instrument for Theorem 3(1).
//!
//! The simulator counts steps exactly; on real hardware we count the
//! analogous quantities with atomic counters: commits, aborts, and —
//! crucially — *validation probes* (one per read-set entry re-checked).
//! The `bench_native_validation` experiment shows probes growing
//! quadratically with the read-set size in incremental mode and linearly
//! in TL2 mode, the hardware echo of the paper's bound.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Monotonic event counters for one [`Stm`](crate::Stm) instance.
#[derive(Debug, Default)]
pub struct StmStats {
    commits: AtomicU64,
    aborts: AtomicU64,
    validation_probes: AtomicU64,
    reader_conflicts: AtomicU64,
    reads: AtomicU64,
    writes: AtomicU64,
    snapshot_reads: AtomicU64,
    versions_trimmed: AtomicU64,
    /// High-water mark, not a counter: the longest version chain any
    /// trim pass observed (`Algorithm::Mv`).
    max_chain_len: AtomicU64,
    recorded_events: AtomicU64,
    mode_transitions: AtomicU64,
    /// Not a counter: the read-visibility regime currently in force
    /// (static for the fixed algorithms, live for `Adaptive`).
    visible_mode: AtomicBool,
}

/// A point-in-time copy of the counters.
///
/// # Examples
///
/// Windowed deltas via [`StatsSnapshot::since`] — the idiom the
/// adaptive controller itself uses:
///
/// ```
/// use ptm_stm::{Stm, TVar};
///
/// let stm = Stm::tl2();
/// let v = TVar::new(0u64);
/// let before = stm.stats().snapshot();
/// stm.atomically(|tx| tx.modify(&v, |x| x + 1));
/// let d = stm.stats().snapshot().since(&before);
/// assert_eq!((d.commits, d.reads, d.writes), (1, 1, 1));
/// assert!(!d.visible_mode, "Tl2 runs invisible reads");
/// assert!(d.to_string().contains("commits=1"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Transactions that committed.
    pub commits: u64,
    /// Transaction attempts that aborted.
    pub aborts: u64,
    /// Individual read-set entries re-checked during validation.
    pub validation_probes: u64,
    /// Aborts forced by visible-read lock conflicts (`Algorithm::Tlrw`):
    /// a t-read that hit a write-locked stripe, or a committing writer
    /// that found foreign readers (or another writer) on a write stripe.
    /// Always 0 under the invisible-read algorithms.
    pub reader_conflicts: u64,
    /// `read` operations executed.
    pub reads: u64,
    /// `write` operations executed.
    pub writes: u64,
    /// Reads served from a version chain by snapshot timestamp
    /// ([`Algorithm::Mv`](crate::Algorithm::Mv)): zero orec probes, zero
    /// validation, never an abort. Always 0 under the single-version
    /// algorithms.
    pub snapshot_reads: u64,
    /// Superseded versions detached from their chains by the
    /// low-watermark collector (`Algorithm::Mv` commits). The space the
    /// multi-version design pays — and reclaims.
    pub versions_trimmed: u64,
    /// The longest version chain any trim pass observed — a high-water
    /// mark, not a counter: [`since`](StatsSnapshot::since) carries the
    /// *later* snapshot's value through unchanged. Bounded by the span
    /// between the oldest active snapshot and the newest commit; stays 0
    /// under the single-version algorithms (only Mv commits trim, and
    /// their chains never grow).
    pub max_chain_len: u64,
    /// History markers captured by an attached
    /// [`HistoryRecorder`](crate::HistoryRecorder) (0 when recording is
    /// off).
    pub recorded_events: u64,
    /// Mode switches performed by the
    /// [`Algorithm::Adaptive`](crate::Algorithm::Adaptive) controller
    /// (always 0 for the static algorithms).
    pub mode_transitions: u64,
    /// Whether the instance was running **visible** reads (the
    /// reader–writer orec format) when the snapshot was taken: `true`
    /// for `Tlrw` and for `Adaptive` in its visible mode, `false`
    /// otherwise. Point-in-time state, not a counter — [`since`]
    /// carries the *later* snapshot's value through unchanged.
    ///
    /// [`since`]: StatsSnapshot::since
    pub visible_mode: bool,
}

impl StmStats {
    pub(crate) fn commit(&self) {
        self.commits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn abort(&self) {
        self.aborts.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn probes(&self, n: u64) {
        self.validation_probes.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn reader_conflict(&self) {
        self.reader_conflicts.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn read(&self) {
        self.reads.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn write(&self) {
        self.writes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot_read(&self) {
        self.snapshot_reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a trim pass: `trimmed` versions detached from a chain
    /// that held `chain_len` versions before the trim.
    pub(crate) fn trim(&self, chain_len: u64, trimmed: u64) {
        self.versions_trimmed.fetch_add(trimmed, Ordering::Relaxed);
        self.max_chain_len.fetch_max(chain_len, Ordering::Relaxed);
    }

    pub(crate) fn recorded(&self, n: u64) {
        self.recorded_events.fetch_add(n, Ordering::Relaxed);
    }

    /// Records an adaptive mode switch and the regime it landed in.
    pub(crate) fn mode_transition(&self, visible: bool) {
        self.mode_transitions.fetch_add(1, Ordering::Relaxed);
        self.visible_mode.store(visible, Ordering::Relaxed);
    }

    /// Sets the initial read-visibility regime (builder-time).
    pub(crate) fn set_visible_mode(&self, visible: bool) {
        self.visible_mode.store(visible, Ordering::Relaxed);
    }

    /// The bare commit count, for hot paths that must not pay a full
    /// snapshot (the adaptive controller's window check).
    pub(crate) fn commit_count(&self) -> u64 {
        self.commits.load(Ordering::Relaxed)
    }

    /// Takes a snapshot of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            commits: self.commits.load(Ordering::Relaxed),
            aborts: self.aborts.load(Ordering::Relaxed),
            validation_probes: self.validation_probes.load(Ordering::Relaxed),
            reader_conflicts: self.reader_conflicts.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            snapshot_reads: self.snapshot_reads.load(Ordering::Relaxed),
            versions_trimmed: self.versions_trimmed.load(Ordering::Relaxed),
            max_chain_len: self.max_chain_len.load(Ordering::Relaxed),
            recorded_events: self.recorded_events.load(Ordering::Relaxed),
            mode_transitions: self.mode_transitions.load(Ordering::Relaxed),
            visible_mode: self.visible_mode.load(Ordering::Relaxed),
        }
    }
}

impl StatsSnapshot {
    /// Counter-wise difference from an earlier snapshot.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is not actually earlier.
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        let d = |a: u64, b: u64| a.checked_sub(b).expect("snapshot order");
        StatsSnapshot {
            commits: d(self.commits, earlier.commits),
            aborts: d(self.aborts, earlier.aborts),
            validation_probes: d(self.validation_probes, earlier.validation_probes),
            reader_conflicts: d(self.reader_conflicts, earlier.reader_conflicts),
            reads: d(self.reads, earlier.reads),
            writes: d(self.writes, earlier.writes),
            snapshot_reads: d(self.snapshot_reads, earlier.snapshot_reads),
            versions_trimmed: d(self.versions_trimmed, earlier.versions_trimmed),
            // High-water mark, not a counter: the delta reports the
            // later snapshot's mark.
            max_chain_len: self.max_chain_len,
            recorded_events: d(self.recorded_events, earlier.recorded_events),
            mode_transitions: d(self.mode_transitions, earlier.mode_transitions),
            // State, not a counter: the delta reports where the window
            // *ended up*.
            visible_mode: self.visible_mode,
        }
    }
}

impl fmt::Display for StatsSnapshot {
    /// One-line counter summary, so bench output and tests do not format
    /// counters by hand.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "commits={} aborts={} reads={} writes={} probes={} reader_conflicts={} \
             snapshot_reads={} trimmed={} max_chain={} recorded={} transitions={} mode={}",
            self.commits,
            self.aborts,
            self.reads,
            self.writes,
            self.validation_probes,
            self.reader_conflicts,
            self.snapshot_reads,
            self.versions_trimmed,
            self.max_chain_len,
            self.recorded_events,
            self.mode_transitions,
            if self.visible_mode {
                "visible"
            } else {
                "invisible"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = StmStats::default();
        s.commit();
        s.commit();
        s.abort();
        s.probes(5);
        s.reader_conflict();
        s.read();
        s.write();
        s.recorded(4);
        s.snapshot_read();
        s.snapshot_read();
        s.trim(5, 3);
        s.trim(2, 1);
        s.mode_transition(true);
        let snap = s.snapshot();
        assert_eq!(snap.commits, 2);
        assert_eq!(snap.aborts, 1);
        assert_eq!(snap.validation_probes, 5);
        assert_eq!(snap.reader_conflicts, 1);
        assert_eq!(snap.reads, 1);
        assert_eq!(snap.writes, 1);
        assert_eq!(snap.recorded_events, 4);
        assert_eq!(snap.snapshot_reads, 2);
        assert_eq!(snap.versions_trimmed, 4);
        assert_eq!(snap.max_chain_len, 5, "high-water mark, not a sum");
        assert_eq!(snap.mode_transitions, 1);
        assert!(snap.visible_mode);
        s.mode_transition(false);
        let snap = s.snapshot();
        assert_eq!(snap.mode_transitions, 2);
        assert!(!snap.visible_mode);
    }

    #[test]
    fn display_summarizes_every_counter() {
        let s = StmStats::default();
        s.commit();
        s.probes(2);
        s.reader_conflict();
        s.recorded(6);
        let line = s.snapshot().to_string();
        assert_eq!(
            line,
            "commits=1 aborts=0 reads=0 writes=0 probes=2 reader_conflicts=1 snapshot_reads=0 \
             trimmed=0 max_chain=0 recorded=6 transitions=0 mode=invisible"
        );
        s.mode_transition(true);
        let line = s.snapshot().to_string();
        assert!(line.ends_with("transitions=1 mode=visible"), "{line}");
    }

    #[test]
    fn since_differences() {
        let s = StmStats::default();
        s.commit();
        let a = s.snapshot();
        s.commit();
        s.probes(3);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.commits, 1);
        assert_eq!(d.validation_probes, 3);
    }

    #[test]
    fn since_carries_the_later_mode_through() {
        let s = StmStats::default();
        s.set_visible_mode(true);
        let a = s.snapshot();
        s.mode_transition(false);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.mode_transitions, 1);
        assert!(!d.visible_mode, "delta reports where the window ended up");
    }
}
