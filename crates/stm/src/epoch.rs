//! Epoch-based memory reclamation for the lock-free read path.
//!
//! [`TVar`](crate::TVar) values are immutable heap boxes published through
//! an atomic pointer; a transactional read is therefore just
//! *load-pointer, clone* with no lock acquired. The hazard is the writer
//! side: a commit swaps the pointer and must not free the old box while
//! some reader is still cloning it.
//!
//! This module implements the classic deferred-reclamation answer:
//!
//! * every transaction **pins** the current global epoch in a per-thread,
//!   cache-padded slot for its duration (two atomic ops per transaction,
//!   *not* per read — so reads stay invisible, in the paper's sense);
//! * a committing writer swaps its pointers first and only then tags the
//!   retired boxes with a fresh epoch ([`retire_batch`]), so any reader
//!   that can still hold an old pointer is pinned at a *strictly older*
//!   epoch;
//! * garbage with tag `t` is freed once every pinned slot shows an epoch
//!   `>= t` — at that point the scan proves no reader can dereference it.
//!
//! All epoch traffic uses `SeqCst`: the pin loop (store slot, re-check
//! the global epoch) and the collector's scan need a total order for the
//! "the scan cannot miss a dangerous reader" argument, and the cost sits
//! on transaction boundaries, never inside the read loop.
//!
//! ## Snapshot low-watermark (multi-version reclamation)
//!
//! [`Algorithm::Mv`](crate::Algorithm::Mv) adds a second reclamation
//! question the epoch scan cannot answer: a superseded value box is not
//! garbage merely because no thread still *dereferences* it — a snapshot
//! reader may legitimately come back for it as long as its transaction
//! is live. [`SnapshotRegistry`] answers it: every Mv transaction
//! publishes its snapshot timestamp in a per-thread, cache-padded slot
//! for its duration, and the **low watermark** — the minimum over all
//! active slots, floored by the instance clock read *before* the scan —
//! bounds which versions any live or future snapshot can still reach.
//! Committers trim version chains against it
//! ([`AnyTVar::trim_chain`](crate::tvar::AnyTVar::trim_chain)) and
//! retire the detached suffix through the ordinary epoch machinery
//! above, which handles the (already-traversing) dereference hazard.
//!
//! The registration protocol mirrors the epoch pin: *read clock, store
//! slot, re-check clock unchanged* — and the watermark scan reads the
//! clock floor **before** the slots. Together these order every
//! missed-slot race: a scanner that missed a just-registering reader
//! read its floor before the reader's final store, so the reader's
//! re-checked snapshot is at least that floor and everything the scanner
//! trims is older than what the reader can reach.
//!
//! ### The cached watermark
//!
//! The full scan ([`SnapshotRegistry::low_watermark`]) takes the slot
//! lock and walks every registered thread — too expensive to sit inside
//! an updating commit's stripe-locked section, which is where trimming
//! happens. [`SnapshotRegistry::cached_watermark`] answers in O(1)
//! instead, leaning on a one-directional soundness argument: **the true
//! watermark never decreases** (every new pin draws its snapshot from
//! the current clock, which is at least any floor an earlier scan read,
//! and slots only ever withdraw), so *any previously computed watermark
//! is a valid — merely conservative — watermark now*. A stale cache can
//! only **under-trim**: it delays reclamation by a bounded number of
//! clock ticks, it never frees a version a live or future snapshot
//! could still walk to. Two refinements keep the staleness invisible in
//! practice:
//!
//! * when the registry's active-pin count is at most one, the cached
//!   read answers exactly: zero pins means the clock floor *is* the
//!   watermark — sound by the same SeqCst ordering as the scan (a pin
//!   that the count read missed re-checks the clock *after* publishing,
//!   so its snapshot is at least the floor returned) — and one pin
//!   means the caller is the only transaction in flight, so the full
//!   scan is uncontended and cheap. A lone committer therefore trims as
//!   precisely as the scan-under-locks design did; the cache is
//!   consulted only when two or more transactions are live, which is
//!   exactly when a slot scan inside the stripe-locked section would
//!   serialize against rival commits and camped readers;
//! * committers refresh the cache *outside* their locked section
//!   ([`SnapshotRegistry::refresh_if_stale`], rate-limited by clock
//!   delta), and the cache advances by `fetch_max`, so concurrent
//!   refreshes racing each other still leave the newest — most precise —
//!   sound value in place.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};

/// Epoch value meaning "this slot's thread is not inside a transaction".
const QUIESCENT: u64 = u64::MAX;

/// Collect the local bag once it holds this many retired boxes.
const COLLECT_THRESHOLD: usize = 64;

/// Global epoch counter, bumped once per writing commit.
static EPOCH: AtomicU64 = AtomicU64::new(1);

/// All live participant slots; scanned (under the lock) by collectors.
static REGISTRY: Mutex<Vec<Arc<Slot>>> = Mutex::new(Vec::new());

/// Garbage from threads that exited before their bag drained.
static ORPHANS: Mutex<Vec<Retired>> = Mutex::new(Vec::new());

/// Cheap-to-read size of [`ORPHANS`], so the retire path can trigger an
/// orphan sweep without taking the lock just to look.
static ORPHAN_PRESSURE: AtomicU64 = AtomicU64::new(0);

/// One participant's published epoch; padded so pin/unpin stores never
/// false-share with a neighbour's.
#[repr(align(128))]
struct Slot {
    epoch: AtomicU64,
}

/// A value box swapped out of a `TVar`, awaiting a safe free.
pub(crate) struct Retired {
    ptr: *mut (),
    drop_fn: unsafe fn(*mut ()),
    epoch: u64,
}

// SAFETY: `ptr` is the sole remaining owner of the boxed value (it was
// swapped out of the `TVar` and exists only in one bag at a time), and
// `Retired::new` requires `T: Send`, so dropping on another thread is fine.
unsafe impl Send for Retired {}

impl Retired {
    /// Takes ownership of a box previously leaked with `Box::into_raw`.
    pub(crate) fn new<T: Send + 'static>(ptr: *mut T) -> Self {
        unsafe fn drop_box<T>(p: *mut ()) {
            // SAFETY: `p` came from `Box::into_raw::<T>` in `Retired::new`
            // and is dropped exactly once, by `Retired::drop`.
            drop(unsafe { Box::from_raw(p.cast::<T>()) });
        }
        Retired {
            ptr: ptr.cast(),
            drop_fn: drop_box::<T>,
            epoch: 0,
        }
    }
}

impl Drop for Retired {
    fn drop(&mut self) {
        // SAFETY: see `Retired::new`; the collector only drops a `Retired`
        // once its epoch is provably unreachable by pinned readers.
        unsafe { (self.drop_fn)(self.ptr) }
    }
}

struct Local {
    slot: Arc<Slot>,
    bag: Vec<Retired>,
    pins: usize,
}

impl Local {
    fn register() -> Local {
        let slot = Arc::new(Slot {
            epoch: AtomicU64::new(QUIESCENT),
        });
        REGISTRY
            .lock()
            .expect("epoch registry poisoned")
            .push(Arc::clone(&slot));
        Local {
            slot,
            bag: Vec::new(),
            pins: 0,
        }
    }
}

impl Drop for Local {
    fn drop(&mut self) {
        // Hand unfinished garbage to the global orphan list and retire the
        // slot so it no longer blocks collection.
        self.slot.epoch.store(QUIESCENT, Ordering::SeqCst);
        if !self.bag.is_empty() {
            // Do not drop user values here: thread-local storage is being
            // torn down, and a value's `Drop` may legitimately pin the
            // epoch again. Hand everything to the orphan list; the next
            // collection on any live thread sweeps it (ORPHAN_PRESSURE
            // makes sure small bags still trigger that sweep).
            ORPHAN_PRESSURE.fetch_add(self.bag.len() as u64, Ordering::Relaxed);
            if let Ok(mut orphans) = ORPHANS.lock() {
                orphans.append(&mut self.bag);
            }
        }
        if let Ok(mut registry) = REGISTRY.lock() {
            registry.retain(|s| !Arc::ptr_eq(s, &self.slot));
        }
    }
}

thread_local! {
    static LOCAL: RefCell<Local> = RefCell::new(Local::register());
}

/// Proof of participation: while alive, this thread's slot publishes an
/// epoch no newer than any pointer it may have loaded. Not `Send` — the
/// pin lives in a thread-local slot.
pub(crate) struct Guard {
    _not_send: std::marker::PhantomData<*mut ()>,
}

/// Pins the current thread. Reentrant: nested pins keep the outermost
/// (oldest, most conservative) published epoch.
pub(crate) fn pin() -> Guard {
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        if l.pins == 0 {
            // Publish the epoch, then re-check it did not advance under
            // us: after this loop, collectors are guaranteed to observe
            // either our published value or a fresher global epoch that
            // postdates every pointer we can subsequently load.
            loop {
                let e = EPOCH.load(Ordering::SeqCst);
                l.slot.epoch.store(e, Ordering::SeqCst);
                if EPOCH.load(Ordering::SeqCst) == e {
                    break;
                }
            }
        }
        l.pins += 1;
    });
    Guard {
        _not_send: std::marker::PhantomData,
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        // A thread-local can be torn down before late guards on the same
        // thread; losing the unpin store then is harmless (the slot was
        // already retired from the registry).
        let _ = LOCAL.try_with(|l| {
            let mut l = l.borrow_mut();
            l.pins -= 1;
            if l.pins == 0 {
                l.slot.epoch.store(QUIESCENT, Ordering::SeqCst);
            }
        });
    }
}

/// Retires value boxes swapped out by one commit. Must be called *after*
/// all the pointer swaps it covers (the epoch tag must postdate them).
pub(crate) fn retire_batch(mut retired: Vec<Retired>) {
    if retired.is_empty() {
        return;
    }
    let tag = EPOCH.fetch_add(1, Ordering::SeqCst) + 1;
    for r in &mut retired {
        r.epoch = tag;
    }
    let mut to_free: Vec<Retired> = Vec::new();
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        l.bag.append(&mut retired);
        if l.bag.len() >= COLLECT_THRESHOLD
            || ORPHAN_PRESSURE.load(Ordering::Relaxed) >= COLLECT_THRESHOLD as u64
        {
            let min = min_pinned_epoch();
            let mut i = 0;
            while i < l.bag.len() {
                if l.bag[i].epoch < min {
                    to_free.push(l.bag.swap_remove(i));
                } else {
                    i += 1;
                }
            }
            drop(l);
            collect_orphans(min, &mut to_free);
        }
    });
    // Drop collected garbage only now, outside the thread-local borrow
    // and the orphan lock: a value's `Drop` may itself pin the epoch or
    // retire more garbage (e.g. it holds or reads `TVar`s).
    drop(to_free);
}

/// The oldest epoch any currently pinned thread could be reading under.
fn min_pinned_epoch() -> u64 {
    let registry = REGISTRY.lock().expect("epoch registry poisoned");
    registry
        .iter()
        .map(|s| s.epoch.load(Ordering::SeqCst))
        .min()
        .unwrap_or(QUIESCENT)
}

/// Moves every collectible orphan into `out` (the caller drops them after
/// releasing all locks and borrows).
fn collect_orphans(min: u64, out: &mut Vec<Retired>) {
    if let Ok(mut orphans) = ORPHANS.lock() {
        let mut freed = 0u64;
        let mut i = 0;
        while i < orphans.len() {
            if orphans[i].epoch < min {
                out.push(orphans.swap_remove(i));
                freed += 1;
            } else {
                i += 1;
            }
        }
        if freed > 0 {
            ORPHAN_PRESSURE.fetch_sub(freed, Ordering::Relaxed);
        }
    }
}

/// Slot value meaning "this thread holds no active snapshot here".
const NO_SNAPSHOT: u64 = u64::MAX;

/// Clock ticks between cached-watermark refreshes while snapshots are
/// pinned: the staleness budget. A commit trimming against the cache
/// retains at most this many extra versions per chain beyond what a
/// full scan would keep — space deferred, never a correctness risk.
const WATERMARK_REFRESH_TICKS: u64 = 8;

static SNAP_REGISTRY_IDS: AtomicU64 = AtomicU64::new(0);

/// One thread's published snapshot timestamp for one registry; padded so
/// begin/end stores never false-share with a neighbour's.
#[repr(align(128))]
struct SnapSlot {
    rv: AtomicU64,
}

struct SnapShared {
    /// Distinguishes registries (one per Mv instance) in the per-thread
    /// slot cache.
    id: u64,
    /// All live slots; scanned (under the lock) by `low_watermark`.
    slots: Mutex<Vec<Arc<SnapSlot>>>,
    /// Outermost pins currently published (nested pins share the outer
    /// slot and do not count). Zero lets `cached_watermark` return the
    /// exact clock floor without scanning.
    active: AtomicU64,
    /// Cached low watermark: some value `low_watermark` returned in the
    /// past, advanced by `fetch_max` — always `<=` the true current
    /// watermark (see the module docs), so trimming against it is sound.
    cache: AtomicU64,
    /// Clock value at the last cache refresh, rate-limiting
    /// `refresh_if_stale`.
    cache_stamp: AtomicU64,
}

/// This thread's cached slot for one registry, with its reentrancy
/// depth (nested transactions on one instance share the outer — older,
/// more conservative — snapshot).
struct SnapEntry {
    registry: Weak<SnapShared>,
    slot: Arc<SnapSlot>,
    depth: usize,
}

impl Drop for SnapEntry {
    fn drop(&mut self) {
        // Thread teardown: make sure a dying thread's slot never clamps
        // the watermark forever, and deregister it so a long-lived
        // instance serving many short-lived threads does not accumulate
        // dead slots (each one padded, and scanned by every watermark
        // computation) — the same discipline `Local::drop` applies to
        // the epoch registry above.
        self.slot.rv.store(NO_SNAPSHOT, Ordering::SeqCst);
        if let Some(reg) = self.registry.upgrade() {
            if self.depth > 0 {
                // The thread died with a pin still published (its guard's
                // unpin raced thread-local teardown); release the active
                // count the guard no longer can.
                reg.active.fetch_sub(1, Ordering::SeqCst);
            }
            if let Ok(mut slots) = reg.slots.lock() {
                slots.retain(|s| !Arc::ptr_eq(s, &self.slot));
            }
        }
    }
}

thread_local! {
    /// This thread's slot per registry id.
    static SNAPSHOTS: RefCell<HashMap<u64, SnapEntry>> = RefCell::new(HashMap::new());
}

/// Active-snapshot registry of one multi-version [`Stm`](crate::Stm)
/// instance: who is reading at which timestamp, and therefore how far
/// back version chains must reach (the low watermark).
pub(crate) struct SnapshotRegistry {
    shared: Arc<SnapShared>,
}

impl std::fmt::Debug for SnapshotRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotRegistry")
            .field(
                "slots",
                &self.shared.slots.lock().map(|s| s.len()).unwrap_or(0),
            )
            .finish()
    }
}

impl SnapshotRegistry {
    pub(crate) fn new() -> Self {
        SnapshotRegistry {
            shared: Arc::new(SnapShared {
                id: SNAP_REGISTRY_IDS.fetch_add(1, Ordering::Relaxed),
                slots: Mutex::new(Vec::new()),
                active: AtomicU64::new(0),
                // Starting at 0 under-trims until the first refresh —
                // the sound direction.
                cache: AtomicU64::new(0),
                cache_stamp: AtomicU64::new(0),
            }),
        }
    }

    /// Publishes this thread's snapshot timestamp (drawn from `clock`)
    /// and returns it with a guard that withdraws it. Reentrant: a
    /// nested transaction on the same instance keeps the slot publishing
    /// the **outer** (older, more conservative) snapshot — which
    /// protects both — but draws its own rv fresh from the clock, so an
    /// inner attempt retried after a conflicting commit sees that
    /// commit and can validate (reusing the stale outer rv would retry
    /// forever against a stripe stamped past it).
    ///
    /// The store/re-check loop makes the published value at least as new
    /// as any watermark floor a concurrent scanner read before missing
    /// this slot (see the module docs); it retries only when a commit
    /// ticks the clock inside the three-instruction window. The nested
    /// path needs no such loop: the slot already publishes a value no
    /// newer than any rv returned here.
    pub(crate) fn pin(&self, clock: &AtomicU64) -> (u64, SnapshotGuard) {
        let rv = SNAPSHOTS.with(|m| {
            let mut m = m.borrow_mut();
            if let Some(e) = m.get_mut(&self.shared.id) {
                if e.depth > 0 {
                    e.depth += 1;
                    return clock.load(Ordering::SeqCst);
                }
            } else {
                m.retain(|_, e| e.registry.strong_count() > 0);
                let slot = Arc::new(SnapSlot {
                    rv: AtomicU64::new(NO_SNAPSHOT),
                });
                self.shared
                    .slots
                    .lock()
                    .expect("snapshot registry poisoned")
                    .push(Arc::clone(&slot));
                m.insert(
                    self.shared.id,
                    SnapEntry {
                        registry: Arc::downgrade(&self.shared),
                        slot,
                        depth: 0,
                    },
                );
            }
            let e = m.get_mut(&self.shared.id).expect("just ensured");
            // Announce the pin *before* publishing the snapshot: a
            // watermark fast path that reads `active == 0` after this
            // increment cannot exist, and one that read it before is
            // ordered (SeqCst) before the clock re-check below, so the
            // floor it returned is at most the snapshot we settle on.
            self.shared.active.fetch_add(1, Ordering::SeqCst);
            let rv = loop {
                let rv = clock.load(Ordering::SeqCst);
                e.slot.rv.store(rv, Ordering::SeqCst);
                if clock.load(Ordering::SeqCst) == rv {
                    break rv;
                }
            };
            e.depth = 1;
            rv
        });
        (
            rv,
            SnapshotGuard {
                registry: self.shared.id,
                _not_send: std::marker::PhantomData,
            },
        )
    }

    /// The oldest snapshot any live transaction of this instance may be
    /// reading under — floored by the clock read *before* the slot scan,
    /// so a registering reader the scan misses is provably protected
    /// (its re-checked snapshot postdates this floor).
    pub(crate) fn low_watermark(&self, clock: &AtomicU64) -> u64 {
        let floor = clock.load(Ordering::SeqCst);
        let slots = self
            .shared
            .slots
            .lock()
            .expect("snapshot registry poisoned");
        slots
            .iter()
            .map(|s| s.rv.load(Ordering::SeqCst))
            .min()
            .unwrap_or(NO_SNAPSHOT)
            .min(floor)
    }

    /// Sound-but-possibly-stale watermark for the commit hot path (see
    /// the module docs for the one-directional soundness argument).
    /// Exact when at most one snapshot is pinned: with zero pins the
    /// clock floor *is* the watermark, and with one pin the sole
    /// in-flight transaction is the caller itself — the slot scan is
    /// uncontended by definition, so paying for it buys back the old
    /// trim-promptly behaviour for free. Only with two or more pins
    /// (campers, or rival committers — the case where a scan under
    /// stripe locks actually hurts) does it answer from the O(1) cache,
    /// refreshed off the hot path by [`Self::refresh_if_stale`].
    pub(crate) fn cached_watermark(&self, clock: &AtomicU64) -> u64 {
        let floor = clock.load(Ordering::SeqCst);
        match self.shared.active.load(Ordering::SeqCst) {
            // No outer pin was published when `active` was read; any pin
            // racing in re-checks the clock after that read, so its
            // snapshot is >= `floor` and trimming to `floor` is exact.
            0 => floor,
            1 => self.low_watermark(clock),
            _ => self.shared.cache.load(Ordering::SeqCst),
        }
    }

    /// Recomputes the cached watermark with a full scan. Call *outside*
    /// any stripe-locked section. `fetch_max` keeps racing refreshes
    /// monotone (each computed value is a historically true watermark,
    /// hence `<=` the current truth).
    pub(crate) fn refresh_watermark(&self, clock: &AtomicU64) {
        let floor = clock.load(Ordering::SeqCst);
        let wm = self.low_watermark(clock);
        self.shared.cache.fetch_max(wm, Ordering::SeqCst);
        self.shared.cache_stamp.fetch_max(floor, Ordering::SeqCst);
    }

    /// [`Self::refresh_watermark`], rate-limited: scans only once the
    /// clock has advanced [`WATERMARK_REFRESH_TICKS`] past the last
    /// refresh, bounding both the scan frequency and the staleness
    /// (extra retained versions per chain) the cache can cost.
    pub(crate) fn refresh_if_stale(&self, clock: &AtomicU64) {
        let floor = clock.load(Ordering::SeqCst);
        let stamp = self.shared.cache_stamp.load(Ordering::SeqCst);
        if floor.wrapping_sub(stamp) >= WATERMARK_REFRESH_TICKS {
            self.refresh_watermark(clock);
        }
    }
}

/// Withdraws a snapshot published by [`SnapshotRegistry::pin`] when
/// dropped. Not `Send` — the snapshot lives in a thread-local slot.
pub(crate) struct SnapshotGuard {
    registry: u64,
    _not_send: std::marker::PhantomData<*mut ()>,
}

impl Drop for SnapshotGuard {
    fn drop(&mut self) {
        // Thread-local teardown before a late guard is handled by
        // `SnapEntry::drop`, which clears the slot.
        let _ = SNAPSHOTS.try_with(|m| {
            let mut m = m.borrow_mut();
            if let Some(e) = m.get_mut(&self.registry) {
                e.depth -= 1;
                if e.depth == 0 {
                    e.slot.rv.store(NO_SNAPSHOT, Ordering::SeqCst);
                    if let Some(reg) = e.registry.upgrade() {
                        reg.active.fetch_sub(1, Ordering::SeqCst);
                    }
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// Increments its counter on drop; counters are per-test so parallel
    /// tests sharing the global epoch machinery do not interfere.
    struct Counted(Arc<AtomicUsize>);

    impl Drop for Counted {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn retired_boxes_are_eventually_freed() {
        let drops = Arc::new(AtomicUsize::new(0));
        // This thread holds no pin, so our garbage becomes collectible as
        // soon as every *other* thread's transient pin moves past its tag;
        // keep retiring until the collector catches up.
        for round in 0.. {
            let b = Box::into_raw(Box::new(Counted(Arc::clone(&drops))));
            retire_batch(vec![Retired::new(b)]);
            if drops.load(Ordering::SeqCst) > 0 {
                break;
            }
            assert!(round < 100_000, "garbage was never collected");
            if round % 1_000 == 0 {
                std::thread::yield_now();
            }
        }
    }

    #[test]
    fn pinned_reader_blocks_collection_of_newer_garbage() {
        let _guard = pin();
        let drops = Arc::new(AtomicUsize::new(0));
        for _ in 0..(COLLECT_THRESHOLD * 2) {
            let b = Box::into_raw(Box::new(Counted(Arc::clone(&drops))));
            retire_batch(vec![Retired::new(b)]);
        }
        // Everything retired after our pin carries a newer epoch than our
        // slot publishes, so nothing may be freed while we are pinned.
        assert_eq!(drops.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn pin_is_reentrant() {
        let a = pin();
        let b = pin();
        drop(a);
        drop(b);
        let _c = pin();
    }

    #[test]
    fn watermark_is_the_clock_with_no_active_snapshot() {
        let reg = SnapshotRegistry::new();
        let clock = AtomicU64::new(17);
        assert_eq!(reg.low_watermark(&clock), 17);
    }

    #[test]
    fn active_snapshots_clamp_the_watermark() {
        let reg = SnapshotRegistry::new();
        let clock = AtomicU64::new(5);
        let (rv, g) = reg.pin(&clock);
        assert_eq!(rv, 5);
        clock.store(40, Ordering::SeqCst);
        assert_eq!(reg.low_watermark(&clock), 5, "pinned snapshot holds it");
        drop(g);
        assert_eq!(reg.low_watermark(&clock), 40, "released: clock floor");
    }

    #[test]
    fn nested_pins_publish_the_outer_snapshot_but_read_fresh() {
        let reg = SnapshotRegistry::new();
        let clock = AtomicU64::new(3);
        let (outer, g1) = reg.pin(&clock);
        clock.store(9, Ordering::SeqCst);
        let (inner, g2) = reg.pin(&clock);
        assert_eq!(outer, 3);
        assert_eq!(
            inner, 9,
            "a nested attempt draws its snapshot fresh (a retry must be \
             able to see the commit that aborted it)"
        );
        assert_eq!(
            reg.low_watermark(&clock),
            3,
            "the slot keeps publishing the outer snapshot, protecting both"
        );
        drop(g2);
        assert_eq!(reg.low_watermark(&clock), 3, "outer still active");
        drop(g1);
        assert_eq!(reg.low_watermark(&clock), 9);
    }

    #[test]
    fn dead_threads_deregister_their_snapshot_slots() {
        let reg = Arc::new(SnapshotRegistry::new());
        let clock = AtomicU64::new(4);
        let slot_count = |r: &SnapshotRegistry| r.shared.slots.lock().unwrap().len();
        for _ in 0..8 {
            let reg2 = Arc::clone(&reg);
            std::thread::spawn(move || {
                let c = AtomicU64::new(9);
                let (_, _g) = reg2.pin(&c);
            })
            .join()
            .expect("worker");
        }
        assert_eq!(
            slot_count(&reg),
            0,
            "exited threads must not leave slots behind"
        );
        let (_, _g) = reg.pin(&clock);
        assert_eq!(slot_count(&reg), 1, "this thread's slot is live");
    }

    #[test]
    fn cached_watermark_is_exact_with_no_campers() {
        let reg = SnapshotRegistry::new();
        let clock = AtomicU64::new(17);
        assert_eq!(reg.cached_watermark(&clock), 17, "fast path: clock floor");
        clock.store(99, Ordering::SeqCst);
        assert_eq!(reg.cached_watermark(&clock), 99, "tracks without refresh");
        // A pin/unpin cycle leaves the fast path intact.
        let (_, g) = reg.pin(&clock);
        drop(g);
        clock.store(120, Ordering::SeqCst);
        assert_eq!(reg.cached_watermark(&clock), 120);
    }

    #[test]
    fn cached_watermark_under_campers_is_stale_only_downward() {
        use std::sync::mpsc;
        let reg = Arc::new(SnapshotRegistry::new());
        let clock = AtomicU64::new(5);
        // A second camper on its own thread: only with two or more pins
        // live does the hot path answer from the cache instead of a scan.
        let (pinned_tx, pinned_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let reg2 = Arc::clone(&reg);
        let camper = std::thread::spawn(move || {
            let c = AtomicU64::new(5);
            let (rv, _g) = reg2.pin(&c);
            pinned_tx.send(rv).unwrap();
            release_rx.recv().unwrap();
        });
        assert_eq!(pinned_rx.recv().unwrap(), 5);
        let (rv, g) = reg.pin(&clock);
        assert_eq!(rv, 5);
        clock.store(40, Ordering::SeqCst);
        // The cache has never been refreshed: it answers 0, strictly
        // below the true watermark (5) — under-trimming, never over.
        let cached = reg.cached_watermark(&clock);
        assert!(cached <= reg.low_watermark(&clock), "never over-trims");
        assert_eq!(cached, 0, "unrefreshed cache is the conservative floor");
        reg.refresh_watermark(&clock);
        assert_eq!(reg.cached_watermark(&clock), 5, "refresh lands on truth");
        // The cache is monotone: a refresh can never move it backwards.
        reg.refresh_watermark(&clock);
        assert_eq!(reg.cached_watermark(&clock), 5);
        release_tx.send(()).unwrap();
        camper.join().unwrap();
        // Back to one pin (our own): the uncontended exact scan takes over.
        assert_eq!(reg.cached_watermark(&clock), 5, "lone pin: exact scan");
        drop(g);
        assert_eq!(reg.cached_watermark(&clock), 40, "camper gone: clock floor");
    }

    #[test]
    fn refresh_if_stale_is_rate_limited_by_clock_delta() {
        let reg = SnapshotRegistry::new();
        let clock = AtomicU64::new(0);
        let (_, _g) = reg.pin(&clock);
        clock.store(WATERMARK_REFRESH_TICKS - 1, Ordering::SeqCst);
        reg.refresh_if_stale(&clock);
        assert_eq!(
            reg.shared.cache_stamp.load(Ordering::SeqCst),
            0,
            "below the tick budget: no scan"
        );
        clock.store(WATERMARK_REFRESH_TICKS, Ordering::SeqCst);
        reg.refresh_if_stale(&clock);
        assert_eq!(
            reg.shared.cache_stamp.load(Ordering::SeqCst),
            WATERMARK_REFRESH_TICKS,
            "tick budget reached: the scan ran"
        );
        assert_eq!(
            reg.cached_watermark(&clock),
            0,
            "the camper pinned at 0 clamps the refreshed cache"
        );
    }

    #[test]
    fn nested_pins_count_once_toward_the_fast_path() {
        let reg = SnapshotRegistry::new();
        let clock = AtomicU64::new(2);
        let (_, g1) = reg.pin(&clock);
        let (_, g2) = reg.pin(&clock);
        assert_eq!(reg.shared.active.load(Ordering::SeqCst), 1);
        drop(g2);
        assert_eq!(reg.shared.active.load(Ordering::SeqCst), 1);
        drop(g1);
        assert_eq!(reg.shared.active.load(Ordering::SeqCst), 0);
        clock.store(50, Ordering::SeqCst);
        assert_eq!(reg.cached_watermark(&clock), 50);
    }

    #[test]
    fn dead_threads_release_their_active_count() {
        let reg = Arc::new(SnapshotRegistry::new());
        for _ in 0..4 {
            let reg2 = Arc::clone(&reg);
            std::thread::spawn(move || {
                let c = AtomicU64::new(9);
                let (_, _g) = reg2.pin(&c);
            })
            .join()
            .expect("worker");
        }
        assert_eq!(
            reg.shared.active.load(Ordering::SeqCst),
            0,
            "exited threads must not wedge the fast path"
        );
    }

    #[test]
    fn registries_are_independent() {
        let a = SnapshotRegistry::new();
        let b = SnapshotRegistry::new();
        let ca = AtomicU64::new(1);
        let cb = AtomicU64::new(100);
        let (_, _g) = a.pin(&ca);
        assert_eq!(a.low_watermark(&ca), 1);
        assert_eq!(b.low_watermark(&cb), 100, "b never saw a's snapshot");
    }

    #[test]
    fn cross_thread_snapshots_feed_one_watermark() {
        let reg = Arc::new(SnapshotRegistry::new());
        let clock = Arc::new(AtomicU64::new(7));
        let hold = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let release = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|s| {
            let (reg2, clock2) = (Arc::clone(&reg), Arc::clone(&clock));
            let (hold2, release2) = (Arc::clone(&hold), Arc::clone(&release));
            s.spawn(move || {
                let (rv, g) = reg2.pin(&clock2);
                assert_eq!(rv, 7);
                hold2.store(true, Ordering::SeqCst);
                while !release2.load(Ordering::SeqCst) {
                    std::thread::yield_now();
                }
                drop(g);
            });
            while !hold.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
            clock.store(30, Ordering::SeqCst);
            assert_eq!(reg.low_watermark(&clock), 7, "remote pin visible");
            release.store(true, Ordering::SeqCst);
        });
        assert_eq!(reg.low_watermark(&clock), 30);
    }
}
