//! Epoch-based memory reclamation for the lock-free read path.
//!
//! [`TVar`](crate::TVar) values are immutable heap boxes published through
//! an atomic pointer; a transactional read is therefore just
//! *load-pointer, clone* with no lock acquired. The hazard is the writer
//! side: a commit swaps the pointer and must not free the old box while
//! some reader is still cloning it.
//!
//! This module implements the classic deferred-reclamation answer:
//!
//! * every transaction **pins** the current global epoch in a per-thread,
//!   cache-padded slot for its duration (two atomic ops per transaction,
//!   *not* per read — so reads stay invisible, in the paper's sense);
//! * a committing writer swaps its pointers first and only then tags the
//!   retired boxes with a fresh epoch ([`retire_batch`]), so any reader
//!   that can still hold an old pointer is pinned at a *strictly older*
//!   epoch;
//! * garbage with tag `t` is freed once every pinned slot shows an epoch
//!   `>= t` — at that point the scan proves no reader can dereference it.
//!
//! All epoch traffic uses `SeqCst`: the pin loop (store slot, re-check
//! the global epoch) and the collector's scan need a total order for the
//! "the scan cannot miss a dangerous reader" argument, and the cost sits
//! on transaction boundaries, never inside the read loop.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Epoch value meaning "this slot's thread is not inside a transaction".
const QUIESCENT: u64 = u64::MAX;

/// Collect the local bag once it holds this many retired boxes.
const COLLECT_THRESHOLD: usize = 64;

/// Global epoch counter, bumped once per writing commit.
static EPOCH: AtomicU64 = AtomicU64::new(1);

/// All live participant slots; scanned (under the lock) by collectors.
static REGISTRY: Mutex<Vec<Arc<Slot>>> = Mutex::new(Vec::new());

/// Garbage from threads that exited before their bag drained.
static ORPHANS: Mutex<Vec<Retired>> = Mutex::new(Vec::new());

/// Cheap-to-read size of [`ORPHANS`], so the retire path can trigger an
/// orphan sweep without taking the lock just to look.
static ORPHAN_PRESSURE: AtomicU64 = AtomicU64::new(0);

/// One participant's published epoch; padded so pin/unpin stores never
/// false-share with a neighbour's.
#[repr(align(128))]
struct Slot {
    epoch: AtomicU64,
}

/// A value box swapped out of a `TVar`, awaiting a safe free.
pub(crate) struct Retired {
    ptr: *mut (),
    drop_fn: unsafe fn(*mut ()),
    epoch: u64,
}

// SAFETY: `ptr` is the sole remaining owner of the boxed value (it was
// swapped out of the `TVar` and exists only in one bag at a time), and
// `Retired::new` requires `T: Send`, so dropping on another thread is fine.
unsafe impl Send for Retired {}

impl Retired {
    /// Takes ownership of a box previously leaked with `Box::into_raw`.
    pub(crate) fn new<T: Send + 'static>(ptr: *mut T) -> Self {
        unsafe fn drop_box<T>(p: *mut ()) {
            // SAFETY: `p` came from `Box::into_raw::<T>` in `Retired::new`
            // and is dropped exactly once, by `Retired::drop`.
            drop(unsafe { Box::from_raw(p.cast::<T>()) });
        }
        Retired {
            ptr: ptr.cast(),
            drop_fn: drop_box::<T>,
            epoch: 0,
        }
    }
}

impl Drop for Retired {
    fn drop(&mut self) {
        // SAFETY: see `Retired::new`; the collector only drops a `Retired`
        // once its epoch is provably unreachable by pinned readers.
        unsafe { (self.drop_fn)(self.ptr) }
    }
}

struct Local {
    slot: Arc<Slot>,
    bag: Vec<Retired>,
    pins: usize,
}

impl Local {
    fn register() -> Local {
        let slot = Arc::new(Slot {
            epoch: AtomicU64::new(QUIESCENT),
        });
        REGISTRY
            .lock()
            .expect("epoch registry poisoned")
            .push(Arc::clone(&slot));
        Local {
            slot,
            bag: Vec::new(),
            pins: 0,
        }
    }
}

impl Drop for Local {
    fn drop(&mut self) {
        // Hand unfinished garbage to the global orphan list and retire the
        // slot so it no longer blocks collection.
        self.slot.epoch.store(QUIESCENT, Ordering::SeqCst);
        if !self.bag.is_empty() {
            // Do not drop user values here: thread-local storage is being
            // torn down, and a value's `Drop` may legitimately pin the
            // epoch again. Hand everything to the orphan list; the next
            // collection on any live thread sweeps it (ORPHAN_PRESSURE
            // makes sure small bags still trigger that sweep).
            ORPHAN_PRESSURE.fetch_add(self.bag.len() as u64, Ordering::Relaxed);
            if let Ok(mut orphans) = ORPHANS.lock() {
                orphans.append(&mut self.bag);
            }
        }
        if let Ok(mut registry) = REGISTRY.lock() {
            registry.retain(|s| !Arc::ptr_eq(s, &self.slot));
        }
    }
}

thread_local! {
    static LOCAL: RefCell<Local> = RefCell::new(Local::register());
}

/// Proof of participation: while alive, this thread's slot publishes an
/// epoch no newer than any pointer it may have loaded. Not `Send` — the
/// pin lives in a thread-local slot.
pub(crate) struct Guard {
    _not_send: std::marker::PhantomData<*mut ()>,
}

/// Pins the current thread. Reentrant: nested pins keep the outermost
/// (oldest, most conservative) published epoch.
pub(crate) fn pin() -> Guard {
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        if l.pins == 0 {
            // Publish the epoch, then re-check it did not advance under
            // us: after this loop, collectors are guaranteed to observe
            // either our published value or a fresher global epoch that
            // postdates every pointer we can subsequently load.
            loop {
                let e = EPOCH.load(Ordering::SeqCst);
                l.slot.epoch.store(e, Ordering::SeqCst);
                if EPOCH.load(Ordering::SeqCst) == e {
                    break;
                }
            }
        }
        l.pins += 1;
    });
    Guard {
        _not_send: std::marker::PhantomData,
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        // A thread-local can be torn down before late guards on the same
        // thread; losing the unpin store then is harmless (the slot was
        // already retired from the registry).
        let _ = LOCAL.try_with(|l| {
            let mut l = l.borrow_mut();
            l.pins -= 1;
            if l.pins == 0 {
                l.slot.epoch.store(QUIESCENT, Ordering::SeqCst);
            }
        });
    }
}

/// Retires value boxes swapped out by one commit. Must be called *after*
/// all the pointer swaps it covers (the epoch tag must postdate them).
pub(crate) fn retire_batch(mut retired: Vec<Retired>) {
    if retired.is_empty() {
        return;
    }
    let tag = EPOCH.fetch_add(1, Ordering::SeqCst) + 1;
    for r in &mut retired {
        r.epoch = tag;
    }
    let mut to_free: Vec<Retired> = Vec::new();
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        l.bag.append(&mut retired);
        if l.bag.len() >= COLLECT_THRESHOLD
            || ORPHAN_PRESSURE.load(Ordering::Relaxed) >= COLLECT_THRESHOLD as u64
        {
            let min = min_pinned_epoch();
            let mut i = 0;
            while i < l.bag.len() {
                if l.bag[i].epoch < min {
                    to_free.push(l.bag.swap_remove(i));
                } else {
                    i += 1;
                }
            }
            drop(l);
            collect_orphans(min, &mut to_free);
        }
    });
    // Drop collected garbage only now, outside the thread-local borrow
    // and the orphan lock: a value's `Drop` may itself pin the epoch or
    // retire more garbage (e.g. it holds or reads `TVar`s).
    drop(to_free);
}

/// The oldest epoch any currently pinned thread could be reading under.
fn min_pinned_epoch() -> u64 {
    let registry = REGISTRY.lock().expect("epoch registry poisoned");
    registry
        .iter()
        .map(|s| s.epoch.load(Ordering::SeqCst))
        .min()
        .unwrap_or(QUIESCENT)
}

/// Moves every collectible orphan into `out` (the caller drops them after
/// releasing all locks and borrows).
fn collect_orphans(min: u64, out: &mut Vec<Retired>) {
    if let Ok(mut orphans) = ORPHANS.lock() {
        let mut freed = 0u64;
        let mut i = 0;
        while i < orphans.len() {
            if orphans[i].epoch < min {
                out.push(orphans.swap_remove(i));
                freed += 1;
            } else {
                i += 1;
            }
        }
        if freed > 0 {
            ORPHAN_PRESSURE.fetch_sub(freed, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// Increments its counter on drop; counters are per-test so parallel
    /// tests sharing the global epoch machinery do not interfere.
    struct Counted(Arc<AtomicUsize>);

    impl Drop for Counted {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn retired_boxes_are_eventually_freed() {
        let drops = Arc::new(AtomicUsize::new(0));
        // This thread holds no pin, so our garbage becomes collectible as
        // soon as every *other* thread's transient pin moves past its tag;
        // keep retiring until the collector catches up.
        for round in 0.. {
            let b = Box::into_raw(Box::new(Counted(Arc::clone(&drops))));
            retire_batch(vec![Retired::new(b)]);
            if drops.load(Ordering::SeqCst) > 0 {
                break;
            }
            assert!(round < 100_000, "garbage was never collected");
            if round % 1_000 == 0 {
                std::thread::yield_now();
            }
        }
    }

    #[test]
    fn pinned_reader_blocks_collection_of_newer_garbage() {
        let _guard = pin();
        let drops = Arc::new(AtomicUsize::new(0));
        for _ in 0..(COLLECT_THRESHOLD * 2) {
            let b = Box::into_raw(Box::new(Counted(Arc::clone(&drops))));
            retire_batch(vec![Retired::new(b)]);
        }
        // Everything retired after our pin carries a newer epoch than our
        // slot publishes, so nothing may be freed while we are pinned.
        assert_eq!(drops.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn pin_is_reentrant() {
        let a = pin();
        let b = pin();
        drop(a);
        drop(b);
        let _c = pin();
    }
}
