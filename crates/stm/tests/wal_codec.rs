//! WAL integration tests: the codec's clean-prefix contract exercised
//! through the real group-commit writer (not hand-framed buffers), and
//! the engine-side ordering invariant — staged payloads reach the log
//! in conflict order on every algorithm.

use ptm_stm::wal::{
    codec::{self, Corruption, WalValue},
    DurableTicket, FaultPlan, FaultSink, MemSink, Wal,
};
use ptm_stm::{Algorithm, Stm, TVar};
use std::sync::Arc;

/// Builds a log through the writer path (append + flush over a
/// [`MemSink`]) with payloads of varied sizes, returning the durable
/// bytes and the (stamp, payload) pairs written.
fn wal_built_log() -> (Vec<u8>, Vec<(u64, Vec<u8>)>) {
    let sink = MemSink::new();
    let wal = Wal::with_sink(Box::new(sink.clone()));
    let mut written = Vec::new();
    for i in 0..6u64 {
        let payload = vec![i as u8; (i as usize * 7) % 11];
        wal.append(10 + i, 0, &payload);
        written.push((10 + i, payload));
    }
    wal.flush().unwrap();
    (sink.durable_bytes(), written)
}

/// Asserts `decoded` is a prefix of `written`, value-exact.
fn assert_prefix(decoded: &codec::Decoded, written: &[(u64, Vec<u8>)], ctx: &str) {
    assert!(
        decoded.records.len() <= written.len(),
        "{ctx}: extra records"
    );
    for (got, (stamp, payload)) in decoded.records.iter().zip(written) {
        assert_eq!(got.stamp, *stamp, "{ctx}: stamp rewritten");
        assert_eq!(&got.payload, payload, "{ctx}: payload rewritten");
    }
}

/// Truncate the writer-produced log at every byte offset: the decoder
/// must always yield an exact prefix of what was appended.
#[test]
fn truncation_of_a_writer_log_at_every_offset_yields_a_prefix() {
    let (bytes, written) = wal_built_log();
    let clean = codec::decode_stream(&bytes);
    assert_eq!(clean.records.len(), written.len());
    assert_eq!(clean.corruption, None);
    for cut in 0..bytes.len() {
        let d = codec::decode_stream(&bytes[..cut]);
        assert_prefix(&d, &written, &format!("cut={cut}"));
        assert!(
            d.records.len() == written.len() || d.corruption.is_some() || cut == d.clean_len,
            "cut={cut}: lost records without reporting corruption"
        );
    }
}

/// Flip every byte of the writer-produced log: decoding must never
/// yield a record that was not written, and must notice the damage.
#[test]
fn bit_flips_in_a_writer_log_never_forge_a_record() {
    let (bytes, written) = wal_built_log();
    for off in 0..bytes.len() {
        let mut bad = bytes.clone();
        bad[off] ^= 0x01;
        let d = codec::decode_stream(&bad);
        assert_prefix(&d, &written, &format!("flip={off}"));
        assert!(d.corruption.is_some(), "flip at {off} went unnoticed");
    }
}

/// A torn append through the fault-injecting sink costs exactly the
/// suffix from the tear point: everything before decodes, the torn
/// record reports as truncated, and the writer poisons itself.
#[test]
fn torn_write_through_the_wal_loses_only_a_suffix() {
    // Frame sizes are deterministic, so tear inside the third record.
    let payloads: [&[u8]; 4] = [b"alpha", b"bravo-bravo", b"charlie", b"delta"];
    let two = codec::framed_len(payloads[0].len()) + codec::framed_len(payloads[1].len());
    let tear_at = (two + codec::framed_len(payloads[2].len()) - 3) as u64;
    let fault = FaultSink::new(FaultPlan {
        tear_after_bytes: Some(tear_at),
        ..FaultPlan::default()
    });
    let mem = fault.mem().clone();
    let wal = Wal::with_sink(Box::new(fault));
    let mut lsns = Vec::new();
    for (i, p) in payloads.iter().enumerate() {
        lsns.push(wal.append(1 + i as u64, 0, p));
    }
    wal.flush().unwrap_err();
    // The crash image: everything the sink accepted, synced or not.
    let d = codec::decode_stream(&mem.all_bytes());
    assert_eq!(d.records.len(), 2, "records before the tear survive whole");
    assert_eq!(d.records[1].payload, payloads[1]);
    assert!(
        matches!(d.corruption, Some(Corruption::Truncated { offset }) if offset == two),
        "the torn record reports as truncated: {:?}",
        d.corruption
    );
    // Fail-stop: the writer refuses to promise durability ever again.
    wal.wait_durable(lsns[0]).unwrap_err();
    wal.wait_durable(lsns[3]).unwrap_err();
}

/// Silent corruption (a flipped byte the sink passes through) is caught
/// by the checksum at decode time, and only the corrupt record and its
/// suffix are lost.
#[test]
fn silently_flipped_byte_is_caught_by_the_checksum() {
    let first = codec::framed_len(3);
    // Flip a payload byte of the second record.
    let flip_at = (first + codec::HEADER_LEN + 1) as u64;
    let fault = FaultSink::new(FaultPlan {
        flip: Some((flip_at, 0x80)),
        ..FaultPlan::default()
    });
    let mem = fault.mem().clone();
    let wal = Wal::with_sink(Box::new(fault));
    wal.append(1, 0, b"one");
    wal.append(2, 0, b"two");
    wal.append(3, 0, b"tri");
    wal.flush().unwrap();
    let d = codec::decode_stream(&mem.durable_bytes());
    assert_eq!(d.records.len(), 1, "only the pre-flip prefix decodes");
    assert_eq!(d.records[0].payload, b"one");
    assert!(
        matches!(d.corruption, Some(Corruption::BadChecksum { offset }) if offset == first),
        "flip must surface as a checksum failure: {:?}",
        d.corruption
    );
}

/// The engine-side half of the durability contract, on every algorithm:
/// concurrent conflicting transactions that stage payloads land in the
/// log in conflict order (payload values 1..=N in log order, stamps
/// strictly increasing), and every committed transaction's ticket names
/// an LSN the writer can make durable.
#[test]
fn staged_payloads_log_in_conflict_order_on_every_algorithm() {
    const THREADS: usize = 4;
    const PER: u64 = 8;
    for algorithm in Algorithm::ALL {
        let sink = MemSink::new();
        let wal = Arc::new(Wal::with_sink(Box::new(sink.clone())));
        let stm = Arc::new(Stm::builder(algorithm).durability_hook(wal.clone()).build());
        let counter = TVar::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let stm = Arc::clone(&stm);
                let wal = Arc::clone(&wal);
                let counter = counter.clone();
                s.spawn(move || {
                    for _ in 0..PER {
                        let ticket = DurableTicket::new();
                        stm.atomically(|tx| {
                            let x = tx.read(&counter)?;
                            tx.write(&counter, x + 1)?;
                            let mut payload = Vec::new();
                            (x + 1).encode_wal(&mut payload);
                            tx.stage_durable(Arc::from(&payload[..]), &ticket);
                            Ok(())
                        });
                        let lsn = ticket.lsn().expect("published commit fills the ticket");
                        wal.wait_durable(lsn).expect("group commit fsync");
                    }
                });
            }
        });
        assert_eq!(counter.load(), (THREADS as u64) * PER, "{algorithm:?}");
        // Every ack'ed record is in the durable image already — no
        // flush needed; decode what a crash right now would preserve.
        let d = codec::decode_stream(&sink.durable_bytes());
        assert_eq!(d.corruption, None, "{algorithm:?}");
        assert_eq!(d.records.len(), (THREADS * PER as usize), "{algorithm:?}");
        let mut last_stamp = 0;
        for (i, r) in d.records.iter().enumerate() {
            let mut cur = &r.payload[..];
            let value = u64::decode_wal(&mut cur).expect("payload is one u64");
            assert_eq!(
                value,
                i as u64 + 1,
                "{algorithm:?}: log order must be conflict order"
            );
            assert!(
                r.stamp > last_stamp,
                "{algorithm:?}: stamps must be strictly increasing ({} after {last_stamp})",
                r.stamp
            );
            last_stamp = r.stamp;
        }
    }
}
