//! YCSB-style workload generation and measurement.
//!
//! The driver side of the service benchmark: a [`Workload`] draws
//! operations from a configurable read/write/scan/multi-key [`Mix`]
//! with zipfian key skew (the YCSB default of `theta = 0.99` makes a
//! handful of keys hot, which is what stresses contention management
//! and the cross-shard commit path), and [`run_workload`] drives a
//! [`ShardedKv`] with it from N threads, recording **per-operation
//! latency** so the report can show p50/p99 tails, not just throughput
//! — a service that commits fast on average but stalls its tail behind
//! a conflict storm fails its users either way.
//!
//! Everything is deterministic per thread: a seeded LCG supplies both
//! the op choice and the zipfian uniform draw, so two runs of the same
//! configuration replay the same operation streams.

use crate::durability::DurableKv;
use crate::kv::ShardedKv;
use std::time::Instant;

/// The store operations the workload driver needs, so the same driver
/// measures the in-memory [`ShardedKv`] and the durable, write-ahead
/// logged [`DurableKv`] (the durability on/off bench rows differ only
/// in the backend).
pub trait KvBackend: Sync {
    /// Reads one key.
    fn get(&self, key: &u64) -> Option<u64>;
    /// Writes one key.
    fn put(&self, key: u64, value: u64) -> Option<u64>;
    /// A consistent whole-store scan.
    fn scan(&self) -> Vec<(u64, u64)>;
    /// The balance-preserving multi-key transfer the mix's `multi` ops
    /// run: move 1 from `keys[0]` to `keys[last]` (saturating at zero),
    /// pinning the middle keys into the footprint.
    fn transfer(&self, keys: &[u64]);
}

impl KvBackend for ShardedKv<u64, u64> {
    fn get(&self, key: &u64) -> Option<u64> {
        ShardedKv::get(self, key)
    }
    fn put(&self, key: u64, value: u64) -> Option<u64> {
        ShardedKv::put(self, key, value)
    }
    fn scan(&self) -> Vec<(u64, u64)> {
        ShardedKv::scan(self)
    }
    fn transfer(&self, keys: &[u64]) {
        self.transact(|tx| {
            let from = tx.get(&keys[0])?.unwrap_or(0);
            let to_key = *keys.last().expect("span >= 2");
            let to = tx.get(&to_key)?.unwrap_or(0);
            for k in &keys[1..keys.len() - 1] {
                tx.get(k)?;
            }
            let moved = from.min(1);
            tx.put(keys[0], from - moved)?;
            tx.put(to_key, to + moved)?;
            Ok(())
        });
    }
}

impl KvBackend for DurableKv<u64, u64> {
    fn get(&self, key: &u64) -> Option<u64> {
        DurableKv::get(self, key)
    }
    fn put(&self, key: u64, value: u64) -> Option<u64> {
        DurableKv::put(self, key, value)
    }
    fn scan(&self) -> Vec<(u64, u64)> {
        DurableKv::scan(self)
    }
    fn transfer(&self, keys: &[u64]) {
        self.transact(|tx| {
            let from = tx.get(&keys[0])?.unwrap_or(0);
            let to_key = *keys.last().expect("span >= 2");
            let to = tx.get(&to_key)?.unwrap_or(0);
            for k in &keys[1..keys.len() - 1] {
                tx.get(k)?;
            }
            let moved = from.min(1);
            tx.put(keys[0], from - moved)?;
            tx.put(to_key, to + moved)?;
            Ok(())
        });
    }
}

/// Operation mix, in percent. Must sum to 100.
#[derive(Debug, Clone, Copy)]
pub struct Mix {
    /// Single-key reads.
    pub read: u32,
    /// Single-key writes.
    pub write: u32,
    /// Consistent cross-shard scans.
    pub scan: u32,
    /// Multi-key (cross-shard) transfer transactions.
    pub multi: u32,
}

impl Mix {
    /// YCSB-A-flavoured update-heavy default with a sliver of scans and
    /// cross-shard transfers: 70/24/1/5.
    pub const UPDATE_HEAVY: Mix = Mix {
        read: 70,
        write: 24,
        scan: 1,
        multi: 5,
    };

    /// YCSB-B-flavoured read-mostly mix: 93/5/0/2.
    pub const READ_MOSTLY: Mix = Mix {
        read: 93,
        write: 5,
        scan: 0,
        multi: 2,
    };

    fn total(&self) -> u32 {
        self.read + self.write + self.scan + self.multi
    }
}

/// Workload shape: key population, skew, and mix.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Key space size (keys are `0..keys`).
    pub keys: u64,
    /// Zipfian skew parameter; `0.0` means uniform. YCSB default 0.99.
    pub zipf_theta: f64,
    /// Operation mix.
    pub mix: Mix,
    /// Keys per multi-key transaction (a transfer chain). Minimum 2.
    pub multi_span: usize,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            keys: 1024,
            zipf_theta: 0.99,
            mix: Mix::UPDATE_HEAVY,
            multi_span: 2,
        }
    }
}

/// One drawn operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadOp {
    /// Read one key.
    Read(u64),
    /// Write `value` to one key.
    Write(u64, u64),
    /// Consistent scan over the whole store.
    Scan,
    /// Balance-preserving transfer across the listed keys (debit the
    /// first, credit the last) — the op the atomicity test watches.
    Multi(Vec<u64>),
}

/// A prepared workload: the mix plus the precomputed zipfian constants
/// (the `zeta(n)` sum is O(n), paid once here, never per draw).
#[derive(Debug, Clone)]
pub struct Workload {
    cfg: WorkloadConfig,
    zeta_n: f64,
    zeta_two: f64,
    alpha: f64,
    eta: f64,
}

/// The bench crates' shared LCG (PCG-style step), reproduced here so the
/// server crate stays dependency-free; seed with the thread index.
pub fn next_rand(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 11
}

/// A uniform draw in `[0, 1)` from the LCG (53 usable bits).
fn next_f64(state: &mut u64) -> f64 {
    (next_rand(state) & ((1u64 << 53) - 1)) as f64 / (1u64 << 53) as f64
}

impl Workload {
    /// Prepares a workload, precomputing the zipfian tables.
    ///
    /// # Panics
    ///
    /// Panics if the mix does not sum to 100, `keys` is zero, or
    /// `zipf_theta >= 1` (the YCSB formulation requires `theta < 1`).
    pub fn new(cfg: WorkloadConfig) -> Self {
        assert_eq!(cfg.mix.total(), 100, "mix percentages must sum to 100");
        assert!(cfg.keys > 0, "empty key space");
        assert!(
            (0.0..1.0).contains(&cfg.zipf_theta),
            "zipf theta must be in [0, 1)"
        );
        assert!(
            cfg.mix.multi == 0 || cfg.keys >= cfg.multi_span.max(2) as u64,
            "multi-key ops need at least multi_span distinct keys"
        );
        let n = cfg.keys;
        let theta = cfg.zipf_theta;
        let zeta_n: f64 = (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        let zeta_two = 1.0 + 0.5f64.powf(theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta_two / zeta_n);
        Workload {
            cfg,
            zeta_n,
            zeta_two,
            alpha,
            eta,
        }
    }

    /// The configuration this workload was built from.
    pub fn config(&self) -> &WorkloadConfig {
        &self.cfg
    }

    /// Draws the next key: a zipfian *rank* (rank 0 hottest), then a
    /// multiplicative scramble so the hot ranks scatter across the key
    /// space (and therefore across shards) instead of clustering at 0 —
    /// standard YCSB "scrambled zipfian".
    pub fn next_key(&self, state: &mut u64) -> u64 {
        let rank = if self.cfg.zipf_theta == 0.0 {
            next_rand(state) % self.cfg.keys
        } else {
            let u = next_f64(state);
            let uz = u * self.zeta_n;
            if uz < 1.0 {
                0
            } else if uz < self.zeta_two {
                1
            } else {
                let r = (self.cfg.keys as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha))
                    as u64;
                r.min(self.cfg.keys - 1)
            }
        };
        rank.wrapping_mul(0x9E37_79B9_7F4A_7C15) % self.cfg.keys
    }

    /// Draws the next operation.
    pub fn next_op(&self, state: &mut u64) -> WorkloadOp {
        let roll = (next_rand(state) % 100) as u32;
        let m = &self.cfg.mix;
        if roll < m.read {
            WorkloadOp::Read(self.next_key(state))
        } else if roll < m.read + m.write {
            let key = self.next_key(state);
            WorkloadOp::Write(key, next_rand(state))
        } else if roll < m.read + m.write + m.scan {
            WorkloadOp::Scan
        } else {
            let span = self.cfg.multi_span.max(2);
            let mut keys = Vec::with_capacity(span);
            while keys.len() < span {
                let k = self.next_key(state);
                // Distinct keys: a transfer from a key to itself tests
                // nothing.
                if !keys.contains(&k) {
                    keys.push(k);
                }
            }
            WorkloadOp::Multi(keys)
        }
    }
}

/// Per-operation latency samples, merged across threads at the end of a
/// run.
#[derive(Debug, Default, Clone)]
pub struct LatencyRecorder {
    samples: Vec<u64>,
}

impl LatencyRecorder {
    /// Records one operation's latency in nanoseconds.
    pub fn record(&mut self, nanos: u64) {
        self.samples.push(nanos);
    }

    /// Absorbs another recorder's samples.
    pub fn merge(&mut self, other: LatencyRecorder) {
        self.samples.extend(other.samples);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The `p`-th percentile (`0.0..=100.0`) in nanoseconds, or 0 with
    /// no samples. Sorts in place (call after the run, not during).
    pub fn percentile(&mut self, p: f64) -> u64 {
        percentile(&mut self.samples, p)
    }
}

/// Nearest-rank percentile of `samples` (`p` in `0.0..=100.0`); sorts
/// the slice in place. Returns 0 for an empty slice.
pub fn percentile(samples: &mut [u64], p: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    let rank = ((p / 100.0) * samples.len() as f64).ceil() as usize;
    samples[rank.saturating_sub(1).min(samples.len() - 1)]
}

/// The outcome of one [`run_workload`] pass.
#[derive(Debug, Clone)]
pub struct WorkloadStats {
    /// Completed operations across all threads.
    pub ops: u64,
    /// Wall-clock nanoseconds for the whole pass.
    pub nanos: u128,
    /// Per-kind completion counts: reads, writes, scans, multis.
    pub reads: u64,
    /// Single-key writes completed.
    pub writes: u64,
    /// Consistent scans completed.
    pub scans: u64,
    /// Multi-key transactions completed.
    pub multis: u64,
    /// Merged per-operation latency samples.
    pub latencies: LatencyRecorder,
}

impl WorkloadStats {
    /// Operations per second over the pass.
    pub fn ops_per_sec(&self) -> f64 {
        if self.nanos == 0 {
            return f64::INFINITY;
        }
        self.ops as f64 * 1e9 / self.nanos as f64
    }
}

/// Preloads every key with `initial` so the balance invariant the
/// atomicity test checks (`sum == keys * initial`) holds from the start
/// and transfers never go through missing keys.
pub fn preload(kv: &impl KvBackend, keys: u64, initial: u64) {
    for k in 0..keys {
        kv.put(k, initial);
    }
}

/// Runs `ops_per_thread` operations of `workload` on `kv` from each of
/// `threads` threads, timing every operation. Thread `t` seeds its
/// stream with `seed + t`, so a repeated call replays identical
/// streams.
///
/// Multi-key ops transfer 1 from the first drawn key to the last
/// (saturating at zero so balances stay non-negative), keeping the
/// store's total sum invariant — concurrent scans can assert it.
pub fn run_workload(
    kv: &impl KvBackend,
    workload: &Workload,
    threads: usize,
    ops_per_thread: u64,
    seed: u64,
) -> WorkloadStats {
    let start = Instant::now();
    let per_thread: Vec<(u64, u64, u64, u64, LatencyRecorder)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                s.spawn(move || {
                    let mut state = seed.wrapping_add(t as u64).wrapping_mul(0x9E37_79B9) | 1;
                    let mut lat = LatencyRecorder::default();
                    let (mut reads, mut writes, mut scans, mut multis) = (0u64, 0u64, 0u64, 0u64);
                    for _ in 0..ops_per_thread {
                        let op = workload.next_op(&mut state);
                        let t0 = Instant::now();
                        match op {
                            WorkloadOp::Read(k) => {
                                std::hint::black_box(kv.get(&k));
                                reads += 1;
                            }
                            WorkloadOp::Write(k, v) => {
                                kv.put(k, v);
                                writes += 1;
                            }
                            WorkloadOp::Scan => {
                                std::hint::black_box(kv.scan());
                                scans += 1;
                            }
                            WorkloadOp::Multi(keys) => {
                                kv.transfer(&keys);
                                multis += 1;
                            }
                        }
                        lat.record(t0.elapsed().as_nanos() as u64);
                    }
                    (reads, writes, scans, multis, lat)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("workload thread"))
            .collect()
    });
    let nanos = start.elapsed().as_nanos();
    let mut stats = WorkloadStats {
        ops: 0,
        nanos,
        reads: 0,
        writes: 0,
        scans: 0,
        multis: 0,
        latencies: LatencyRecorder::default(),
    };
    for (reads, writes, scans, multis, lat) in per_thread {
        stats.reads += reads;
        stats.writes += writes;
        stats.scans += scans;
        stats.multis += multis;
        stats.latencies.merge(lat);
    }
    stats.ops = stats.reads + stats.writes + stats.scans + stats.multis;
    stats
}
