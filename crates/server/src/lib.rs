//! A sharded transactional key-value service over the native STM.
//!
//! This crate is the serving tier the ROADMAP's north star asks for: it
//! turns the single-instance [`Stm`](ptm_stm::Stm) engine into a system
//! that answers get/put/scan/multi-key-transact over **N shards**, each
//! shard an independent `Stm` instance (own clock, own orec table) with
//! a hash-partitioned [`THashMap`](ptm_structs::THashMap) on top.
//!
//! The interesting part is the cross-shard path. A multi-key transaction
//! whose keys land on several shards commits through an **ordered
//! two-phase commit** built from the engine's
//! [`prepare_commit`](ptm_stm::Transaction::prepare_commit) /
//! [`commit_prepared`](ptm_stm::Transaction::commit_prepared) split:
//! prepare every touched shard in ascending shard index (lock + validate,
//! nothing published), and only when *all* prepares hold, publish them
//! one by one. Each shard's prepare acquires exactly the locks that
//! shard's single-instance commit would have held across its own write
//! back, so the established per-algorithm serialization arguments carry
//! over unchanged — a concurrent consistent [`scan`](ShardedKv::scan)
//! (itself a read-only 2PC that revalidates every shard) can never
//! observe a multi-shard transfer torn. See
//! `ptm_stm::engine::twophase`'s module docs for the full torn-cut and
//! deadlock-freedom arguments; this crate's obligation is the ascending
//! prepare order.
//!
//! The [`workload`] module supplies the YCSB-style driver side: zipfian
//! key skew, a configurable read/write/scan/multi-key mix, and latency
//! recording for p50/p99 percentiles.

pub mod durability;
pub mod kv;
pub mod workload;

pub use durability::{DurabilityConfig, DurableKv, DurableTx, RecoveryReport};
pub use kv::{ServiceConfig, ServiceTx, ShardedKv};
pub use workload::{
    percentile, preload, run_workload, KvBackend, LatencyRecorder, Mix, Workload, WorkloadConfig,
    WorkloadOp, WorkloadStats,
};
