//! The shard router and cross-shard two-phase commit coordinator.
//!
//! A [`ShardedKv`] owns N independent [`Stm`] instances, each carrying a
//! [`THashMap`] partition. Keys are routed by hash; single-key
//! operations run as ordinary one-shot transactions on the owning shard
//! and never pay any cross-shard cost. Multi-key transactions
//! ([`ShardedKv::transact`]) and consistent scans ([`ShardedKv::scan`])
//! span shards and commit through the coordinator in this module.
//!
//! ## The coordinator's protocol
//!
//! 1. run the body, lazily opening one [`Transaction`] per touched
//!    shard (a shard untouched by the body costs nothing);
//! 2. **prepare in ascending shard index**:
//!    [`Transaction::prepare_commit`] acquires that shard's commit locks
//!    and validates its read set, publishing nothing;
//! 3. if every prepare held, **publish all**
//!    ([`Transaction::commit_prepared`]); if any failed, abort the ones
//!    already prepared ([`Transaction::abort_prepared`]) — no shard
//!    observes anything — and re-run the body.
//!
//! Atomicity (no torn cross-shard reads) follows from the engine's
//! prepare/publish split: the coordinator holds *every* shard's commit
//! locks from before its first publish until after that shard's own
//! publish, and a consistent scan is itself a read-only 2PC that
//! revalidates every shard at prepare time — the per-algorithm torn-cut
//! argument lives in `ptm_stm`'s `twophase` module docs. Deadlock
//! freedom is this module's obligation and comes from the single global
//! prepare order: stripe-locking prepares are try-lock fail-fast, and
//! NOrec's sequence-lock spin only ever waits on a lower-indexed holder
//! chain that terminates at a coordinator free to publish.

use ptm_stm::{
    AdaptiveConfig, Algorithm, DurabilityHook, Prepared, Retry, Stm, StmStats, Transaction, TxValue,
};
use ptm_structs::THashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Identifies the shard-routing hash algorithm. Shard assignment is
/// persisted (snapshots and WAL records carry shard indices), so the
/// durable tier stamps this id into its on-disk geometry and refuses to
/// open a store routed by a different algorithm — bump it whenever
/// [`ShardHasher`] changes.
pub(crate) const SHARD_HASHER_ID: u64 = 1;

/// The pinned shard-routing hasher (id [`SHARD_HASHER_ID`]): FNV-1a 64
/// over the `Hash` byte stream, finished with the splitmix64 mixer so
/// small keys spread across all bits before the shard modulus.
///
/// std's `DefaultHasher` is explicitly allowed to change algorithms
/// between Rust releases; routing through it would let a store written
/// by one toolchain recover under a binary that routes the same keys to
/// *different* shards, silently orphaning the recovered data. This
/// algorithm is frozen by the on-disk format instead.
struct ShardHasher(u64);

impl ShardHasher {
    fn new() -> Self {
        // FNV-1a 64-bit offset basis.
        ShardHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for ShardHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            // FNV-1a 64-bit prime.
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    // The std defaults feed integers in native-endian order and hash
    // usize at its native width; pin both so the routing is identical
    // across architectures, not just across toolchains. (The signed and
    // length-prefix defaults forward to these.)
    fn write_u16(&mut self, n: u16) {
        self.write(&n.to_le_bytes());
    }
    fn write_u32(&mut self, n: u32) {
        self.write(&n.to_le_bytes());
    }
    fn write_u64(&mut self, n: u64) {
        self.write(&n.to_le_bytes());
    }
    fn write_u128(&mut self, n: u128) {
        self.write(&n.to_le_bytes());
    }
    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }

    fn finish(&self) -> u64 {
        // splitmix64 finisher (Steele et al.), fixed constants.
        let mut z = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Geometry and policy knobs for a [`ShardedKv`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Number of shards (independent `Stm` instances). Minimum 1.
    pub shards: usize,
    /// The STM algorithm every shard runs.
    pub algorithm: Algorithm,
    /// `THashMap` buckets per shard (rounded up to a power of two).
    /// More buckets, fewer false conflicts within a shard.
    pub buckets_per_shard: usize,
    /// Controller tuning applied to every shard when `algorithm` is
    /// [`Algorithm::Adaptive`]; `None` keeps the engine defaults.
    /// Ignored by the static algorithms.
    pub adaptive: Option<AdaptiveConfig>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: 4,
            algorithm: Algorithm::Tl2,
            buckets_per_shard: 64,
            adaptive: None,
        }
    }
}

/// One shard: an `Stm` instance plus its key partition.
struct Shard<K, V> {
    stm: Stm,
    map: THashMap<K, V>,
}

/// A sharded transactional key-value store.
///
/// # Examples
///
/// ```
/// use ptm_server::ShardedKv;
/// use ptm_stm::Algorithm;
///
/// let kv = ShardedKv::new(4, Algorithm::Tl2);
/// kv.put(1u64, 10u64);
/// kv.put(2u64, 20u64);
/// // A cross-shard transfer: atomic however the keys are partitioned.
/// kv.transact(|tx| {
///     let a = tx.get(&1)?.unwrap_or(0);
///     let b = tx.get(&2)?.unwrap_or(0);
///     tx.put(1, a - 5)?;
///     tx.put(2, b + 5)?;
///     Ok(())
/// });
/// assert_eq!(kv.get(&1), Some(5));
/// assert_eq!(kv.get(&2), Some(25));
/// let total: u64 = kv.scan().into_iter().map(|(_, v)| v).sum();
/// assert_eq!(total, 30);
/// ```
pub struct ShardedKv<K, V> {
    shards: Box<[Shard<K, V>]>,
}

impl<K, V> fmt::Debug for ShardedKv<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedKv")
            .field("shards", &self.shards.len())
            .field("algorithm", &self.shards[0].stm.algorithm())
            .finish()
    }
}

impl<K: TxValue + Hash + Eq, V: TxValue> ShardedKv<K, V> {
    /// A store with `shards` shards all running `algorithm`, default
    /// bucket count.
    pub fn new(shards: usize, algorithm: Algorithm) -> Self {
        ShardedKv::with_config(ServiceConfig {
            shards,
            algorithm,
            ..ServiceConfig::default()
        })
    }

    /// A store with explicit geometry.
    pub fn with_config(cfg: ServiceConfig) -> Self {
        ShardedKv::build(cfg, |_| None)
    }

    /// A store whose shard `i` runs with the durability hook
    /// `hook(i)` attached (the durable tier hangs one WAL per shard).
    pub(crate) fn with_hooks(
        cfg: ServiceConfig,
        hook: impl Fn(usize) -> Option<Arc<dyn DurabilityHook>>,
    ) -> Self {
        ShardedKv::build(cfg, hook)
    }

    fn build(cfg: ServiceConfig, hook: impl Fn(usize) -> Option<Arc<dyn DurabilityHook>>) -> Self {
        let n = cfg.shards.max(1);
        ShardedKv {
            shards: (0..n)
                .map(|i| {
                    let mut b = Stm::builder(cfg.algorithm);
                    if let Some(a) = cfg.adaptive {
                        b = b.adaptive_config(a);
                    }
                    if let Some(h) = hook(i) {
                        b = b.durability_hook(h);
                    }
                    Shard {
                        stm: b.build(),
                        map: THashMap::with_buckets(cfg.buckets_per_shard),
                    }
                })
                .collect(),
        }
    }

    /// Direct access to one shard's engine and partition (the durable
    /// tier routes its replay and single-key staging through this).
    pub(crate) fn shard_parts(&self, shard: usize) -> (&Stm, &THashMap<K, V>) {
        let s = &self.shards[shard];
        (&s.stm, &s.map)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index owning `key` (pinned algorithm — see
    /// `ShardHasher`; stable across toolchains and restarts).
    pub fn shard_of(&self, key: &K) -> usize {
        let mut h = ShardHasher::new();
        key.hash(&mut h);
        (h.finish() % self.shards.len() as u64) as usize
    }

    /// The statistics ledger of one shard's `Stm` instance.
    pub fn shard_stats(&self, shard: usize) -> &StmStats {
        self.shards[shard].stm.stats()
    }

    /// Reads one key. Single-shard: an ordinary transaction on the
    /// owning shard.
    pub fn get(&self, key: &K) -> Option<V> {
        let s = &self.shards[self.shard_of(key)];
        s.stm.atomically(|tx| s.map.get(tx, key))
    }

    /// Writes one key, returning the previous value. Single-shard.
    pub fn put(&self, key: K, value: V) -> Option<V> {
        let s = &self.shards[self.shard_of(&key)];
        s.stm
            .atomically(|tx| s.map.insert(tx, key.clone(), value.clone()))
    }

    /// Removes one key, returning its value. Single-shard.
    pub fn remove(&self, key: &K) -> Option<V> {
        let s = &self.shards[self.shard_of(key)];
        s.stm.atomically(|tx| s.map.remove(tx, key))
    }

    /// A **consistent** snapshot of the whole store: every entry of
    /// every shard, as of one serialization point across all shards.
    ///
    /// Implemented as a read-only cross-shard transaction: snapshot each
    /// shard, then prepare each shard in ascending order — a read-only
    /// prepare revalidates the shard's whole read set, so a multi-shard
    /// commit that landed between two of the snapshots fails the prepare
    /// and the scan re-runs. This is the operation the atomicity stress
    /// test aims at concurrent transfers: the returned entries never
    /// show a transfer half-applied.
    pub fn scan(&self) -> Vec<(K, V)> {
        self.transact(|tx| {
            let mut out = Vec::new();
            for s in 0..tx.kv.shard_count() {
                out.extend(tx.shard_snapshot(s)?);
            }
            Ok(out)
        })
    }

    /// Runs `body` as one atomic transaction over however many shards
    /// it touches, committing via the ordered two-phase protocol in the
    /// module docs. Re-runs the body on conflict ([`Retry`] from any
    /// operation, a failed prepare, or an `Err(Retry)` return).
    ///
    /// The service tier has no blocking `retry` semantics: an
    /// `Err(Retry)` out of the body means "conflict, run me again", not
    /// "park until the data changes".
    pub fn transact<T>(
        &self,
        mut body: impl FnMut(&mut ServiceTx<'_, K, V>) -> Result<T, Retry>,
    ) -> T {
        let mut attempt = 0u64;
        loop {
            let mut stx = ServiceTx::begin(self);
            match body(&mut stx) {
                Ok(out) => {
                    if stx.commit() {
                        return out;
                    }
                }
                Err(Retry) => stx.rollback(),
            }
            attempt += 1;
            // Coordinator-level backoff: brief spins first, then hand
            // the core to whichever transaction is making progress.
            if attempt > 3 {
                std::thread::yield_now();
            } else {
                for _ in 0..(1u32 << attempt.min(10)) {
                    std::hint::spin_loop();
                }
            }
        }
    }
}

/// One in-flight cross-shard transaction: a lazily-opened
/// [`Transaction`] per touched shard. Handed to the body of
/// [`ShardedKv::transact`]; operations route to the owning shard's
/// transaction automatically.
pub struct ServiceTx<'kv, K, V> {
    kv: &'kv ShardedKv<K, V>,
    /// `slots[i]` is the open transaction on shard `i`, if touched.
    /// Index order doubles as the global prepare order.
    slots: Vec<Option<Transaction<'kv>>>,
}

impl<'kv, K: TxValue + Hash + Eq, V: TxValue> ServiceTx<'kv, K, V> {
    /// Opens an empty cross-shard transaction on `kv`.
    pub(crate) fn begin(kv: &'kv ShardedKv<K, V>) -> Self {
        ServiceTx {
            kv,
            slots: (0..kv.shards.len()).map(|_| None).collect(),
        }
    }

    /// Reads `key` within the transaction.
    ///
    /// # Errors
    ///
    /// [`Retry`] if the owning shard's read validation failed; the
    /// coordinator re-runs the body.
    pub fn get(&mut self, key: &K) -> Result<Option<V>, Retry> {
        let kv = self.kv;
        let shard = kv.shard_of(key);
        let tx = self.slots[shard].get_or_insert_with(|| kv.shards[shard].stm.transaction());
        kv.shards[shard].map.get(tx, key)
    }

    /// Writes `key` within the transaction, returning the previous
    /// value (buffered or committed).
    ///
    /// # Errors
    ///
    /// [`Retry`] on a shard-level conflict; the coordinator re-runs.
    pub fn put(&mut self, key: K, value: V) -> Result<Option<V>, Retry> {
        let kv = self.kv;
        let shard = kv.shard_of(&key);
        let tx = self.slots[shard].get_or_insert_with(|| kv.shards[shard].stm.transaction());
        kv.shards[shard].map.insert(tx, key, value)
    }

    /// Removes `key` within the transaction.
    ///
    /// # Errors
    ///
    /// [`Retry`] on a shard-level conflict; the coordinator re-runs.
    pub fn remove(&mut self, key: &K) -> Result<Option<V>, Retry> {
        let kv = self.kv;
        let shard = kv.shard_of(key);
        let tx = self.slots[shard].get_or_insert_with(|| kv.shards[shard].stm.transaction());
        kv.shards[shard].map.remove(tx, key)
    }

    /// Every entry of one shard, read into this transaction's footprint.
    ///
    /// # Errors
    ///
    /// [`Retry`] on a shard-level conflict; the coordinator re-runs.
    pub fn shard_snapshot(&mut self, shard: usize) -> Result<Vec<(K, V)>, Retry> {
        let kv = self.kv;
        let tx = self.slots[shard].get_or_insert_with(|| kv.shards[shard].stm.transaction());
        kv.shards[shard].map.snapshot(tx)
    }

    /// The ordered two-phase commit: prepare ascending, then publish
    /// all or abort all. Returns whether the transaction committed.
    fn commit(self) -> bool {
        self.commit_with(|_| {})
    }

    /// [`commit`](Self::commit) with a staging window: after *every*
    /// prepare holds — so the commit can no longer fail and every
    /// participant's locks are held — `stage` runs over the prepared
    /// shard transactions (shard index, transaction, prepare token),
    /// then all shards publish. The durable tier uses the window to
    /// draw one global transaction id and stage the encoded write set
    /// on each participating shard, which is what makes WAL ids
    /// conflict-ordered per shard (two cross-shard transactions sharing
    /// a shard have disjoint lock-hold windows there, so id draw order
    /// matches publish order).
    pub(crate) fn commit_with(
        self,
        stage: impl FnOnce(&mut [(usize, Transaction<'kv>, Prepared)]),
    ) -> bool {
        let mut prepared: Vec<(usize, Transaction<'kv>, Prepared)> = Vec::new();
        // `slots` is indexed by shard, so iteration order *is* the
        // global prepare order the deadlock-freedom argument needs.
        for (shard, slot) in self.slots.into_iter().enumerate() {
            let Some(mut tx) = slot else { continue };
            match tx.prepare_commit() {
                Ok(p) => prepared.push((shard, tx, p)),
                Err(Retry) => {
                    // This shard rolled its own locks back (and is
                    // poisoned); undo the ones already holding theirs,
                    // in reverse for symmetry.
                    for (_, t, p) in prepared.into_iter().rev() {
                        t.abort_prepared(p);
                    }
                    return false;
                }
            }
        }
        stage(&mut prepared);
        for (_, tx, p) in prepared {
            tx.commit_prepared(p);
        }
        true
    }

    /// Abandons every open shard transaction (body said [`Retry`]).
    pub(crate) fn rollback(self) {
        for tx in self.slots.into_iter().flatten() {
            tx.rollback();
        }
    }
}

impl<K, V> fmt::Debug for ServiceTx<'_, K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServiceTx")
            .field(
                "touched",
                &self.slots.iter().filter(|s| s.is_some()).count(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Frozen outputs of [`ShardHasher`] (id [`SHARD_HASHER_ID`] = 1).
    /// Shard routing is persisted in snapshots and WAL records, so this
    /// test failing means recovered stores would route keys to the
    /// wrong shards — if the change is intentional, bump
    /// `SHARD_HASHER_ID` so old stores fail loudly instead of silently
    /// losing keys.
    #[test]
    fn shard_routing_hash_is_pinned() {
        fn hash_of(key: impl Hash) -> u64 {
            let mut h = ShardHasher::new();
            key.hash(&mut h);
            h.finish()
        }
        assert_eq!(hash_of(0u64), 0x5ba3_14b8_cfda_3b6b);
        assert_eq!(hash_of(1u64), 0xc2be_3627_c2bf_e353);
        assert_eq!(hash_of(7u64), 0xfe79_3e3c_e142_343a);
        assert_eq!(hash_of(123_456_789u64), 0x96a9_aabe_c69c_140c);
        // Strings go through the 0xff-terminated `write_str` default.
        assert_eq!(hash_of("ab"), 0xf35c_1011_c045_ae57);
        // usize routes identically to u64 on every architecture.
        assert_eq!(hash_of(7usize), hash_of(7u64));
    }

    #[test]
    fn shard_of_spreads_and_is_stable_across_instances() {
        let a: ShardedKv<u64, u64> = ShardedKv::new(8, Algorithm::Tl2);
        let b: ShardedKv<u64, u64> = ShardedKv::new(8, Algorithm::Norec);
        let mut seen = [false; 8];
        for k in 0..256u64 {
            let s = a.shard_of(&k);
            assert_eq!(s, b.shard_of(&k), "routing must not depend on the instance");
            seen[s] = true;
        }
        assert!(seen.iter().all(|&s| s), "256 keys left a shard empty");
    }
}
