//! The durable serving tier: per-shard write-ahead logs, point-in-time
//! snapshots, and crash recovery for [`ShardedKv`].
//!
//! A [`DurableKv`] wraps a [`ShardedKv`] whose every shard carries one
//! group-committed [`Wal`] (see `ptm_stm::wal` for the commit→log→fsync
//! ordering argument). Each acknowledged operation is **logged before it
//! is acknowledged**: the write set is staged on the shard transaction,
//! the engine appends it to the shard's log *inside* the publish
//! critical section (so log order is commit order), and the ack waits
//! for the group-committed fsync covering that append. Cross-shard
//! transactions stage the **full** record (every participant's ops) on
//! every writing shard, which is what recovery's roll-forward leans on.
//!
//! ## On-disk layout and the era protocol
//!
//! `dir/shard-<i>.wal` is shard `i`'s log; `dir/shard-<i>.snap` its
//! snapshot. `dir/LOCK` is an advisory `flock` guard held for the
//! store's lifetime: recovery and checkpoints truncate logs and replace
//! snapshots, so two processes working the same directory would destroy
//! each other's evidence — the second [`open`](DurableKv::open) fails
//! instead. (The kernel drops the lock when the holder dies, so a
//! SIGKILLed store never wedges the directory.) Snapshots and meta
//! records both carry the shard-routing hasher id alongside the
//! geometry, because shard assignment is itself persisted state: a
//! binary routing keys differently would recover data it can no longer
//! reach, so a mismatch fails the open loudly.
//!
//! The first log record is always a **meta record** (stamp 0,
//! `FLAG_META`) naming the store geometry and the shard's **era** — a
//! monotone incarnation counter bumped by every checkpoint/recovery
//! rebaseline. The rebaseline sequence is: quiesce, write *all* shard
//! snapshots at the new era (atomic tmp+rename each), then truncate
//! *all* logs and stamp them with the new era. Because snapshots always
//! land before log rewrites, a crash anywhere in the window leaves each
//! shard either wholly at the old era or with a new-era snapshot whose
//! state is a superset of its old-era log — so recovery can apply one
//! uniform rule: **a shard's log evidence counts only if its era equals
//! the shard's effective era** (`max(snapshot era, log era)`); stale
//! logs are discarded, already covered by the newer snapshot.
//!
//! The engine's commit stamps order records *within* one era (the WAL
//! stamp is drawn from the shard clock inside the publish window), but
//! clocks restart at process start, so stamps are **not** comparable
//! across eras — the era rule, not stamp comparison, is what fences
//! snapshot contents from log replay. Snapshot files record the highest
//! stamp they absorbed as a watermark for observability.
//!
//! ## Recovery
//!
//! 1. Read every shard's snapshot and log; decode each log to its
//!    **clean prefix** (a torn or bit-flipped tail truncates at the
//!    last intact record — `ptm_stm::wal::codec`), and validate log
//!    eras as above.
//! 2. Load snapshots, then replay each shard's own valid records in
//!    log order (log order is commit order per shard).
//! 3. **Roll forward** cross-shard records: a record durable on shard
//!    `i` but missing from participant `p`'s log (its suffix was lost)
//!    is applied at `p` too, so no transaction is ever half-recovered.
//!    Missing records sort by global transaction id — ids are drawn
//!    while *all* participants' commit locks are held, so id order
//!    matches `p`'s lost commit order — and a record is only rolled
//!    onto `p` if `p`'s era is not newer than the evidence (a newer
//!    snapshot already covers it). Rolled-forward transactions were
//!    never acknowledged (acks wait for *every* participant's fsync),
//!    so recovering them keeps the state a superset of the acked
//!    prefix without breaking atomicity.
//! 4. Rebaseline to `max(eras) + 1`: fresh snapshots of the recovered
//!    state, empty logs. This also makes the restart of the global
//!    transaction-id counter safe — all old evidence is retired.
//!
//! The recovered state is therefore exactly: snapshot state, plus a
//! **prefix-closed** set of logged commits per shard (clean-prefix
//! decode loses only suffixes; group commit flushes in append order),
//! closed under cross-shard atomicity — which contains every
//! acknowledged operation.
//!
//! ## Failure discipline
//!
//! Log I/O errors poison the WAL and every subsequent ack **panics**
//! (fail-stop): a serving process that cannot make operations durable
//! must not keep acknowledging them, and recovery from the on-disk
//! prefix is the correctness path (the PANIC discipline databases use).

use crate::kv::{ServiceConfig, ServiceTx, ShardedKv, SHARD_HASHER_ID};
use ptm_stm::wal::{
    codec, fsync_parent_dir, DurabilityHook, DurableTicket, Wal, WalValue, FLAG_META,
};
use ptm_stm::{Retry, Stm, TxValue};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::fs;
use std::hash::Hash;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Magic prefix of a snapshot file.
const SNAP_MAGIC: &[u8; 4] = b"PSNP";

/// Durability knobs for a [`DurableKv`].
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Geometry and algorithm of the underlying [`ShardedKv`].
    pub service: ServiceConfig,
    /// Directory holding the per-shard logs and snapshots.
    pub dir: PathBuf,
    /// If `true` (the default), every write acknowledgement waits for
    /// the group-committed fsync covering its log record — the full
    /// durability contract. If `false`, writes are logged in memory and
    /// flushed only by batch piggybacking, [`DurableKv::flush`], or a
    /// checkpoint: a crash may lose the unflushed suffix (still a clean
    /// prefix), trading the contract for write latency.
    pub sync_acks: bool,
}

impl DurabilityConfig {
    /// Default service geometry, synchronous acks, logs under `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            service: ServiceConfig::default(),
            dir: dir.into(),
            sync_acks: true,
        }
    }
}

/// What [`DurableKv::open`] found and did; see the module docs for the
/// recovery procedure.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The store's era after the post-recovery rebaseline.
    pub era: u64,
    /// Entries loaded from snapshots across all shards.
    pub snapshot_entries: usize,
    /// Log records replayed onto their own shard.
    pub records_applied: usize,
    /// Cross-shard records applied at a participant whose own log had
    /// lost them (per participant).
    pub rolled_forward: usize,
    /// Logs discarded because their era trailed the shard's snapshot.
    pub stale_logs: usize,
    /// Logs whose tail was torn or corrupt (decoded to a clean prefix).
    pub torn_tails: usize,
}

/// One logged mutation, tagged with its owning shard.
#[derive(Debug, Clone)]
enum LoggedOp<K, V> {
    Put { shard: usize, key: K, value: V },
    Remove { shard: usize, key: K },
}

impl<K, V> LoggedOp<K, V> {
    fn shard(&self) -> usize {
        match self {
            LoggedOp::Put { shard, .. } | LoggedOp::Remove { shard, .. } => *shard,
        }
    }
}

impl<K: WalValue, V: WalValue> LoggedOp<K, V> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            LoggedOp::Put { shard, key, value } => {
                shard.encode_wal(out);
                0u8.encode_wal(out);
                key.encode_wal(out);
                value.encode_wal(out);
            }
            LoggedOp::Remove { shard, key } => {
                shard.encode_wal(out);
                1u8.encode_wal(out);
                key.encode_wal(out);
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Option<Self> {
        let shard = usize::decode_wal(buf)?;
        match u8::decode_wal(buf)? {
            0 => Some(LoggedOp::Put {
                shard,
                key: K::decode_wal(buf)?,
                value: V::decode_wal(buf)?,
            }),
            1 => Some(LoggedOp::Remove {
                shard,
                key: K::decode_wal(buf)?,
            }),
            _ => None,
        }
    }
}

/// `txn_id` then the op list, all [`WalValue`]-framed. Encodes into
/// thread-local scratch so the per-op cost is the one unavoidable
/// `Arc<[u8]>` allocation, not two.
fn encode_ops<K: WalValue, V: WalValue>(txn_id: u64, ops: &[LoggedOp<K, V>]) -> Arc<[u8]> {
    thread_local! {
        static SCRATCH: std::cell::RefCell<Vec<u8>> =
            const { std::cell::RefCell::new(Vec::new()) };
    }
    SCRATCH.with(|cell| {
        let mut out = cell.borrow_mut();
        out.clear();
        txn_id.encode_wal(&mut out);
        ops.len().encode_wal(&mut out);
        for op in ops {
            op.encode(&mut out);
        }
        Arc::from(&out[..])
    })
}

fn decode_ops<K: WalValue, V: WalValue>(mut buf: &[u8]) -> Option<(u64, Vec<LoggedOp<K, V>>)> {
    let txn_id = u64::decode_wal(&mut buf)?;
    let n = usize::decode_wal(&mut buf)?;
    let mut ops = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        ops.push(LoggedOp::decode(&mut buf)?);
    }
    if buf.is_empty() {
        Some((txn_id, ops))
    } else {
        None
    }
}

/// Meta record payload: era, geometry, shard index, routing hasher id.
fn encode_meta(era: u64, shards: usize, shard: usize) -> Vec<u8> {
    let mut out = Vec::new();
    era.encode_wal(&mut out);
    shards.encode_wal(&mut out);
    shard.encode_wal(&mut out);
    SHARD_HASHER_ID.encode_wal(&mut out);
    out
}

fn decode_meta(mut buf: &[u8]) -> Option<(u64, usize, usize, u64)> {
    let era = u64::decode_wal(&mut buf)?;
    let shards = usize::decode_wal(&mut buf)?;
    let shard = usize::decode_wal(&mut buf)?;
    let hasher = u64::decode_wal(&mut buf)?;
    buf.is_empty().then_some((era, shards, shard, hasher))
}

fn wal_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard}.wal"))
}

fn snap_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard}.snap"))
}

fn bad_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// A decoded snapshot file.
struct Snapshot<K, V> {
    era: u64,
    entries: Vec<(K, V)>,
}

/// Reads and validates `dir/shard-<i>.snap`. Absent file → `None`; a
/// present-but-invalid file is a hard error (snapshot writes are atomic
/// via rename, so an invalid file means real corruption or a geometry
/// change — silently dropping it would silently drop data).
fn read_snapshot<K: WalValue, V: WalValue>(
    path: &Path,
    shard: usize,
    shards: usize,
) -> io::Result<Option<Snapshot<K, V>>> {
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let fail = |what: &str| bad_data(format!("snapshot {}: {what}", path.display()));
    if bytes.len() < SNAP_MAGIC.len() + 8 || &bytes[..4] != SNAP_MAGIC {
        return Err(fail("bad magic"));
    }
    let body_len = bytes.len() - 8;
    let mut crc = [0u8; 8];
    crc.copy_from_slice(&bytes[body_len..]);
    if codec::crc64(&bytes[..body_len]) != u64::from_le_bytes(crc) {
        return Err(fail("checksum mismatch"));
    }
    let mut buf = &bytes[4..body_len];
    let mut foreign_hasher = None;
    let mut decode = || -> Option<Snapshot<K, V>> {
        let era = u64::decode_wal(&mut buf)?;
        let got_shards = usize::decode_wal(&mut buf)?;
        let got_shard = usize::decode_wal(&mut buf)?;
        let got_hasher = u64::decode_wal(&mut buf)?;
        if got_hasher != SHARD_HASHER_ID {
            foreign_hasher = Some(got_hasher);
            return None;
        }
        let _watermark = u64::decode_wal(&mut buf)?;
        if got_shards != shards || got_shard != shard {
            return None;
        }
        let n = usize::decode_wal(&mut buf)?;
        let mut entries = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            entries.push((K::decode_wal(&mut buf)?, V::decode_wal(&mut buf)?));
        }
        buf.is_empty().then_some(Snapshot { era, entries })
    };
    match decode() {
        Some(snap) => Ok(Some(snap)),
        None => match foreign_hasher {
            Some(id) => Err(fail(&format!(
                "shard-hasher mismatch: snapshot routed with hasher {id}, this binary uses {SHARD_HASHER_ID}"
            ))),
            None => Err(fail("undecodable or geometry mismatch")),
        },
    }
}

/// Writes a snapshot atomically: tmp file, fsync, rename.
fn write_snapshot<K: WalValue, V: WalValue>(
    path: &Path,
    era: u64,
    shards: usize,
    shard: usize,
    watermark: u64,
    entries: &[(K, V)],
) -> io::Result<()> {
    let mut bytes = SNAP_MAGIC.to_vec();
    era.encode_wal(&mut bytes);
    shards.encode_wal(&mut bytes);
    shard.encode_wal(&mut bytes);
    SHARD_HASHER_ID.encode_wal(&mut bytes);
    watermark.encode_wal(&mut bytes);
    entries.len().encode_wal(&mut bytes);
    for (k, v) in entries {
        k.encode_wal(&mut bytes);
        v.encode_wal(&mut bytes);
    }
    let crc = codec::crc64(&bytes);
    bytes.extend_from_slice(&crc.to_le_bytes());
    let tmp = path.with_extension("snap.tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        io::Write::write_all(&mut f, &bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    // The era protocol needs the snapshot *durably in place* before any
    // log truncation — that's a directory-entry barrier, not a
    // best-effort nicety, so its failure fails the checkpoint.
    fsync_parent_dir(path)?;
    Ok(())
}

/// One parsed shard log: its era and clean-prefix data records.
struct ShardLog<K, V> {
    /// Era from the leading meta record; 0 for a fresh/empty log.
    era: u64,
    records: Vec<(u64, Vec<LoggedOp<K, V>>)>,
}

fn parse_log<K: WalValue, V: WalValue>(
    decoded: codec::Decoded,
    shard: usize,
    shards: usize,
) -> io::Result<ShardLog<K, V>> {
    let fail = |what: String| bad_data(format!("shard {shard} log: {what}"));
    let mut era = 0;
    let mut records = Vec::with_capacity(decoded.records.len());
    for (idx, rec) in decoded.records.iter().enumerate() {
        if rec.is_meta() {
            if idx != 0 {
                return Err(fail(format!("meta record at position {idx}")));
            }
            let (e, got_shards, got_shard, got_hasher) =
                decode_meta(&rec.payload).ok_or_else(|| fail("undecodable meta record".into()))?;
            if got_hasher != SHARD_HASHER_ID {
                return Err(fail(format!(
                    "shard-hasher mismatch: log routed with hasher {got_hasher}, this binary uses {SHARD_HASHER_ID}"
                )));
            }
            if got_shards != shards || got_shard != shard {
                return Err(fail(format!(
                    "geometry mismatch: log is shard {got_shard}/{got_shards}, store wants {shard}/{shards}"
                )));
            }
            era = e;
            continue;
        }
        if idx == 0 {
            return Err(fail("first record is not a meta record".into()));
        }
        let (txn_id, ops) = decode_ops::<K, V>(&rec.payload)
            .ok_or_else(|| fail(format!("undecodable record at position {idx}")))?;
        if ops.iter().any(|op| op.shard() >= shards) {
            return Err(fail(format!("record {idx} targets a nonexistent shard")));
        }
        records.push((txn_id, ops));
    }
    Ok(ShardLog { era, records })
}

/// A durable, crash-recoverable [`ShardedKv`]: write-ahead logged,
/// snapshotted, recovered on [`open`](DurableKv::open).
///
/// # Examples
///
/// ```
/// use ptm_server::{DurabilityConfig, DurableKv};
///
/// let dir = std::env::temp_dir().join(format!("ptm-doc-{}", std::process::id()));
/// let cfg = DurabilityConfig::new(&dir);
///
/// {
///     let kv: DurableKv<u64, u64> = DurableKv::open(cfg.clone()).unwrap();
///     kv.put(1, 10);
///     kv.transact(|tx| {
///         let a = tx.get(&1)?.unwrap_or(0);
///         tx.put(1, a - 5)?;
///         tx.put(2, 5)?;
///         Ok(())
///     });
///     // Acks returned: both writes are on disk. Drop without flushing.
/// }
///
/// // "Restart": recovery rebuilds the store from snapshot + log.
/// let kv: DurableKv<u64, u64> = DurableKv::open(cfg).unwrap();
/// assert_eq!(kv.get(&1), Some(5));
/// assert_eq!(kv.get(&2), Some(5));
/// std::fs::remove_dir_all(&dir).unwrap();
/// ```
pub struct DurableKv<K, V> {
    kv: ShardedKv<K, V>,
    wals: Vec<Arc<Wal>>,
    dir: PathBuf,
    sync_acks: bool,
    era: AtomicU64,
    /// Global transaction-id allocator; ids order cross-shard
    /// roll-forward (drawn while all participants' locks are held).
    next_txn: AtomicU64,
    report: RecoveryReport,
    /// Holds the advisory `flock` on `dir/LOCK` for the store's
    /// lifetime; released on drop (or by the kernel on process death).
    _lock: fs::File,
}

impl<K, V> fmt::Debug for DurableKv<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DurableKv")
            .field("kv", &self.kv)
            .field("dir", &self.dir)
            .field("era", &self.era.load(Ordering::Relaxed))
            .field("sync_acks", &self.sync_acks)
            .finish()
    }
}

impl<K, V> DurableKv<K, V>
where
    K: TxValue + WalValue + Hash + Eq,
    V: TxValue + WalValue,
{
    /// Opens (or creates) the store under `cfg.dir`, running the full
    /// recovery procedure from the module docs; the outcome is readable
    /// via [`recovery_report`](Self::recovery_report).
    ///
    /// # Errors
    ///
    /// I/O failure, a corrupt snapshot, an undecodable intact log
    /// record, a geometry change (different shard count than the
    /// on-disk store), or a shard-hasher mismatch all fail the open —
    /// torn/corrupt log *tails* are expected crash damage and are
    /// truncated, not errors. A directory already locked by a live
    /// store (this process or another) fails with
    /// [`io::ErrorKind::WouldBlock`].
    pub fn open(cfg: DurabilityConfig) -> io::Result<Self> {
        let shards = cfg.service.shards.max(1);
        fs::create_dir_all(&cfg.dir)?;
        // One live store per directory: recovery and checkpoints rewrite
        // logs and snapshots, so a second opener would truncate evidence
        // the first is still producing.
        let lock = fs::OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(cfg.dir.join("LOCK"))?;
        match lock.try_lock() {
            Ok(()) => {}
            Err(fs::TryLockError::WouldBlock) => {
                return Err(io::Error::new(
                    io::ErrorKind::WouldBlock,
                    format!(
                        "store directory {} is locked by another live store",
                        cfg.dir.display()
                    ),
                ));
            }
            Err(fs::TryLockError::Error(e)) => return Err(e),
        }
        let mut report = RecoveryReport::default();

        let mut snaps: Vec<Option<Snapshot<K, V>>> = Vec::with_capacity(shards);
        let mut wals: Vec<Arc<Wal>> = Vec::with_capacity(shards);
        let mut logs: Vec<ShardLog<K, V>> = Vec::with_capacity(shards);
        for i in 0..shards {
            snaps.push(read_snapshot(&snap_path(&cfg.dir, i), i, shards)?);
            let wal = Wal::open(wal_path(&cfg.dir, i))?;
            let decoded = wal.read_records()?;
            if decoded.corruption.is_some() {
                report.torn_tails += 1;
            }
            logs.push(parse_log(decoded, i, shards)?);
            wals.push(Arc::new(wal));
        }

        // Effective era per shard; a log only counts at its shard's era.
        let eras: Vec<u64> = (0..shards)
            .map(|i| logs[i].era.max(snaps[i].as_ref().map_or(0, |s| s.era)))
            .collect();
        let valid: Vec<bool> = (0..shards).map(|i| logs[i].era == eras[i]).collect();
        for i in 0..shards {
            if !valid[i] && !logs[i].records.is_empty() {
                report.stale_logs += 1;
            }
        }

        let kv = ShardedKv::with_hooks(
            ServiceConfig {
                shards,
                ..cfg.service
            },
            |i| Some(Arc::clone(&wals[i]) as Arc<dyn DurabilityHook>),
        );

        // Snapshots first, then own-log replay in log order. Replay
        // transactions stage nothing, so nothing is re-logged.
        let mut max_txn = 0u64;
        for i in 0..shards {
            let (stm, map) = kv.shard_parts(i);
            if let Some(snap) = &snaps[i] {
                report.snapshot_entries += snap.entries.len();
                for (k, v) in &snap.entries {
                    stm.atomically(|tx| map.insert(tx, k.clone(), v.clone()));
                }
            }
            if !valid[i] {
                continue;
            }
            for (txn_id, ops) in &logs[i].records {
                max_txn = max_txn.max(*txn_id);
                stm.atomically(|tx| {
                    for op in ops.iter().filter(|op| op.shard() == i) {
                        match op {
                            LoggedOp::Put { key, value, .. } => {
                                map.insert(tx, key.clone(), value.clone())?;
                            }
                            LoggedOp::Remove { key, .. } => {
                                map.remove(tx, key)?;
                            }
                        }
                    }
                    Ok(())
                });
                report.records_applied += 1;
            }
        }

        // Roll-forward: records durable on one shard but lost from a
        // participant's log suffix, applied at the participant in
        // global-id order (see the module docs for why both the order
        // and the era guard are sound).
        let ids: Vec<HashSet<u64>> = (0..shards)
            .map(|i| {
                if valid[i] {
                    logs[i].records.iter().map(|(id, _)| *id).collect()
                } else {
                    HashSet::new()
                }
            })
            .collect();
        let mut missing: HashMap<(usize, u64), Vec<&LoggedOp<K, V>>> = HashMap::new();
        for i in 0..shards {
            if !valid[i] {
                continue;
            }
            for (txn_id, ops) in &logs[i].records {
                for p in 0..shards {
                    if p == i || eras[p] > eras[i] || ids[p].contains(txn_id) {
                        continue;
                    }
                    let targeted: Vec<&LoggedOp<K, V>> =
                        ops.iter().filter(|op| op.shard() == p).collect();
                    if !targeted.is_empty() {
                        missing.entry((p, *txn_id)).or_insert(targeted);
                    }
                }
            }
        }
        // Key: (participant shard, global txn id).
        type MissingEntry<'ops, K, V> = ((usize, u64), Vec<&'ops LoggedOp<K, V>>);
        let mut missing: Vec<MissingEntry<'_, K, V>> = missing.into_iter().collect();
        missing.sort_by_key(|((_, txn), _)| *txn);
        for ((p, _), ops) in missing {
            let (stm, map) = kv.shard_parts(p);
            stm.atomically(|tx| {
                for op in &ops {
                    match op {
                        LoggedOp::Put { key, value, .. } => {
                            map.insert(tx, key.clone(), value.clone())?;
                        }
                        LoggedOp::Remove { key, .. } => {
                            map.remove(tx, key)?;
                        }
                    }
                }
                Ok(())
            });
            report.rolled_forward += 1;
        }

        let store = DurableKv {
            kv,
            wals,
            dir: cfg.dir,
            sync_acks: cfg.sync_acks,
            era: AtomicU64::new(eras.iter().copied().max().unwrap_or(0)),
            next_txn: AtomicU64::new(max_txn),
            report,
            _lock: lock,
        };
        // Rebaseline: the recovered state becomes the new snapshots,
        // logs restart empty at the next era.
        store.rebaseline()?;
        let mut store = store;
        store.report.era = store.era.load(Ordering::Relaxed);
        Ok(store)
    }

    /// What recovery found and did at [`open`](Self::open).
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.report
    }

    /// The wrapped in-memory store — direct reads bypass no durability
    /// (reads are never logged); direct *writes* through this reference
    /// would bypass the log, so it is read-only.
    pub fn store(&self) -> &ShardedKv<K, V> {
        &self.kv
    }

    /// Blocks until the shard's log has fsynced past `ticket`, then
    /// returns; **panics** on a poisoned log (fail-stop, module docs).
    fn ack(&self, shard: usize, ticket: &DurableTicket) {
        if !self.sync_acks {
            return;
        }
        if let Some(lsn) = ticket.lsn() {
            if let Err(e) = self.wals[shard].wait_durable(lsn) {
                panic!("shard {shard} log failed ({e}); fail-stop: restart and recover");
            }
        }
    }

    /// Reads one key (never logged, never waits).
    pub fn get(&self, key: &K) -> Option<V> {
        self.kv.get(key)
    }

    /// Durably writes one key: committed, logged in commit order, and
    /// (with `sync_acks`) fsynced before this returns.
    pub fn put(&self, key: K, value: V) -> Option<V> {
        let shard = self.kv.shard_of(&key);
        let op = LoggedOp::Put {
            shard,
            key: key.clone(),
            value: value.clone(),
        };
        self.single_shard(shard, op, |stm, map, payload, ticket| {
            stm.atomically(|tx| {
                let prev = map.insert(tx, key.clone(), value.clone())?;
                tx.stage_durable(Arc::clone(payload), ticket);
                Ok(prev)
            })
        })
    }

    /// Durably removes one key.
    pub fn remove(&self, key: &K) -> Option<V> {
        let shard = self.kv.shard_of(key);
        let op = LoggedOp::Remove {
            shard,
            key: key.clone(),
        };
        self.single_shard(shard, op, |stm, map, payload, ticket| {
            stm.atomically(|tx| {
                let prev = map.remove(tx, key)?;
                tx.stage_durable(Arc::clone(payload), ticket);
                Ok(prev)
            })
        })
    }

    fn single_shard<T>(
        &self,
        shard: usize,
        op: LoggedOp<K, V>,
        run: impl FnOnce(&Stm, &ptm_structs::THashMap<K, V>, &Arc<[u8]>, &DurableTicket) -> T,
    ) -> T {
        // One ticket per thread, reset per op: the previous op on this
        // thread was acked before we got here, so its slot is free.
        thread_local! {
            static TICKET: DurableTicket = DurableTicket::new();
        }
        let txn_id = self.next_txn.fetch_add(1, Ordering::Relaxed) + 1;
        let payload = encode_ops(txn_id, std::slice::from_ref(&op));
        TICKET.with(|ticket| {
            ticket.reset();
            let (stm, map) = self.kv.shard_parts(shard);
            let out = run(stm, map, &payload, ticket);
            self.ack(shard, ticket);
            out
        })
    }

    /// A consistent (cross-shard serialized) snapshot of every entry.
    pub fn scan(&self) -> Vec<(K, V)> {
        self.kv.scan()
    }

    /// Runs `body` as one atomic cross-shard transaction, durably: the
    /// full write set is logged on **every** shard it writes (inside
    /// the ordered 2PC's publish window, all locks held) and the return
    /// waits for every participant's fsync. See
    /// [`ShardedKv::transact`] for the transaction semantics.
    pub fn transact<T>(
        &self,
        mut body: impl FnMut(&mut DurableTx<'_, K, V>) -> Result<T, Retry>,
    ) -> T {
        let mut attempt = 0u64;
        loop {
            let mut dtx = DurableTx {
                store: self,
                inner: ServiceTx::begin(&self.kv),
                ops: Vec::new(),
            };
            match body(&mut dtx) {
                Ok(out) => {
                    let DurableTx { inner, ops, .. } = dtx;
                    let mut tickets: Vec<(usize, DurableTicket)> = Vec::new();
                    let committed = inner.commit_with(|prepared| {
                        if ops.is_empty() {
                            return;
                        }
                        // All prepares hold: the commit cannot fail and
                        // every participant's locks are ours, so the id
                        // drawn here is conflict-ordered on each shard.
                        let txn_id = self.next_txn.fetch_add(1, Ordering::Relaxed) + 1;
                        let payload = encode_ops(txn_id, &ops);
                        let writers: HashSet<usize> = ops.iter().map(|op| op.shard()).collect();
                        for (shard, tx, _) in prepared.iter_mut() {
                            if writers.contains(shard) {
                                let ticket = DurableTicket::new();
                                tx.stage_durable(Arc::clone(&payload), &ticket);
                                tickets.push((*shard, ticket));
                            }
                        }
                    });
                    if committed {
                        for (shard, ticket) in &tickets {
                            self.ack(*shard, ticket);
                        }
                        return out;
                    }
                }
                Err(Retry) => dtx.inner.rollback(),
            }
            attempt += 1;
            if attempt > 3 {
                std::thread::yield_now();
            } else {
                for _ in 0..(1u32 << attempt.min(10)) {
                    std::hint::spin_loop();
                }
            }
        }
    }

    /// Forces every shard's pending log records to disk (useful with
    /// `sync_acks: false` before a graceful shutdown).
    ///
    /// # Errors
    ///
    /// The first shard's I/O error; that log is poisoned (fail-stop).
    pub fn flush(&self) -> io::Result<()> {
        for wal in &self.wals {
            wal.flush()?;
        }
        Ok(())
    }

    /// Checkpoint: snapshot every shard's current state and truncate
    /// every log, bumping the era. **Requires quiescence** — the caller
    /// must guarantee no concurrent transactions for the duration (the
    /// snapshot-then-truncate window has no internal synchronization
    /// against writers; a record committed mid-checkpoint could land in
    /// a log about to be truncated). `&mut self` enforces exclusivity
    /// against everything borrowing the store.
    ///
    /// # Errors
    ///
    /// Snapshot or log I/O failure; the store remains recoverable (the
    /// old-era rule covers every crash window, and a failed open leaves
    /// disk state untouched for a retry).
    pub fn checkpoint(&mut self) -> io::Result<()> {
        self.rebaseline()
    }

    /// Snapshot-all then truncate-all at `era + 1`; the ordering (all
    /// snapshots durable before any log rewrite) is what the recovery
    /// era rule relies on.
    fn rebaseline(&self) -> io::Result<()> {
        let shards = self.kv.shard_count();
        let era = self.era.load(Ordering::Relaxed) + 1;
        let mut watermarks = Vec::with_capacity(shards);
        for (i, wal) in self.wals.iter().enumerate() {
            wal.flush()?;
            let decoded = wal.read_records()?;
            watermarks.push(
                decoded
                    .records
                    .iter()
                    .filter(|r| !r.is_meta())
                    .map(|r| r.stamp)
                    .max()
                    .unwrap_or(0),
            );
            let entries = self.kv.transact(|tx| tx.shard_snapshot(i));
            write_snapshot(
                &snap_path(&self.dir, i),
                era,
                shards,
                i,
                watermarks[i],
                &entries,
            )?;
        }
        for (i, wal) in self.wals.iter().enumerate() {
            wal.rewrite(|_| false)?;
            wal.append(0, FLAG_META, &encode_meta(era, shards, i));
            wal.flush()?;
        }
        self.era.store(era, Ordering::Relaxed);
        Ok(())
    }
}

/// One in-flight durable cross-shard transaction: a [`ServiceTx`] plus
/// the journal of mutations that becomes the WAL record at commit.
pub struct DurableTx<'kv, K, V> {
    store: &'kv DurableKv<K, V>,
    inner: ServiceTx<'kv, K, V>,
    ops: Vec<LoggedOp<K, V>>,
}

impl<K, V> fmt::Debug for DurableTx<'_, K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DurableTx")
            .field("inner", &self.inner)
            .field("journaled_ops", &self.ops.len())
            .finish()
    }
}

impl<K, V> DurableTx<'_, K, V>
where
    K: TxValue + WalValue + Hash + Eq,
    V: TxValue + WalValue,
{
    /// Reads `key` within the transaction (not journaled).
    ///
    /// # Errors
    ///
    /// [`Retry`] on a shard-level conflict; the coordinator re-runs.
    pub fn get(&mut self, key: &K) -> Result<Option<V>, Retry> {
        self.inner.get(key)
    }

    /// Writes `key` within the transaction; journaled for the WAL.
    ///
    /// # Errors
    ///
    /// [`Retry`] on a shard-level conflict; the coordinator re-runs.
    pub fn put(&mut self, key: K, value: V) -> Result<Option<V>, Retry> {
        let shard = self.store.kv.shard_of(&key);
        let prev = self.inner.put(key.clone(), value.clone())?;
        self.ops.push(LoggedOp::Put { shard, key, value });
        Ok(prev)
    }

    /// Removes `key` within the transaction; journaled for the WAL.
    ///
    /// # Errors
    ///
    /// [`Retry`] on a shard-level conflict; the coordinator re-runs.
    pub fn remove(&mut self, key: &K) -> Result<Option<V>, Retry> {
        let shard = self.store.kv.shard_of(key);
        let prev = self.inner.remove(key)?;
        self.ops.push(LoggedOp::Remove {
            shard,
            key: key.clone(),
        });
        Ok(prev)
    }

    /// Every entry of one shard, read into the transaction's footprint.
    ///
    /// # Errors
    ///
    /// [`Retry`] on a shard-level conflict; the coordinator re-runs.
    pub fn shard_snapshot(&mut self, shard: usize) -> Result<Vec<(K, V)>, Retry> {
        self.inner.shard_snapshot(shard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptm_stm::Algorithm;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ptm-dur-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn cfg(dir: &Path, algorithm: Algorithm) -> DurabilityConfig {
        DurabilityConfig {
            service: ServiceConfig {
                shards: 4,
                algorithm,
                buckets_per_shard: 32,
                adaptive: None,
            },
            dir: dir.to_path_buf(),
            sync_acks: true,
        }
    }

    #[test]
    fn ops_roundtrip_through_the_codec() {
        let ops: Vec<LoggedOp<u64, u64>> = vec![
            LoggedOp::Put {
                shard: 2,
                key: 7,
                value: 9,
            },
            LoggedOp::Remove { shard: 0, key: 3 },
        ];
        let payload = encode_ops(41, &ops);
        let (txn, back) = decode_ops::<u64, u64>(&payload).unwrap();
        assert_eq!(txn, 41);
        assert_eq!(back.len(), 2);
        assert!(matches!(
            back[0],
            LoggedOp::Put {
                shard: 2,
                key: 7,
                value: 9
            }
        ));
        assert!(decode_ops::<u64, u64>(&payload[..payload.len() - 1]).is_none());
    }

    #[test]
    fn basic_put_survives_reopen() {
        let dir = temp_dir("basic");
        for algorithm in Algorithm::ALL {
            let _ = fs::remove_dir_all(&dir);
            {
                let kv: DurableKv<u64, u64> = DurableKv::open(cfg(&dir, algorithm)).unwrap();
                for k in 0..32u64 {
                    kv.put(k, k * 10);
                }
                kv.remove(&31);
            }
            let kv: DurableKv<u64, u64> = DurableKv::open(cfg(&dir, algorithm)).unwrap();
            for k in 0..31u64 {
                assert_eq!(kv.get(&k), Some(k * 10), "{algorithm:?} key {k}");
            }
            assert_eq!(kv.get(&31), None);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn cross_shard_transact_survives_reopen() {
        let dir = temp_dir("xshard");
        {
            let kv: DurableKv<u64, u64> = DurableKv::open(cfg(&dir, Algorithm::Tl2)).unwrap();
            for k in 0..16u64 {
                kv.put(k, 100);
            }
            for i in 0..50u64 {
                kv.transact(|tx| {
                    let a = tx.get(&(i % 16))?.unwrap_or(0);
                    let b = tx.get(&((i + 5) % 16))?.unwrap_or(0);
                    tx.put(i % 16, a.saturating_sub(1))?;
                    tx.put((i + 5) % 16, b + a.min(1))?;
                    Ok(())
                });
            }
        }
        let kv: DurableKv<u64, u64> = DurableKv::open(cfg(&dir, Algorithm::Tl2)).unwrap();
        let total: u64 = kv.scan().into_iter().map(|(_, v)| v).sum();
        assert_eq!(total, 1600);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_truncates_and_recovery_uses_the_snapshot() {
        let dir = temp_dir("ckpt");
        {
            let mut kv: DurableKv<u64, u64> = DurableKv::open(cfg(&dir, Algorithm::Norec)).unwrap();
            for k in 0..64u64 {
                kv.put(k, k);
            }
            kv.checkpoint().unwrap();
            kv.put(64, 64);
        }
        let kv: DurableKv<u64, u64> = DurableKv::open(cfg(&dir, Algorithm::Norec)).unwrap();
        let report = kv.recovery_report();
        assert_eq!(report.snapshot_entries, 64, "{report:?}");
        assert_eq!(report.records_applied, 1, "{report:?}");
        assert_eq!(kv.get(&64), Some(64));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unsynced_acks_lose_only_a_suffix() {
        let dir = temp_dir("nosync");
        {
            let mut c = cfg(&dir, Algorithm::Tl2);
            c.sync_acks = false;
            let kv: DurableKv<u64, u64> = DurableKv::open(c).unwrap();
            for k in 0..8u64 {
                kv.put(k, 1);
            }
            // Dropped without flush: the in-memory batch is lost, which
            // is exactly the contract sync_acks=false trades away.
        }
        let kv: DurableKv<u64, u64> = DurableKv::open(cfg(&dir, Algorithm::Tl2)).unwrap();
        // Whatever survived is a prefix: no key k present without all
        // keys written before it (single-threaded writer).
        let present: Vec<bool> = (0..8u64).map(|k| kv.get(&k).is_some()).collect();
        let first_gap = present.iter().position(|p| !p).unwrap_or(8);
        assert!(
            present[first_gap..].iter().all(|p| !p),
            "non-prefix survival: {present:?}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn second_open_of_a_live_store_is_refused() {
        let dir = temp_dir("lock");
        let kv: DurableKv<u64, u64> = DurableKv::open(cfg(&dir, Algorithm::Tl2)).unwrap();
        kv.put(1, 1);
        let err = DurableKv::<u64, u64>::open(cfg(&dir, Algorithm::Tl2)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock, "{err}");
        drop(kv);
        // Dropping the store releases the flock; the directory is
        // reusable without any manual cleanup.
        let kv: DurableKv<u64, u64> = DurableKv::open(cfg(&dir, Algorithm::Tl2)).unwrap();
        assert_eq!(kv.get(&1), Some(1));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_shard_hasher_is_rejected() {
        let dir = temp_dir("hasher");
        fs::create_dir_all(&dir).unwrap();
        // A well-formed snapshot whose geometry names a routing hasher
        // this binary doesn't implement.
        let mut bytes = SNAP_MAGIC.to_vec();
        1u64.encode_wal(&mut bytes); // era
        4usize.encode_wal(&mut bytes); // shards
        0usize.encode_wal(&mut bytes); // shard
        (SHARD_HASHER_ID + 1).encode_wal(&mut bytes); // foreign hasher
        0u64.encode_wal(&mut bytes); // watermark
        0usize.encode_wal(&mut bytes); // entries
        let crc = codec::crc64(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        fs::write(snap_path(&dir, 0), bytes).unwrap();
        let err = DurableKv::<u64, u64>::open(cfg(&dir, Algorithm::Tl2)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("hasher"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn geometry_change_is_rejected() {
        let dir = temp_dir("geom");
        {
            let kv: DurableKv<u64, u64> = DurableKv::open(cfg(&dir, Algorithm::Tl2)).unwrap();
            kv.put(1, 1);
        }
        let mut c = cfg(&dir, Algorithm::Tl2);
        c.service.shards = 8;
        let err = DurableKv::<u64, u64>::open(c).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = fs::remove_dir_all(&dir);
    }
}
