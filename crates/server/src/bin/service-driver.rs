//! Interactive driver for the sharded KV service: one configurable
//! YCSB-style run, human-readable output (throughput, p50/p99, per-shard
//! STM counters, and — for `--algo adaptive` — the controller's mode
//! transitions and each shard's resting mode). The committed-baseline
//! JSON family lives in `ptm-bench`'s `service-bench` binary; this one
//! is for exploring a single configuration by hand.
//!
//! ```text
//! service-driver [--shards N] [--algo NAME] [--threads N] [--keys N]
//!                [--theta F] [--ops N] [--mix R,W,S,M] [--span N]
//!                [--window-commits N] [--hysteresis N] [--scan-reads F]
//!                [--write-ratio F] [--read-ratio F]
//! ```
//!
//! The second line tunes the adaptive controller (`AdaptiveConfig`):
//! sampling window size, hysteresis windows, the scan-length threshold
//! that routes to multiversion mode, and the read/write-ratio thresholds
//! for the visible/invisible decision. They only take effect with
//! `--algo adaptive`.

use ptm_server::{preload, run_workload, Mix, ServiceConfig, ShardedKv, Workload, WorkloadConfig};
use ptm_stm::{AdaptiveConfig, Algorithm};

fn algo_by_name(name: &str) -> Algorithm {
    match name {
        "tl2" => Algorithm::Tl2,
        "incremental" => Algorithm::Incremental,
        "norec" => Algorithm::Norec,
        "tlrw" => Algorithm::Tlrw,
        "mv" => Algorithm::Mv,
        "adaptive" => Algorithm::Adaptive,
        other => panic!("unknown algorithm {other:?} (tl2|incremental|norec|tlrw|mv|adaptive)"),
    }
}

fn main() {
    let mut shards = 4usize;
    let mut algo = Algorithm::Tl2;
    let mut threads = 4usize;
    let mut keys = 4096u64;
    let mut theta = 0.99f64;
    let mut ops = 50_000u64;
    let mut mix = Mix::UPDATE_HEAVY;
    let mut span = 2usize;
    let mut acfg = AdaptiveConfig::default();
    let mut tuned = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{} needs a value", args[i]))
        };
        match args[i].as_str() {
            "--shards" => shards = value(i).parse().expect("--shards"),
            "--algo" => algo = algo_by_name(value(i)),
            "--threads" => threads = value(i).parse().expect("--threads"),
            "--keys" => keys = value(i).parse().expect("--keys"),
            "--theta" => theta = value(i).parse().expect("--theta"),
            "--ops" => ops = value(i).parse().expect("--ops"),
            "--span" => span = value(i).parse().expect("--span"),
            "--window-commits" => {
                acfg.window_commits = value(i).parse().expect("--window-commits");
                tuned = true;
            }
            "--hysteresis" => {
                acfg.hysteresis_windows = value(i).parse().expect("--hysteresis");
                tuned = true;
            }
            "--scan-reads" => {
                acfg.mv_scan_reads = value(i).parse().expect("--scan-reads");
                tuned = true;
            }
            "--write-ratio" => {
                acfg.write_ratio_visible = value(i).parse().expect("--write-ratio");
                tuned = true;
            }
            "--read-ratio" => {
                acfg.read_ratio_invisible = value(i).parse().expect("--read-ratio");
                tuned = true;
            }
            "--mix" => {
                let parts: Vec<u32> = value(i)
                    .split(',')
                    .map(|p| p.parse().expect("--mix R,W,S,M"))
                    .collect();
                assert_eq!(parts.len(), 4, "--mix wants R,W,S,M");
                mix = Mix {
                    read: parts[0],
                    write: parts[1],
                    scan: parts[2],
                    multi: parts[3],
                };
            }
            other => panic!("unknown flag {other:?}"),
        }
        i += 2;
    }
    if tuned && algo != Algorithm::Adaptive {
        eprintln!("note: controller flags only take effect with --algo adaptive");
    }

    let kv = ShardedKv::with_config(ServiceConfig {
        shards,
        algorithm: algo,
        adaptive: Some(acfg),
        ..ServiceConfig::default()
    });
    preload(&kv, keys, 100);
    let workload = Workload::new(WorkloadConfig {
        keys,
        zipf_theta: theta,
        mix,
        multi_span: span,
    });
    let mut stats = run_workload(&kv, &workload, threads, ops, 0x5eed);

    println!(
        "service: {algo:?} × {shards} shards, {threads} threads, {keys} keys (θ={theta}), \
         mix r/w/s/m = {}/{}/{}/{}",
        mix.read, mix.write, mix.scan, mix.multi
    );
    println!(
        "  {:.0} ops/s  ({} ops in {:.1} ms; {} reads, {} writes, {} scans, {} multis)",
        stats.ops_per_sec(),
        stats.ops,
        stats.nanos as f64 / 1e6,
        stats.reads,
        stats.writes,
        stats.scans,
        stats.multis,
    );
    println!(
        "  latency p50 = {} ns, p99 = {} ns",
        stats.latencies.percentile(50.0),
        stats.latencies.percentile(99.0),
    );
    let mut transitions = 0u64;
    let mut modes = Vec::new();
    for s in 0..kv.shard_count() {
        let snap = kv.shard_stats(s).snapshot();
        transitions += snap.mode_transitions;
        modes.push(snap.active_mode.to_string());
        println!("  shard {s}: {snap}");
    }
    println!(
        "  modes: {transitions} transitions; per shard = {}",
        modes.join(", ")
    );
}
