//! Interactive driver for the sharded KV service: one configurable
//! YCSB-style run, human-readable output (throughput, p50/p99, per-shard
//! STM counters). The committed-baseline JSON family lives in
//! `ptm-bench`'s `service-bench` binary; this one is for exploring a
//! single configuration by hand.
//!
//! ```text
//! service-driver [--shards N] [--algo NAME] [--threads N] [--keys N]
//!                [--theta F] [--ops N] [--mix R,W,S,M] [--span N]
//! ```

use ptm_server::{preload, run_workload, Mix, ShardedKv, Workload, WorkloadConfig};
use ptm_stm::Algorithm;

fn algo_by_name(name: &str) -> Algorithm {
    match name {
        "tl2" => Algorithm::Tl2,
        "incremental" => Algorithm::Incremental,
        "norec" => Algorithm::Norec,
        "tlrw" => Algorithm::Tlrw,
        "mv" => Algorithm::Mv,
        "adaptive" => Algorithm::Adaptive,
        other => panic!("unknown algorithm {other:?} (tl2|incremental|norec|tlrw|mv|adaptive)"),
    }
}

fn main() {
    let mut shards = 4usize;
    let mut algo = Algorithm::Tl2;
    let mut threads = 4usize;
    let mut keys = 4096u64;
    let mut theta = 0.99f64;
    let mut ops = 50_000u64;
    let mut mix = Mix::UPDATE_HEAVY;
    let mut span = 2usize;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{} needs a value", args[i]))
        };
        match args[i].as_str() {
            "--shards" => shards = value(i).parse().expect("--shards"),
            "--algo" => algo = algo_by_name(value(i)),
            "--threads" => threads = value(i).parse().expect("--threads"),
            "--keys" => keys = value(i).parse().expect("--keys"),
            "--theta" => theta = value(i).parse().expect("--theta"),
            "--ops" => ops = value(i).parse().expect("--ops"),
            "--span" => span = value(i).parse().expect("--span"),
            "--mix" => {
                let parts: Vec<u32> = value(i)
                    .split(',')
                    .map(|p| p.parse().expect("--mix R,W,S,M"))
                    .collect();
                assert_eq!(parts.len(), 4, "--mix wants R,W,S,M");
                mix = Mix {
                    read: parts[0],
                    write: parts[1],
                    scan: parts[2],
                    multi: parts[3],
                };
            }
            other => panic!("unknown flag {other:?}"),
        }
        i += 2;
    }

    let kv = ShardedKv::new(shards, algo);
    preload(&kv, keys, 100);
    let workload = Workload::new(WorkloadConfig {
        keys,
        zipf_theta: theta,
        mix,
        multi_span: span,
    });
    let mut stats = run_workload(&kv, &workload, threads, ops, 0x5eed);

    println!(
        "service: {algo:?} × {shards} shards, {threads} threads, {keys} keys (θ={theta}), \
         mix r/w/s/m = {}/{}/{}/{}",
        mix.read, mix.write, mix.scan, mix.multi
    );
    println!(
        "  {:.0} ops/s  ({} ops in {:.1} ms; {} reads, {} writes, {} scans, {} multis)",
        stats.ops_per_sec(),
        stats.ops,
        stats.nanos as f64 / 1e6,
        stats.reads,
        stats.writes,
        stats.scans,
        stats.multis,
    );
    println!(
        "  latency p50 = {} ns, p99 = {} ns",
        stats.latencies.percentile(50.0),
        stats.latencies.percentile(99.0),
    );
    for s in 0..kv.shard_count() {
        println!("  shard {s}: {}", kv.shard_stats(s).snapshot());
    }
}
