//! Crash-test child: a durable writer the harness SIGKILLs mid-stream.
//!
//! Usage: `crash-child <dir> <algorithm> <single|multi> <max_ops>`
//!
//! Opens a [`DurableKv`] under `<dir>` and performs a deterministic
//! acknowledged write stream, **one op per `go` line on stdin**,
//! printing one line per **acknowledged** operation (each ack line is
//! printed only after the store's fsync wait returned, so every printed
//! op is durable by contract). The stdin gating is what bounds the
//! harness's uncertainty: with `N + 1` gos fed, at most op `N + 1` can
//! be in flight when the SIGKILL lands. The parent reads `N` acks,
//! kills this process, then recovers the directory and checks the
//! recovered state against the acked prefix.
//!
//! * `single`: op `i` is `put(i % 16, i)` on one shard; line `ack i`.
//! * `multi`: preload 16 keys with 1000 (then line `ready`), then
//!   transfer `i` atomically moves 1 between two derived keys *and*
//!   writes `i` into a counter key — a cross-shard transaction whose
//!   counter value lets the parent reconstruct the exact committed
//!   prefix; line `ack i`.

use ptm_server::{DurabilityConfig, DurableKv, ServiceConfig};
use ptm_stm::Algorithm;
use std::io::Write;

/// Keys in play; the counter key for `multi` mode lives far outside.
const KEYS: u64 = 16;
/// The `multi` counter key.
const CTR: u64 = 1_000_000;

fn parse_algorithm(s: &str) -> Algorithm {
    match s {
        "tl2" => Algorithm::Tl2,
        "incremental" => Algorithm::Incremental,
        "norec" => Algorithm::Norec,
        "tlrw" => Algorithm::Tlrw,
        "mv" => Algorithm::Mv,
        "adaptive" => Algorithm::Adaptive,
        other => panic!("unknown algorithm {other:?}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let [_, dir, algorithm, mode, max_ops] = &args[..] else {
        eprintln!("usage: crash-child <dir> <algorithm> <single|multi> <max_ops>");
        std::process::exit(2);
    };
    let algorithm = parse_algorithm(algorithm);
    let max_ops: u64 = max_ops.parse().expect("max_ops");
    let kv: DurableKv<u64, u64> = DurableKv::open(DurabilityConfig {
        service: ServiceConfig {
            shards: 4,
            algorithm,
            buckets_per_shard: 32,
            adaptive: None,
        },
        dir: dir.into(),
        sync_acks: true,
    })
    .expect("open durable store");

    let out = std::io::stdout();
    let mut out = out.lock();
    // The pipe to the parent is block-buffered; every line must be
    // flushed before the parent can count it as an ack boundary.
    let mut say = |line: String| {
        writeln!(out, "{line}").expect("write ack");
        out.flush().expect("flush ack");
    };
    let stdin = std::io::stdin();
    let mut gos = std::io::BufRead::lines(stdin.lock());
    // Blocks until the parent grants the next op; `false` (EOF) ends
    // the stream gracefully.
    let mut granted = move || matches!(gos.next(), Some(Ok(_)));

    match mode.as_str() {
        "single" => {
            for i in 1..=max_ops {
                if !granted() {
                    break;
                }
                kv.put(i % KEYS, i);
                say(format!("ack {i}"));
            }
        }
        "multi" => {
            for k in 0..KEYS {
                kv.put(k, 1000);
            }
            say("ready".to_string());
            for i in 1..=max_ops {
                if !granted() {
                    break;
                }
                let from = i % KEYS;
                let to = (from + 1 + (i % (KEYS - 1))) % KEYS;
                kv.transact(|tx| {
                    let a = tx.get(&from)?.unwrap_or(0);
                    let b = tx.get(&to)?.unwrap_or(0);
                    let moved = a.min(1);
                    tx.put(from, a - moved)?;
                    tx.put(to, b + moved)?;
                    tx.put(CTR, i)?;
                    Ok(())
                });
                say(format!("ack {i}"));
            }
        }
        other => panic!("unknown mode {other:?}"),
    }
}
