//! The kill-at-every-boundary crash harness (the PR's headline test).
//!
//! A child process (`crash-child`) performs a deterministic stream of
//! **acknowledged** durable operations against a store directory, one
//! op per `go` line on its stdin, one flushed `ack` line per completed
//! op (printed only after the store's fsync wait returned). The harness
//! feeds it `kill_after + 1` gos, reads exactly `kill_after` acks, and
//! SIGKILLs it — so the kill lands somewhere inside op `kill_after + 1`
//! (mid-commit, mid-WAL-append, mid-fsync, between fsync and ack...),
//! and the set of operations beyond the acked prefix is known to be at
//! most that one in-flight op. Recovery must then produce a state that
//! is **exactly** the acked prefix plus optionally the one in-flight
//! operation, atomically — checked for every algorithm, for a
//! single-shard stream and for cross-shard 2PC transfers, at every ack
//! boundary in the matrix.
//!
//! The cross-shard check is exact, not just an invariant: each transfer
//! also writes its index into a counter key inside the same
//! transaction, so the recovered counter names the committed prefix and
//! the harness replays it against a model to predict every balance.

use ptm_server::{DurabilityConfig, DurableKv, ServiceConfig};
use ptm_stm::Algorithm;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

const KEYS: u64 = 16;
const CTR: u64 = 1_000_000;

const ALGOS: [(&str, Algorithm); 6] = [
    ("tl2", Algorithm::Tl2),
    ("incremental", Algorithm::Incremental),
    ("norec", Algorithm::Norec),
    ("tlrw", Algorithm::Tlrw),
    ("mv", Algorithm::Mv),
    ("adaptive", Algorithm::Adaptive),
];

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ptm-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open_store(dir: &Path, algorithm: Algorithm) -> DurableKv<u64, u64> {
    DurableKv::open(DurabilityConfig {
        service: ServiceConfig {
            shards: 4,
            algorithm,
            buckets_per_shard: 32,
            adaptive: None,
        },
        dir: dir.to_path_buf(),
        sync_acks: true,
    })
    .expect("recovery must succeed after a crash")
}

/// Runs the child until `kill_after` acks, then SIGKILLs it. Returns
/// the number of acks actually read (equals `kill_after` unless the
/// child finished its whole stream first).
fn run_killed(dir: &Path, algo: &str, mode: &str, max_ops: u64, kill_after: u64) -> u64 {
    let mut child = Command::new(env!("CARGO_BIN_EXE_crash-child"))
        .arg(dir)
        .arg(algo)
        .arg(mode)
        .arg(max_ops.to_string())
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn crash-child");
    // One extra `go`: the child is inside (or just past) op
    // kill_after + 1 when the kill lands, never further.
    let mut stdin = child.stdin.take().expect("child stdin");
    stdin
        .write_all("go\n".repeat((kill_after + 1) as usize).as_bytes())
        .and_then(|()| stdin.flush())
        .expect("feed gos");
    let mut lines = BufReader::new(child.stdout.take().expect("child stdout")).lines();
    if mode == "multi" {
        // Wait out the (ungated) preload.
        loop {
            match lines.next() {
                Some(Ok(l)) if l == "ready" => break,
                Some(Ok(_)) => {}
                other => panic!("child died before ready: {other:?}"),
            }
        }
    }
    let mut acked = 0u64;
    while acked < kill_after {
        match lines.next() {
            Some(Ok(l)) if l.starts_with("ack ") => acked += 1,
            Some(Ok(_)) => {}
            // Stream end: the child completed all max_ops and exited.
            _ => break,
        }
    }
    let _ = child.kill();
    let _ = child.wait();
    acked
}

/// Single-shard stream: op `i` was `put(i % KEYS, i)`. The recovered
/// value of key `k` must be the last acked op for `k`, or the one
/// in-flight op if that targeted `k` — nothing else, and absent only
/// if no acked op ever wrote `k`.
fn verify_single(dir: &Path, algorithm: Algorithm, acked: u64, max_ops: u64) {
    let kv = open_store(dir, algorithm);
    let inflight = (acked < max_ops).then_some(acked + 1);
    for k in 0..KEYS {
        let last_acked = (1..=acked).rev().find(|i| i % KEYS == k);
        let inflight_k = inflight.filter(|i| i % KEYS == k);
        match kv.get(&k) {
            None => assert!(
                last_acked.is_none(),
                "{algorithm:?} kill@{acked}: key {k} lost acked op {last_acked:?}"
            ),
            Some(v) => assert!(
                Some(v) == last_acked || Some(v) == inflight_k,
                "{algorithm:?} kill@{acked}: key {k} = {v}, want {last_acked:?} or {inflight_k:?}"
            ),
        }
    }
}

/// Cross-shard stream: replay the committed prefix (named by the
/// recovered counter) through a model and demand every balance match —
/// a half-applied transfer or a torn counter/balance pair fails here.
fn verify_multi(dir: &Path, algorithm: Algorithm, acked: u64, max_ops: u64) {
    let kv = open_store(dir, algorithm);
    let ctr = kv.get(&CTR).unwrap_or(0);
    assert!(
        ctr == acked || (ctr == acked + 1 && ctr <= max_ops),
        "{algorithm:?} kill@{acked}: counter {ctr} outside [acked, acked+1]"
    );
    let mut bal = [1000u64; KEYS as usize];
    for i in 1..=ctr {
        let from = (i % KEYS) as usize;
        let to = ((i % KEYS + 1 + (i % (KEYS - 1))) % KEYS) as usize;
        let moved = bal[from].min(1);
        bal[from] -= moved;
        bal[to] += moved;
    }
    for (k, want) in bal.iter().enumerate() {
        assert_eq!(
            kv.get(&(k as u64)),
            Some(*want),
            "{algorithm:?} kill@{acked}: balance {k} diverges from the committed prefix {ctr}"
        );
    }
    let total: u64 = kv
        .scan()
        .into_iter()
        .filter(|(k, _)| *k < KEYS)
        .map(|(_, v)| v)
        .sum();
    assert_eq!(total, KEYS * 1000, "{algorithm:?} kill@{acked}: sum torn");
}

#[test]
fn kill_at_every_ack_boundary_single_shard() {
    let max_ops = 32;
    for (name, algorithm) in ALGOS {
        for kill_after in (0..=10).chain([14, 19, max_ops]) {
            let dir = temp_dir(&format!("s-{name}-{kill_after}"));
            let acked = run_killed(&dir, name, "single", max_ops, kill_after);
            assert_eq!(acked, kill_after.min(max_ops), "{name} kill@{kill_after}");
            verify_single(&dir, algorithm, acked, max_ops);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn kill_at_every_ack_boundary_cross_shard() {
    let max_ops = 24;
    for (name, algorithm) in ALGOS {
        for kill_after in (0..=8).chain([12, max_ops]) {
            let dir = temp_dir(&format!("m-{name}-{kill_after}"));
            let acked = run_killed(&dir, name, "multi", max_ops, kill_after);
            assert_eq!(acked, kill_after.min(max_ops), "{name} kill@{kill_after}");
            verify_multi(&dir, algorithm, acked, max_ops);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// A killed store must stay recoverable through *repeated* crashes:
/// crash, recover, crash again mid-stream, recover again — eras fence
/// each incarnation's log evidence.
#[test]
fn repeated_crashes_keep_recovering() {
    let max_ops = 16;
    let dir = temp_dir("repeat");
    let mut acked_total = 0u64;
    for round in 0..3u64 {
        let kill_after = 3 + round;
        let dir2 = dir.join("store");
        let acked = run_killed(&dir2, "tl2", "single", max_ops, kill_after);
        assert_eq!(acked, kill_after);
        acked_total = acked_total.max(acked);
        // Each round's child recovers the previous round's crash on
        // open, then overwrites keys with its own stream; verify the
        // final round's prefix.
        verify_single(&dir2, Algorithm::Tl2, acked, max_ops);
    }
    assert!(acked_total >= 5);
    let _ = std::fs::remove_dir_all(&dir);
}
