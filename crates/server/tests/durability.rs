//! Recovery robustness: determinism of recovery, and file-level fault
//! injection (truncations and bit flips) against the clean-prefix
//! contract — values may be lost from the tail, never invented or
//! reordered.

use ptm_server::{DurabilityConfig, DurableKv, ServiceConfig};
use ptm_stm::Algorithm;
use std::fs;
use std::path::{Path, PathBuf};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ptm-durab-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn cfg(dir: &Path, algorithm: Algorithm) -> DurabilityConfig {
    DurabilityConfig {
        service: ServiceConfig {
            shards: 4,
            algorithm,
            buckets_per_shard: 32,
            adaptive: None,
        },
        dir: dir.to_path_buf(),
        sync_acks: true,
    }
}

fn copy_dir(src: &Path, dst: &Path) {
    fs::create_dir_all(dst).unwrap();
    for entry in fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

fn sorted_scan(kv: &DurableKv<u64, u64>) -> Vec<(u64, u64)> {
    let mut scan = kv.scan();
    scan.sort_unstable();
    scan
}

/// Seeds a store with single-key puts and cross-shard transfers, then
/// drops it mid-stream (no checkpoint), leaving a log-heavy directory.
fn seed(dir: &Path, algorithm: Algorithm) {
    let kv: DurableKv<u64, u64> = DurableKv::open(cfg(dir, algorithm)).unwrap();
    for k in 0..24u64 {
        kv.put(k, 1000 + k);
    }
    for i in 0..12u64 {
        kv.transact(|tx| {
            let a = tx.get(&(i % 24))?.unwrap_or(0);
            let b = tx.get(&((i + 9) % 24))?.unwrap_or(0);
            tx.put(i % 24, a - 1)?;
            tx.put((i + 9) % 24, b + 1)?;
            Ok(())
        });
    }
    kv.remove(&23);
}

/// Recovery is a pure function of the directory bytes: two recoveries
/// from identical copies produce identical stores and identical
/// reports — for every algorithm, including from a damaged directory.
#[test]
fn double_recovery_from_the_same_bytes_is_deterministic() {
    for algorithm in Algorithm::ALL {
        let base = temp_dir(&format!("det-{algorithm:?}"));
        let store = base.join("store");
        seed(&store, algorithm);
        // Simulate a torn tail on one shard so recovery has real work:
        // truncation, replay, and cross-shard roll-forward all run.
        let wal0 = store.join("shard-0.wal");
        let len = fs::metadata(&wal0).unwrap().len();
        let bytes = fs::read(&wal0).unwrap();
        fs::write(&wal0, &bytes[..(len as usize).saturating_sub(7)]).unwrap();

        let (copy_a, copy_b) = (base.join("a"), base.join("b"));
        copy_dir(&store, &copy_a);
        copy_dir(&store, &copy_b);
        let kv_a: DurableKv<u64, u64> = DurableKv::open(cfg(&copy_a, algorithm)).unwrap();
        let kv_b: DurableKv<u64, u64> = DurableKv::open(cfg(&copy_b, algorithm)).unwrap();
        assert_eq!(
            kv_a.recovery_report(),
            kv_b.recovery_report(),
            "{algorithm:?}: reports diverge"
        );
        assert_eq!(
            sorted_scan(&kv_a),
            sorted_scan(&kv_b),
            "{algorithm:?}: recovered contents diverge"
        );
        let _ = fs::remove_dir_all(&base);
    }
}

/// Writes `count` puts of distinct keys (key `i` → `100 + i`), returns
/// the keys in write order grouped by owning shard — the oracle for
/// prefix checks after tail damage.
fn seed_sequential(dir: &Path, algorithm: Algorithm, count: u64) -> Vec<Vec<u64>> {
    let kv: DurableKv<u64, u64> = DurableKv::open(cfg(dir, algorithm)).unwrap();
    let mut per_shard = vec![Vec::new(); 4];
    for i in 0..count {
        kv.put(i, 100 + i);
        per_shard[kv.store().shard_of(&i)].push(i);
    }
    per_shard
}

/// After damage to shard `s`'s log, the recovered store must hold a
/// *prefix* of shard `s`'s write sequence (never a gap, never a wrong
/// value) and every other shard's writes in full.
fn assert_prefix_semantics(
    dir: &Path,
    algorithm: Algorithm,
    per_shard: &[Vec<u64>],
    damaged: usize,
    what: &str,
) {
    let kv: DurableKv<u64, u64> = DurableKv::open(cfg(dir, algorithm)).unwrap();
    for (s, keys) in per_shard.iter().enumerate() {
        let mut gone = false;
        for &k in keys {
            match kv.get(&k) {
                Some(v) => {
                    assert_eq!(v, 100 + k, "{what}: key {k} has an invented value");
                    assert!(
                        !gone,
                        "{what}: shard {s} key {k} survived after an earlier key was lost (not a prefix)"
                    );
                }
                None => {
                    assert_eq!(s, damaged, "{what}: undamaged shard {s} lost key {k}");
                    gone = true;
                }
            }
        }
    }
}

/// Truncate shard 0's log at every byte offset from the tail down past
/// several records: recovery always succeeds and always yields a clean
/// prefix of that shard's acked writes.
#[test]
fn truncation_at_every_offset_recovers_a_clean_prefix() {
    let base = temp_dir("trunc");
    let store = base.join("store");
    let per_shard = seed_sequential(&store, Algorithm::Tl2, 32);
    let damaged = 0usize;
    let wal = store.join(format!("shard-{damaged}.wal"));
    let bytes = fs::read(&wal).unwrap();
    for cut in (0..bytes.len()).rev() {
        let copy = base.join("cut");
        let _ = fs::remove_dir_all(&copy);
        copy_dir(&store, &copy);
        fs::write(copy.join(format!("shard-{damaged}.wal")), &bytes[..cut]).unwrap();
        assert_prefix_semantics(
            &copy,
            Algorithm::Tl2,
            &per_shard,
            damaged,
            &format!("truncate at {cut}"),
        );
    }
    let _ = fs::remove_dir_all(&base);
}

/// Flip every byte of shard 0's log (one at a time): recovery succeeds,
/// the corruption is detected (decode truncates at the flipped record),
/// and no key ever reads back a value that was never written.
#[test]
fn bit_flip_at_every_offset_never_invents_a_value() {
    let base = temp_dir("flip");
    let store = base.join("store");
    let per_shard = seed_sequential(&store, Algorithm::Tl2, 16);
    let damaged = 0usize;
    let wal = store.join(format!("shard-{damaged}.wal"));
    let bytes = fs::read(&wal).unwrap();
    for off in 0..bytes.len() {
        let copy = base.join("flip");
        let _ = fs::remove_dir_all(&copy);
        copy_dir(&store, &copy);
        let mut corrupt = bytes.clone();
        corrupt[off] ^= 0x40;
        fs::write(copy.join(format!("shard-{damaged}.wal")), &corrupt).unwrap();
        assert_prefix_semantics(
            &copy,
            Algorithm::Tl2,
            &per_shard,
            damaged,
            &format!("flip at {off}"),
        );
    }
    let _ = fs::remove_dir_all(&base);
}
