//! Service-tier integration tests: routing, cross-shard atomicity under
//! concurrency (the 2PC acceptance test), and the workload generator's
//! statistical contract.

use ptm_server::{
    percentile, preload, run_workload, Mix, ServiceConfig, ShardedKv, Workload, WorkloadConfig,
    WorkloadOp,
};
use ptm_stm::Algorithm;
use std::sync::atomic::{AtomicBool, Ordering};

const ALGOS: &[Algorithm] = &[
    Algorithm::Tl2,
    Algorithm::Incremental,
    Algorithm::Norec,
    Algorithm::Tlrw,
    Algorithm::Mv,
    Algorithm::Adaptive,
];

#[test]
fn single_key_roundtrip_every_algorithm_and_shard_count() {
    for &algo in ALGOS {
        for shards in [1, 4] {
            let kv: ShardedKv<u64, u64> = ShardedKv::new(shards, algo);
            assert_eq!(kv.shard_count(), shards);
            assert_eq!(kv.get(&7), None);
            assert_eq!(kv.put(7, 70), None);
            assert_eq!(kv.put(7, 71), Some(70), "{algo:?}/{shards}");
            assert_eq!(kv.get(&7), Some(71));
            assert_eq!(kv.remove(&7), Some(71));
            assert_eq!(kv.get(&7), None, "{algo:?}/{shards}");
        }
    }
}

#[test]
fn scan_sees_every_entry_once() {
    let kv = ShardedKv::with_config(ServiceConfig {
        shards: 4,
        algorithm: Algorithm::Tl2,
        buckets_per_shard: 8,
        adaptive: None,
    });
    for k in 0u64..100 {
        kv.put(k, k * 2);
    }
    let mut entries = kv.scan();
    entries.sort_unstable();
    assert_eq!(entries.len(), 100);
    for (i, (k, v)) in entries.into_iter().enumerate() {
        assert_eq!((k, v), (i as u64, i as u64 * 2));
    }
}

#[test]
fn transact_reruns_on_logical_retry() {
    let kv: ShardedKv<u64, u64> = ShardedKv::new(2, Algorithm::Tl2);
    kv.put(1, 10);
    let mut first = true;
    let out = kv.transact(|tx| {
        if std::mem::take(&mut first) {
            // First run declines: the coordinator must roll the open
            // shard transactions back and run the body again.
            tx.get(&1)?;
            return Err(ptm_stm::Retry);
        }
        tx.get(&1)
    });
    assert_eq!(out, Some(10));
    assert!(!first, "body ran at least twice");
}

/// The acceptance test: concurrent cross-shard transfers against
/// concurrent consistent scans, for **every algorithm** and two shard
/// counts. Every scan must observe the invariant total — a torn
/// multi-shard commit (one shard published, its partner not yet) would
/// show up as a sum off by the transfer amount.
#[test]
fn cross_shard_transfers_are_never_observed_torn() {
    const KEYS: u64 = 128;
    const INITIAL: u64 = 100;
    const WRITERS: usize = 3;
    const TRANSFERS: u64 = 400;

    for &algo in ALGOS {
        for shards in [2, 5] {
            let kv: ShardedKv<u64, u64> = ShardedKv::new(shards, algo);
            preload(&kv, KEYS, INITIAL);
            let done = AtomicBool::new(false);
            std::thread::scope(|s| {
                let writers: Vec<_> = (0..WRITERS)
                    .map(|w| {
                        let kv = &kv;
                        s.spawn(move || {
                            let mut state = (w as u64 + 1) * 0x9E37_79B9;
                            for _ in 0..TRANSFERS {
                                let a = ptm_server::workload::next_rand(&mut state) % KEYS;
                                let mut b = ptm_server::workload::next_rand(&mut state) % KEYS;
                                if b == a {
                                    b = (b + 1) % KEYS;
                                }
                                kv.transact(|tx| {
                                    let from = tx.get(&a)?.unwrap_or(0);
                                    let to = tx.get(&b)?.unwrap_or(0);
                                    let moved = from.min(3);
                                    tx.put(a, from - moved)?;
                                    tx.put(b, to + moved)?;
                                    Ok(())
                                });
                            }
                        })
                    })
                    .collect();
                let scanner = {
                    let (kv, done) = (&kv, &done);
                    s.spawn(move || {
                        let mut scans = 0u64;
                        loop {
                            // Load *before* the scan so the last scan
                            // runs entirely after the writers stopped
                            // and checks the final state too.
                            let finished = done.load(Ordering::Acquire);
                            let total: u64 = kv.scan().into_iter().map(|(_, v)| v).sum();
                            assert_eq!(
                                total,
                                KEYS * INITIAL,
                                "{algo:?}/{shards} shards: torn cross-shard read"
                            );
                            scans += 1;
                            if finished {
                                return scans;
                            }
                        }
                    })
                };
                for h in writers {
                    h.join().expect("writer thread");
                }
                done.store(true, Ordering::Release);
                let scans = scanner.join().expect("scanner thread");
                assert!(scans >= 1, "{algo:?}/{shards}: scanner never completed");
            });
            let total: u64 = kv.scan().into_iter().map(|(_, v)| v).sum();
            assert_eq!(total, KEYS * INITIAL, "{algo:?}/{shards}: final sum");
        }
    }
}

#[test]
fn workload_runner_preserves_the_balance_invariant() {
    // End-to-end through the YCSB runner itself (reads, scans, and
    // transfer multis — no plain writes, which would break the sum).
    for algo in [Algorithm::Tl2, Algorithm::Tlrw] {
        let kv = ShardedKv::new(3, algo);
        let cfg = WorkloadConfig {
            keys: 64,
            zipf_theta: 0.9,
            mix: Mix {
                read: 80,
                write: 0,
                scan: 2,
                multi: 18,
            },
            multi_span: 3,
        };
        preload(&kv, cfg.keys, 10);
        let w = Workload::new(cfg);
        let stats = run_workload(&kv, &w, 3, 500, 42);
        assert_eq!(stats.ops, 1500);
        assert_eq!(
            stats.ops,
            stats.reads + stats.writes + stats.scans + stats.multis
        );
        assert_eq!(stats.latencies.len(), 1500, "every op timed");
        let total: u64 = kv.scan().into_iter().map(|(_, v)| v).sum();
        assert_eq!(total, cfg.keys * 10, "{algo:?}: transfers moved, not lost");
    }
}

#[test]
fn zipfian_draws_stay_in_range_and_skew() {
    let w = Workload::new(WorkloadConfig {
        keys: 1000,
        zipf_theta: 0.99,
        ..WorkloadConfig::default()
    });
    let mut state = 7u64;
    let mut counts = vec![0u64; 1000];
    for _ in 0..200_000 {
        let k = w.next_key(&mut state) as usize;
        counts[k] += 1;
    }
    let max = *counts.iter().max().expect("nonempty");
    // Uniform would put ~200 draws on each key; zipfian θ=0.99 puts a
    // double-digit percentage on the hottest. Conservative bound: 20×
    // uniform.
    assert!(
        max > 4000,
        "hottest key drew only {max} of 200k — not skewed"
    );

    let uniform = Workload::new(WorkloadConfig {
        keys: 1000,
        zipf_theta: 0.0,
        ..WorkloadConfig::default()
    });
    let mut counts = vec![0u64; 1000];
    for _ in 0..200_000 {
        counts[uniform.next_key(&mut state) as usize] += 1;
    }
    let max = *counts.iter().max().expect("nonempty");
    assert!(max < 1000, "uniform draw is skewed: max bucket {max}");
}

#[test]
fn mix_draws_match_their_percentages() {
    let w = Workload::new(WorkloadConfig {
        keys: 100,
        zipf_theta: 0.5,
        mix: Mix {
            read: 50,
            write: 30,
            scan: 5,
            multi: 15,
        },
        multi_span: 2,
    });
    let mut state = 99u64;
    let (mut r, mut wr, mut sc, mut mu) = (0u32, 0u32, 0u32, 0u32);
    for _ in 0..100_000 {
        match w.next_op(&mut state) {
            WorkloadOp::Read(k) => {
                assert!(k < 100);
                r += 1;
            }
            WorkloadOp::Write(k, _) => {
                assert!(k < 100);
                wr += 1;
            }
            WorkloadOp::Scan => sc += 1,
            WorkloadOp::Multi(keys) => {
                assert_eq!(keys.len(), 2);
                assert_ne!(keys[0], keys[1], "transfer keys must differ");
                mu += 1;
            }
        }
    }
    let close = |got: u32, want: u32| {
        let got_pct = got as f64 / 1000.0;
        (got_pct - want as f64).abs() < 2.0
    };
    assert!(close(r, 50), "reads {r}");
    assert!(close(wr, 30), "writes {wr}");
    assert!(close(sc, 5), "scans {sc}");
    assert!(close(mu, 15), "multis {mu}");
}

#[test]
fn percentile_is_nearest_rank() {
    let mut one = [42u64];
    assert_eq!(percentile(&mut one, 50.0), 42);
    assert_eq!(percentile(&mut [], 99.0), 0);
    let mut v: Vec<u64> = (1..=100).rev().collect();
    assert_eq!(percentile(&mut v, 50.0), 50);
    assert_eq!(percentile(&mut v, 99.0), 99);
    assert_eq!(percentile(&mut v, 100.0), 100);
}
