//! Read-modify-write primitives.
//!
//! The paper models every shared-memory access as the application of an RMW
//! primitive `⟨g, h⟩` to a base object: `g` updates the object state, `h`
//! computes the response. A primitive is *trivial* if it never changes the
//! state, *nontrivial* otherwise, and *conditional* if its update function
//! sometimes leaves the state unchanged and sometimes does not (CAS and
//! LL/SC are the canonical conditional primitives; fetch-and-add is
//! nontrivial but unconditional). Theorem 9 applies to TMs built from
//! read, write and **conditional** primitives only, so the classification
//! is part of the public API and checked by the experiment harness.

use crate::ids::Word;

/// An RMW primitive applied to a single base object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Primitive {
    /// Trivial read: response is the current value.
    Read,
    /// Unconditional write of a value; response is the overwritten value.
    Write(Word),
    /// Compare-and-swap: if the current value equals `expected`, install
    /// `new` and respond `1`, else respond `0`.
    Cas {
        /// Value the object must currently hold for the swap to happen.
        expected: Word,
        /// Value installed on success.
        new: Word,
    },
    /// Fetch-and-add (wrapping); response is the value before the add.
    /// This primitive is nontrivial but **not** conditional.
    FetchAdd(Word),
    /// Unconditional swap; response is the value before the swap.
    Swap(Word),
    /// Load-linked: trivial read that establishes a link for the calling
    /// process; response is the current value.
    LoadLinked,
    /// Store-conditional: writes `Word` and responds `1` iff the calling
    /// process still holds a valid link (no intervening mutation).
    StoreConditional(Word),
}

/// How a primitive interacts with the cache-coherence protocols.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// The primitive can never mutate the object (trivial).
    ReadOnly,
    /// The primitive may mutate the object (nontrivial); coherence
    /// protocols treat it as a write access regardless of the outcome,
    /// matching the paper's cost model where the *primitive*, not the
    /// outcome, is classified.
    Update,
}

impl Primitive {
    /// Whether the primitive is *trivial*: it never changes the value of
    /// the base object it is applied to.
    pub fn is_trivial(self) -> bool {
        matches!(self, Primitive::Read | Primitive::LoadLinked)
    }

    /// Whether the primitive is *nontrivial* (may change the value).
    pub fn is_nontrivial(self) -> bool {
        !self.is_trivial()
    }

    /// Whether the primitive is *conditional*: there exist states in which
    /// its update function leaves the object unchanged and states in which
    /// it does not ([Fich–Hendler–Shavit]). CAS and SC are conditional;
    /// write, fetch-and-add and swap are not.
    ///
    /// `FetchAdd(0)` and a `Swap`/`Write` of the current value are still
    /// unconditional: the classification is per *primitive*, i.e. over all
    /// argument/state pairs of the generic procedure.
    pub fn is_conditional(self) -> bool {
        matches!(self, Primitive::Cas { .. } | Primitive::StoreConditional(_))
    }

    /// The access class used by the coherence models.
    pub fn access_kind(self) -> AccessKind {
        if self.is_trivial() {
            AccessKind::ReadOnly
        } else {
            AccessKind::Update
        }
    }

    /// Whether this primitive is one of `read`, `write`, or a conditional
    /// primitive — the instruction set Theorem 9's lower bound applies to.
    pub fn in_theorem9_class(self) -> bool {
        matches!(
            self,
            Primitive::Read
                | Primitive::Write(_)
                | Primitive::Cas { .. }
                | Primitive::LoadLinked
                | Primitive::StoreConditional(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triviality_classification() {
        assert!(Primitive::Read.is_trivial());
        assert!(Primitive::LoadLinked.is_trivial());
        assert!(Primitive::Write(3).is_nontrivial());
        assert!(Primitive::Cas {
            expected: 0,
            new: 1
        }
        .is_nontrivial());
        assert!(Primitive::FetchAdd(1).is_nontrivial());
        assert!(Primitive::Swap(2).is_nontrivial());
        assert!(Primitive::StoreConditional(9).is_nontrivial());
    }

    #[test]
    fn conditionality_classification() {
        assert!(Primitive::Cas {
            expected: 0,
            new: 1
        }
        .is_conditional());
        assert!(Primitive::StoreConditional(1).is_conditional());
        assert!(!Primitive::Write(1).is_conditional());
        assert!(!Primitive::FetchAdd(1).is_conditional());
        assert!(!Primitive::Swap(1).is_conditional());
        assert!(!Primitive::Read.is_conditional());
    }

    #[test]
    fn theorem9_instruction_set() {
        assert!(Primitive::Read.in_theorem9_class());
        assert!(Primitive::Write(0).in_theorem9_class());
        assert!(Primitive::Cas {
            expected: 0,
            new: 1
        }
        .in_theorem9_class());
        assert!(Primitive::LoadLinked.in_theorem9_class());
        assert!(Primitive::StoreConditional(0).in_theorem9_class());
        // fetch-and-add and swap are outside the Theorem 9 class
        assert!(!Primitive::FetchAdd(1).in_theorem9_class());
        assert!(!Primitive::Swap(1).in_theorem9_class());
    }

    #[test]
    fn access_kind_matches_triviality() {
        assert_eq!(Primitive::Read.access_kind(), AccessKind::ReadOnly);
        assert_eq!(Primitive::LoadLinked.access_kind(), AccessKind::ReadOnly);
        assert_eq!(Primitive::Write(0).access_kind(), AccessKind::Update);
        assert_eq!(
            Primitive::Cas {
                expected: 1,
                new: 2
            }
            .access_kind(),
            AccessKind::Update
        );
    }
}
