//! Identifier newtypes shared across the workspace.
//!
//! The paper's model has three kinds of named entities: *processes*
//! (`p_1..p_n`), *base objects* (the shared memory cells a TM implementation
//! is built from), and *t-objects* / *transactions* (the TM-level interface).
//! Keeping them as distinct newtypes prevents the classic index-confusion
//! bugs in simulator code.

use std::fmt;

/// A machine word stored in a base object.
///
/// The paper places no bound on the value domain `V`; a 64-bit word is
/// enough to encode every value our algorithms store (versions, pids,
/// pointers into the simulated memory, t-object values).
pub type Word = u64;

/// Identifier of a simulated process (`p_i` in the paper).
///
/// Process ids are dense indices `0..n` assigned by the
/// [`SimBuilder`](crate::SimBuilder) in spawn order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(usize);

impl ProcessId {
    /// Creates a process id from a dense index.
    pub const fn new(index: usize) -> Self {
        ProcessId(index)
    }

    /// The dense index of this process.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<usize> for ProcessId {
    fn from(index: usize) -> Self {
        ProcessId(index)
    }
}

/// Identifier of a base object (a cell of the simulated shared memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BaseObjectId(usize);

impl BaseObjectId {
    /// Creates a base-object id from a dense index.
    pub const fn new(index: usize) -> Self {
        BaseObjectId(index)
    }

    /// The dense index of this base object.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for BaseObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

impl From<usize> for BaseObjectId {
    fn from(index: usize) -> Self {
        BaseObjectId(index)
    }
}

/// Identifier of a t-object (`X_i` in the paper) — a TM-level data item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TObjId(usize);

impl TObjId {
    /// Creates a t-object id from a dense index.
    pub const fn new(index: usize) -> Self {
        TObjId(index)
    }

    /// The dense index of this t-object.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for TObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "X{}", self.0)
    }
}

impl From<usize> for TObjId {
    fn from(index: usize) -> Self {
        TObjId(index)
    }
}

/// Identifier of a transaction (`T_k` in the paper).
///
/// Transaction ids are unique across an execution; the driver assigns them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxId(u64);

impl TxId {
    /// Creates a transaction id.
    pub const fn new(id: u64) -> Self {
        TxId(id)
    }

    /// The raw id.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl From<u64> for TxId {
    fn from(id: u64) -> Self {
        TxId(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(ProcessId::new(3).to_string(), "p3");
        assert_eq!(BaseObjectId::new(0).to_string(), "b0");
        assert_eq!(TObjId::new(7).to_string(), "X7");
        assert_eq!(TxId::new(12).to_string(), "T12");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(ProcessId::new(1) < ProcessId::new(2));
        assert!(BaseObjectId::new(0) < BaseObjectId::new(10));
    }

    #[test]
    fn conversions_round_trip() {
        let p: ProcessId = 5usize.into();
        assert_eq!(p.index(), 5);
        let t: TxId = 9u64.into();
        assert_eq!(t.raw(), 9);
    }
}
