//! Remote-memory-reference (RMR) accounting.
//!
//! Section 5 of the paper defines three cost models:
//!
//! * **Write-through cache-coherent (CC)**: a read is local iff the process
//!   holds a cached copy that has not been invalidated since its previous
//!   read; every write is an RMR and invalidates all other cached copies.
//! * **Write-back CC**: MESI-like with *shared* and *exclusive* modes. A
//!   read is local iff the process holds a copy in shared or exclusive
//!   mode; otherwise it incurs an RMR that downgrades exclusive holders and
//!   installs a shared copy. A write is local iff the process holds the
//!   object in exclusive mode; otherwise it incurs an RMR that invalidates
//!   all other copies and installs an exclusive copy.
//! * **DSM**: every register is forever assigned to a single process
//!   ([`Home`]); any access by another process is an RMR.
//!
//! All three models are tracked simultaneously on every access so a single
//! simulated execution yields all three RMR counters.

use crate::ids::{BaseObjectId, ProcessId};
use crate::memory::Home;
use crate::primitive::AccessKind;

/// Which of the three cost models charged an RMR for an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RmrCharge {
    /// Write-through cache-coherent model.
    pub write_through: bool,
    /// Write-back cache-coherent model.
    pub write_back: bool,
    /// Distributed shared memory model.
    pub dsm: bool,
}

/// Cache-line state in the write-back model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum WbState {
    #[default]
    Invalid,
    Shared,
    Exclusive,
}

/// Per-object, per-process coherence state for all three models.
#[derive(Debug, Clone)]
pub struct CacheSet {
    n_processes: usize,
    /// Write-through validity bits, indexed `[obj][pid]`.
    wt_valid: Vec<Vec<bool>>,
    /// Write-back MESI-ish state, indexed `[obj][pid]`.
    wb_state: Vec<Vec<WbState>>,
    /// DSM home per object.
    homes: Vec<Home>,
}

impl CacheSet {
    /// Creates coherence state for `n_processes` processes and no objects.
    pub fn new(n_processes: usize) -> Self {
        CacheSet {
            n_processes,
            wt_valid: Vec::new(),
            wb_state: Vec::new(),
            homes: Vec::new(),
        }
    }

    /// Registers a newly allocated base object with its DSM home.
    pub fn register_object(&mut self, home: Home) {
        self.wt_valid.push(vec![false; self.n_processes]);
        self.wb_state.push(vec![WbState::Invalid; self.n_processes]);
        self.homes.push(home);
    }

    /// Number of registered objects.
    pub fn len(&self) -> usize {
        self.homes.len()
    }

    /// Whether no object is registered.
    pub fn is_empty(&self) -> bool {
        self.homes.is_empty()
    }

    /// Predicts what [`access`](Self::access) would charge, without
    /// mutating any coherence state. Used by adversarial schedulers that
    /// steer executions toward expensive steps.
    ///
    /// # Panics
    ///
    /// Panics if `obj` has not been registered or `pid` is out of range.
    pub fn predict(&self, pid: ProcessId, obj: BaseObjectId, kind: AccessKind) -> RmrCharge {
        let o = obj.index();
        let p = pid.index();
        RmrCharge {
            write_through: match kind {
                AccessKind::ReadOnly => !self.wt_valid[o][p],
                AccessKind::Update => true,
            },
            write_back: match kind {
                AccessKind::ReadOnly => self.wb_state[o][p] == WbState::Invalid,
                AccessKind::Update => self.wb_state[o][p] != WbState::Exclusive,
            },
            dsm: self.homes[o].is_remote_for(pid),
        }
    }

    /// Records an access and returns which models charged an RMR.
    ///
    /// # Panics
    ///
    /// Panics if `obj` has not been registered or `pid` is out of range.
    pub fn access(&mut self, pid: ProcessId, obj: BaseObjectId, kind: AccessKind) -> RmrCharge {
        let o = obj.index();
        let p = pid.index();
        let mut charge = RmrCharge {
            dsm: self.homes[o].is_remote_for(pid),
            ..RmrCharge::default()
        };

        match kind {
            AccessKind::ReadOnly => {
                // Write-through: local iff we hold a valid copy.
                if !self.wt_valid[o][p] {
                    charge.write_through = true;
                    self.wt_valid[o][p] = true;
                }
                // Write-back: local iff shared or exclusive.
                if self.wb_state[o][p] == WbState::Invalid {
                    charge.write_back = true;
                    // Downgrade any exclusive holder to shared (the line is
                    // written back to main memory) and take a shared copy.
                    for s in self.wb_state[o].iter_mut() {
                        if *s == WbState::Exclusive {
                            *s = WbState::Shared;
                        }
                    }
                    self.wb_state[o][p] = WbState::Shared;
                }
            }
            AccessKind::Update => {
                // Write-through: every write goes to main memory (RMR) and
                // invalidates all other cached copies; the writer's own
                // copy is refreshed.
                charge.write_through = true;
                for (i, v) in self.wt_valid[o].iter_mut().enumerate() {
                    *v = i == p;
                }
                // Write-back: local iff we already hold the line exclusive.
                if self.wb_state[o][p] != WbState::Exclusive {
                    charge.write_back = true;
                    for s in self.wb_state[o].iter_mut() {
                        *s = WbState::Invalid;
                    }
                    self.wb_state[o][p] = WbState::Exclusive;
                }
            }
        }
        charge
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }
    fn b(i: usize) -> BaseObjectId {
        BaseObjectId::new(i)
    }

    fn caches(n: usize, objs: usize) -> CacheSet {
        let mut c = CacheSet::new(n);
        for _ in 0..objs {
            c.register_object(Home::Global);
        }
        c
    }

    #[test]
    fn first_read_is_rmr_second_is_local() {
        let mut c = caches(2, 1);
        let first = c.access(p(0), b(0), AccessKind::ReadOnly);
        assert!(first.write_through && first.write_back);
        let second = c.access(p(0), b(0), AccessKind::ReadOnly);
        assert!(!second.write_through && !second.write_back);
    }

    #[test]
    fn write_invalidates_other_readers_wt() {
        let mut c = caches(2, 1);
        c.access(p(0), b(0), AccessKind::ReadOnly);
        c.access(p(1), b(0), AccessKind::Update);
        // p0's cached copy was invalidated: next read is remote again.
        let r = c.access(p(0), b(0), AccessKind::ReadOnly);
        assert!(r.write_through);
    }

    #[test]
    fn writer_keeps_own_copy_wt() {
        let mut c = caches(2, 1);
        c.access(p(0), b(0), AccessKind::Update);
        let r = c.access(p(0), b(0), AccessKind::ReadOnly);
        assert!(!r.write_through);
    }

    #[test]
    fn every_write_is_rmr_in_write_through() {
        let mut c = caches(2, 1);
        assert!(c.access(p(0), b(0), AccessKind::Update).write_through);
        assert!(c.access(p(0), b(0), AccessKind::Update).write_through);
    }

    #[test]
    fn write_back_spin_in_exclusive_mode_is_local() {
        let mut c = caches(2, 1);
        assert!(c.access(p(0), b(0), AccessKind::Update).write_back);
        // Subsequent writes by the same process hit the exclusive line.
        assert!(!c.access(p(0), b(0), AccessKind::Update).write_back);
        assert!(!c.access(p(0), b(0), AccessKind::ReadOnly).write_back);
    }

    #[test]
    fn write_back_read_downgrades_exclusive() {
        let mut c = caches(2, 1);
        c.access(p(0), b(0), AccessKind::Update); // p0 exclusive
        let r = c.access(p(1), b(0), AccessKind::ReadOnly);
        assert!(r.write_back);
        // p0 was downgraded to shared: its next *write* is an RMR...
        assert!(c.access(p(0), b(0), AccessKind::Update).write_back);
        // ...which invalidates p1's shared copy.
        assert!(c.access(p(1), b(0), AccessKind::ReadOnly).write_back);
    }

    #[test]
    fn shared_readers_stay_local() {
        let mut c = caches(3, 1);
        c.access(p(0), b(0), AccessKind::ReadOnly);
        c.access(p(1), b(0), AccessKind::ReadOnly);
        c.access(p(2), b(0), AccessKind::ReadOnly);
        assert!(!c.access(p(0), b(0), AccessKind::ReadOnly).write_back);
        assert!(!c.access(p(1), b(0), AccessKind::ReadOnly).write_back);
    }

    #[test]
    fn dsm_charges_by_home_only() {
        let mut c = CacheSet::new(2);
        c.register_object(Home::Process(p(0)));
        c.register_object(Home::Global);
        assert!(!c.access(p(0), b(0), AccessKind::ReadOnly).dsm);
        assert!(!c.access(p(0), b(0), AccessKind::Update).dsm);
        assert!(c.access(p(1), b(0), AccessKind::ReadOnly).dsm);
        // Global home is remote to everyone.
        assert!(c.access(p(0), b(1), AccessKind::ReadOnly).dsm);
        assert!(c.access(p(1), b(1), AccessKind::Update).dsm);
    }

    #[test]
    fn objects_are_independent() {
        let mut c = caches(2, 2);
        c.access(p(0), b(0), AccessKind::ReadOnly);
        // A write to b1 must not invalidate b0's copy.
        c.access(p(1), b(1), AccessKind::Update);
        assert!(!c.access(p(0), b(0), AccessKind::ReadOnly).write_through);
    }
}
