//! The simulated shared memory: an array of base objects addressed by
//! [`BaseObjectId`], each holding a [`Word`], with LL/SC link bookkeeping.
//!
//! DSM *homes* are recorded here (each register in the distributed
//! shared-memory model is local to exactly one process and remote to all
//! others); the cache-coherent models keep their state in
//! [`crate::cache`].

use crate::ids::{BaseObjectId, ProcessId, Word};
use crate::primitive::Primitive;

/// Where a base object lives in the DSM model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Home {
    /// Not assigned to any process: remote to everyone (e.g. truly global
    /// metadata such as a TM's global clock).
    #[default]
    Global,
    /// Local to the given process, remote to all others.
    Process(ProcessId),
}

impl Home {
    /// Whether an access by `pid` is remote under the DSM model.
    pub fn is_remote_for(self, pid: ProcessId) -> bool {
        match self {
            Home::Global => true,
            Home::Process(owner) => owner != pid,
        }
    }
}

/// One base object.
#[derive(Debug, Clone)]
struct Cell {
    value: Word,
    home: Home,
    name: String,
    /// Processes currently holding a valid load-link on this object.
    links: Vec<ProcessId>,
}

/// Result of applying a primitive: the response word plus the old and new
/// values of the object (recorded in the event log).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApplyOutcome {
    /// The response returned to the calling process.
    pub response: Word,
    /// Value of the base object before the application.
    pub old: Word,
    /// Value after the application (equal to `old` for trivial primitives
    /// and failed conditionals).
    pub new: Word,
}

impl ApplyOutcome {
    /// Whether this particular application mutated the object.
    pub fn mutated(&self) -> bool {
        self.old != self.new
    }
}

/// The flat store of base objects.
#[derive(Debug, Clone, Default)]
pub struct Memory {
    cells: Vec<Cell>,
}

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Memory::default()
    }

    /// Allocates a base object with an initial value, a DSM home, and a
    /// debug name, returning its id.
    pub fn alloc(&mut self, name: impl Into<String>, init: Word, home: Home) -> BaseObjectId {
        let id = BaseObjectId::new(self.cells.len());
        self.cells.push(Cell {
            value: init,
            home,
            name: name.into(),
            links: Vec::new(),
        });
        id
    }

    /// Number of allocated base objects.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether no base object has been allocated.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Current value of a base object (driver-side peek; does not count as
    /// a step of any process).
    ///
    /// # Panics
    ///
    /// Panics if `obj` was not allocated by this memory.
    pub fn peek(&self, obj: BaseObjectId) -> Word {
        self.cells[obj.index()].value
    }

    /// Driver-side poke, used to set up initial configurations between
    /// experiment phases. Invalidates links on the object.
    ///
    /// # Panics
    ///
    /// Panics if `obj` was not allocated by this memory.
    pub fn poke(&mut self, obj: BaseObjectId, value: Word) {
        let cell = &mut self.cells[obj.index()];
        cell.value = value;
        cell.links.clear();
    }

    /// DSM home of a base object.
    pub fn home(&self, obj: BaseObjectId) -> Home {
        self.cells[obj.index()].home
    }

    /// Debug name of a base object.
    pub fn name(&self, obj: BaseObjectId) -> &str {
        &self.cells[obj.index()].name
    }

    /// Applies `prim` to `obj` on behalf of `pid` and returns the outcome.
    ///
    /// Mutating applications (write, successful CAS/SC, fetch-and-add,
    /// swap) invalidate all load-links on the object, per the usual LL/SC
    /// semantics.
    ///
    /// # Panics
    ///
    /// Panics if `obj` was not allocated by this memory.
    pub fn apply(&mut self, pid: ProcessId, obj: BaseObjectId, prim: Primitive) -> ApplyOutcome {
        let cell = &mut self.cells[obj.index()];
        let old = cell.value;
        let (response, new) = match prim {
            Primitive::Read => (old, old),
            Primitive::Write(v) => (old, v),
            Primitive::Cas { expected, new } => {
                if old == expected {
                    (1, new)
                } else {
                    (0, old)
                }
            }
            Primitive::FetchAdd(d) => (old, old.wrapping_add(d)),
            Primitive::Swap(v) => (old, v),
            Primitive::LoadLinked => {
                if !cell.links.contains(&pid) {
                    cell.links.push(pid);
                }
                (old, old)
            }
            Primitive::StoreConditional(v) => {
                if cell.links.contains(&pid) {
                    (1, v)
                } else {
                    (0, old)
                }
            }
        };
        if new != old {
            cell.links.clear();
        }
        cell.value = new;
        ApplyOutcome { response, old, new }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn alloc_and_peek() {
        let mut m = Memory::new();
        let a = m.alloc("a", 7, Home::Global);
        let b = m.alloc("b", 9, Home::Process(p(1)));
        assert_eq!(m.peek(a), 7);
        assert_eq!(m.peek(b), 9);
        assert_eq!(m.len(), 2);
        assert_eq!(m.name(a), "a");
        assert_eq!(m.home(b), Home::Process(p(1)));
    }

    #[test]
    fn read_and_write() {
        let mut m = Memory::new();
        let a = m.alloc("a", 1, Home::Global);
        let r = m.apply(p(0), a, Primitive::Read);
        assert_eq!(
            r,
            ApplyOutcome {
                response: 1,
                old: 1,
                new: 1
            }
        );
        let w = m.apply(p(0), a, Primitive::Write(5));
        assert_eq!(w.new, 5);
        assert_eq!(m.peek(a), 5);
    }

    #[test]
    fn cas_success_and_failure() {
        let mut m = Memory::new();
        let a = m.alloc("a", 0, Home::Global);
        let ok = m.apply(
            p(0),
            a,
            Primitive::Cas {
                expected: 0,
                new: 3,
            },
        );
        assert_eq!(ok.response, 1);
        assert!(ok.mutated());
        let fail = m.apply(
            p(1),
            a,
            Primitive::Cas {
                expected: 0,
                new: 4,
            },
        );
        assert_eq!(fail.response, 0);
        assert!(!fail.mutated());
        assert_eq!(m.peek(a), 3);
    }

    #[test]
    fn fetch_add_wraps() {
        let mut m = Memory::new();
        let a = m.alloc("a", Word::MAX, Home::Global);
        let r = m.apply(p(0), a, Primitive::FetchAdd(2));
        assert_eq!(r.response, Word::MAX);
        assert_eq!(m.peek(a), 1);
    }

    #[test]
    fn swap_returns_old() {
        let mut m = Memory::new();
        let a = m.alloc("a", 10, Home::Global);
        let r = m.apply(p(0), a, Primitive::Swap(20));
        assert_eq!(r.response, 10);
        assert_eq!(m.peek(a), 20);
    }

    #[test]
    fn ll_sc_success() {
        let mut m = Memory::new();
        let a = m.alloc("a", 0, Home::Global);
        m.apply(p(0), a, Primitive::LoadLinked);
        let sc = m.apply(p(0), a, Primitive::StoreConditional(9));
        assert_eq!(sc.response, 1);
        assert_eq!(m.peek(a), 9);
    }

    #[test]
    fn sc_fails_after_interfering_write() {
        let mut m = Memory::new();
        let a = m.alloc("a", 0, Home::Global);
        m.apply(p(0), a, Primitive::LoadLinked);
        m.apply(p(1), a, Primitive::Write(1));
        let sc = m.apply(p(0), a, Primitive::StoreConditional(9));
        assert_eq!(sc.response, 0);
        assert_eq!(m.peek(a), 1);
    }

    #[test]
    fn sc_fails_without_link() {
        let mut m = Memory::new();
        let a = m.alloc("a", 0, Home::Global);
        let sc = m.apply(p(0), a, Primitive::StoreConditional(9));
        assert_eq!(sc.response, 0);
    }

    #[test]
    fn sc_consumes_all_links() {
        let mut m = Memory::new();
        let a = m.alloc("a", 0, Home::Global);
        m.apply(p(0), a, Primitive::LoadLinked);
        m.apply(p(1), a, Primitive::LoadLinked);
        assert_eq!(m.apply(p(0), a, Primitive::StoreConditional(5)).response, 1);
        // p1's link was invalidated by p0's successful SC.
        assert_eq!(m.apply(p(1), a, Primitive::StoreConditional(6)).response, 0);
    }

    #[test]
    fn failed_cas_preserves_links() {
        let mut m = Memory::new();
        let a = m.alloc("a", 0, Home::Global);
        m.apply(p(0), a, Primitive::LoadLinked);
        // A CAS that does not mutate must not invalidate the link.
        m.apply(
            p(1),
            a,
            Primitive::Cas {
                expected: 7,
                new: 8,
            },
        );
        assert_eq!(m.apply(p(0), a, Primitive::StoreConditional(5)).response, 1);
    }

    #[test]
    fn poke_clears_links() {
        let mut m = Memory::new();
        let a = m.alloc("a", 0, Home::Global);
        m.apply(p(0), a, Primitive::LoadLinked);
        m.poke(a, 42);
        assert_eq!(m.apply(p(0), a, Primitive::StoreConditional(5)).response, 0);
        assert_eq!(m.peek(a), 42);
    }

    #[test]
    fn home_remoteness() {
        assert!(Home::Global.is_remote_for(p(0)));
        assert!(!Home::Process(p(2)).is_remote_for(p(2)));
        assert!(Home::Process(p(2)).is_remote_for(p(3)));
    }
}
