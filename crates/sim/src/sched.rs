//! Whole-system scheduling policies.
//!
//! The lockstep driver gives total control over interleavings; these
//! policies automate it for randomized and fairness-style executions (used
//! by the correctness property tests, where we want *many* different
//! interleavings, each reproducible from a seed).

use crate::ids::ProcessId;
use crate::lockstep::Sim;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Picks which runnable process takes the next step.
pub trait SchedulePolicy {
    /// Chooses one of `runnable` (never empty).
    fn pick(&mut self, runnable: &[ProcessId], step_index: usize) -> ProcessId;

    /// Like [`pick`](Self::pick), but with access to the simulator state
    /// (poised events, predicted RMR charges). The default ignores the
    /// simulator; adversarial policies override this.
    fn pick_with_sim(
        &mut self,
        _sim: &Sim,
        runnable: &[ProcessId],
        step_index: usize,
    ) -> ProcessId {
        self.pick(runnable, step_index)
    }
}

/// Cycles through processes in id order, skipping non-runnable ones.
#[derive(Debug, Clone, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoundRobin {
    /// Creates a round-robin policy starting at process 0.
    pub fn new() -> Self {
        RoundRobin::default()
    }
}

impl SchedulePolicy for RoundRobin {
    fn pick(&mut self, runnable: &[ProcessId], _step: usize) -> ProcessId {
        // Find the first runnable pid >= self.next, else wrap.
        let chosen = runnable
            .iter()
            .copied()
            .find(|p| p.index() >= self.next)
            .unwrap_or(runnable[0]);
        self.next = chosen.index() + 1;
        chosen
    }
}

/// Uniformly random choice, reproducible from a seed.
#[derive(Debug, Clone)]
pub struct RandomPolicy {
    rng: StdRng,
}

impl RandomPolicy {
    /// Creates a random policy from a seed.
    pub fn seeded(seed: u64) -> Self {
        RandomPolicy {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl SchedulePolicy for RandomPolicy {
    fn pick(&mut self, runnable: &[ProcessId], _step: usize) -> ProcessId {
        runnable[self.rng.gen_range(0..runnable.len())]
    }
}

/// Adversarial burst policy: keeps scheduling one process for a burst
/// length, then switches — produces long solo fragments interrupted at
/// random points, the shape used by the paper's indistinguishability
/// arguments.
#[derive(Debug, Clone)]
pub struct BurstPolicy {
    rng: StdRng,
    current: Option<ProcessId>,
    remaining: usize,
    max_burst: usize,
}

impl BurstPolicy {
    /// Creates a burst policy with bursts of up to `max_burst` steps.
    ///
    /// # Panics
    ///
    /// Panics if `max_burst == 0`.
    pub fn seeded(seed: u64, max_burst: usize) -> Self {
        assert!(max_burst > 0, "burst length must be positive");
        BurstPolicy {
            rng: StdRng::seed_from_u64(seed),
            current: None,
            remaining: 0,
            max_burst,
        }
    }
}

impl SchedulePolicy for BurstPolicy {
    fn pick(&mut self, runnable: &[ProcessId], _step: usize) -> ProcessId {
        if let Some(p) = self.current {
            if self.remaining > 0 && runnable.contains(&p) {
                self.remaining -= 1;
                return p;
            }
        }
        let p = runnable[self.rng.gen_range(0..runnable.len())];
        self.current = Some(p);
        self.remaining = self.rng.gen_range(0..self.max_burst);
        p
    }
}

/// Which RMR counter an adversarial policy maximizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RmrTarget {
    /// Write-through cache-coherent charges.
    WriteThrough,
    /// Write-back cache-coherent charges.
    WriteBack,
    /// DSM charges.
    Dsm,
}

/// Adversarial schedule: greedily grants the step predicted to charge an
/// RMR in the target model, approximating the expensive executions behind
/// worst-case RMR bounds.
///
/// Pure greed starves progress (remote spinners charge forever, and a
/// spin-lock holder would never be scheduled), so two fairness valves
/// bound the slowdown while keeping the adversarial steering: after
/// `burst_cap` consecutive grants to one process a different choice is
/// forced, and every fourth pick is plain round-robin — guaranteeing the
/// whole system advances within a constant factor of a fair schedule.
#[derive(Debug, Clone)]
pub struct GreedyRmrPolicy {
    target: RmrTarget,
    burst_cap: usize,
    last: Option<ProcessId>,
    streak: usize,
    rr: RoundRobin,
}

impl GreedyRmrPolicy {
    /// Creates a greedy policy for the given cost model.
    pub fn new(target: RmrTarget) -> Self {
        GreedyRmrPolicy {
            target,
            burst_cap: 4,
            last: None,
            streak: 0,
            rr: RoundRobin::new(),
        }
    }

    fn charges(&self, c: crate::cache::RmrCharge) -> bool {
        match self.target {
            RmrTarget::WriteThrough => c.write_through,
            RmrTarget::WriteBack => c.write_back,
            RmrTarget::Dsm => c.dsm,
        }
    }
}

impl SchedulePolicy for GreedyRmrPolicy {
    fn pick(&mut self, runnable: &[ProcessId], step_index: usize) -> ProcessId {
        self.rr.pick(runnable, step_index)
    }

    fn pick_with_sim(&mut self, sim: &Sim, runnable: &[ProcessId], step_index: usize) -> ProcessId {
        // Fairness valve: a plain round-robin step every fourth pick.
        if step_index.is_multiple_of(4) {
            let choice = self.rr.pick(runnable, step_index);
            self.last = Some(choice);
            self.streak = 1;
            return choice;
        }
        let banned = match self.last {
            Some(p) if self.streak >= self.burst_cap && runnable.len() > 1 => Some(p),
            _ => None,
        };
        let choice = runnable
            .iter()
            .copied()
            .filter(|p| Some(*p) != banned)
            .find(|&p| sim.predicted_rmr(p).is_some_and(|c| self.charges(c)))
            .unwrap_or_else(|| {
                let eligible: Vec<ProcessId> = runnable
                    .iter()
                    .copied()
                    .filter(|p| Some(*p) != banned)
                    .collect();
                self.rr.pick(&eligible, step_index)
            });
        if Some(choice) == self.last {
            self.streak += 1;
        } else {
            self.last = Some(choice);
            self.streak = 1;
        }
        choice
    }
}

/// Drives the whole system with `policy` until no process is runnable or
/// `max_steps` steps were granted; returns the number granted.
pub fn run_policy(sim: &Sim, policy: &mut dyn SchedulePolicy, max_steps: usize) -> usize {
    let mut taken = 0;
    while taken < max_steps {
        let runnable = sim.runnable();
        if runnable.is_empty() {
            break;
        }
        let pid = policy.pick_with_sim(sim, &runnable, taken);
        debug_assert!(
            runnable.contains(&pid),
            "policy picked a non-runnable process"
        );
        match sim.step(pid) {
            Ok(_) => taken += 1,
            Err(e) => panic!("scheduled process failed: {e}"),
        }
    }
    taken
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lockstep::SimBuilder;
    use crate::memory::Home;

    fn two_counter_sim() -> (Sim, crate::ids::BaseObjectId) {
        let mut b = SimBuilder::new(2);
        let a = b.alloc("a", 0, Home::Global);
        for _ in 0..2 {
            b.add_process(move |ctx| {
                for _ in 0..10 {
                    ctx.fetch_add(a, 1);
                }
            });
        }
        (b.start(), a)
    }

    #[test]
    fn round_robin_runs_everything() {
        let (sim, a) = two_counter_sim();
        let steps = run_policy(&sim, &mut RoundRobin::new(), 1000);
        assert_eq!(steps, 20);
        assert_eq!(sim.peek(a), 20);
    }

    #[test]
    fn random_policy_is_reproducible() {
        let order_of = |seed: u64| -> Vec<ProcessId> {
            let (sim, _) = two_counter_sim();
            let mut order = Vec::new();
            let mut policy = RandomPolicy::seeded(seed);
            loop {
                let runnable = sim.runnable();
                if runnable.is_empty() {
                    break;
                }
                let p = policy.pick(&runnable, order.len());
                order.push(p);
                sim.step(p).unwrap();
            }
            order
        };
        assert_eq!(order_of(7), order_of(7));
    }

    #[test]
    fn burst_policy_completes() {
        let (sim, a) = two_counter_sim();
        let steps = run_policy(&sim, &mut BurstPolicy::seeded(3, 5), 1000);
        assert_eq!(steps, 20);
        assert_eq!(sim.peek(a), 20);
    }

    #[test]
    fn budget_is_respected() {
        let (sim, _) = two_counter_sim();
        let steps = run_policy(&sim, &mut RoundRobin::new(), 7);
        assert_eq!(steps, 7);
    }

    #[test]
    fn greedy_rmr_policy_completes_workloads() {
        for target in [
            RmrTarget::WriteThrough,
            RmrTarget::WriteBack,
            RmrTarget::Dsm,
        ] {
            let (sim, a) = two_counter_sim();
            let steps = run_policy(&sim, &mut GreedyRmrPolicy::new(target), 10_000);
            assert_eq!(steps, 20, "{target:?}");
            assert_eq!(sim.peek(a), 20, "{target:?}");
        }
    }

    #[test]
    fn greedy_rmr_policy_charges_more_than_burst_schedules() {
        // Long same-process bursts make write-back accesses hit the
        // exclusive line (cheap); the adversary must beat that baseline
        // and land in the ballpark of perfect alternation.
        let (sim_burst, _) = two_counter_sim();
        run_policy(&sim_burst, &mut BurstPolicy::seeded(1, 10), 10_000);
        let burst = sim_burst.metrics().total_rmr_write_back();

        let (sim_rr, _) = two_counter_sim();
        run_policy(&sim_rr, &mut RoundRobin::new(), 10_000);
        let rr = sim_rr.metrics().total_rmr_write_back();

        let (sim_adv, _) = two_counter_sim();
        run_policy(
            &sim_adv,
            &mut GreedyRmrPolicy::new(RmrTarget::WriteBack),
            10_000,
        );
        let adv = sim_adv.metrics().total_rmr_write_back();

        assert!(adv >= burst, "adversary {adv} < burst {burst}");
        // Within fairness-valve losses of the alternation optimum.
        assert!(
            adv * 10 >= rr * 7,
            "adversary {adv} far below round-robin {rr}"
        );
    }
}
