//! Step and RMR counters, per process.
//!
//! A *step* is the application of one RMW primitive to one base object —
//! exactly the quantity Theorem 3(1) bounds. RMRs are counted per cost
//! model as defined in [`crate::cache`]. The driver can snapshot counters
//! before and after an execution fragment and subtract to cost a fragment
//! (e.g. “steps taken by `T_φ` during its i-th t-read”).

use crate::cache::RmrCharge;
use crate::ids::ProcessId;
use std::ops::Sub;

/// Counter snapshot for all processes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Metrics {
    steps: Vec<u64>,
    rmr_write_through: Vec<u64>,
    rmr_write_back: Vec<u64>,
    rmr_dsm: Vec<u64>,
}

impl Metrics {
    /// Creates zeroed counters for `n` processes.
    pub fn new(n: usize) -> Self {
        Metrics {
            steps: vec![0; n],
            rmr_write_through: vec![0; n],
            rmr_write_back: vec![0; n],
            rmr_dsm: vec![0; n],
        }
    }

    /// Number of processes tracked.
    pub fn n_processes(&self) -> usize {
        self.steps.len()
    }

    /// Records one memory step by `pid` with its RMR charge.
    pub fn record(&mut self, pid: ProcessId, charge: RmrCharge) {
        let p = pid.index();
        self.steps[p] += 1;
        if charge.write_through {
            self.rmr_write_through[p] += 1;
        }
        if charge.write_back {
            self.rmr_write_back[p] += 1;
        }
        if charge.dsm {
            self.rmr_dsm[p] += 1;
        }
    }

    /// Steps taken by one process.
    pub fn steps(&self, pid: ProcessId) -> u64 {
        self.steps[pid.index()]
    }

    /// Total steps across all processes.
    pub fn total_steps(&self) -> u64 {
        self.steps.iter().sum()
    }

    /// Write-through CC RMRs of one process.
    pub fn rmr_write_through(&self, pid: ProcessId) -> u64 {
        self.rmr_write_through[pid.index()]
    }

    /// Write-back CC RMRs of one process.
    pub fn rmr_write_back(&self, pid: ProcessId) -> u64 {
        self.rmr_write_back[pid.index()]
    }

    /// DSM RMRs of one process.
    pub fn rmr_dsm(&self, pid: ProcessId) -> u64 {
        self.rmr_dsm[pid.index()]
    }

    /// Total write-through CC RMRs across all processes.
    pub fn total_rmr_write_through(&self) -> u64 {
        self.rmr_write_through.iter().sum()
    }

    /// Total write-back CC RMRs across all processes.
    pub fn total_rmr_write_back(&self) -> u64 {
        self.rmr_write_back.iter().sum()
    }

    /// Total DSM RMRs across all processes.
    pub fn total_rmr_dsm(&self) -> u64 {
        self.rmr_dsm.iter().sum()
    }
}

impl Sub<&Metrics> for &Metrics {
    type Output = Metrics;

    /// Pointwise difference `self - earlier`, used to cost a fragment
    /// between two snapshots.
    ///
    /// # Panics
    ///
    /// Panics if the snapshots track different process counts or if
    /// `earlier` is not actually earlier (a counter would underflow).
    fn sub(self, earlier: &Metrics) -> Metrics {
        assert_eq!(
            self.steps.len(),
            earlier.steps.len(),
            "process count mismatch"
        );
        let diff = |a: &[u64], b: &[u64]| -> Vec<u64> {
            a.iter()
                .zip(b)
                .map(|(x, y)| x.checked_sub(*y).expect("snapshot order"))
                .collect()
        };
        Metrics {
            steps: diff(&self.steps, &earlier.steps),
            rmr_write_through: diff(&self.rmr_write_through, &earlier.rmr_write_through),
            rmr_write_back: diff(&self.rmr_write_back, &earlier.rmr_write_back),
            rmr_dsm: diff(&self.rmr_dsm, &earlier.rmr_dsm),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn record_accumulates() {
        let mut m = Metrics::new(2);
        m.record(
            p(0),
            RmrCharge {
                write_through: true,
                write_back: false,
                dsm: true,
            },
        );
        m.record(
            p(0),
            RmrCharge {
                write_through: false,
                write_back: true,
                dsm: false,
            },
        );
        m.record(
            p(1),
            RmrCharge {
                write_through: true,
                write_back: true,
                dsm: true,
            },
        );
        assert_eq!(m.steps(p(0)), 2);
        assert_eq!(m.steps(p(1)), 1);
        assert_eq!(m.total_steps(), 3);
        assert_eq!(m.rmr_write_through(p(0)), 1);
        assert_eq!(m.rmr_write_back(p(0)), 1);
        assert_eq!(m.rmr_dsm(p(0)), 1);
        assert_eq!(m.total_rmr_write_through(), 2);
        assert_eq!(m.total_rmr_write_back(), 2);
        assert_eq!(m.total_rmr_dsm(), 2);
    }

    #[test]
    fn snapshot_difference() {
        let mut m = Metrics::new(1);
        m.record(
            p(0),
            RmrCharge {
                write_through: true,
                write_back: true,
                dsm: true,
            },
        );
        let snap = m.clone();
        m.record(
            p(0),
            RmrCharge {
                write_through: true,
                write_back: false,
                dsm: false,
            },
        );
        m.record(
            p(0),
            RmrCharge {
                write_through: false,
                write_back: false,
                dsm: false,
            },
        );
        let d = &m - &snap;
        assert_eq!(d.steps(p(0)), 2);
        assert_eq!(d.rmr_write_through(p(0)), 1);
        assert_eq!(d.rmr_write_back(p(0)), 0);
        assert_eq!(d.rmr_dsm(p(0)), 0);
    }

    #[test]
    #[should_panic(expected = "snapshot order")]
    fn reversed_snapshots_panic() {
        let mut m = Metrics::new(1);
        let early = m.clone();
        m.record(p(0), RmrCharge::default());
        let _ = &early - &m;
    }
}
