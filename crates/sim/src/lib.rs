//! # ptm-sim — the paper's abstract machine, executable
//!
//! A deterministic simulator of the asynchronous shared-memory system in
//! which *Progressive Transactional Memory in Time and Space* (Kuznetsov &
//! Ravi, PACT 2015) states its results: `n` processes communicating by
//! applying read-modify-write [`Primitive`]s to base objects, with
//!
//! * **step accounting** — one primitive application is one step, the unit
//!   of Theorem 3(1)'s `Ω(m²)` bound;
//! * **RMR accounting** — every access is simultaneously charged under the
//!   write-through CC, write-back CC, and DSM cost models of Section 5;
//! * **total schedule control** — processes run in lockstep under a
//!   driver, so the exact executions of the paper's indistinguishability
//!   arguments (Figure 1, Lemma 2) can be replayed, and randomized
//!   schedules are reproducible from seeds;
//! * **a complete execution log** — memory steps plus TM/mutex operation
//!   markers, from which `ptm-model` reconstructs formal histories.
//!
//! ## Example
//!
//! ```
//! use ptm_sim::{SimBuilder, Home, Primitive};
//!
//! let mut b = SimBuilder::new(2);
//! let x = b.alloc("x", 0, Home::Global);
//! b.add_process(move |ctx| {
//!     // fetch-and-add is one step
//!     ctx.fetch_add(x, 5);
//! });
//! b.add_process(move |ctx| {
//!     let _v = ctx.read(x);
//! });
//! let sim = b.start();
//! sim.step(0.into()).unwrap();
//! sim.step(1.into()).unwrap();
//! assert_eq!(sim.peek(x), 5);
//! assert_eq!(sim.metrics().total_steps(), 2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cache;
mod event;
mod ids;
mod lockstep;
mod memory;
mod metrics;
mod primitive;
mod sched;

pub use cache::{CacheSet, RmrCharge};
pub use event::{analysis, LogEntry, LogPayload, Marker, MemEvent, MutexOp, TOpDesc, TOpResult};
pub use ids::{BaseObjectId, ProcessId, TObjId, TxId, Word};
pub use lockstep::{
    Ctx, PoisedEvent, ProcStatus, RunOutcome, Sim, SimBuilder, SimError, StepEvent,
};
pub use memory::{ApplyOutcome, Home, Memory};
pub use metrics::Metrics;
pub use primitive::{AccessKind, Primitive};
pub use sched::{
    run_policy, BurstPolicy, GreedyRmrPolicy, RandomPolicy, RmrTarget, RoundRobin, SchedulePolicy,
};
