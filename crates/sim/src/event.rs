//! The execution log: every memory step, plus *markers* announcing
//! TM-level and mutex-level operation invocations and responses.
//!
//! The log is the single source of truth from which `ptm-model` builds
//! histories (sequences of t-operation invocation/response events), checks
//! read visibility (nontrivial events inside t-read fragments), and
//! analyses base-object access patterns (distinct objects touched during an
//! operation, contention between transactions).
//!
//! Markers are scheduling points just like memory steps, so the interleaving
//! of invocations/responses across processes is fully driver-controlled and
//! the real-time order recorded in the log is exact.

use crate::cache::RmrCharge;
use crate::ids::{BaseObjectId, ProcessId, TObjId, TxId, Word};
use crate::primitive::Primitive;
use std::fmt;

/// Description of a t-operation, used in invocation markers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TOpDesc {
    /// `read_k(X)`.
    Read(TObjId),
    /// `write_k(X, v)`.
    Write(TObjId, Word),
    /// `tryC_k()`.
    TryCommit,
}

impl TOpDesc {
    /// The t-object this operation is on, if any.
    pub fn t_object(self) -> Option<TObjId> {
        match self {
            TOpDesc::Read(x) | TOpDesc::Write(x, _) => Some(x),
            TOpDesc::TryCommit => None,
        }
    }
}

impl fmt::Display for TOpDesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TOpDesc::Read(x) => write!(f, "read({x})"),
            TOpDesc::Write(x, v) => write!(f, "write({x},{v})"),
            TOpDesc::TryCommit => write!(f, "tryC"),
        }
    }
}

/// Response of a t-operation, used in response markers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TOpResult {
    /// A read returned a value.
    Value(Word),
    /// A write returned `ok`.
    Ok,
    /// `tryC` returned commit (`C_k`).
    Committed,
    /// The operation returned abort (`A_k`).
    Aborted,
}

impl fmt::Display for TOpResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TOpResult::Value(v) => write!(f, "{v}"),
            TOpResult::Ok => write!(f, "ok"),
            TOpResult::Committed => write!(f, "C"),
            TOpResult::Aborted => write!(f, "A"),
        }
    }
}

/// Mutex-level operations, used by the Algorithm 1 reduction and the
/// baseline locks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutexOp {
    /// `Enter` (acquire).
    Enter,
    /// `Exit` (release).
    Exit,
}

/// A marker logged by a process at a scheduling point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Marker {
    /// Invocation of a t-operation by transaction `tx`.
    TxInvoke {
        /// Transaction issuing the operation.
        tx: TxId,
        /// The operation.
        op: TOpDesc,
    },
    /// Matching response of a t-operation.
    TxResponse {
        /// Transaction issuing the operation.
        tx: TxId,
        /// The operation.
        op: TOpDesc,
        /// Its result.
        res: TOpResult,
    },
    /// Invocation of a mutex operation.
    MutexInvoke {
        /// Enter or exit.
        op: MutexOp,
    },
    /// Matching response of a mutex operation.
    MutexResponse {
        /// Enter or exit.
        op: MutexOp,
    },
    /// Free-form annotation for tests and experiment harnesses.
    Note {
        /// Static tag.
        tag: &'static str,
        /// First payload word.
        a: Word,
        /// Second payload word.
        b: Word,
    },
}

/// One applied memory step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemEvent {
    /// The base object accessed.
    pub obj: BaseObjectId,
    /// The primitive applied.
    pub prim: Primitive,
    /// Value of the object before the application.
    pub old: Word,
    /// Value after the application.
    pub new: Word,
    /// Response returned to the process.
    pub response: Word,
    /// Which cost models charged an RMR.
    pub rmr: RmrCharge,
}

/// Payload of a log entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogPayload {
    /// A memory step.
    Mem(MemEvent),
    /// A marker.
    Marker(Marker),
    /// The process consumed a driver command (debug bookkeeping only).
    CommandConsumed,
}

/// One entry of the execution log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogEntry {
    /// Global sequence number (position in the log).
    pub seq: usize,
    /// The process that took the step.
    pub pid: ProcessId,
    /// What happened.
    pub payload: LogPayload,
}

impl LogEntry {
    /// The memory event, if this entry is one.
    pub fn mem(&self) -> Option<&MemEvent> {
        match &self.payload {
            LogPayload::Mem(e) => Some(e),
            _ => None,
        }
    }

    /// The marker, if this entry is one.
    pub fn marker(&self) -> Option<&Marker> {
        match &self.payload {
            LogPayload::Marker(m) => Some(m),
            _ => None,
        }
    }
}

/// Analysis helpers over a slice of the log.
pub mod analysis {
    use super::*;
    use std::collections::BTreeSet;

    /// Distinct base objects accessed by `pid` within the slice.
    pub fn distinct_objects(log: &[LogEntry], pid: ProcessId) -> BTreeSet<BaseObjectId> {
        log.iter()
            .filter(|e| e.pid == pid)
            .filter_map(LogEntry::mem)
            .map(|m| m.obj)
            .collect()
    }

    /// Number of memory steps taken by `pid` within the slice.
    pub fn steps_of(log: &[LogEntry], pid: ProcessId) -> usize {
        log.iter()
            .filter(|e| e.pid == pid)
            .filter(|e| e.mem().is_some())
            .count()
    }

    /// Whether `pid` applied any nontrivial primitive within the slice.
    pub fn has_nontrivial(log: &[LogEntry], pid: ProcessId) -> bool {
        log.iter()
            .filter(|e| e.pid == pid)
            .filter_map(LogEntry::mem)
            .any(|m| m.prim.is_nontrivial())
    }

    /// Base objects on which two processes both took steps within the
    /// slice, with at least one nontrivial step between them — the log-level
    /// witness of *contention* on a base object.
    pub fn contended_objects(
        log: &[LogEntry],
        a: ProcessId,
        b: ProcessId,
    ) -> BTreeSet<BaseObjectId> {
        let mut touched_a: BTreeSet<(BaseObjectId, bool)> = BTreeSet::new();
        let mut touched_b: BTreeSet<(BaseObjectId, bool)> = BTreeSet::new();
        for e in log {
            if let Some(m) = e.mem() {
                let rec = (m.obj, m.prim.is_nontrivial());
                if e.pid == a {
                    touched_a.insert(rec);
                } else if e.pid == b {
                    touched_b.insert(rec);
                }
            }
        }
        let mut out = BTreeSet::new();
        for (obj, nt_a) in &touched_a {
            for (obj_b, nt_b) in &touched_b {
                if obj == obj_b && (*nt_a || *nt_b) {
                    out.insert(*obj);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::analysis::*;
    use super::*;

    fn entry(seq: usize, pid: usize, obj: usize, prim: Primitive) -> LogEntry {
        LogEntry {
            seq,
            pid: ProcessId::new(pid),
            payload: LogPayload::Mem(MemEvent {
                obj: BaseObjectId::new(obj),
                prim,
                old: 0,
                new: 0,
                response: 0,
                rmr: RmrCharge::default(),
            }),
        }
    }

    #[test]
    fn distinct_objects_counts_unique() {
        let log = vec![
            entry(0, 0, 1, Primitive::Read),
            entry(1, 0, 1, Primitive::Read),
            entry(2, 0, 2, Primitive::Read),
            entry(3, 1, 3, Primitive::Read),
        ];
        let d = distinct_objects(&log, ProcessId::new(0));
        assert_eq!(d.len(), 2);
        assert_eq!(steps_of(&log, ProcessId::new(0)), 3);
    }

    #[test]
    fn nontrivial_detection() {
        let log = vec![
            entry(0, 0, 1, Primitive::Read),
            entry(1, 0, 1, Primitive::Write(3)),
        ];
        assert!(has_nontrivial(&log, ProcessId::new(0)));
        assert!(!has_nontrivial(&log, ProcessId::new(1)));
    }

    #[test]
    fn contention_requires_shared_object_and_a_writer() {
        let log = vec![
            entry(0, 0, 1, Primitive::Read),
            entry(1, 1, 1, Primitive::Read),
            entry(2, 0, 2, Primitive::Write(1)),
            entry(3, 1, 2, Primitive::Read),
        ];
        let c = contended_objects(&log, ProcessId::new(0), ProcessId::new(1));
        // Object 1: both read only -> no contention. Object 2: p0 wrote.
        assert!(!c.contains(&BaseObjectId::new(1)));
        assert!(c.contains(&BaseObjectId::new(2)));
    }

    #[test]
    fn top_desc_accessors() {
        assert_eq!(
            TOpDesc::Read(TObjId::new(4)).t_object(),
            Some(TObjId::new(4))
        );
        assert_eq!(TOpDesc::TryCommit.t_object(), None);
        assert_eq!(TOpDesc::Read(TObjId::new(4)).to_string(), "read(X4)");
        assert_eq!(TOpResult::Committed.to_string(), "C");
    }
}
