//! Lockstep execution of simulated processes.
//!
//! Each simulated process runs on an OS thread, but every interaction with
//! the shared world — applying a primitive to a base object, logging a
//! marker, receiving a driver command — is a *scheduling point*: the
//! process blocks until the driver grants it exactly one step. Between
//! grants, at most one process is ever inside the shared state, so
//! executions are fully deterministic and the driver can replay the exact
//! interleavings used in the paper's proofs (`π^{i−1} · β^ℓ · ρ^i · α_i`
//! and friends).
//!
//! The driver is whatever code owns the [`Sim`]: a unit test, an experiment
//! harness, or a [`SchedulePolicy`](crate::sched::SchedulePolicy) loop.

use crate::cache::{CacheSet, RmrCharge};
use crate::event::{LogEntry, LogPayload, Marker, MemEvent};
use crate::ids::{BaseObjectId, ProcessId, Word};
use crate::memory::{Home, Memory};
use crate::metrics::Metrics;
use crate::primitive::Primitive;
use std::any::Any;
use std::collections::VecDeque;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Once};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long the driver waits for a process to reach its next scheduling
/// point before declaring the simulation wedged. Generous: a legitimate
/// process only does local computation between points.
const DRIVER_WAIT: Duration = Duration::from_secs(30);

/// Errors surfaced to the driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The process has finished and cannot take steps.
    Finished(ProcessId),
    /// The process is blocked in [`Ctx::recv`] and its mailbox is empty.
    AwaitingCommand(ProcessId),
    /// The process panicked; the payload is the panic message.
    Panicked(ProcessId, String),
    /// The process did not reach a scheduling point within the internal
    /// timeout — almost certainly an unbounded local loop that never
    /// touches shared memory.
    Wedged(ProcessId),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Finished(p) => write!(f, "process {p} already finished"),
            SimError::AwaitingCommand(p) => {
                write!(
                    f,
                    "process {p} is waiting for a command and its mailbox is empty"
                )
            }
            SimError::Panicked(p, msg) => write!(f, "process {p} panicked: {msg}"),
            SimError::Wedged(p) => {
                write!(f, "process {p} did not reach a scheduling point in time")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// What a granted step did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepEvent {
    /// A memory step (one primitive application).
    Mem(MemEvent),
    /// A marker was logged.
    Marker(Marker),
    /// A driver command was consumed.
    Command,
}

/// The event a process is poised to perform next, visible to the driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoisedEvent {
    /// Poised to apply `prim` to `obj` — the paper's "enabled event".
    Mem(BaseObjectId, Primitive),
    /// Poised to log a marker.
    Marker(Marker),
    /// Poised to consume a command (mailbox non-empty).
    Command,
}

/// Public view of a process's scheduling status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcStatus {
    /// Executing local code toward its next scheduling point.
    Running,
    /// Blocked at a scheduling point, waiting for a grant.
    Poised,
    /// Blocked in [`Ctx::recv`] with an empty mailbox.
    AwaitingCommand,
    /// The closure returned (or panicked; see [`SimError::Panicked`]).
    Finished,
}

#[derive(Debug)]
enum Status {
    Running,
    Poised(PoisedEvent),
    AwaitingCommand,
    Finished,
}

/// Token type used to unwind process threads on simulator shutdown.
struct ShutdownToken;

fn install_quiet_shutdown_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<ShutdownToken>().is_none() {
                prev(info);
            }
        }));
    });
}

struct SimState {
    memory: Memory,
    caches: CacheSet,
    metrics: Metrics,
    log: Vec<LogEntry>,
    turn: Option<usize>,
    status: Vec<Status>,
    mailboxes: Vec<VecDeque<Box<dyn Any + Send>>>,
    panics: Vec<Option<String>>,
    shutdown: bool,
}

impl SimState {
    fn push_log(&mut self, pid: ProcessId, payload: LogPayload) {
        let seq = self.log.len();
        self.log.push(LogEntry { seq, pid, payload });
    }
}

struct Shared {
    st: Mutex<SimState>,
    proc_cv: Condvar,
    driver_cv: Condvar,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, SimState> {
        match self.st.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Handle through which a simulated process interacts with the shared
/// world. Every method is a scheduling point.
///
/// A `Ctx` is passed by the simulator to the process closure; it cannot be
/// constructed by user code and must not be sent to another thread.
pub struct Ctx {
    pid: ProcessId,
    shared: Arc<Shared>,
}

impl fmt::Debug for Ctx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ctx").field("pid", &self.pid).finish()
    }
}

impl Ctx {
    /// The id of this process.
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// Blocks until the driver grants a step, returning the state guard
    /// with the turn consumed.
    fn wait_for_grant(&self, poised: PoisedEvent) -> MutexGuard<'_, SimState> {
        let mut st = self.shared.lock();
        st.status[self.pid.index()] = Status::Poised(poised);
        self.shared.driver_cv.notify_all();
        loop {
            if st.shutdown {
                drop(st);
                panic::panic_any(ShutdownToken);
            }
            if st.turn == Some(self.pid.index()) {
                break;
            }
            st = match self.shared.proc_cv.wait(st) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
        st.turn = None;
        st.status[self.pid.index()] = Status::Running;
        st
    }

    /// Applies an RMW primitive to a base object and returns its response.
    ///
    /// This is one *step* of the process in the paper's sense: it is
    /// counted in [`Metrics`], charged by the three RMR models, and
    /// recorded in the execution log.
    ///
    /// # Panics
    ///
    /// Panics if `obj` was not allocated.
    pub fn apply(&self, obj: BaseObjectId, prim: Primitive) -> Word {
        let mut st = self.wait_for_grant(PoisedEvent::Mem(obj, prim));
        let outcome = st.memory.apply(self.pid, obj, prim);
        let charge = st.caches.access(self.pid, obj, prim.access_kind());
        st.metrics.record(self.pid, charge);
        let event = MemEvent {
            obj,
            prim,
            old: outcome.old,
            new: outcome.new,
            response: outcome.response,
            rmr: charge,
        };
        st.push_log(self.pid, LogPayload::Mem(event));
        drop(st);
        self.shared.driver_cv.notify_all();
        event.response
    }

    /// Convenience: `apply(obj, Read)`.
    pub fn read(&self, obj: BaseObjectId) -> Word {
        self.apply(obj, Primitive::Read)
    }

    /// Convenience: `apply(obj, Write(v))`, discarding the old value.
    pub fn write(&self, obj: BaseObjectId, v: Word) {
        self.apply(obj, Primitive::Write(v));
    }

    /// Convenience: CAS returning whether it succeeded.
    pub fn cas(&self, obj: BaseObjectId, expected: Word, new: Word) -> bool {
        self.apply(obj, Primitive::Cas { expected, new }) == 1
    }

    /// Convenience: fetch-and-add returning the previous value.
    pub fn fetch_add(&self, obj: BaseObjectId, d: Word) -> Word {
        self.apply(obj, Primitive::FetchAdd(d))
    }

    /// Convenience: swap returning the previous value.
    pub fn swap(&self, obj: BaseObjectId, v: Word) -> Word {
        self.apply(obj, Primitive::Swap(v))
    }

    /// Logs a marker. Markers are scheduling points (so cross-process
    /// invocation/response ordering is driver-controlled) but are not
    /// memory steps: they are not counted by [`Metrics`].
    pub fn marker(&self, m: Marker) {
        let mut st = self.wait_for_grant(PoisedEvent::Marker(m));
        st.push_log(self.pid, LogPayload::Marker(m));
        drop(st);
        self.shared.driver_cv.notify_all();
    }

    /// Receives the next driver command, blocking until one is available
    /// and the driver grants the consumption step.
    ///
    /// # Panics
    ///
    /// Panics if the next command is not a `T` — a driver/process protocol
    /// mismatch, which is a programming error.
    pub fn recv<T: Any + Send>(&self) -> T {
        let mut st = self.shared.lock();
        loop {
            if st.shutdown {
                drop(st);
                panic::panic_any(ShutdownToken);
            }
            let has_cmd = !st.mailboxes[self.pid.index()].is_empty();
            if has_cmd {
                st.status[self.pid.index()] = Status::Poised(PoisedEvent::Command);
            } else {
                st.status[self.pid.index()] = Status::AwaitingCommand;
            }
            self.shared.driver_cv.notify_all();
            if st.turn == Some(self.pid.index()) && has_cmd {
                break;
            }
            st = match self.shared.proc_cv.wait(st) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
        st.turn = None;
        st.status[self.pid.index()] = Status::Running;
        let cmd = st.mailboxes[self.pid.index()]
            .pop_front()
            .expect("mailbox checked non-empty");
        st.push_log(self.pid, LogPayload::CommandConsumed);
        drop(st);
        self.shared.driver_cv.notify_all();
        *cmd.downcast::<T>()
            .expect("driver sent a command of unexpected type")
    }
}

/// A registered process body, not yet started.
type ProcessBody = Box<dyn FnOnce(&Ctx) + Send + 'static>;

/// Builds a [`Sim`]: allocate base objects, register process closures,
/// then [`start`](SimBuilder::start).
///
/// # Examples
///
/// ```
/// use ptm_sim::{SimBuilder, Home, Primitive};
///
/// let mut b = SimBuilder::new(2);
/// let cell = b.alloc("cell", 0, Home::Global);
/// b.add_process(move |ctx| {
///     ctx.write(cell, 7);
/// });
/// b.add_process(move |ctx| {
///     let _ = ctx.read(cell);
/// });
/// let sim = b.start();
/// sim.step(0.into()).unwrap(); // p0 writes
/// sim.step(1.into()).unwrap(); // p1 reads
/// assert_eq!(sim.peek(cell), 7);
/// ```
pub struct SimBuilder {
    n: usize,
    memory: Memory,
    caches: CacheSet,
    bodies: Vec<ProcessBody>,
}

impl fmt::Debug for SimBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimBuilder")
            .field("n", &self.n)
            .field("objects", &self.memory.len())
            .field("processes_registered", &self.bodies.len())
            .finish()
    }
}

impl SimBuilder {
    /// Creates a builder for a system of `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a system needs at least one process");
        SimBuilder {
            n,
            memory: Memory::new(),
            caches: CacheSet::new(n),
            bodies: Vec::new(),
        }
    }

    /// Number of processes in the system.
    pub fn n_processes(&self) -> usize {
        self.n
    }

    /// Allocates a base object before the run.
    pub fn alloc(&mut self, name: impl Into<String>, init: Word, home: Home) -> BaseObjectId {
        let id = self.memory.alloc(name, init, home);
        self.caches.register_object(home);
        id
    }

    /// Registers the body of the next process (ids are assigned in
    /// registration order) and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if all `n` processes are already registered.
    pub fn add_process(&mut self, body: impl FnOnce(&Ctx) + Send + 'static) -> ProcessId {
        assert!(
            self.bodies.len() < self.n,
            "all {} processes already registered",
            self.n
        );
        let pid = ProcessId::new(self.bodies.len());
        self.bodies.push(Box::new(body));
        pid
    }

    /// Spawns the process threads and returns the driver handle. Processes
    /// registered so far run their bodies; if fewer than `n` bodies were
    /// registered the remaining processes are trivially finished.
    ///
    /// Blocks until every process reaches its first scheduling point (or
    /// finishes), so the returned simulation is in a deterministic state.
    pub fn start(self) -> Sim {
        install_quiet_shutdown_hook();
        let n = self.n;
        let shared = Arc::new(Shared {
            st: Mutex::new(SimState {
                memory: self.memory,
                caches: self.caches,
                metrics: Metrics::new(n),
                log: Vec::new(),
                turn: None,
                status: (0..n).map(|_| Status::Running).collect(),
                mailboxes: (0..n).map(|_| VecDeque::new()).collect(),
                panics: vec![None; n],
                shutdown: false,
            }),
            proc_cv: Condvar::new(),
            driver_cv: Condvar::new(),
        });

        let registered = self.bodies.len();
        let mut threads = Vec::with_capacity(registered);
        for (i, body) in self.bodies.into_iter().enumerate() {
            let pid = ProcessId::new(i);
            let ctx = Ctx {
                pid,
                shared: Arc::clone(&shared),
            };
            let shared_for_exit = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("ptm-sim-{i}"))
                .spawn(move || {
                    let result = panic::catch_unwind(AssertUnwindSafe(|| body(&ctx)));
                    let mut st = shared_for_exit.lock();
                    if let Err(payload) = result {
                        if payload.downcast_ref::<ShutdownToken>().is_none() {
                            let msg = panic_message(payload.as_ref());
                            st.panics[pid.index()] = Some(msg);
                        }
                    }
                    st.status[pid.index()] = Status::Finished;
                    // A grant may still be pending for us; release it so the
                    // driver does not wait forever.
                    if st.turn == Some(pid.index()) {
                        st.turn = None;
                    }
                    drop(st);
                    shared_for_exit.driver_cv.notify_all();
                })
                .expect("spawn simulated process thread");
            threads.push(handle);
        }
        // Unregistered processes are trivially finished.
        {
            let mut st = shared.lock();
            for i in registered..n {
                st.status[i] = Status::Finished;
            }
        }

        let sim = Sim { shared, threads, n };
        for i in 0..registered {
            sim.wait_stable(ProcessId::new(i));
        }
        sim
    }
}

fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Outcome of a bounded driver run ([`Sim::run_until`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The predicate matched on this step; `usize` is the number of steps
    /// granted including the matching one.
    Matched(usize),
    /// The process finished before the predicate matched.
    Finished(usize),
    /// The process blocked waiting for a command.
    Blocked(usize),
    /// The step budget was exhausted.
    Budget(usize),
}

impl RunOutcome {
    /// Number of steps granted during the run.
    pub fn steps(self) -> usize {
        match self {
            RunOutcome::Matched(s)
            | RunOutcome::Finished(s)
            | RunOutcome::Blocked(s)
            | RunOutcome::Budget(s) => s,
        }
    }
}

/// Driver handle for a running simulation.
///
/// Dropping the `Sim` shuts the process threads down (they unwind at their
/// next scheduling point) and joins them.
pub struct Sim {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
    n: usize,
}

impl fmt::Debug for Sim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sim").field("n", &self.n).finish()
    }
}

impl Sim {
    /// Number of processes in the system.
    pub fn n_processes(&self) -> usize {
        self.n
    }

    /// Waits until `pid` is at a stable point (poised, awaiting a command,
    /// or finished).
    fn wait_stable(&self, pid: ProcessId) {
        let mut st = self.shared.lock();
        loop {
            match st.status[pid.index()] {
                Status::Running => {}
                _ => return,
            }
            let (g, timeout) = match self.shared.driver_cv.wait_timeout(st, DRIVER_WAIT) {
                Ok(r) => r,
                Err(p) => {
                    let (g, t) = p.into_inner();
                    (g, t)
                }
            };
            st = g;
            if timeout.timed_out() {
                panic!("{}", SimError::Wedged(pid));
            }
        }
    }

    /// Current scheduling status of a process.
    pub fn status(&self, pid: ProcessId) -> ProcStatus {
        let st = self.shared.lock();
        match st.status[pid.index()] {
            Status::Running => ProcStatus::Running,
            Status::Poised(_) => ProcStatus::Poised,
            Status::AwaitingCommand => ProcStatus::AwaitingCommand,
            Status::Finished => ProcStatus::Finished,
        }
    }

    /// The event `pid` is poised to perform, if it is at a scheduling
    /// point — the paper's *enabled event* of an incomplete transaction.
    pub fn poised_event(&self, pid: ProcessId) -> Option<PoisedEvent> {
        let st = self.shared.lock();
        match &st.status[pid.index()] {
            Status::Poised(e) => Some(*e),
            _ => None,
        }
    }

    /// Predicts the RMR charge of `pid`'s poised memory event, if it is
    /// poised on one (without mutating coherence state). Markers and
    /// command consumptions predict as free.
    pub fn predicted_rmr(&self, pid: ProcessId) -> Option<RmrCharge> {
        let st = self.shared.lock();
        match &st.status[pid.index()] {
            Status::Poised(PoisedEvent::Mem(obj, prim)) => {
                Some(st.caches.predict(pid, *obj, prim.access_kind()))
            }
            Status::Poised(_) => Some(RmrCharge::default()),
            _ => None,
        }
    }

    /// Sends a command to a process's mailbox (does not grant a step).
    pub fn send<T: Any + Send>(&self, pid: ProcessId, cmd: T) {
        let mut st = self.shared.lock();
        st.mailboxes[pid.index()].push_back(Box::new(cmd));
        drop(st);
        // The process may be blocked in `recv` with an empty mailbox; wake
        // it so it can become poised.
        self.shared.proc_cv.notify_all();
        self.wait_stable(pid);
    }

    /// Grants one step to `pid` and returns what it did.
    ///
    /// # Errors
    ///
    /// [`SimError::Finished`] if the process already finished;
    /// [`SimError::AwaitingCommand`] if it needs a command first;
    /// [`SimError::Panicked`] if it panicked.
    pub fn step(&self, pid: ProcessId) -> Result<StepEvent, SimError> {
        self.wait_stable(pid);
        let mut st = self.shared.lock();
        if let Some(msg) = &st.panics[pid.index()] {
            return Err(SimError::Panicked(pid, msg.clone()));
        }
        match st.status[pid.index()] {
            Status::Finished => return Err(SimError::Finished(pid)),
            // The process may not have re-noticed a freshly delivered
            // command yet; granting the turn is correct as long as the
            // mailbox is non-empty (its recv loop re-checks both).
            Status::AwaitingCommand if st.mailboxes[pid.index()].is_empty() => {
                return Err(SimError::AwaitingCommand(pid))
            }
            Status::AwaitingCommand | Status::Poised(_) => {}
            Status::Running => unreachable!("wait_stable returned while running"),
        }
        let log_before = st.log.len();
        st.turn = Some(pid.index());
        drop(st);
        self.shared.proc_cv.notify_all();

        // Wait until the step completed *and* the process reached its next
        // stable point, so the driver observes a quiescent system.
        let mut st = self.shared.lock();
        loop {
            let stepped = st.log.len() > log_before;
            let stable = !matches!(st.status[pid.index()], Status::Running);
            if stepped && st.turn.is_none() && stable {
                break;
            }
            // The process may have finished without logging (it was granted
            // a step but unwound instead, e.g. on shutdown or panic).
            if matches!(st.status[pid.index()], Status::Finished) && st.turn.is_none() {
                if let Some(msg) = &st.panics[pid.index()] {
                    return Err(SimError::Panicked(pid, msg.clone()));
                }
                if !stepped {
                    return Err(SimError::Finished(pid));
                }
                break;
            }
            let (g, timeout) = match self.shared.driver_cv.wait_timeout(st, DRIVER_WAIT) {
                Ok(r) => r,
                Err(p) => p.into_inner(),
            };
            st = g;
            if timeout.timed_out() {
                panic!("{}", SimError::Wedged(pid));
            }
        }
        let entry = st.log[log_before];
        debug_assert_eq!(entry.pid, pid);
        Ok(match entry.payload {
            LogPayload::Mem(e) => StepEvent::Mem(e),
            LogPayload::Marker(m) => StepEvent::Marker(m),
            LogPayload::CommandConsumed => StepEvent::Command,
        })
    }

    /// Grants steps to `pid` until `pred` matches a step, the process
    /// finishes or blocks, or `max_steps` have been granted.
    pub fn run_until(
        &self,
        pid: ProcessId,
        max_steps: usize,
        mut pred: impl FnMut(&StepEvent) -> bool,
    ) -> RunOutcome {
        let mut taken = 0;
        while taken < max_steps {
            match self.step(pid) {
                Ok(ev) => {
                    taken += 1;
                    if pred(&ev) {
                        return RunOutcome::Matched(taken);
                    }
                }
                Err(SimError::Finished(_)) => return RunOutcome::Finished(taken),
                Err(SimError::AwaitingCommand(_)) => return RunOutcome::Blocked(taken),
                Err(e) => panic!("simulated process failed: {e}"),
            }
        }
        RunOutcome::Budget(taken)
    }

    /// Runs `pid` until it finishes or blocks for a command; returns the
    /// number of steps granted.
    ///
    /// # Panics
    ///
    /// Panics if the budget of `max_steps` is exhausted first — used by
    /// tests that expect termination.
    pub fn run_to_block(&self, pid: ProcessId, max_steps: usize) -> usize {
        match self.run_until(pid, max_steps, |_| false) {
            RunOutcome::Finished(s) | RunOutcome::Blocked(s) => s,
            RunOutcome::Budget(_) => panic!("process {pid} exceeded step budget {max_steps}"),
            RunOutcome::Matched(_) => unreachable!("predicate is constant false"),
        }
    }

    /// Process ids that can currently be granted a step.
    pub fn runnable(&self) -> Vec<ProcessId> {
        let st = self.shared.lock();
        (0..self.n)
            .filter(|&i| match st.status[i] {
                Status::Poised(_) => true,
                Status::AwaitingCommand => !st.mailboxes[i].is_empty(),
                _ => false,
            })
            .map(ProcessId::new)
            .collect()
    }

    /// Allocates a base object while the system is running (driver-side).
    pub fn alloc(&self, name: impl Into<String>, init: Word, home: Home) -> BaseObjectId {
        let mut st = self.shared.lock();
        let id = st.memory.alloc(name, init, home);
        st.caches.register_object(home);
        id
    }

    /// Driver-side peek of a base object (not a step of any process).
    pub fn peek(&self, obj: BaseObjectId) -> Word {
        self.shared.lock().memory.peek(obj)
    }

    /// Driver-side poke of a base object, for setting up configurations.
    pub fn poke(&self, obj: BaseObjectId, value: Word) {
        self.shared.lock().memory.poke(obj, value);
    }

    /// Snapshot of the metrics counters.
    pub fn metrics(&self) -> Metrics {
        self.shared.lock().metrics.clone()
    }

    /// Length of the execution log.
    pub fn log_len(&self) -> usize {
        self.shared.lock().log.len()
    }

    /// Copy of the execution log from `from` (use `0` for the whole log).
    pub fn log_from(&self, from: usize) -> Vec<LogEntry> {
        self.shared.lock().log[from..].to_vec()
    }

    /// Copy of the whole execution log.
    pub fn log(&self) -> Vec<LogEntry> {
        self.log_from(0)
    }

    /// Panic message of a process, if it panicked.
    pub fn panic_of(&self, pid: ProcessId) -> Option<String> {
        self.shared.lock().panics[pid.index()].clone()
    }
}

impl Drop for Sim {
    fn drop(&mut self) {
        {
            let mut st = self.shared.lock();
            st.shutdown = true;
        }
        self.shared.proc_cv.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::analysis;

    #[test]
    fn single_process_runs_to_completion() {
        let mut b = SimBuilder::new(1);
        let a = b.alloc("a", 0, Home::Global);
        b.add_process(move |ctx| {
            ctx.write(a, 1);
            ctx.write(a, 2);
        });
        let sim = b.start();
        let steps = sim.run_to_block(0.into(), 10);
        assert_eq!(steps, 2);
        assert_eq!(sim.peek(a), 2);
        assert_eq!(sim.status(0.into()), ProcStatus::Finished);
    }

    #[test]
    fn driver_controls_interleaving_exactly() {
        let mut b = SimBuilder::new(2);
        let a = b.alloc("a", 0, Home::Global);
        b.add_process(move |ctx| {
            let v = ctx.read(a);
            ctx.write(a, v + 1);
        });
        b.add_process(move |ctx| {
            let v = ctx.read(a);
            ctx.write(a, v + 10);
        });
        let sim = b.start();
        // Classic lost-update interleaving, forced deterministically:
        sim.step(0.into()).unwrap(); // p0 reads 0
        sim.step(1.into()).unwrap(); // p1 reads 0
        sim.step(0.into()).unwrap(); // p0 writes 1
        sim.step(1.into()).unwrap(); // p1 writes 10 (lost update)
        assert_eq!(sim.peek(a), 10);
    }

    #[test]
    fn poised_event_is_visible() {
        let mut b = SimBuilder::new(1);
        let a = b.alloc("a", 5, Home::Global);
        b.add_process(move |ctx| {
            ctx.read(a);
        });
        let sim = b.start();
        assert_eq!(
            sim.poised_event(0.into()),
            Some(PoisedEvent::Mem(a, Primitive::Read))
        );
        sim.step(0.into()).unwrap();
    }

    #[test]
    fn finished_process_errors() {
        let mut b = SimBuilder::new(1);
        b.add_process(move |_ctx| {});
        let sim = b.start();
        assert_eq!(sim.step(0.into()), Err(SimError::Finished(0.into())));
    }

    #[test]
    fn command_roundtrip() {
        let mut b = SimBuilder::new(1);
        let a = b.alloc("a", 0, Home::Global);
        b.add_process(move |ctx| loop {
            let v: u64 = ctx.recv();
            if v == 0 {
                return;
            }
            ctx.write(a, v);
        });
        let sim = b.start();
        assert_eq!(sim.status(0.into()), ProcStatus::AwaitingCommand);
        assert_eq!(sim.step(0.into()), Err(SimError::AwaitingCommand(0.into())));
        sim.send(0.into(), 42u64);
        assert_eq!(sim.step(0.into()).unwrap(), StepEvent::Command);
        sim.step(0.into()).unwrap(); // the write
        assert_eq!(sim.peek(a), 42);
        sim.send(0.into(), 0u64);
        sim.step(0.into()).unwrap();
        assert_eq!(sim.status(0.into()), ProcStatus::Finished);
    }

    #[test]
    fn markers_are_logged_in_grant_order() {
        let mut b = SimBuilder::new(2);
        b.add_process(move |ctx| {
            ctx.marker(Marker::Note {
                tag: "a",
                a: 0,
                b: 0,
            });
        });
        b.add_process(move |ctx| {
            ctx.marker(Marker::Note {
                tag: "b",
                a: 0,
                b: 0,
            });
        });
        let sim = b.start();
        sim.step(1.into()).unwrap();
        sim.step(0.into()).unwrap();
        let log = sim.log();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].pid, ProcessId::new(1));
        assert_eq!(log[1].pid, ProcessId::new(0));
    }

    #[test]
    fn metrics_count_steps_and_rmrs() {
        let mut b = SimBuilder::new(2);
        let a = b.alloc("a", 0, Home::Process(ProcessId::new(0)));
        b.add_process(move |ctx| {
            ctx.read(a); // dsm local
            ctx.read(a);
        });
        b.add_process(move |ctx| {
            ctx.read(a); // dsm remote
        });
        let sim = b.start();
        sim.run_to_block(0.into(), 10);
        sim.run_to_block(1.into(), 10);
        let m = sim.metrics();
        assert_eq!(m.steps(0.into()), 2);
        assert_eq!(m.rmr_dsm(0.into()), 0);
        assert_eq!(m.rmr_dsm(1.into()), 1);
        // First read remote in CC-WT, second cached.
        assert_eq!(m.rmr_write_through(0.into()), 1);
    }

    #[test]
    fn spinning_process_can_be_stepped_bounded() {
        let mut b = SimBuilder::new(2);
        let flag = b.alloc("flag", 0, Home::Global);
        b.add_process(move |ctx| while ctx.read(flag) == 0 {});
        b.add_process(move |ctx| {
            ctx.write(flag, 1);
        });
        let sim = b.start();
        // Let the spinner spin 5 times; it keeps being poised.
        for _ in 0..5 {
            sim.step(0.into()).unwrap();
        }
        assert_eq!(sim.status(0.into()), ProcStatus::Poised);
        sim.step(1.into()).unwrap();
        // One more read observes the flag and the process finishes.
        sim.step(0.into()).unwrap();
        sim.wait_stable(0.into());
        assert_eq!(sim.status(0.into()), ProcStatus::Finished);
    }

    #[test]
    fn panicking_process_is_reported() {
        let mut b = SimBuilder::new(1);
        let a = b.alloc("a", 0, Home::Global);
        b.add_process(move |ctx| {
            ctx.read(a);
            panic!("boom");
        });
        let sim = b.start();
        sim.step(0.into()).unwrap();
        // The process panics on its way to the next scheduling point.
        match sim.step(0.into()) {
            Err(SimError::Panicked(_, msg)) => assert!(msg.contains("boom")),
            other => panic!("expected panic report, got {other:?}"),
        }
    }

    #[test]
    fn dropping_sim_unblocks_waiting_processes() {
        let mut b = SimBuilder::new(1);
        let a = b.alloc("a", 0, Home::Global);
        b.add_process(move |ctx| {
            // Would spin forever without shutdown.
            while ctx.read(a) == 0 {}
        });
        let sim = b.start();
        sim.step(0.into()).unwrap();
        drop(sim); // must not hang
    }

    #[test]
    fn runnable_reflects_mailboxes() {
        let mut b = SimBuilder::new(2);
        let a = b.alloc("a", 0, Home::Global);
        b.add_process(move |ctx| {
            let _: u64 = ctx.recv();
        });
        b.add_process(move |ctx| {
            ctx.read(a);
        });
        let sim = b.start();
        assert_eq!(sim.runnable(), vec![ProcessId::new(1)]);
        sim.send(0.into(), 1u64);
        assert_eq!(sim.runnable(), vec![ProcessId::new(0), ProcessId::new(1)]);
    }

    #[test]
    fn log_analysis_on_fragments() {
        let mut b = SimBuilder::new(1);
        let a = b.alloc("a", 0, Home::Global);
        let c = b.alloc("c", 0, Home::Global);
        b.add_process(move |ctx| {
            ctx.read(a);
            ctx.write(c, 1);
        });
        let sim = b.start();
        let from = sim.log_len();
        sim.run_to_block(0.into(), 10);
        let frag = sim.log_from(from);
        assert_eq!(analysis::steps_of(&frag, 0.into()), 2);
        assert_eq!(analysis::distinct_objects(&frag, 0.into()).len(), 2);
        assert!(analysis::has_nontrivial(&frag, 0.into()));
    }

    #[test]
    fn late_allocation_is_visible_to_processes() {
        // Driver allocates an object after start; a process learns its id
        // via a command and uses it.
        let mut b = SimBuilder::new(1);
        b.add_process(move |ctx| {
            let obj: BaseObjectId = ctx.recv();
            ctx.write(obj, 9);
        });
        let sim = b.start();
        let late = sim.alloc("late", 0, Home::Global);
        sim.send(0.into(), late);
        sim.step(0.into()).unwrap();
        sim.step(0.into()).unwrap();
        assert_eq!(sim.peek(late), 9);
    }
}
