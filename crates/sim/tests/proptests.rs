//! Property-based tests of the simulator substrate: memory semantics,
//! coherence-model invariants, and scheduler determinism.

use proptest::prelude::*;
use ptm_sim::{
    AccessKind, BaseObjectId, CacheSet, Home, Memory, Primitive, ProcessId, RandomPolicy,
    SimBuilder,
};

/// Arbitrary primitive (without LL/SC, which need link-state context).
fn arb_primitive() -> impl Strategy<Value = Primitive> {
    prop_oneof![
        Just(Primitive::Read),
        (0u64..16).prop_map(Primitive::Write),
        (0u64..4, 0u64..16).prop_map(|(e, n)| Primitive::Cas {
            expected: e,
            new: n
        }),
        (0u64..8).prop_map(Primitive::FetchAdd),
        (0u64..16).prop_map(Primitive::Swap),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The memory is a deterministic sequential object: replaying the
    /// same primitive sequence yields identical responses and state.
    #[test]
    fn memory_is_deterministic(prims in proptest::collection::vec(arb_primitive(), 0..40)) {
        let run = || {
            let mut m = Memory::new();
            let a = m.alloc("a", 3, Home::Global);
            let mut responses = Vec::new();
            for &p in &prims {
                responses.push(m.apply(ProcessId::new(0), a, p));
            }
            (responses, m.peek(a))
        };
        prop_assert_eq!(run(), run());
    }

    /// Trivial primitives never change the value.
    #[test]
    fn trivial_primitives_never_mutate(
        init in 0u64..100,
        prims in proptest::collection::vec(arb_primitive(), 0..30),
    ) {
        let mut m = Memory::new();
        let a = m.alloc("a", init, Home::Global);
        for &p in &prims {
            let before = m.peek(a);
            let out = m.apply(ProcessId::new(0), a, p);
            if p.is_trivial() {
                prop_assert_eq!(out.new, before);
                prop_assert_eq!(m.peek(a), before);
            }
            prop_assert_eq!(out.old, before);
        }
    }

    /// CAS responds 1 exactly when the expected value matched, and the
    /// resulting state reflects it.
    #[test]
    fn cas_semantics(
        init in 0u64..4,
        expected in 0u64..4,
        new in 0u64..16,
    ) {
        let mut m = Memory::new();
        let a = m.alloc("a", init, Home::Global);
        let out = m.apply(ProcessId::new(0), a, Primitive::Cas { expected, new });
        if init == expected {
            prop_assert_eq!(out.response, 1);
            prop_assert_eq!(m.peek(a), new);
        } else {
            prop_assert_eq!(out.response, 0);
            prop_assert_eq!(m.peek(a), init);
        }
    }

    /// Coherence invariant (write-back): after any access sequence, at
    /// most one process holds a line exclusive, and predictions always
    /// match the charge of the access that follows.
    #[test]
    fn cache_predictions_match_charges(
        accesses in proptest::collection::vec((0usize..3, 0usize..2, any::<bool>()), 1..60),
    ) {
        let mut c = CacheSet::new(3);
        c.register_object(Home::Process(ProcessId::new(0)));
        c.register_object(Home::Global);
        for (p, o, upd) in accesses {
            let pid = ProcessId::new(p);
            let obj = BaseObjectId::new(o);
            let kind = if upd { AccessKind::Update } else { AccessKind::ReadOnly };
            let predicted = c.predict(pid, obj, kind);
            let charged = c.access(pid, obj, kind);
            prop_assert_eq!(predicted, charged);
        }
    }

    /// Lockstep executions under a seeded random schedule are fully
    /// deterministic: same seed, same final state and same log length.
    #[test]
    fn scheduled_runs_are_reproducible(seed in 0u64..50) {
        let run = |seed: u64| {
            let mut b = SimBuilder::new(3);
            let a = b.alloc("a", 0, Home::Global);
            for _ in 0..3 {
                b.add_process(move |ctx| {
                    for _ in 0..5 {
                        let v = ctx.read(a);
                        ctx.cas(a, v, v + 1);
                    }
                });
            }
            let sim = b.start();
            ptm_sim::run_policy(&sim, &mut RandomPolicy::seeded(seed), 100_000);
            (sim.peek(a), sim.log_len(), sim.metrics().total_steps())
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// Steps equal the number of memory events in the log, and RMR
    /// charges never exceed steps, in every model.
    #[test]
    fn metrics_are_consistent_with_log(seed in 0u64..30) {
        let mut b = SimBuilder::new(2);
        let a = b.alloc("a", 0, Home::Process(ProcessId::new(0)));
        let c = b.alloc("c", 0, Home::Global);
        for _ in 0..2 {
            b.add_process(move |ctx| {
                for i in 0..6 {
                    if i % 2 == 0 {
                        ctx.fetch_add(a, 1);
                    } else {
                        let _ = ctx.read(c);
                    }
                }
            });
        }
        let sim = b.start();
        ptm_sim::run_policy(&sim, &mut RandomPolicy::seeded(seed), 100_000);
        let m = sim.metrics();
        let mem_events = sim
            .log()
            .iter()
            .filter(|e| e.mem().is_some())
            .count() as u64;
        prop_assert_eq!(m.total_steps(), mem_events);
        prop_assert!(m.total_rmr_write_through() <= m.total_steps());
        prop_assert!(m.total_rmr_write_back() <= m.total_steps());
        prop_assert!(m.total_rmr_dsm() <= m.total_steps());
    }
}

#[test]
fn fetch_add_from_many_processes_is_atomic() {
    // Sanity outside proptest: interleaved unconditional RMWs never lose
    // updates (unlike the read-then-write races the simulator can show).
    let n = 4;
    let mut b = SimBuilder::new(n);
    let a = b.alloc("a", 0, Home::Global);
    for _ in 0..n {
        b.add_process(move |ctx| {
            for _ in 0..25 {
                ctx.fetch_add(a, 1);
            }
        });
    }
    let sim = b.start();
    ptm_sim::run_policy(&sim, &mut RandomPolicy::seeded(1), 100_000);
    assert_eq!(sim.peek(a), (n * 25) as u64);
}
