//! Epoch-reclamation stress under the data-structure layer: drop-heavy
//! values (boxed strings carrying live-instance counters) churned across
//! threads through `THashMap` and `TQueue`. Every clone the STM makes —
//! snapshots on read, displaced boxes retired to the epoch collector,
//! write-set buffers thrown away by aborts — must eventually be dropped
//! exactly once: the live counter ends at zero (no leak) and never goes
//! negative (no double drop).

use ptm_stm::{Algorithm, Stm, TVar};
use ptm_structs::{THashMap, TQueue};
use std::sync::atomic::{AtomicIsize, Ordering};
use std::sync::Arc;

/// A heap-string payload whose population is counted: +1 per instance
/// created (construction or clone), -1 per drop (the engine boxes every
/// published value, so each instance lives in its own heap box). A leak
/// leaves the counter positive; a double drop drives it negative.
#[derive(Debug)]
struct Tracked {
    tag: u64,
    payload: String,
    live: Arc<AtomicIsize>,
}

impl Tracked {
    fn new(tag: u64, live: &Arc<AtomicIsize>) -> Self {
        live.fetch_add(1, Ordering::SeqCst);
        Tracked {
            tag,
            payload: format!("payload-{tag}"),
            live: Arc::clone(live),
        }
    }
}

impl Clone for Tracked {
    fn clone(&self) -> Self {
        self.live.fetch_add(1, Ordering::SeqCst);
        Tracked {
            tag: self.tag,
            payload: self.payload.clone(),
            live: Arc::clone(&self.live),
        }
    }
}

impl PartialEq for Tracked {
    fn eq(&self, other: &Self) -> bool {
        self.tag == other.tag && self.payload == other.payload
    }
}

impl Drop for Tracked {
    fn drop(&mut self) {
        self.live.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Drives the epoch collector until all `Tracked` garbage is freed: each
/// committed write retires a box, pushing the calling thread's bag past
/// the collect threshold, which also sweeps orphans left by exited
/// workload threads.
fn flush_epochs(live: &Arc<AtomicIsize>) {
    let stm = Stm::tl2();
    let scratch = TVar::new(0u64);
    for round in 0..100_000 {
        stm.atomically(|tx| tx.modify(&scratch, |x| x.wrapping_add(1)));
        if live.load(Ordering::SeqCst) == 0 {
            return;
        }
        if round % 256 == 0 {
            std::thread::yield_now();
        }
    }
    panic!(
        "epoch collector never freed all Tracked values: {} still live",
        live.load(Ordering::SeqCst)
    );
}

#[test]
fn map_churn_drops_every_value_exactly_once() {
    for algo in [
        Algorithm::Tl2,
        Algorithm::Incremental,
        Algorithm::Norec,
        Algorithm::Tlrw,
        Algorithm::Mv,
        Algorithm::Adaptive,
    ] {
        let live = Arc::new(AtomicIsize::new(0));
        {
            let stm = Arc::new(Stm::new(algo));
            let map: THashMap<u64, Tracked> = THashMap::with_buckets(8);
            let threads = 4;
            let per = 300u64;
            std::thread::scope(|s| {
                for t in 0..threads {
                    let stm = Arc::clone(&stm);
                    let map = map.clone();
                    let live = Arc::clone(&live);
                    s.spawn(move || {
                        for i in 0..per {
                            // Overlapping key space across threads: inserts
                            // displace other threads' values, removes race.
                            let key = (t * per + i) % 32;
                            let value = Tracked::new(t * 1_000_000 + i, &live);
                            stm.atomically(|tx| {
                                map.insert(tx, key, value.clone())?;
                                Ok(())
                            });
                            if i % 3 == 0 {
                                stm.atomically(|tx| map.remove(tx, &(key / 2)))
                                    .map(drop)
                                    .unwrap_or(());
                            }
                        }
                    });
                }
            });
            assert!(
                live.load(Ordering::SeqCst) > 0,
                "sanity: churn kept some values live"
            );
        } // map + stm dropped: remaining values become epoch garbage
        flush_epochs(&live);
        let n = live.load(Ordering::SeqCst);
        assert_eq!(n, 0, "{algo:?}: leak (positive) or double drop (negative)");
    }
}

#[test]
fn queue_churn_drops_every_value_exactly_once() {
    for algo in [
        Algorithm::Tl2,
        Algorithm::Incremental,
        Algorithm::Norec,
        Algorithm::Tlrw,
        Algorithm::Mv,
        Algorithm::Adaptive,
    ] {
        let live = Arc::new(AtomicIsize::new(0));
        {
            let stm = Arc::new(Stm::new(algo));
            let q: TQueue<Tracked> = TQueue::new();
            let producers = 3u64;
            let per = 250u64;
            std::thread::scope(|s| {
                for p in 0..producers {
                    let stm = Arc::clone(&stm);
                    let q = q.clone();
                    let live = Arc::clone(&live);
                    s.spawn(move || {
                        for i in 0..per {
                            let v = Tracked::new(p * 1_000_000 + i, &live);
                            stm.atomically(|tx| q.enqueue(tx, v.clone()));
                        }
                    });
                }
                for _ in 0..2 {
                    let stm = Arc::clone(&stm);
                    let q = q.clone();
                    s.spawn(move || {
                        let mut drained = 0u64;
                        let mut idle = 0u32;
                        // Consume most of the load, leaving the rest in the
                        // queue so the structure drop path is exercised too.
                        while drained < per && idle < 10_000 {
                            match stm.atomically(|tx| q.dequeue(tx)) {
                                Some(v) => {
                                    assert!(!v.payload.is_empty());
                                    drained += 1;
                                    idle = 0;
                                }
                                None => {
                                    idle += 1;
                                    std::thread::yield_now();
                                }
                            }
                        }
                    });
                }
            });
        } // queue + stm dropped with elements still enqueued
        flush_epochs(&live);
        let n = live.load(Ordering::SeqCst);
        assert_eq!(n, 0, "{algo:?}: leak (positive) or double drop (negative)");
    }
}
