//! Multi-threaded stress for all four structures under all six
//! validation algorithms (visible Tlrw reads and the adaptive mode
//! controller included): determinate invariants after concurrent churn,
//! plus a commit-order linearizability check driven by an in-transaction
//! stamp counter.

use ptm_stm::{Algorithm, Stm, TVar};
use ptm_structs::{TArray, THashMap, TQueue, TSet};
use std::collections::HashMap;
use std::sync::Arc;

const ALGOS: [Algorithm; 6] = [
    Algorithm::Tl2,
    Algorithm::Incremental,
    Algorithm::Norec,
    Algorithm::Tlrw,
    Algorithm::Mv,
    Algorithm::Adaptive,
];

/// Small deterministic PRNG so the stress mixes are reproducible.
fn next_rand(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 11
}

#[test]
fn array_transfers_conserve_sum_under_contention() {
    for algo in ALGOS {
        let stm = Arc::new(Stm::new(algo));
        let arr = TArray::new(8, 1_000u64);
        let threads = 4;
        let per = 400;
        std::thread::scope(|s| {
            for t in 0..threads {
                let stm = Arc::clone(&stm);
                let arr = arr.clone();
                s.spawn(move || {
                    let mut rng = t as u64 + 1;
                    for _ in 0..per {
                        let from = next_rand(&mut rng) as usize % arr.len();
                        let to = next_rand(&mut rng) as usize % arr.len();
                        if from == to {
                            continue;
                        }
                        stm.atomically(|tx| {
                            let a = arr.get(tx, from)?;
                            let amt = a.min(3);
                            arr.update(tx, from, |x| x - amt)?;
                            arr.update(tx, to, |x| x + amt)
                        });
                    }
                });
            }
        });
        let total: u64 = arr.load_all().iter().sum();
        assert_eq!(total, 8_000, "{algo:?}");
    }
}

#[test]
fn map_disjoint_key_ranges_survive_concurrent_churn() {
    for algo in ALGOS {
        let stm = Arc::new(Stm::new(algo));
        let map: THashMap<u64, u64> = THashMap::with_buckets(16);
        let threads = 4u64;
        let keys_per_thread = 64u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let stm = Arc::clone(&stm);
                let map = map.clone();
                s.spawn(move || {
                    let base = t * 1_000;
                    // Insert a private key range, then delete the odd half.
                    for k in 0..keys_per_thread {
                        stm.atomically(|tx| map.insert(tx, base + k, k * k));
                    }
                    for k in (1..keys_per_thread).step_by(2) {
                        let gone = stm.atomically(|tx| map.remove(tx, &(base + k)));
                        assert_eq!(gone, Some(k * k));
                    }
                });
            }
        });
        let survivors = (threads * keys_per_thread / 2) as usize;
        assert_eq!(stm.atomically(|tx| map.len(tx)), survivors, "{algo:?}");
        for t in 0..threads {
            for k in (0..keys_per_thread).step_by(2) {
                let got = stm.atomically(|tx| map.get(tx, &(t * 1_000 + k)));
                assert_eq!(got, Some(k * k), "{algo:?}");
            }
        }
    }
}

#[test]
fn queue_producers_consumers_deliver_exactly_once_in_fifo_order() {
    for algo in ALGOS {
        let stm = Arc::new(Stm::new(algo));
        let q: TQueue<u64> = TQueue::new();
        let producers = 3u64;
        let consumers = 3usize;
        let per_producer = 200u64;
        let total = producers * per_producer;
        let consumed: Vec<Vec<u64>> = std::thread::scope(|s| {
            for p in 0..producers {
                let stm = Arc::clone(&stm);
                let q = q.clone();
                s.spawn(move || {
                    for i in 0..per_producer {
                        // Tag each element with its producer and sequence.
                        stm.atomically(|tx| q.enqueue(tx, p * 1_000_000 + i));
                    }
                });
            }
            let done = TVar::new(0u64);
            let handles: Vec<_> = (0..consumers)
                .map(|_| {
                    let stm = Arc::clone(&stm);
                    let q = q.clone();
                    let done = done.clone();
                    s.spawn(move || {
                        let mut got = Vec::new();
                        loop {
                            let item = stm.atomically(|tx| match q.dequeue(tx)? {
                                Some(x) => Ok(Some(x)),
                                None => {
                                    // Count the pops so far to decide completion.
                                    let d = tx.read(&done)?;
                                    Ok(if d >= total { None } else { Some(u64::MAX) })
                                }
                            });
                            match item {
                                None => break,
                                Some(u64::MAX) => std::thread::yield_now(),
                                Some(x) => {
                                    stm.atomically(|tx| tx.modify(&done, |d| d + 1));
                                    got.push(x);
                                }
                            }
                        }
                        got
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut all: Vec<u64> = consumed.iter().flatten().copied().collect();
        assert_eq!(all.len() as u64, total, "{algo:?}");
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len() as u64, total, "duplicated delivery in {algo:?}");
        // FIFO per producer: within one consumer's stream, elements of any
        // single producer must appear in increasing sequence order.
        for stream in &consumed {
            let mut last: HashMap<u64, u64> = HashMap::new();
            for &x in stream {
                let (p, i) = (x / 1_000_000, x % 1_000_000);
                if let Some(&prev) = last.get(&p) {
                    assert!(prev < i, "producer {p} reordered in {algo:?}");
                }
                last.insert(p, i);
            }
        }
        assert!(stm.atomically(|tx| q.is_empty(tx)));
    }
}

#[test]
fn set_concurrent_insert_remove_reaches_expected_membership() {
    for algo in ALGOS {
        let stm = Arc::new(Stm::new(algo));
        let set: TSet<u64> = TSet::new();
        let threads = 4u64;
        let per = 48u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let stm = Arc::clone(&stm);
                let set = set.clone();
                s.spawn(move || {
                    // Interleaved key space: thread t owns keys ≡ t (mod threads).
                    for i in 0..per {
                        assert!(stm.atomically(|tx| set.insert(tx, i * threads + t)));
                    }
                    for i in (0..per).step_by(3) {
                        assert!(stm.atomically(|tx| set.remove(tx, &(i * threads + t))));
                    }
                });
            }
        });
        let snap = stm.atomically(|tx| set.snapshot(tx));
        let expected: Vec<u64> = (0..per * threads)
            .filter(|k| !(k / threads).is_multiple_of(3))
            .collect();
        assert_eq!(snap, expected, "{algo:?}");
        // Range scans agree with the snapshot on a sub-interval.
        let lo = expected[expected.len() / 4];
        let hi = expected[expected.len() / 2];
        let want: Vec<u64> = expected
            .iter()
            .copied()
            .filter(|k| (lo..=hi).contains(k))
            .collect();
        assert_eq!(
            stm.atomically(|tx| set.range(tx, &lo, &hi)),
            want,
            "{algo:?}"
        );
    }
}

#[test]
fn map_ops_linearize_in_commit_stamp_order() {
    // Every transaction bumps a shared stamp TVar *inside* the same
    // transaction as its map operation, so the stamp order IS the
    // serialization order. Replaying the ops against a std HashMap in
    // stamp order must reproduce every observed result exactly.
    for algo in ALGOS {
        let stm = Arc::new(Stm::new(algo));
        let map: THashMap<u64, u64> = THashMap::with_buckets(8);
        let stamp = TVar::new(0u64);
        let threads = 4;
        let per = 150;
        // Per-thread op log: (stamp, kind, key, value, observed result).
        type OpLog = Vec<(u64, u8, u64, u64, Option<u64>)>;
        let logs: Vec<OpLog> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let stm = Arc::clone(&stm);
                    let map = map.clone();
                    let stamp = stamp.clone();
                    s.spawn(move || {
                        let mut rng = 0xACE0 + t as u64;
                        let mut log = Vec::new();
                        for _ in 0..per {
                            let kind = (next_rand(&mut rng) % 3) as u8;
                            let key = next_rand(&mut rng) % 16;
                            let val = next_rand(&mut rng) % 1_000;
                            let (at, out) = stm.atomically(|tx| {
                                let at = tx.read(&stamp)?;
                                tx.write(&stamp, at + 1)?;
                                let out = match kind {
                                    0 => map.insert(tx, key, val)?,
                                    1 => map.remove(tx, &key)?,
                                    _ => map.get(tx, &key)?,
                                };
                                Ok((at, out))
                            });
                            log.push((at, kind, key, val, out));
                        }
                        log
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut all: Vec<_> = logs.into_iter().flatten().collect();
        all.sort_unstable_by_key(|e| e.0);
        let mut reference: HashMap<u64, u64> = HashMap::new();
        for (at, kind, key, val, out) in all {
            let expected = match kind {
                0 => reference.insert(key, val),
                1 => reference.remove(&key),
                _ => reference.get(&key).copied(),
            };
            assert_eq!(out, expected, "stamp {at} diverged under {algo:?}");
        }
    }
}
