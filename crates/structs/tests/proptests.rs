//! Property tests: random operation sequences applied transactionally to
//! `THashMap` / `TSet` must match a `std` reference model executed in
//! commit order. Sequences run single-threaded, so commit order is issue
//! order and every intermediate observation is checkable; the concurrent
//! counterpart (commit order recovered from an in-transaction stamp)
//! lives in `stress.rs`.

use proptest::prelude::*;
use ptm_stm::{Algorithm, Stm};
use ptm_structs::{THashMap, TSet};
use std::collections::{BTreeSet, HashMap};

const ALGOS: [Algorithm; 6] = [
    Algorithm::Tl2,
    Algorithm::Incremental,
    Algorithm::Norec,
    Algorithm::Tlrw,
    Algorithm::Mv,
    Algorithm::Adaptive,
];

/// One scripted operation: `(kind, key, value)`.
type Op = (u8, u64, u64);

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    // Keys are drawn from a small space so inserts, removes and lookups
    // collide often; values are arbitrary.
    proptest::collection::vec((0u8..6, 0u64..12, 0u64..1_000), 1..80)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn hashmap_matches_std_reference(ops in ops_strategy()) {
        for algo in ALGOS {
            let stm = Stm::new(algo);
            // Few buckets: force collision chains to be exercised.
            let map: THashMap<u64, u64> = THashMap::with_buckets(4);
            let mut reference: HashMap<u64, u64> = HashMap::new();
            for &(kind, key, val) in &ops {
                match kind % 5 {
                    0 | 1 => {
                        let got = stm.atomically(|tx| map.insert(tx, key, val));
                        prop_assert_eq!(got, reference.insert(key, val));
                    }
                    2 => {
                        let got = stm.atomically(|tx| map.remove(tx, &key));
                        prop_assert_eq!(got, reference.remove(&key));
                    }
                    3 => {
                        let got = stm.atomically(|tx| map.get(tx, &key));
                        prop_assert_eq!(got, reference.get(&key).copied());
                    }
                    _ => {
                        let got = stm.atomically(|tx| map.contains_key(tx, &key));
                        prop_assert_eq!(got, reference.contains_key(&key));
                    }
                }
            }
            prop_assert_eq!(stm.atomically(|tx| map.len(tx)), reference.len());
            let mut snap = stm.atomically(|tx| map.snapshot(tx));
            snap.sort_unstable();
            let mut want: Vec<(u64, u64)> = reference.iter().map(|(&k, &v)| (k, v)).collect();
            want.sort_unstable();
            prop_assert_eq!(snap, want);
        }
    }

    #[test]
    fn set_matches_std_reference(ops in ops_strategy()) {
        for algo in ALGOS {
            let stm = Stm::new(algo);
            let set: TSet<u64> = TSet::new();
            let mut reference: BTreeSet<u64> = BTreeSet::new();
            for &(kind, key, other) in &ops {
                match kind % 4 {
                    0 | 1 => {
                        let got = stm.atomically(|tx| set.insert(tx, key));
                        prop_assert_eq!(got, reference.insert(key));
                    }
                    2 => {
                        let got = stm.atomically(|tx| set.remove(tx, &key));
                        prop_assert_eq!(got, reference.remove(&key));
                    }
                    _ => {
                        let got = stm.atomically(|tx| set.contains(tx, &key));
                        prop_assert_eq!(got, reference.contains(&key));
                        // Range scans agree on an arbitrary window too.
                        let (lo, hi) = (key.min(other % 12), key.max(other % 12));
                        let got = stm.atomically(|tx| set.range(tx, &lo, &hi));
                        let want: Vec<u64> = reference.range(lo..=hi).copied().collect();
                        prop_assert_eq!(got, want);
                    }
                }
            }
            prop_assert_eq!(stm.atomically(|tx| set.len(tx)), reference.len());
            let snap = stm.atomically(|tx| set.snapshot(tx));
            let want: Vec<u64> = reference.iter().copied().collect();
            prop_assert_eq!(snap, want);
        }
    }

    #[test]
    fn batched_transactions_are_all_or_nothing(ops in ops_strategy(), fail_at in 0usize..16) {
        // Apply a whole batch in ONE transaction that errors out partway:
        // none of the batch may be visible afterwards; then apply it
        // without the failure and compare against the reference applied
        // wholesale.
        let stm = Stm::tl2();
        let map: THashMap<u64, u64> = THashMap::with_buckets(4);
        let aborted = stm.try_once(|tx| {
            for (i, &(_, key, val)) in ops.iter().enumerate() {
                map.insert(tx, key, val)?;
                if i == fail_at {
                    return Err(ptm_stm::Retry);
                }
            }
            Ok(())
        });
        if fail_at < ops.len() {
            prop_assert_eq!(aborted, None);
            prop_assert!(stm.atomically(|tx| map.is_empty(tx)));
        }
        let mut reference: HashMap<u64, u64> = HashMap::new();
        stm.atomically(|tx| {
            for &(_, key, val) in &ops {
                map.insert(tx, key, val)?;
            }
            Ok(())
        });
        for &(_, key, val) in &ops {
            reference.insert(key, val);
        }
        prop_assert_eq!(stm.atomically(|tx| map.len(tx)), reference.len());
        for (&k, &v) in &reference {
            prop_assert_eq!(stm.atomically(|tx| map.get(tx, &k)), Some(v));
        }
    }
}
