//! Shared-node plumbing for the linked structures.
//!
//! [`TQueue`](crate::TQueue) and [`TSet`](crate::TSet) store their links
//! as `TVar<Option<NodeRef<N>>>`. A [`NodeRef`] is an `Arc` handle whose
//! `PartialEq` compares **pointer identity**, which is what NOrec's
//! value-based validation must see: two links are "the same value"
//! exactly when they reference the same node, never when two distinct
//! nodes happen to hold equal payloads (that would let a concurrent
//! unlink/relink slip past revalidation).

use std::fmt;
use std::sync::Arc;

/// Shared handle to a structure node; equality is node identity.
pub(crate) struct NodeRef<N>(pub(crate) Arc<N>);

impl<N> Clone for NodeRef<N> {
    fn clone(&self) -> Self {
        NodeRef(Arc::clone(&self.0))
    }
}

impl<N> PartialEq for NodeRef<N> {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl<N> fmt::Debug for NodeRef<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeRef({:p})", Arc::as_ptr(&self.0))
    }
}

impl<N> NodeRef<N> {
    pub(crate) fn new(node: N) -> Self {
        NodeRef(Arc::new(node))
    }
}

/// An optional link to the next node.
pub(crate) type Link<N> = Option<NodeRef<N>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_is_identity_not_value() {
        let a = NodeRef::new(1u64);
        let b = NodeRef::new(1u64);
        assert_eq!(a, a.clone());
        assert_ne!(a, b);
    }
}
