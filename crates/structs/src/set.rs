//! An ordered transactional set over a sorted linked list.

use crate::link::{Link, NodeRef};
use ptm_stm::{Retry, TVar, Transaction, TxValue};
use std::fmt;

/// One list node: an immutable key and a transactional next link.
struct SNode<T: TxValue> {
    key: T,
    next: TVar<Link<SNode<T>>>,
}

/// A transactional ordered set: a sorted singly linked list whose links
/// are `TVar`s.
///
/// Membership operations walk the list inside the caller's transaction,
/// so the traversed prefix joins the read set and a conflicting
/// insert/remove anywhere on that prefix retries the transaction —
/// structurally disjoint operations (different list regions, with TL2's
/// striped orecs) proceed in parallel. Keys are immutable once inserted;
/// removal unlinks the node.
///
/// # Examples
///
/// ```
/// use ptm_stm::Stm;
/// use ptm_structs::TSet;
///
/// let stm = Stm::tl2();
/// let s: TSet<u64> = TSet::new();
/// stm.atomically(|tx| {
///     s.insert(tx, 30)?;
///     s.insert(tx, 10)?;
///     s.insert(tx, 20)
/// });
/// assert!(stm.atomically(|tx| s.contains(tx, &20)));
/// assert_eq!(stm.atomically(|tx| s.range(tx, &10, &20)), vec![10, 20]);
/// ```
pub struct TSet<T: TxValue> {
    head: TVar<Link<SNode<T>>>,
}

impl<T: TxValue> Clone for TSet<T> {
    fn clone(&self) -> Self {
        TSet {
            head: self.head.clone(),
        }
    }
}

impl<T: TxValue> fmt::Debug for TSet<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TSet").finish_non_exhaustive()
    }
}

impl<T: TxValue + Ord> Default for TSet<T> {
    fn default() -> Self {
        TSet::new()
    }
}

impl<T: TxValue + Ord> TSet<T> {
    /// An empty set.
    pub fn new() -> Self {
        TSet {
            head: TVar::new(None),
        }
    }

    /// Inserts `key`; returns `true` if it was not already present.
    ///
    /// # Errors
    ///
    /// [`Retry`] on conflict.
    pub fn insert(&self, tx: &mut Transaction<'_>, key: T) -> Result<bool, Retry> {
        let mut prev = self.head.clone();
        loop {
            match tx.read(&prev)? {
                Some(cur) if cur.0.key < key => prev = cur.0.next.clone(),
                Some(cur) if cur.0.key == key => return Ok(false),
                cur => {
                    // `cur` is the first node with a greater key (or the
                    // end of the list); splice the new node before it.
                    let node = NodeRef::new(SNode {
                        key,
                        next: TVar::new(cur),
                    });
                    tx.write(&prev, Some(node))?;
                    return Ok(true);
                }
            }
        }
    }

    /// Removes `key`; returns `true` if it was present.
    ///
    /// # Errors
    ///
    /// [`Retry`] on conflict.
    pub fn remove(&self, tx: &mut Transaction<'_>, key: &T) -> Result<bool, Retry> {
        let mut prev = self.head.clone();
        loop {
            match tx.read(&prev)? {
                Some(cur) if cur.0.key < *key => prev = cur.0.next.clone(),
                Some(cur) if cur.0.key == *key => {
                    let after = tx.read(&cur.0.next)?;
                    tx.write(&prev, after)?;
                    return Ok(true);
                }
                _ => return Ok(false),
            }
        }
    }

    /// Whether `key` is present.
    ///
    /// # Errors
    ///
    /// [`Retry`] on conflict.
    pub fn contains(&self, tx: &mut Transaction<'_>, key: &T) -> Result<bool, Retry> {
        let mut cur = tx.read(&self.head)?;
        while let Some(n) = cur {
            if n.0.key == *key {
                return Ok(true);
            }
            if n.0.key > *key {
                return Ok(false);
            }
            cur = tx.read(&n.0.next)?;
        }
        Ok(false)
    }

    /// Blocks (via [`Transaction::retry`]) until `key` is present: the
    /// waiter parks on the set's chain stripes and re-runs when a
    /// commit overlaps them. Use [`TSet::contains`]'s `Ok(false)` when
    /// absence is an answer rather than a reason to wait.
    ///
    /// # Errors
    ///
    /// [`Retry`] on conflict, and whenever `key` is absent (the engine
    /// turns that into a parked wait).
    pub fn wait_contains(&self, tx: &mut Transaction<'_>, key: &T) -> Result<(), Retry> {
        if self.contains(tx, key)? {
            Ok(())
        } else {
            tx.retry()
        }
    }

    /// Every key in `[lo, hi]`, ascending (the inclusive range scan the
    /// ordered representation exists for).
    ///
    /// # Errors
    ///
    /// [`Retry`] on conflict.
    pub fn range(&self, tx: &mut Transaction<'_>, lo: &T, hi: &T) -> Result<Vec<T>, Retry> {
        let mut out = Vec::new();
        let mut cur = tx.read(&self.head)?;
        while let Some(n) = cur {
            if n.0.key > *hi {
                break;
            }
            if n.0.key >= *lo {
                out.push(n.0.key.clone());
            }
            cur = tx.read(&n.0.next)?;
        }
        Ok(out)
    }

    /// A consistent snapshot of every key, ascending.
    ///
    /// # Errors
    ///
    /// [`Retry`] on conflict.
    pub fn snapshot(&self, tx: &mut Transaction<'_>) -> Result<Vec<T>, Retry> {
        let mut out = Vec::new();
        let mut cur = tx.read(&self.head)?;
        while let Some(n) = cur {
            out.push(n.0.key.clone());
            cur = tx.read(&n.0.next)?;
        }
        Ok(out)
    }

    /// Number of keys (walks the whole list).
    ///
    /// # Errors
    ///
    /// [`Retry`] on conflict.
    pub fn len(&self, tx: &mut Transaction<'_>) -> Result<usize, Retry> {
        let mut n = 0;
        let mut cur = tx.read(&self.head)?;
        while let Some(node) = cur {
            n += 1;
            cur = tx.read(&node.0.next)?;
        }
        Ok(n)
    }

    /// Whether the set has no keys.
    ///
    /// # Errors
    ///
    /// [`Retry`] on conflict.
    pub fn is_empty(&self, tx: &mut Transaction<'_>) -> Result<bool, Retry> {
        Ok(tx.read(&self.head)?.is_none())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptm_stm::Stm;

    /// All six algorithms: `wait_contains`'s park/wake path must work
    /// under visible reads (Tlrw), mode switching (Adaptive) and
    /// snapshot reads (Mv), not just the invisible-read trio.
    fn engines() -> Vec<Stm> {
        vec![
            Stm::tl2(),
            Stm::incremental(),
            Stm::norec(),
            Stm::tlrw(),
            Stm::mv(),
            Stm::adaptive(),
        ]
    }

    #[test]
    fn wait_contains_blocks_until_insert_all_modes() {
        for stm in engines() {
            let set: TSet<u64> = TSet::new();
            std::thread::scope(|s| {
                s.spawn(|| {
                    stm.atomically(|tx| set.wait_contains(tx, &5));
                });
                std::thread::sleep(std::time::Duration::from_millis(20));
                stm.atomically(|tx| set.insert(tx, 5));
            });
            assert!(
                stm.atomically(|tx| set.contains(tx, &5)),
                "{:?}",
                stm.algorithm()
            );
        }
    }

    #[test]
    fn insert_keeps_sorted_order_all_modes() {
        for stm in engines() {
            let s: TSet<u64> = TSet::new();
            for k in [5u64, 1, 9, 3, 7] {
                assert!(stm.atomically(|tx| s.insert(tx, k)));
            }
            assert!(!stm.atomically(|tx| s.insert(tx, 5)));
            assert_eq!(stm.atomically(|tx| s.snapshot(tx)), vec![1, 3, 5, 7, 9]);
            assert_eq!(stm.atomically(|tx| s.len(tx)), 5);
        }
    }

    #[test]
    fn remove_head_middle_tail_and_missing() {
        let stm = Stm::tl2();
        let s: TSet<u64> = TSet::new();
        stm.atomically(|tx| {
            for k in 1..=5 {
                s.insert(tx, k)?;
            }
            Ok(())
        });
        assert!(stm.atomically(|tx| s.remove(tx, &1))); // head
        assert!(stm.atomically(|tx| s.remove(tx, &3))); // middle
        assert!(stm.atomically(|tx| s.remove(tx, &5))); // tail
        assert!(!stm.atomically(|tx| s.remove(tx, &9))); // missing
        assert_eq!(stm.atomically(|tx| s.snapshot(tx)), vec![2, 4]);
    }

    #[test]
    fn contains_and_empty() {
        let stm = Stm::norec();
        let s: TSet<i64> = TSet::new();
        assert!(stm.atomically(|tx| s.is_empty(tx)));
        assert!(!stm.atomically(|tx| s.contains(tx, &0)));
        stm.atomically(|tx| s.insert(tx, -4));
        assert!(stm.atomically(|tx| s.contains(tx, &-4)));
        assert!(!stm.atomically(|tx| s.contains(tx, &4)));
        assert!(!stm.atomically(|tx| s.is_empty(tx)));
    }

    #[test]
    fn range_is_inclusive_and_sorted() {
        let stm = Stm::incremental();
        let s: TSet<u64> = TSet::new();
        stm.atomically(|tx| {
            for k in [10u64, 20, 30, 40, 50] {
                s.insert(tx, k)?;
            }
            Ok(())
        });
        assert_eq!(stm.atomically(|tx| s.range(tx, &20, &40)), vec![20, 30, 40]);
        assert_eq!(stm.atomically(|tx| s.range(tx, &0, &9)), Vec::<u64>::new());
        assert_eq!(stm.atomically(|tx| s.range(tx, &45, &100)), vec![50]);
    }

    #[test]
    fn string_keys_work() {
        let stm = Stm::tl2();
        let s: TSet<String> = TSet::new();
        for k in ["pear", "apple", "fig"] {
            stm.atomically(|tx| s.insert(tx, k.to_string()));
        }
        assert_eq!(
            stm.atomically(|tx| s.snapshot(tx)),
            vec!["apple".to_string(), "fig".into(), "pear".into()]
        );
    }
}
