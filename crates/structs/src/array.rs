//! A fixed-length transactional array.

use ptm_stm::{Retry, TVar, Transaction, TxValue};
use std::fmt;
use std::sync::Arc;

/// A fixed-length array of transactional slots.
///
/// Each element lives in its own [`TVar`], so transactions touching
/// disjoint indices conflict only through orec-stripe aliasing. Cloning
/// the array is cheap and clones share the slots.
///
/// # Examples
///
/// ```
/// use ptm_stm::Stm;
/// use ptm_structs::TArray;
///
/// let stm = Stm::tl2();
/// let a = TArray::new(4, 0u64);
/// stm.atomically(|tx| {
///     a.set(tx, 0, 10)?;
///     a.set(tx, 3, 30)?;
///     a.swap(tx, 0, 3)
/// });
/// assert_eq!(a.load_all(), vec![30, 0, 0, 10]);
/// ```
pub struct TArray<T> {
    slots: Arc<[TVar<T>]>,
}

impl<T> Clone for TArray<T> {
    fn clone(&self) -> Self {
        TArray {
            slots: Arc::clone(&self.slots),
        }
    }
}

impl<T: TxValue + fmt::Debug> fmt::Debug for TArray<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TArray")
            .field("len", &self.slots.len())
            .finish()
    }
}

impl<T: TxValue> TArray<T> {
    /// An array of `len` slots, each initialized to a clone of `init`.
    pub fn new(len: usize, init: T) -> Self {
        TArray {
            slots: (0..len).map(|_| TVar::new(init.clone())).collect(),
        }
    }

    /// An array taking its length and initial values from `values`.
    pub fn from_vec(values: Vec<T>) -> Self {
        TArray {
            slots: values.into_iter().map(TVar::new).collect(),
        }
    }

    /// Number of slots (fixed at construction).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the array has zero slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The underlying variable at `i`, for composing with raw
    /// [`TVar`]-level code.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn var(&self, i: usize) -> &TVar<T> {
        &self.slots[i]
    }

    /// Reads slot `i`.
    ///
    /// # Errors
    ///
    /// [`Retry`] on conflict.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn get(&self, tx: &mut Transaction<'_>, i: usize) -> Result<T, Retry> {
        tx.read(&self.slots[i])
    }

    /// Writes slot `i`.
    ///
    /// # Errors
    ///
    /// [`Retry`] on conflict.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn set(&self, tx: &mut Transaction<'_>, i: usize, value: T) -> Result<(), Retry> {
        tx.write(&self.slots[i], value)
    }

    /// Applies `f` to slot `i` (read-modify-write).
    ///
    /// # Errors
    ///
    /// [`Retry`] on conflict.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn update(
        &self,
        tx: &mut Transaction<'_>,
        i: usize,
        f: impl FnOnce(T) -> T,
    ) -> Result<(), Retry> {
        tx.modify(&self.slots[i], f)
    }

    /// Exchanges the values at `i` and `j` atomically.
    ///
    /// # Errors
    ///
    /// [`Retry`] on conflict.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn swap(&self, tx: &mut Transaction<'_>, i: usize, j: usize) -> Result<(), Retry> {
        if i == j {
            return Ok(());
        }
        let a = tx.read(&self.slots[i])?;
        let b = tx.read(&self.slots[j])?;
        tx.write(&self.slots[i], b)?;
        tx.write(&self.slots[j], a)
    }

    /// A consistent snapshot of every slot, in index order.
    ///
    /// # Errors
    ///
    /// [`Retry`] on conflict.
    pub fn snapshot(&self, tx: &mut Transaction<'_>) -> Result<Vec<T>, Retry> {
        self.slots.iter().map(|s| tx.read(s)).collect()
    }

    /// Reads every slot non-transactionally (per-slot snapshots; use
    /// [`TArray::snapshot`] inside a transaction for a consistent view).
    pub fn load_all(&self) -> Vec<T> {
        self.slots.iter().map(TVar::load).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptm_stm::Stm;

    #[test]
    fn new_get_set_swap() {
        let stm = Stm::tl2();
        let a = TArray::new(3, 1u64);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        stm.atomically(|tx| {
            a.set(tx, 1, 5)?;
            a.update(tx, 2, |x| x + 9)?;
            a.swap(tx, 0, 1)
        });
        assert_eq!(a.load_all(), vec![5, 1, 10]);
        assert_eq!(a.var(2).load(), 10);
    }

    #[test]
    fn from_vec_and_snapshot() {
        let stm = Stm::norec();
        let a = TArray::from_vec(vec![1u64, 2, 3]);
        let snap = stm.atomically(|tx| a.snapshot(tx));
        assert_eq!(snap, vec![1, 2, 3]);
        let empty: TArray<u64> = TArray::from_vec(Vec::new());
        assert!(empty.is_empty());
    }

    #[test]
    fn swap_same_index_is_noop() {
        let stm = Stm::incremental();
        let a = TArray::new(2, 7u64);
        stm.atomically(|tx| a.swap(tx, 1, 1));
        assert_eq!(a.load_all(), vec![7, 7]);
    }

    #[test]
    fn clones_share_slots() {
        let stm = Stm::tl2();
        let a = TArray::new(1, 0u64);
        let b = a.clone();
        stm.atomically(|tx| a.set(tx, 0, 42));
        assert_eq!(b.load_all(), vec![42]);
    }
}
