//! A bucket-striped transactional hash map.

use ptm_stm::{Retry, TVar, Transaction, TxValue};
use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Default number of buckets (power of two).
const DEFAULT_BUCKETS: usize = 64;

/// A transactional hash map, striped across a fixed set of buckets.
///
/// Each bucket is one `TVar` holding a small association list, so two
/// transactions conflict only when their keys share a bucket: disjoint
/// keys commit in parallel, which is the disjoint-access-parallel
/// behaviour the paper's model prices. More buckets mean fewer false
/// conflicts; the count is fixed at construction (no transactional
/// resize), so size it for the expected key population.
///
/// `len` is computed by scanning the buckets rather than kept in a
/// counter `TVar`: a shared counter would serialize every insert/remove
/// pair on one hot variable and destroy the parallelism striping buys.
///
/// # Examples
///
/// ```
/// use ptm_stm::Stm;
/// use ptm_structs::THashMap;
///
/// let stm = Stm::tl2();
/// let m: THashMap<String, u64> = THashMap::new();
/// stm.atomically(|tx| {
///     m.insert(tx, "a".into(), 1)?;
///     m.insert(tx, "b".into(), 2)
/// });
/// assert_eq!(stm.atomically(|tx| m.get(tx, &"a".into())), Some(1));
/// assert_eq!(stm.atomically(|tx| m.len(tx)), 2);
/// ```
pub struct THashMap<K, V> {
    buckets: Arc<[Bucket<K, V>]>,
}

/// One bucket: a small association list behind a single `TVar`.
type Bucket<K, V> = TVar<Vec<(K, V)>>;

impl<K, V> Clone for THashMap<K, V> {
    fn clone(&self) -> Self {
        THashMap {
            buckets: Arc::clone(&self.buckets),
        }
    }
}

impl<K, V> fmt::Debug for THashMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("THashMap")
            .field("buckets", &self.buckets.len())
            .finish()
    }
}

impl<K: TxValue + Hash + Eq, V: TxValue> Default for THashMap<K, V> {
    fn default() -> Self {
        THashMap::new()
    }
}

impl<K: TxValue + Hash + Eq, V: TxValue> THashMap<K, V> {
    /// A map with the default bucket count (64).
    pub fn new() -> Self {
        THashMap::with_buckets(DEFAULT_BUCKETS)
    }

    /// A map striped across `n` buckets (rounded up to a power of two,
    /// minimum 1).
    pub fn with_buckets(n: usize) -> Self {
        let n = n.max(1).next_power_of_two();
        THashMap {
            buckets: (0..n).map(|_| TVar::new(Vec::new())).collect(),
        }
    }

    /// Number of buckets (fixed at construction).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    fn bucket_of(&self, key: &K) -> &Bucket<K, V> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.buckets[(h.finish() as usize) & (self.buckets.len() - 1)]
    }

    /// The value for `key`, if present.
    ///
    /// # Errors
    ///
    /// [`Retry`] on conflict.
    pub fn get(&self, tx: &mut Transaction<'_>, key: &K) -> Result<Option<V>, Retry> {
        let bucket = tx.read(self.bucket_of(key))?;
        Ok(bucket
            .into_iter()
            .find_map(|(k, v)| (k == *key).then_some(v)))
    }

    /// Whether `key` is present.
    ///
    /// # Errors
    ///
    /// [`Retry`] on conflict.
    pub fn contains_key(&self, tx: &mut Transaction<'_>, key: &K) -> Result<bool, Retry> {
        Ok(self.get(tx, key)?.is_some())
    }

    /// The value for `key`, **blocking** (via [`Transaction::retry`])
    /// until some transaction inserts it: the waiter parks on the key's
    /// bucket stripe and re-runs when a commit touches it. Use
    /// [`THashMap::get`]'s `Ok(None)` when absence is an answer rather
    /// than a reason to wait.
    ///
    /// # Errors
    ///
    /// [`Retry`] on conflict, and whenever `key` is absent (the engine
    /// turns that into a parked wait).
    pub fn get_wait(&self, tx: &mut Transaction<'_>, key: &K) -> Result<V, Retry> {
        match self.get(tx, key)? {
            Some(v) => Ok(v),
            None => tx.retry(),
        }
    }

    /// Inserts `key -> value`, returning the previous value if any.
    ///
    /// # Errors
    ///
    /// [`Retry`] on conflict.
    pub fn insert(&self, tx: &mut Transaction<'_>, key: K, value: V) -> Result<Option<V>, Retry> {
        let var = self.bucket_of(&key);
        let mut bucket = tx.read(var)?;
        let old = match bucket.iter_mut().find(|(k, _)| *k == key) {
            Some(entry) => Some(std::mem::replace(&mut entry.1, value)),
            None => {
                bucket.push((key, value));
                None
            }
        };
        tx.write(var, bucket)?;
        Ok(old)
    }

    /// Removes `key`, returning its value if it was present.
    ///
    /// # Errors
    ///
    /// [`Retry`] on conflict.
    pub fn remove(&self, tx: &mut Transaction<'_>, key: &K) -> Result<Option<V>, Retry> {
        let var = self.bucket_of(key);
        let mut bucket = tx.read(var)?;
        match bucket.iter().position(|(k, _)| k == key) {
            Some(i) => {
                let (_, v) = bucket.swap_remove(i);
                tx.write(var, bucket)?;
                Ok(Some(v))
            }
            None => Ok(None),
        }
    }

    /// Number of entries (scans every bucket; the whole map joins the
    /// read set).
    ///
    /// # Errors
    ///
    /// [`Retry`] on conflict.
    pub fn len(&self, tx: &mut Transaction<'_>) -> Result<usize, Retry> {
        let mut n = 0;
        for b in self.buckets.iter() {
            n += tx.read(b)?.len();
        }
        Ok(n)
    }

    /// Whether the map has no entries (scans every bucket).
    ///
    /// # Errors
    ///
    /// [`Retry`] on conflict.
    pub fn is_empty(&self, tx: &mut Transaction<'_>) -> Result<bool, Retry> {
        for b in self.buckets.iter() {
            if !tx.read(b)?.is_empty() {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// A consistent snapshot of every entry, in unspecified order.
    ///
    /// # Errors
    ///
    /// [`Retry`] on conflict.
    pub fn snapshot(&self, tx: &mut Transaction<'_>) -> Result<Vec<(K, V)>, Retry> {
        let mut out = Vec::new();
        for b in self.buckets.iter() {
            out.extend(tx.read(b)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptm_stm::Stm;

    /// All six algorithms: `get_wait`'s park/wake path must work under
    /// visible reads (Tlrw), mode switching (Adaptive) and snapshot
    /// reads (Mv), not just the invisible-read trio.
    fn engines() -> Vec<Stm> {
        vec![
            Stm::tl2(),
            Stm::incremental(),
            Stm::norec(),
            Stm::tlrw(),
            Stm::mv(),
            Stm::adaptive(),
        ]
    }

    #[test]
    fn get_wait_blocks_until_the_key_arrives_all_modes() {
        for stm in engines() {
            let m: THashMap<u64, String> = THashMap::new();
            std::thread::scope(|s| {
                s.spawn(|| {
                    let v = stm.atomically(|tx| m.get_wait(tx, &1));
                    assert_eq!(v, "ready", "{:?}", stm.algorithm());
                });
                std::thread::sleep(std::time::Duration::from_millis(20));
                stm.atomically(|tx| m.insert(tx, 1, "ready".to_string()));
            });
        }
    }

    #[test]
    fn insert_get_remove_roundtrip_all_modes() {
        for stm in engines() {
            let m: THashMap<u64, String> = THashMap::new();
            let prev = stm.atomically(|tx| m.insert(tx, 1, "one".into()));
            assert_eq!(prev, None);
            let prev = stm.atomically(|tx| m.insert(tx, 1, "uno".into()));
            assert_eq!(prev, Some("one".into()));
            assert_eq!(stm.atomically(|tx| m.get(tx, &1)), Some("uno".to_string()));
            assert_eq!(stm.atomically(|tx| m.remove(tx, &1)), Some("uno".into()));
            assert_eq!(stm.atomically(|tx| m.get(tx, &1)), None);
            assert_eq!(stm.atomically(|tx| m.remove(tx, &1)), None);
        }
    }

    #[test]
    fn len_and_snapshot_cover_all_buckets() {
        let stm = Stm::tl2();
        let m: THashMap<u64, u64> = THashMap::with_buckets(4);
        assert_eq!(m.bucket_count(), 4);
        stm.atomically(|tx| {
            for k in 0..32 {
                m.insert(tx, k, k * 10)?;
            }
            Ok(())
        });
        assert_eq!(stm.atomically(|tx| m.len(tx)), 32);
        assert!(!stm.atomically(|tx| m.is_empty(tx)));
        let mut snap = stm.atomically(|tx| m.snapshot(tx));
        snap.sort_unstable();
        assert_eq!(snap.len(), 32);
        assert_eq!(snap[31], (31, 310));
    }

    #[test]
    fn bucket_count_rounds_up_to_power_of_two() {
        let m: THashMap<u64, u64> = THashMap::with_buckets(3);
        assert_eq!(m.bucket_count(), 4);
        let m: THashMap<u64, u64> = THashMap::with_buckets(0);
        assert_eq!(m.bucket_count(), 1);
    }

    #[test]
    fn single_bucket_still_correct() {
        let stm = Stm::norec();
        let m: THashMap<u64, u64> = THashMap::with_buckets(1);
        stm.atomically(|tx| {
            m.insert(tx, 1, 10)?;
            m.insert(tx, 2, 20)?;
            m.remove(tx, &1)?;
            Ok(())
        });
        assert_eq!(stm.atomically(|tx| m.get(tx, &2)), Some(20));
        assert_eq!(stm.atomically(|tx| m.len(tx)), 1);
    }

    #[test]
    fn clones_share_state() {
        let stm = Stm::tl2();
        let a: THashMap<u64, u64> = THashMap::new();
        let b = a.clone();
        stm.atomically(|tx| a.insert(tx, 9, 9));
        assert_eq!(stm.atomically(|tx| b.get(tx, &9)), Some(9));
    }
}
