//! A Michael–Scott-style transactional FIFO queue.

use crate::link::{Link, NodeRef};
use ptm_stm::{Retry, TVar, Transaction, TxValue};
use std::fmt;

/// One queue node. The sentinel holds `value = None`; every other node
/// holds `Some` until it is dequeued past (the dequeue clears the value
/// of the node that becomes the new sentinel, so dropped-out elements do
/// not linger in the chain).
struct QNode<T: TxValue> {
    value: TVar<Option<T>>,
    next: TVar<Link<QNode<T>>>,
}

/// A transactional FIFO queue in the Michael–Scott shape: a singly
/// linked chain behind a sentinel, with `head` and `tail` pointer
/// `TVar`s.
///
/// The sentinel is the load-bearing trick: enqueuers touch only `tail`
/// and the last node's `next`, dequeuers touch only `head` and the first
/// real node — so while the queue is non-empty, producers and consumers
/// commit without conflicting (the transactional echo of why the
/// Michael–Scott queue scales).
///
/// # Examples
///
/// ```
/// use ptm_stm::Stm;
/// use ptm_structs::TQueue;
///
/// let stm = Stm::tl2();
/// let q: TQueue<u64> = TQueue::new();
/// stm.atomically(|tx| {
///     q.enqueue(tx, 1)?;
///     q.enqueue(tx, 2)
/// });
/// assert_eq!(stm.atomically(|tx| q.dequeue(tx)), Some(1));
/// assert_eq!(stm.atomically(|tx| q.dequeue(tx)), Some(2));
/// assert_eq!(stm.atomically(|tx| q.dequeue(tx)), None);
/// ```
pub struct TQueue<T: TxValue> {
    head: TVar<NodeRef<QNode<T>>>,
    tail: TVar<NodeRef<QNode<T>>>,
}

impl<T: TxValue> Clone for TQueue<T> {
    fn clone(&self) -> Self {
        TQueue {
            head: self.head.clone(),
            tail: self.tail.clone(),
        }
    }
}

impl<T: TxValue> fmt::Debug for TQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TQueue").finish_non_exhaustive()
    }
}

impl<T: TxValue> Default for TQueue<T> {
    fn default() -> Self {
        TQueue::new()
    }
}

impl<T: TxValue> TQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        let sentinel = NodeRef::new(QNode {
            value: TVar::new(None),
            next: TVar::new(None),
        });
        TQueue {
            head: TVar::new(sentinel.clone()),
            tail: TVar::new(sentinel),
        }
    }

    /// Appends `value` at the tail.
    ///
    /// # Errors
    ///
    /// [`Retry`] on conflict.
    pub fn enqueue(&self, tx: &mut Transaction<'_>, value: T) -> Result<(), Retry> {
        let node = NodeRef::new(QNode {
            value: TVar::new(Some(value)),
            next: TVar::new(None),
        });
        let last = tx.read(&self.tail)?;
        tx.write(&last.0.next, Some(node.clone()))?;
        tx.write(&self.tail, node)
    }

    /// Removes and returns the element at the head, or `None` if the
    /// queue is empty.
    ///
    /// # Errors
    ///
    /// [`Retry`] on conflict.
    pub fn dequeue(&self, tx: &mut Transaction<'_>) -> Result<Option<T>, Retry> {
        let sentinel = tx.read(&self.head)?;
        match tx.read(&sentinel.0.next)? {
            None => Ok(None),
            Some(first) => {
                let value = tx.read(&first.0.value)?;
                // `first` becomes the new sentinel; clear its value so
                // the dequeued element is dropped with the transaction's
                // garbage, not retained by the chain.
                tx.write(&first.0.value, None)?;
                tx.write(&self.head, first)?;
                Ok(value)
            }
        }
    }

    /// Removes and returns the element at the head, **blocking** (via
    /// [`Transaction::retry`]) until one exists: the transaction parks
    /// on the queue's head stripes and re-runs when an enqueue commits —
    /// no polling loop, no busy re-execution against an empty queue.
    ///
    /// [`TQueue::dequeue`]'s `Ok(None)` return is the explicit
    /// *non-blocking* opt-out: use it when an empty queue is an answer
    /// (polling, draining, opportunistic batching) rather than a reason
    /// to wait. Combine this method with [`Transaction::or_else`] to
    /// wait on a queue *or* some other condition (e.g. a shutdown flag).
    ///
    /// # Errors
    ///
    /// [`Retry`] on conflict, and — by design — whenever the queue is
    /// empty (the engine turns that into a parked wait rather than a
    /// spin).
    ///
    /// # Examples
    ///
    /// ```
    /// use ptm_stm::Stm;
    /// use ptm_structs::TQueue;
    /// use std::thread;
    ///
    /// let stm = Stm::tl2();
    /// let q: TQueue<u64> = TQueue::new();
    /// thread::scope(|s| {
    ///     s.spawn(|| {
    ///         // Sleeps until the enqueue below commits.
    ///         assert_eq!(stm.atomically(|tx| q.dequeue_wait(tx)), 42);
    ///     });
    ///     stm.atomically(|tx| q.enqueue(tx, 42));
    /// });
    /// ```
    pub fn dequeue_wait(&self, tx: &mut Transaction<'_>) -> Result<T, Retry> {
        match self.dequeue(tx)? {
            Some(value) => Ok(value),
            None => tx.retry(),
        }
    }

    /// Reads the head element without removing it.
    ///
    /// # Errors
    ///
    /// [`Retry`] on conflict.
    pub fn peek(&self, tx: &mut Transaction<'_>) -> Result<Option<T>, Retry> {
        let sentinel = tx.read(&self.head)?;
        match tx.read(&sentinel.0.next)? {
            None => Ok(None),
            Some(first) => tx.read(&first.0.value),
        }
    }

    /// Whether the queue holds no elements.
    ///
    /// # Errors
    ///
    /// [`Retry`] on conflict.
    pub fn is_empty(&self, tx: &mut Transaction<'_>) -> Result<bool, Retry> {
        let sentinel = tx.read(&self.head)?;
        Ok(tx.read(&sentinel.0.next)?.is_none())
    }

    /// Number of queued elements (walks the whole chain; the entire
    /// queue joins the read set).
    ///
    /// # Errors
    ///
    /// [`Retry`] on conflict.
    pub fn len(&self, tx: &mut Transaction<'_>) -> Result<usize, Retry> {
        let mut n = 0;
        let mut cur = tx.read(&self.head)?;
        while let Some(next) = tx.read(&cur.0.next)? {
            n += 1;
            cur = next;
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptm_stm::Stm;

    /// All six algorithms: the wait paths (`dequeue_wait`) must park and
    /// wake correctly under visible reads (Tlrw), mode switching
    /// (Adaptive) and snapshot reads (Mv), not just the invisible-read
    /// trio.
    fn engines() -> Vec<Stm> {
        vec![
            Stm::tl2(),
            Stm::incremental(),
            Stm::norec(),
            Stm::tlrw(),
            Stm::mv(),
            Stm::adaptive(),
        ]
    }

    #[test]
    fn fifo_order_all_modes() {
        for stm in engines() {
            let q: TQueue<u64> = TQueue::new();
            assert_eq!(stm.atomically(|tx| q.dequeue(tx)), None);
            stm.atomically(|tx| {
                for i in 0..5 {
                    q.enqueue(tx, i)?;
                }
                Ok(())
            });
            assert_eq!(stm.atomically(|tx| q.len(tx)), 5);
            assert_eq!(stm.atomically(|tx| q.peek(tx)), Some(0));
            for i in 0..5 {
                assert_eq!(stm.atomically(|tx| q.dequeue(tx)), Some(i));
            }
            assert_eq!(stm.atomically(|tx| q.dequeue(tx)), None);
            assert!(stm.atomically(|tx| q.is_empty(tx)));
        }
    }

    #[test]
    fn enqueue_and_dequeue_compose_in_one_transaction() {
        let stm = Stm::tl2();
        let q: TQueue<String> = TQueue::new();
        let out = stm.atomically(|tx| {
            q.enqueue(tx, "a".into())?;
            q.enqueue(tx, "b".into())?;
            q.dequeue(tx)
        });
        assert_eq!(out, Some("a".to_string()));
        assert_eq!(stm.atomically(|tx| q.len(tx)), 1);
    }

    #[test]
    fn interleaved_refill_preserves_order() {
        let stm = Stm::norec();
        let q: TQueue<u64> = TQueue::new();
        stm.atomically(|tx| q.enqueue(tx, 1));
        stm.atomically(|tx| q.enqueue(tx, 2));
        assert_eq!(stm.atomically(|tx| q.dequeue(tx)), Some(1));
        stm.atomically(|tx| q.enqueue(tx, 3));
        assert_eq!(stm.atomically(|tx| q.dequeue(tx)), Some(2));
        assert_eq!(stm.atomically(|tx| q.dequeue(tx)), Some(3));
        assert_eq!(stm.atomically(|tx| q.dequeue(tx)), None);
    }

    #[test]
    fn dequeue_wait_blocks_until_an_enqueue_commits() {
        for stm in engines() {
            let q: TQueue<u64> = TQueue::new();
            std::thread::scope(|s| {
                s.spawn(|| {
                    assert_eq!(stm.atomically(|tx| q.dequeue_wait(tx)), 7);
                });
                // Give the consumer a chance to park before producing.
                std::thread::sleep(std::time::Duration::from_millis(20));
                stm.atomically(|tx| q.enqueue(tx, 7));
            });
        }
    }

    #[test]
    fn dequeue_wait_returns_immediately_when_nonempty() {
        let stm = Stm::tl2();
        let q: TQueue<u64> = TQueue::new();
        stm.atomically(|tx| q.enqueue(tx, 1));
        assert_eq!(stm.atomically(|tx| q.dequeue_wait(tx)), 1);
    }

    #[test]
    fn clones_share_the_queue() {
        let stm = Stm::tl2();
        let a: TQueue<u64> = TQueue::new();
        let b = a.clone();
        stm.atomically(|tx| a.enqueue(tx, 9));
        assert_eq!(stm.atomically(|tx| b.dequeue(tx)), Some(9));
    }
}
