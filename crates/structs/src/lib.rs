//! # ptm-structs — transactional data structures over the native STM
//!
//! The engine in [`ptm_stm`] exposes raw [`TVar`](ptm_stm::TVar)s; this
//! crate builds the data-structure layer the ROADMAP's workload families
//! need, each usable from ordinary transactions under **any** of the
//! five validation algorithms (TL2 / NOrec / incremental / TLRW's
//! visible reads / the adaptive controller over the last two regimes):
//!
//! * [`TArray`] — a fixed-length array of `TVar` slots with transactional
//!   indexing, swap, and whole-array snapshots;
//! * [`THashMap`] — a bucket-striped hash map: keys conflict only when
//!   they hash to the same bucket, so disjoint-key transactions commit in
//!   parallel (the weak-DAP regime the paper prices);
//! * [`TQueue`] — a Michael–Scott-style linked queue with a sentinel
//!   node, so producers (tail) and consumers (head) touch disjoint
//!   `TVar`s whenever the queue is non-empty;
//! * [`TSet`] — an ordered linked-list set with transactional insert,
//!   remove, membership, and range scans.
//!
//! Every operation takes an in-flight [`Transaction`](ptm_stm::Transaction)
//! and composes: a user transaction can move an element from a queue into
//! a map and a set atomically, and the whole step commits or retries as
//! one.
//!
//! ```
//! use ptm_stm::Stm;
//! use ptm_structs::{THashMap, TQueue};
//!
//! let stm = Stm::tl2();
//! let inbox: TQueue<u64> = TQueue::new();
//! let seen: THashMap<u64, u64> = THashMap::new();
//!
//! stm.atomically(|tx| inbox.enqueue(tx, 7));
//! // Atomically move the head of the queue into the map.
//! let moved = stm.atomically(|tx| {
//!     match inbox.dequeue(tx)? {
//!         Some(x) => {
//!             seen.insert(tx, x, x * x)?;
//!             Ok(Some(x))
//!         }
//!         None => Ok(None),
//!     }
//! });
//! assert_eq!(moved, Some(7));
//! ```
//!
//! Linked structures ([`TQueue`], [`TSet`]) drop their node chains
//! recursively; keep individual instances below roughly ten thousand
//! live elements at drop time (the workload sizes this crate's tests and
//! benchmarks exercise are far below that).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

mod array;
mod link;
mod map;
mod queue;
mod set;

pub use array::TArray;
pub use map::THashMap;
pub use queue::TQueue;
pub use set::TSet;
