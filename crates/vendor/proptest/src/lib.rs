//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! micro-crate implements the subset of the proptest API the workspace's
//! property tests use:
//!
//! * the [`proptest!`] macro with `#![proptest_config(...)]` and
//!   `name(arg in strategy, ...)` test functions;
//! * [`Strategy`](strategy::Strategy) with `prop_map`,
//!   [`Just`](strategy::Just), integer-range strategies, tuple
//!   strategies (arity 2 and 3), [`collection::vec()`], and
//!   [`arbitrary::any()`] for `bool` and unsigned integers;
//! * the [`prop_oneof!`], [`prop_assert!`] and [`prop_assert_eq!`]
//!   macros;
//! * [`prelude::ProptestConfig`] with `with_cases`.
//!
//! Cases are generated from a fixed deterministic seed so failures
//! reproduce across runs. **Shrinking is not implemented** — a failing
//! case reports the case number and message only.

/// Test-runner plumbing: deterministic RNG, config, and the error type
/// that `prop_assert!` produces.
pub mod test_runner {
    use std::fmt;

    /// Error returned by a failing property-test case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// A failed assertion/case with the given explanation.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Per-run configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` generated inputs per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic generator used to drive strategies (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The fixed-seed generator used by [`crate::proptest!`].
        pub fn deterministic() -> Self {
            TestRng {
                state: 0x00C0_FFEE_D00D,
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform sample in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span + 1) as $t)
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }

    /// Object-safe strategy view, used by [`Union`] so `prop_oneof!` can
    /// mix strategies of different concrete types.
    pub trait DynStrategy<V> {
        /// Draws one value through the erased strategy.
        fn generate_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// Uniform choice between several strategies (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<Box<dyn DynStrategy<V>>>,
    }

    impl<V> std::fmt::Debug for Union<V> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Union")
                .field("arms", &self.arms.len())
                .finish()
        }
    }

    impl<V> Union<V> {
        /// A union over the given erased arms.
        ///
        /// # Panics
        ///
        /// Panics if `arms` is empty.
        pub fn new(arms: Vec<Box<dyn DynStrategy<V>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate_dyn(rng)
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with length drawn from `len` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// Output of [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.len.start < self.len.end, "empty length range");
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    /// The strategy returned by [`any`].
    #[derive(Debug)]
    pub struct AnyStrategy<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Strategy generating arbitrary values of `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

/// One-stop import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    (@impl $cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic();
                for case in 0..cfg.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("proptest {} case {case} failed: {e}", stringify!($name));
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// `assert!` returning a [`test_runner::TestCaseError`] instead of
/// panicking (so the runner can report the case number).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                a,
                b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                a,
                b
            )));
        }
    }};
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(::std::boxed::Box::new($arm) as ::std::boxed::Box<dyn $crate::strategy::DynStrategy<_>>,)+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(x in 0u64..10, pair in (0usize..3, any::<bool>())) {
            prop_assert!(x < 10);
            prop_assert!(pair.0 < 3);
        }

        #[test]
        fn mapped_vec(v in crate::collection::vec((1u64..5).prop_map(|x| x * 2), 0..8)) {
            prop_assert!(v.len() < 8);
            for x in v {
                prop_assert!(x % 2 == 0 && (2..10).contains(&x));
            }
        }

        #[test]
        fn oneof_mixes_arms(v in crate::collection::vec(
            prop_oneof![Just(1u64), 10u64..20, 100u64..200],
            1..64,
        )) {
            for x in v {
                prop_assert!(x == 1u64 || (10u64..20).contains(&x) || (100u64..200).contains(&x));
            }
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(b in any::<bool>()) {
            let seen: i32 = if b { 1 } else { 0 };
            prop_assert!(seen == 0 || seen == 1);
        }
    }

    #[test]
    fn prop_assert_reports_case() {
        proptest! {
            #[allow(unused)]
            fn always_fails(x in 0u64..2) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        let err = std::panic::catch_unwind(always_fails).unwrap_err();
        let msg = err.downcast_ref::<String>().expect("panic message");
        assert!(msg.contains("case 0 failed"), "{msg}");
    }
}
