//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! micro-crate provides exactly the subset of the rand 0.8 API the
//! workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer ranges, and [`Rng::gen_bool`].
//!
//! The generator is SplitMix64 — statistically solid for test scheduling
//! and far smaller than ChaCha. Streams are deterministic per seed, which
//! is the only property the workspace relies on (reproducible schedules),
//! but they are **not** bit-compatible with the real `StdRng`.

use std::ops::{Range, RangeInclusive};

/// Core random-source trait: everything is derived from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples uniformly from a range (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 high-quality bits -> uniform in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// A range that can be sampled uniformly; implemented for the integer
/// `Range` / `RangeInclusive` types the workspace uses.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seeded generator (SplitMix64 under the hood).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = r.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(2i32..=4);
            assert!((2..=4).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "suspicious bias: {hits}");
    }
}
