//! A multi-version TM — the "keep old versions" design point the paper
//! contrasts with (Perelman–Fan–Keidar, PODC'10, cited as [22]).
//!
//! Read-only transactions never validate *and* never abort: they read
//! from the consistent snapshot defined by their start time, served from
//! a bounded ring of recent versions per t-object. The price, again, is
//! weak DAP (a global version clock orders commits) **and space** — the
//! very resource Theorem 3(2) shows single-version invisible-read TMs
//! must spend on reads; here it moves into per-object version storage.
//!
//! The **native twin** is `ptm-stm`'s `Algorithm::Mv`
//! (`crates/stm/src/algo/mv.rs`): same snapshot-timestamp reads and same
//! append-at-commit protocol, transplanted from the step-counting
//! simulator onto real threads — with one deliberate difference. The
//! simulated ring is *bounded*, so a slow reader's snapshot can be
//! evicted and the read aborts (the `reader_aborts_only_after_ring_
//! eviction` case below); the native version chain is trimmed by
//! *liveness* instead (the low-watermark collector over registered
//! snapshots in `crates/stm/src/epoch.rs`), so a native read-only
//! transaction never aborts at all — at the cost of chains growing with
//! the oldest straggler. `tests/history_crosscheck.rs` runs the native
//! twin's histories through the same opacity checker this module's
//! tests use.
//!
//! ## Protocol
//!
//! Global `clock`. Per t-object `X`, a ring of `K` versions
//! (`stamp[X][j]`, `val[X][j]`), a `head[X]` slot index, and a `lock[X]`
//! word for committers.
//!
//! * begin (lazy): `rv ← clock`.
//! * `read(X)` in a transaction that has written nothing yet: walk the
//!   ring from `head` backwards to the newest version with
//!   `stamp ≤ rv`; abort only if the ring no longer holds it (the
//!   snapshot was evicted — the bounded-history compromise; the unbounded
//!   paper construction never aborts).
//! * Updating transactions read like TL2 (newest version, abort if newer
//!   than `rv`) and commit by locking their write set, re-validating
//!   reads, then pushing a fresh version stamped `clock++` onto each ring.
//!
//! A transaction that performed reads *before* its first write continues
//! with its snapshot; the commit-time validation catches conflicts.

use crate::api::{Aborted, SimTm, SimTxn, TmProperties};
use ptm_sim::{BaseObjectId, Ctx, Home, SimBuilder, TObjId, TxId, Word};
use std::sync::Arc;

/// Versions retained per t-object.
pub const DEFAULT_VERSIONS: usize = 4;

#[derive(Debug)]
struct Layout {
    clock: BaseObjectId,
    /// `lock[X]`: 0 free, else committer pid + 1.
    lock: Vec<BaseObjectId>,
    /// `head[X]`: index of the newest ring slot.
    head: Vec<BaseObjectId>,
    /// `stamp[X][j]`, `val[X][j]`.
    stamp: Vec<Vec<BaseObjectId>>,
    val: Vec<Vec<BaseObjectId>>,
    k: usize,
}

/// The bounded multi-version TM (see module docs).
#[derive(Debug, Clone)]
pub struct MvTm {
    layout: Arc<Layout>,
}

impl MvTm {
    /// Allocates rings of [`DEFAULT_VERSIONS`] versions.
    pub fn install(builder: &mut SimBuilder, n_tobjects: usize) -> Self {
        Self::install_with_versions(builder, n_tobjects, DEFAULT_VERSIONS)
    }

    /// Allocates rings of `k` versions per t-object.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`.
    pub fn install_with_versions(builder: &mut SimBuilder, n_tobjects: usize, k: usize) -> Self {
        assert!(k >= 2, "a version ring needs at least 2 slots");
        let clock = builder.alloc("mv.clock", 0, Home::Global);
        let lock = (0..n_tobjects)
            .map(|i| builder.alloc(format!("mv.lock[X{i}]"), 0, Home::Global))
            .collect();
        let head = (0..n_tobjects)
            .map(|i| builder.alloc(format!("mv.head[X{i}]"), 0, Home::Global))
            .collect();
        let stamp = (0..n_tobjects)
            .map(|i| {
                (0..k)
                    .map(|j| builder.alloc(format!("mv.stamp[X{i}][{j}]"), 0, Home::Global))
                    .collect()
            })
            .collect();
        let val = (0..n_tobjects)
            .map(|i| {
                (0..k)
                    .map(|j| builder.alloc(format!("mv.val[X{i}][{j}]"), 0, Home::Global))
                    .collect()
            })
            .collect();
        MvTm {
            layout: Arc::new(Layout {
                clock,
                lock,
                head,
                stamp,
                val,
                k,
            }),
        }
    }
}

impl SimTm for MvTm {
    fn name(&self) -> &'static str {
        "mv"
    }

    fn n_tobjects(&self) -> usize {
        self.layout.lock.len()
    }

    fn properties(&self) -> TmProperties {
        TmProperties {
            weak_dap: false, // global clock
            invisible_reads: true,
            opaque: true,
            strongly_progressive: false, // ring eviction can abort a lone
            // reader whose snapshot aged out, which Definition 1 forgives
            // only if a conflict exists; be conservative in the claim.
            blocking: false,
        }
    }

    fn begin(&self, _tx: TxId) -> Box<dyn SimTxn> {
        Box::new(MvTxn {
            layout: Arc::clone(&self.layout),
            rv: None,
            rset: Vec::new(),
            wset: Vec::new(),
        })
    }
}

#[derive(Debug)]
struct MvTxn {
    layout: Arc<Layout>,
    rv: Option<Word>,
    /// `(item, stamp observed)` for commit-time validation of updaters.
    rset: Vec<(TObjId, Word)>,
    wset: Vec<(TObjId, Word)>,
}

impl MvTxn {
    fn snapshot(&mut self, ctx: &Ctx) -> Word {
        match self.rv {
            Some(rv) => rv,
            None => {
                let rv = ctx.read(self.layout.clock);
                self.rv = Some(rv);
                rv
            }
        }
    }

    fn buffered(&self, x: TObjId) -> Option<Word> {
        self.wset
            .iter()
            .rev()
            .find(|(y, _)| *y == x)
            .map(|(_, v)| *v)
    }

    /// Walks the ring backwards from `head` to the newest version with
    /// `stamp ≤ rv`. Returns `(stamp, value)`.
    ///
    /// The lock check up front is what makes multi-item snapshots
    /// consistent: a committer holds its locks from *before* it draws its
    /// write stamp until *after* it published every item, so any commit
    /// we might tear across either aborts us here or drew a stamp newer
    /// than our snapshot (the clock is monotonic) and is filtered by
    /// `stamp ≤ rv`.
    fn read_version(&self, ctx: &Ctx, x: TObjId, rv: Word) -> Result<(Word, Word), Aborted> {
        let l = &self.layout;
        let k = l.k;
        if ctx.read(l.lock[x.index()]) != 0 {
            return Err(Aborted); // concurrent committer on X
        }
        let head = ctx.read(l.head[x.index()]) as usize % k;
        for back in 0..k {
            let j = (head + k - back) % k;
            let s = ctx.read(l.stamp[x.index()][j]);
            if s <= rv {
                let v = ctx.read(l.val[x.index()][j]);
                // The slot may have been recycled while we read it; a
                // stable stamp means the pair (stamp, value) is intact
                // (writers bump the stamp before the value, under lock).
                if ctx.read(l.stamp[x.index()][j]) != s {
                    return Err(Aborted);
                }
                return Ok((s, v));
            }
        }
        // Every retained version is newer than our snapshot: evicted.
        Err(Aborted)
    }
}

impl SimTxn for MvTxn {
    fn read(&mut self, ctx: &Ctx, x: TObjId) -> Result<Word, Aborted> {
        if let Some(v) = self.buffered(x) {
            return Ok(v);
        }
        let rv = self.snapshot(ctx);
        let (s, v) = self.read_version(ctx, x, rv)?;
        self.rset.push((x, s));
        Ok(v)
    }

    fn write(&mut self, ctx: &Ctx, x: TObjId, v: Word) -> Result<(), Aborted> {
        self.snapshot(ctx);
        if let Some(slot) = self.wset.iter_mut().find(|(y, _)| *y == x) {
            slot.1 = v;
        } else {
            self.wset.push((x, v));
        }
        Ok(())
    }

    fn try_commit(&mut self, ctx: &Ctx) -> Result<(), Aborted> {
        if self.wset.is_empty() {
            return Ok(()); // read-only: consistent snapshot by versions
        }
        let l = Arc::clone(&self.layout);
        let me = ctx.pid().index() as Word + 1;
        let mut to_lock: Vec<TObjId> = self.wset.iter().map(|(x, _)| *x).collect();
        to_lock.sort_unstable();
        let mut held: Vec<TObjId> = Vec::new();
        for x in to_lock {
            if !ctx.cas(l.lock[x.index()], 0, me) {
                return self.rollback(ctx, &held);
            }
            held.push(x);
        }
        // Validate: for every read item, no committer may be mid-flight
        // on it (their stamp may not be published yet — skipping this
        // check admits write skew between two concurrent committers), and
        // the newest version must still be the one we observed.
        let rv = self.snapshot(ctx);
        for &(y, s) in &self.rset {
            if !held.contains(&y) && ctx.read(l.lock[y.index()]) != 0 {
                return self.rollback(ctx, &held);
            }
            let head = ctx.read(l.head[y.index()]) as usize % l.k;
            let newest = ctx.read(l.stamp[y.index()][head]);
            if newest > rv || (newest != s && !held.contains(&y)) {
                return self.rollback(ctx, &held);
            }
        }
        let wv = ctx.fetch_add(l.clock, 1) + 1;
        for &(x, v) in &self.wset {
            let head = ctx.read(l.head[x.index()]) as usize % l.k;
            let next = (head + 1) % l.k;
            // Stamp first, then value, then publish via head. A reader
            // that saw the old stamp and a recycled value re-checks the
            // stamp and aborts; a reader that sees the new stamp skips
            // the slot (its snapshot predates `wv` — readers whose
            // snapshot could include `wv` are excluded by the lock
            // check, since we hold the lock until everything is out).
            ctx.write(l.stamp[x.index()][next], wv);
            ctx.write(l.val[x.index()][next], v);
            ctx.write(l.head[x.index()], next as Word);
        }
        for &x in &held {
            ctx.write(l.lock[x.index()], 0);
        }
        Ok(())
    }
}

impl MvTxn {
    fn rollback(&mut self, ctx: &Ctx, held: &[TObjId]) -> Result<(), Aborted> {
        for &x in held {
            ctx.write(self.layout.lock[x.index()], 0);
        }
        Err(Aborted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::TmHarness;
    use ptm_sim::{ProcessId, TOpResult};

    fn harness(n: usize, objects: usize) -> TmHarness {
        TmHarness::new(n, move |b| Arc::new(MvTm::install(b, objects)))
    }

    #[test]
    fn solo_roundtrip() {
        let mut h = harness(1, 2);
        let p = ProcessId::new(0);
        h.run_writer(p, &[(TObjId::new(0), 5), (TObjId::new(1), 6)]);
        h.begin(p);
        assert_eq!(h.read(p, TObjId::new(0)).0, TOpResult::Value(5));
        assert_eq!(h.read(p, TObjId::new(1)).0, TOpResult::Value(6));
        assert_eq!(h.try_commit(p).0, TOpResult::Committed);
        h.stop_all();
        assert!(ptm_model::is_opaque(&h.history()));
    }

    #[test]
    fn reader_survives_concurrent_commits() {
        // The headline feature: a read-only transaction keeps reading its
        // snapshot while writers commit around it — no validation, no
        // abort, O(1)-ish steps per read.
        let mut h = harness(2, 2);
        let (reader, writer) = (ProcessId::new(0), ProcessId::new(1));
        h.run_writer(writer, &[(TObjId::new(0), 10), (TObjId::new(1), 20)]);
        h.begin(reader);
        assert_eq!(h.read(reader, TObjId::new(0)).0, TOpResult::Value(10));
        // Writer overwrites BOTH items.
        h.run_writer(writer, &[(TObjId::new(0), 11), (TObjId::new(1), 21)]);
        // The reader still sees its snapshot: 20, not 21.
        assert_eq!(h.read(reader, TObjId::new(1)).0, TOpResult::Value(20));
        assert_eq!(h.try_commit(reader).0, TOpResult::Committed);
        h.stop_all();
        let hist = h.history();
        assert!(ptm_model::is_opaque(&hist));
    }

    #[test]
    fn reader_aborts_only_after_ring_eviction() {
        let mut h = harness(2, 1);
        let (reader, writer) = (ProcessId::new(0), ProcessId::new(1));
        h.begin(reader);
        assert_eq!(h.read(reader, TObjId::new(0)).0, TOpResult::Value(0));
        // DEFAULT_VERSIONS commits push the snapshot out of the ring.
        for round in 0..DEFAULT_VERSIONS as u64 + 1 {
            h.run_writer(writer, &[(TObjId::new(0), 100 + round)]);
        }
        // Re-reading the same item still works (cached stamp in rset is
        // not consulted; ring walk finds... nothing ≤ rv): abort.
        let mut h2 = harness(2, 2);
        let (reader, writer) = (ProcessId::new(0), ProcessId::new(1));
        h2.begin(reader);
        assert_eq!(h2.read(reader, TObjId::new(0)).0, TOpResult::Value(0));
        for round in 0..DEFAULT_VERSIONS as u64 + 1 {
            h2.run_writer(writer, &[(TObjId::new(1), 100 + round)]);
        }
        let (res, _) = h2.read(reader, TObjId::new(1));
        assert_eq!(res, TOpResult::Aborted, "snapshot evicted from the ring");
        h2.stop_all();
        assert!(ptm_model::is_opaque(&h2.history()));
    }

    #[test]
    fn write_write_conflict_has_one_winner() {
        let mut h = harness(2, 1);
        let (p0, p1) = (ProcessId::new(0), ProcessId::new(1));
        h.begin(p0);
        h.begin(p1);
        let _ = h.read(p0, TObjId::new(0));
        let _ = h.read(p1, TObjId::new(0));
        let _ = h.write(p0, TObjId::new(0), 1);
        let _ = h.write(p1, TObjId::new(0), 2);
        let (r0, _) = h.try_commit(p0);
        let (r1, _) = h.try_commit(p1);
        assert_eq!(r0, TOpResult::Committed);
        assert_eq!(
            r1,
            TOpResult::Aborted,
            "second writer validated against the commit"
        );
        h.stop_all();
        assert!(ptm_model::is_opaque(&h.history()));
    }

    #[test]
    fn reads_cost_constant_steps() {
        let m = 8;
        let mut h = TmHarness::new(2, move |b| Arc::new(MvTm::install(b, m)));
        let (reader, writer) = (ProcessId::new(0), ProcessId::new(1));
        for i in 0..m {
            h.run_writer(writer, &[(TObjId::new(i), 1)]);
        }
        h.begin(reader);
        let mut costs = Vec::new();
        for i in 0..m {
            let (res, cost) = h.read(reader, TObjId::new(i));
            assert_eq!(res, TOpResult::Value(1));
            costs.push(cost.steps);
        }
        // No incremental validation: cost does not grow with i (the
        // first read additionally pays the lazy snapshot's clock read).
        assert!(costs[1..].windows(2).all(|w| w[0] == w[1]), "{costs:?}");
        assert_eq!(costs[0], costs[1] + 1, "{costs:?}");
        assert!(*costs.last().expect("non-empty") <= 8);
        h.stop_all();
    }
}
