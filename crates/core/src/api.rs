//! The TM interface over the simulated shared memory.
//!
//! Every TM algorithm in this crate implements [`SimTm`]: a factory of
//! per-transaction state ([`SimTxn`]) whose operations apply primitives
//! through a [`Ctx`], so each algorithm's step counts, RMRs and base-object
//! access patterns are measured exactly. A TM also self-describes the
//! paper-level properties it claims ([`TmProperties`]); the test suite
//! validates each claim with the `ptm-model` checkers.

use ptm_sim::{Ctx, TObjId, TxId, Word};
use std::fmt;

/// The abort outcome `A_k` of a t-operation.
///
/// Returned as the error of every transactional operation. After an
/// operation returns `Aborted` the transaction is dead: the TM has already
/// released any resources it held, and further operations on the same
/// [`SimTxn`] are a programming error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Aborted;

impl fmt::Display for Aborted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "transaction aborted")
    }
}

impl std::error::Error for Aborted {}

/// Paper-level properties a TM implementation claims. Each claim is
/// checked by the test suite against the `ptm-model` checkers; the
/// experiment harness uses them to label table rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TmProperties {
    /// Weak disjoint-access parallelism: disjoint-access transactions
    /// never contend on a base object.
    pub weak_dap: bool,
    /// Invisible reads: read-only transactions apply no nontrivial
    /// primitive (implies weak invisible reads).
    pub invisible_reads: bool,
    /// Opacity (vs. only strict serializability).
    pub opaque: bool,
    /// Strong progressiveness (Definition 1).
    pub strongly_progressive: bool,
    /// Whether operations can block (spin) rather than abort — a blocking
    /// TM trivially avoids aborts but gives up interval-contention-free
    /// liveness under contention.
    pub blocking: bool,
}

/// A TM implementation over the simulated shared memory.
///
/// Implementations allocate their base-object layout up front (in their
/// constructor, from a [`ptm_sim::SimBuilder`]) and hand out transaction
/// state from [`begin`](SimTm::begin). They are shared across process
/// closures behind an `Arc`.
pub trait SimTm: Send + Sync {
    /// Short name used in experiment tables (e.g. `"ir-progressive"`).
    fn name(&self) -> &'static str;

    /// Number of t-objects the TM was installed with.
    fn n_tobjects(&self) -> usize;

    /// The properties this implementation claims.
    fn properties(&self) -> TmProperties;

    /// Starts a transaction. No steps are taken here; all algorithms
    /// initialize lazily at the first operation so that every memory step
    /// is attributed to a t-operation.
    fn begin(&self, tx: TxId) -> Box<dyn SimTxn>;
}

/// Per-transaction state: the three t-operations of the paper's interface.
///
/// All operations return [`Aborted`] as `Err`; per the TM interface, an
/// abort ends the transaction.
pub trait SimTxn: Send {
    /// `read_k(X)`: returns the value of `X` or aborts.
    ///
    /// # Errors
    ///
    /// [`Aborted`] on a data conflict with a concurrent transaction.
    fn read(&mut self, ctx: &Ctx, x: TObjId) -> Result<Word, Aborted>;

    /// `write_k(X, v)`: buffers or applies the write, or aborts.
    ///
    /// # Errors
    ///
    /// [`Aborted`] on a data conflict with a concurrent transaction.
    fn write(&mut self, ctx: &Ctx, x: TObjId, v: Word) -> Result<(), Aborted>;

    /// `tryC_k()`: attempts to commit.
    ///
    /// # Errors
    ///
    /// [`Aborted`] if the transaction cannot be serialized.
    fn try_commit(&mut self, ctx: &Ctx) -> Result<(), Aborted>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aborted_displays() {
        assert_eq!(Aborted.to_string(), "transaction aborted");
    }

    #[test]
    fn traits_are_object_safe() {
        // Compile-time check: the traits must be usable as trait objects.
        fn _takes_tm(_: &dyn SimTm) {}
        fn _takes_txn(_: &mut dyn SimTxn) {}
    }
}
