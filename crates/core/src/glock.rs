//! The single-global-lock TM — the degenerate strongly progressive
//! baseline.
//!
//! Every transaction acquires one global test-and-test-and-set lock at its
//! first operation and holds it to commit, executing serially. No
//! transaction ever aborts, so progressiveness and strong progressiveness
//! hold vacuously, and the serial execution is trivially opaque. What it
//! gives up is *everything else*: reads are "invisible" only in the
//! degenerate sense that the lock acquisition precedes them (the
//! transaction as a whole is highly visible), there is no DAP, and
//! liveness is blocking.
//!
//! Its role in the reproduction: it is the simplest strictly serializable
//! strongly progressive single-object TM to feed Algorithm 1, giving the
//! cleanest RMR accounting of the mutex reduction (Theorem 7 requires only
//! strict serializability + strong progressiveness + single t-object).

use crate::api::{Aborted, SimTm, SimTxn, TmProperties};
use ptm_sim::{BaseObjectId, Ctx, Home, SimBuilder, TObjId, TxId, Word};
use std::sync::Arc;

#[derive(Debug)]
struct Layout {
    lock: BaseObjectId,
    val: Vec<BaseObjectId>,
}

/// The global-lock TM (see module docs).
#[derive(Debug, Clone)]
pub struct GlockTm {
    layout: Arc<Layout>,
}

impl GlockTm {
    /// Allocates the lock and the value cells.
    pub fn install(builder: &mut SimBuilder, n_tobjects: usize) -> Self {
        let lock = builder.alloc("glock.lock", 0, Home::Global);
        let val = (0..n_tobjects)
            .map(|i| builder.alloc(format!("glock.val[X{i}]"), 0, Home::Global))
            .collect();
        GlockTm {
            layout: Arc::new(Layout { lock, val }),
        }
    }
}

impl SimTm for GlockTm {
    fn name(&self) -> &'static str {
        "glock"
    }

    fn n_tobjects(&self) -> usize {
        self.layout.val.len()
    }

    fn properties(&self) -> TmProperties {
        TmProperties {
            weak_dap: false,
            invisible_reads: false,
            opaque: true,
            strongly_progressive: true,
            blocking: true,
        }
    }

    fn begin(&self, _tx: TxId) -> Box<dyn SimTxn> {
        Box::new(GlockTxn {
            layout: Arc::clone(&self.layout),
            holding: false,
            undo: Vec::new(),
        })
    }
}

#[derive(Debug)]
struct GlockTxn {
    layout: Arc<Layout>,
    holding: bool,
    /// Values overwritten by this transaction (unused while no aborts are
    /// possible, but kept so a future timeout/abort path could roll back).
    undo: Vec<(TObjId, Word)>,
}

impl GlockTxn {
    /// Test-and-test-and-set acquisition: spin on reads, then CAS.
    fn acquire(&mut self, ctx: &Ctx) {
        if self.holding {
            return;
        }
        loop {
            while ctx.read(self.layout.lock) != 0 {}
            if ctx.cas(self.layout.lock, 0, 1) {
                self.holding = true;
                return;
            }
        }
    }
}

impl SimTxn for GlockTxn {
    fn read(&mut self, ctx: &Ctx, x: TObjId) -> Result<Word, Aborted> {
        self.acquire(ctx);
        Ok(ctx.read(self.layout.val[x.index()]))
    }

    fn write(&mut self, ctx: &Ctx, x: TObjId, v: Word) -> Result<(), Aborted> {
        self.acquire(ctx);
        let old = ctx.swap(self.layout.val[x.index()], v);
        self.undo.push((x, old));
        Ok(())
    }

    fn try_commit(&mut self, ctx: &Ctx) -> Result<(), Aborted> {
        if self.holding {
            ctx.write(self.layout.lock, 0);
            self.holding = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptm_sim::{run_policy, RoundRobin};

    #[test]
    fn solo_roundtrip() {
        let mut b = SimBuilder::new(1);
        let tm = GlockTm::install(&mut b, 1);
        let tm2 = tm.clone();
        b.add_process(move |ctx| {
            let mut t = tm2.begin(TxId::new(1));
            t.write(ctx, TObjId::new(0), 5).unwrap();
            assert_eq!(t.read(ctx, TObjId::new(0)).unwrap(), 5);
            t.try_commit(ctx).unwrap();
        });
        let sim = b.start();
        sim.run_to_block(0.into(), 1000);
        assert!(sim.panic_of(0.into()).is_none());
    }

    #[test]
    fn contended_counter_never_aborts() {
        let n = 4;
        let per = 5;
        let mut b = SimBuilder::new(n);
        let tm = GlockTm::install(&mut b, 1);
        for p in 0..n {
            let tmc = tm.clone();
            b.add_process(move |ctx| {
                for k in 0..per {
                    let mut t = tmc.begin(TxId::new((p * per + k) as u64));
                    let v = t.read(ctx, TObjId::new(0)).unwrap();
                    t.write(ctx, TObjId::new(0), v + 1).unwrap();
                    t.try_commit(ctx).unwrap();
                }
            });
        }
        let sim = b.start();
        run_policy(&sim, &mut RoundRobin::new(), 1_000_000);
        // All increments applied exactly once: full serializability.
        let val_obj = {
            // val[X0] is the second allocated object (after the lock).
            ptm_sim::BaseObjectId::new(1)
        };
        assert_eq!(sim.peek(val_obj), (n * per) as u64);
    }

    #[test]
    fn properties() {
        let mut b = SimBuilder::new(1);
        let tm = GlockTm::install(&mut b, 1);
        let p = tm.properties();
        assert!(p.strongly_progressive && p.opaque && p.blocking);
        assert!(!p.weak_dap && !p.invisible_reads);
    }
}
