//! The paper's matching upper bound: a progressive, opaque, weak-DAP TM
//! with **invisible reads** and **incremental validation**.
//!
//! This is the construction the paper points to ([19]/DSTM-style) as tight
//! for Theorem 3: metadata is strictly per-t-object (one versioned-lock
//! word and one value word per item — *strict data partitioning*, hence
//! weak DAP), reads apply only trivial primitives (invisible), and opacity
//! is maintained by re-validating the entire read set on **every** t-read.
//! That re-validation is exactly the `Ω(i)` steps / `i−1` distinct base
//! objects per i-th read that Theorems 3(1) and 3(2) prove unavoidable
//! under these assumptions.
//!
//! ## Protocol
//!
//! Per t-object `X`: `meta[X]` (a versioned try-lock: `2·version`, low bit
//! set while a committer holds `X`) and `val[X]`.
//!
//! * `read(X)`: read `meta[X]` (abort if locked), read `val[X]`, re-read
//!   `meta[X]` (abort if changed), then re-validate every previously read
//!   item's version — abort on any change. Versions only grow, so an
//!   unchanged version word means no commit touched the item.
//! * `write(X, v)`: buffered locally (deferred update), zero steps.
//! * `tryC`, read-only: nothing to do — the last read's validation is the
//!   serialization point.
//! * `tryC`, updating: try-lock the write set in id order via CAS from the
//!   version observed at first access (abort on any failure), validate the
//!   read set once more, install the new values, then unlock with
//!   incremented versions. On abort, held locks are rolled back to their
//!   original versions.
//!
//! Every abort is caused by a locked or version-bumped item, i.e. by a
//! concurrent conflicting transaction — the TM is progressive. Conflicts
//! confined to a single item are resolved by the CAS winner, which cannot
//! subsequently abort inside the conflict class — strong progressiveness.

use crate::api::{Aborted, SimTm, SimTxn, TmProperties};
use ptm_sim::{BaseObjectId, Ctx, Home, SimBuilder, TObjId, TxId, Word};
use std::sync::Arc;

/// Base-object layout shared by all transactions of one TM instance.
#[derive(Debug)]
struct Layout {
    /// Versioned try-lock per t-object (`2·version + locked`).
    meta: Vec<BaseObjectId>,
    /// Value cell per t-object.
    val: Vec<BaseObjectId>,
}

impl Layout {
    fn meta(&self, x: TObjId) -> BaseObjectId {
        self.meta[x.index()]
    }
    fn val(&self, x: TObjId) -> BaseObjectId {
        self.val[x.index()]
    }
}

/// Which conditional primitive the committer uses to acquire versioned
/// locks. Theorem 9's lower bound covers TMs built from read, write, and
/// *conditional* primitives — both CAS and LL/SC qualify; offering both
/// exercises the whole class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LockPrim {
    /// Compare-and-swap (default).
    #[default]
    Cas,
    /// Load-linked / store-conditional.
    Llsc,
}

/// The invisible-reads progressive TM (see module docs).
#[derive(Debug, Clone)]
pub struct ProgressiveTm {
    layout: Arc<Layout>,
    lock_prim: LockPrim,
}

impl ProgressiveTm {
    /// Allocates the per-object metadata for `n_tobjects` items, locking
    /// with CAS.
    pub fn install(builder: &mut SimBuilder, n_tobjects: usize) -> Self {
        Self::install_with_lock(builder, n_tobjects, LockPrim::Cas)
    }

    /// Allocates the per-object metadata, locking with the given
    /// conditional primitive.
    pub fn install_with_lock(
        builder: &mut SimBuilder,
        n_tobjects: usize,
        lock_prim: LockPrim,
    ) -> Self {
        let meta = (0..n_tobjects)
            .map(|i| builder.alloc(format!("prog.meta[X{i}]"), 0, Home::Global))
            .collect();
        let val = (0..n_tobjects)
            .map(|i| builder.alloc(format!("prog.val[X{i}]"), 0, Home::Global))
            .collect();
        ProgressiveTm {
            layout: Arc::new(Layout { meta, val }),
            lock_prim,
        }
    }
}

impl SimTm for ProgressiveTm {
    fn name(&self) -> &'static str {
        "ir-progressive"
    }

    fn n_tobjects(&self) -> usize {
        self.layout.val.len()
    }

    fn properties(&self) -> TmProperties {
        TmProperties {
            weak_dap: true,
            invisible_reads: true,
            opaque: true,
            strongly_progressive: true,
            blocking: false,
        }
    }

    fn begin(&self, _tx: TxId) -> Box<dyn SimTxn> {
        Box::new(ProgressiveTxn {
            layout: Arc::clone(&self.layout),
            lock_prim: self.lock_prim,
            rset: Vec::new(),
            wset: Vec::new(),
            dead: false,
        })
    }
}

/// One transaction's state.
#[derive(Debug)]
struct ProgressiveTxn {
    layout: Arc<Layout>,
    lock_prim: LockPrim,
    /// `(item, version observed)` in read order.
    rset: Vec<(TObjId, Word)>,
    /// `(item, buffered value)` in first-write order, one entry per item.
    wset: Vec<(TObjId, Word)>,
    dead: bool,
}

impl ProgressiveTxn {
    fn buffered(&self, x: TObjId) -> Option<Word> {
        self.wset
            .iter()
            .rev()
            .find(|(y, _)| *y == x)
            .map(|(_, v)| *v)
    }

    fn recorded_version(&self, x: TObjId) -> Option<Word> {
        self.rset.iter().find(|(y, _)| *y == x).map(|(_, m)| *m)
    }

    /// Re-validates every read-set entry except `skip_last` newly added
    /// ones. Returns `Err` if any version moved or is locked.
    fn validate_rset(&self, ctx: &Ctx, upto: usize) -> Result<(), Aborted> {
        for &(y, m) in &self.rset[..upto] {
            let cur = ctx.read(self.layout.meta(y));
            if cur != m {
                return Err(Aborted);
            }
        }
        Ok(())
    }

    fn die(&mut self) -> Aborted {
        self.dead = true;
        Aborted
    }
}

impl SimTxn for ProgressiveTxn {
    fn read(&mut self, ctx: &Ctx, x: TObjId) -> Result<Word, Aborted> {
        debug_assert!(!self.dead, "operation on an aborted transaction");
        if let Some(v) = self.buffered(x) {
            return Ok(v);
        }
        if let Some(m) = self.recorded_version(x) {
            // Already read: return a consistent value. Re-read the value
            // and confirm the version is unchanged.
            let v = ctx.read(self.layout.val(x));
            if ctx.read(self.layout.meta(x)) != m {
                return Err(self.die());
            }
            if self.validate_rset(ctx, self.rset.len()).is_err() {
                return Err(self.die());
            }
            return Ok(v);
        }
        let m1 = ctx.read(self.layout.meta(x));
        if m1 & 1 == 1 {
            return Err(self.die()); // locked by a concurrent committer
        }
        let v = ctx.read(self.layout.val(x));
        let m2 = ctx.read(self.layout.meta(x));
        if m2 != m1 {
            return Err(self.die()); // concurrent commit in between
        }
        // Incremental validation: the whole read set, every read.
        if self.validate_rset(ctx, self.rset.len()).is_err() {
            return Err(self.die());
        }
        self.rset.push((x, m1));
        Ok(v)
    }

    fn write(&mut self, _ctx: &Ctx, x: TObjId, v: Word) -> Result<(), Aborted> {
        debug_assert!(!self.dead, "operation on an aborted transaction");
        if let Some(slot) = self.wset.iter_mut().find(|(y, _)| *y == x) {
            slot.1 = v;
        } else {
            self.wset.push((x, v));
        }
        Ok(())
    }

    fn try_commit(&mut self, ctx: &Ctx) -> Result<(), Aborted> {
        debug_assert!(!self.dead, "operation on an aborted transaction");
        if self.wset.is_empty() {
            // Read-only: serialized at its last read's validation.
            return Ok(());
        }
        // Lock the write set in item order (deterministic order avoids
        // needless livelock between committers; progressiveness comes from
        // try-locking, not ordering).
        let mut to_lock: Vec<TObjId> = self.wset.iter().map(|(x, _)| *x).collect();
        to_lock.sort_unstable();
        let mut held: Vec<(TObjId, Word)> = Vec::new(); // (item, pre-lock meta)
        for x in to_lock {
            let m = match self.recorded_version(x) {
                Some(m) => m,
                None => {
                    let m = ctx.read(self.layout.meta(x));
                    if m & 1 == 1 {
                        return self.rollback(ctx, &held);
                    }
                    m
                }
            };
            if !self.try_lock(ctx, x, m) {
                return self.rollback(ctx, &held);
            }
            held.push((x, m));
        }
        // Validate reads not covered by a held lock.
        for &(y, m) in &self.rset {
            if held.iter().any(|(x, _)| *x == y) {
                continue;
            }
            if ctx.read(self.layout.meta(y)) != m {
                return self.rollback(ctx, &held);
            }
        }
        // Install values, then release with bumped versions.
        for &(x, v) in &self.wset {
            ctx.write(self.layout.val(x), v);
        }
        for &(x, m) in &held {
            ctx.write(self.layout.meta(x), m + 2);
        }
        Ok(())
    }
}

impl ProgressiveTxn {
    /// Acquires the versioned lock on `x` from expected version word `m`
    /// using the configured conditional primitive.
    fn try_lock(&self, ctx: &Ctx, x: TObjId, m: Word) -> bool {
        match self.lock_prim {
            LockPrim::Cas => ctx.cas(self.layout.meta(x), m, m | 1),
            LockPrim::Llsc => {
                let cur = ctx.apply(self.layout.meta(x), ptm_sim::Primitive::LoadLinked);
                if cur != m {
                    return false;
                }
                ctx.apply(
                    self.layout.meta(x),
                    ptm_sim::Primitive::StoreConditional(m | 1),
                ) == 1
            }
        }
    }

    fn rollback(&mut self, ctx: &Ctx, held: &[(TObjId, Word)]) -> Result<(), Aborted> {
        for &(x, m) in held {
            ctx.write(self.layout.meta(x), m);
        }
        Err(self.die())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::SimTm;

    /// Single-process smoke test: write then read back, solo.
    #[test]
    fn solo_write_read_commits() {
        let mut b = SimBuilder::new(1);
        let tm = ProgressiveTm::install(&mut b, 2);
        let tm2 = tm.clone();
        b.add_process(move |ctx| {
            let mut t1 = tm2.begin(TxId::new(1));
            t1.write(ctx, TObjId::new(0), 7).unwrap();
            t1.try_commit(ctx).unwrap();
            let mut t2 = tm2.begin(TxId::new(2));
            assert_eq!(t2.read(ctx, TObjId::new(0)).unwrap(), 7);
            assert_eq!(t2.read(ctx, TObjId::new(1)).unwrap(), 0);
            t2.try_commit(ctx).unwrap();
        });
        let sim = b.start();
        sim.run_to_block(0.into(), 1000);
        assert!(sim.panic_of(0.into()).is_none());
    }

    /// Reads are buffered-write aware.
    #[test]
    fn read_own_write() {
        let mut b = SimBuilder::new(1);
        let tm = ProgressiveTm::install(&mut b, 1);
        let tm2 = tm.clone();
        b.add_process(move |ctx| {
            let mut t = tm2.begin(TxId::new(1));
            t.write(ctx, TObjId::new(0), 9).unwrap();
            assert_eq!(t.read(ctx, TObjId::new(0)).unwrap(), 9);
            t.try_commit(ctx).unwrap();
        });
        let sim = b.start();
        sim.run_to_block(0.into(), 1000);
        assert!(sim.panic_of(0.into()).is_none());
    }

    /// The i-th read performs ~3 + (i-1) steps: incremental validation.
    #[test]
    fn read_steps_grow_linearly() {
        let m = 8;
        let mut b = SimBuilder::new(1);
        let tm = ProgressiveTm::install(&mut b, m);
        let tm2 = tm.clone();
        b.add_process(move |ctx| {
            let mut t = tm2.begin(TxId::new(1));
            for i in 0..m {
                t.read(ctx, TObjId::new(i)).unwrap();
            }
            t.try_commit(ctx).unwrap();
        });
        let sim = b.start();
        let total = sim.run_to_block(0.into(), 10_000);
        // 3 fixed steps + (i-1) validation steps for read i (1-based).
        let expected: usize = (0..m).map(|i| 3 + i).sum();
        assert_eq!(total, expected);
    }

    /// The LL/SC variant commits and uses only Theorem 9's primitive
    /// class (read, write, conditionals).
    #[test]
    fn llsc_variant_stays_in_theorem9_class() {
        let mut b = SimBuilder::new(2);
        let tm = ProgressiveTm::install_with_lock(&mut b, 2, LockPrim::Llsc);
        for pid in 0..2u64 {
            let tmc = tm.clone();
            b.add_process(move |ctx| {
                let mut t = tmc.begin(TxId::new(pid + 1));
                let v = t.read(ctx, TObjId::new(0)).unwrap();
                t.write(ctx, TObjId::new(0), v + 1).unwrap();
                let _ = t.try_commit(ctx);
            });
        }
        let sim = b.start();
        sim.run_to_block(0.into(), 1000);
        sim.run_to_block(1.into(), 1000);
        for e in sim.log() {
            if let Some(m) = e.mem() {
                assert!(m.prim.in_theorem9_class(), "{:?}", m.prim);
            }
        }
        // Sequential runs: both committed, counter = 2.
        assert_eq!(sim.peek(tm.layout.val[0]), 2);
    }

    /// LL/SC lock races have a single winner.
    #[test]
    fn llsc_race_has_one_winner() {
        let mut b = SimBuilder::new(2);
        let tm = ProgressiveTm::install_with_lock(&mut b, 1, LockPrim::Llsc);
        for pid in 0..2u64 {
            let tmc = tm.clone();
            b.add_process(move |ctx| {
                let mut t = tmc.begin(TxId::new(pid + 1));
                t.write(ctx, TObjId::new(0), pid + 10).unwrap();
                let _: u8 = ctx.recv();
                let r = t.try_commit(ctx);
                ctx.marker(ptm_sim::Marker::Note {
                    tag: "c",
                    a: pid,
                    b: r.is_ok() as u64,
                });
            });
        }
        let sim = b.start();
        sim.send(0.into(), 0u8);
        sim.send(1.into(), 0u8);
        loop {
            let runnable = sim.runnable();
            if runnable.is_empty() {
                break;
            }
            for pid in runnable {
                let _ = sim.step(pid);
            }
        }
        let winners = sim
            .log()
            .iter()
            .filter_map(|e| e.marker().copied())
            .filter(|m| matches!(m, ptm_sim::Marker::Note { tag: "c", b: 1, .. }))
            .count();
        assert_eq!(winners, 1);
    }

    /// Claimed properties are consistent.
    #[test]
    fn properties() {
        let mut b = SimBuilder::new(1);
        let tm = ProgressiveTm::install(&mut b, 1);
        let p = tm.properties();
        assert!(p.weak_dap && p.invisible_reads && p.opaque && p.strongly_progressive);
        assert!(!p.blocking);
        assert_eq!(tm.name(), "ir-progressive");
        assert_eq!(tm.n_tobjects(), 1);
    }
}
