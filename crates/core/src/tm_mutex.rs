//! **Algorithm 1**: a deadlock-free, finite-exit mutual exclusion lock
//! `L(M)` built from any strictly serializable, strongly progressive TM
//! `M` that accesses a single t-object — the paper's reduction behind
//! Theorem 9.
//!
//! The TM enqueues contenders: `func()` atomically reads the t-object `X`
//! (holding the previous contender's identity, or `⊥`) and overwrites it
//! with the caller's identity `[p_i, face_i]`, retrying while the
//! transaction aborts — strong progressiveness guarantees that among
//! concurrent contenders on the single item, someone always commits, so
//! the `while (prev ← func()) = false` loop is deadlock-free. The rest is
//! Lee's local-spin handoff: the winner of `X`'s previous value waits, if
//! needed, on a register `Lock[p_i][prev.pid]` that only its predecessor
//! writes, and alternating `face` bits make the per-face `Done`/`Succ`
//! registers single-use so stale signals can't leak across passages.
//!
//! Every non-TM step of `Entry`/`Exit` is O(1) RMRs (the spin register is
//! written exactly once, and in the DSM model it is homed at the spinner),
//! so the RMR cost of `L(M)` is within a constant of `M`'s — Theorem 7 —
//! and Attiya–Hendler–Woelfel's `Ω(n log n)` mutex bound transfers to `M`.
//!
//! Deviation from the paper's pseudocode (documented): the `Lock` array is
//! allocated including its diagonal. When a process finds *its own
//! previous face* in `X` (it re-enters an uncontended lock), `prev.pid`
//! equals its own pid; the paper's code still writes
//! `Lock[p_i][prev.pid]` before consulting `Done[prev]` (which is
//! necessarily `true` in that case, so no spin follows). Allocating the
//! diagonal keeps the code identical to the paper's line numbering rather
//! than special-casing self-succession.

use crate::api::SimTm;
use ptm_mutex::{MutexToken, SimMutex};
use ptm_sim::{BaseObjectId, Ctx, Home, ProcessId, SimBuilder, TObjId, TxId, Word};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

const BOTTOM: Word = 0;

fn encode(pid: usize, face: u8) -> Word {
    (pid as Word) * 2 + Word::from(face) + 1
}

fn decode(v: Word) -> (usize, u8) {
    let v = v - 1;
    ((v / 2) as usize, (v % 2) as u8)
}

/// The Algorithm 1 mutex `L(M)` (see module docs).
pub struct TmMutex {
    tm: Arc<dyn SimTm>,
    /// `Done[p][face]`, homed at `p`.
    done: Vec<[BaseObjectId; 2]>,
    /// `Succ[p][face]` (`0 = ⊥`, else successor pid + 1), homed at `p`.
    succ: Vec<[BaseObjectId; 2]>,
    /// `Lock[p][q]`, homed at `p` (the spinner).
    lock: Vec<Vec<BaseObjectId>>,
    /// Local `face_i` bits (a local variable in the paper's pseudocode).
    face: Mutex<Vec<u8>>,
    /// Transaction id dispenser (harness bookkeeping, not simulated).
    next_tx: AtomicU64,
}

impl std::fmt::Debug for TmMutex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TmMutex")
            .field("tm", &self.tm.name())
            .field("n", &self.done.len())
            .finish()
    }
}

impl TmMutex {
    /// Installs the register layout and wraps the given single-t-object
    /// TM. `install_tm` must install a TM with at least one t-object; the
    /// mutex uses t-object 0 only.
    pub fn install(
        builder: &mut SimBuilder,
        install_tm: impl FnOnce(&mut SimBuilder) -> Arc<dyn SimTm>,
    ) -> Self {
        let tm = install_tm(builder);
        assert!(tm.n_tobjects() >= 1, "the reduction needs one t-object");
        let n = builder.n_processes();
        let mut done = Vec::with_capacity(n);
        let mut succ = Vec::with_capacity(n);
        let mut lock = Vec::with_capacity(n);
        for p in 0..n {
            let home = Home::Process(ProcessId::new(p));
            done.push([
                builder.alloc(format!("lm.done[p{p},0]"), 1, home),
                builder.alloc(format!("lm.done[p{p},1]"), 1, home),
            ]);
            succ.push([
                builder.alloc(format!("lm.succ[p{p},0]"), 0, home),
                builder.alloc(format!("lm.succ[p{p},1]"), 0, home),
            ]);
            lock.push(
                (0..n)
                    .map(|q| builder.alloc(format!("lm.lock[p{p}][p{q}]"), 0, home))
                    .collect(),
            );
        }
        TmMutex {
            tm,
            done,
            succ,
            lock,
            face: Mutex::new(vec![0; n]),
            next_tx: AtomicU64::new(0),
        }
    }

    /// The wrapped TM's name (for table labels).
    pub fn tm_name(&self) -> &'static str {
        self.tm.name()
    }

    /// `func()`: atomically swap our identity into `X`, returning the
    /// previous value, or `None` if the transaction aborted. Operations
    /// are logged with markers so the run's TM history can be audited.
    fn func(&self, ctx: &Ctx, me: Word) -> Option<Word> {
        let tx = TxId::new(1 + self.next_tx.fetch_add(1, Ordering::Relaxed));
        let x = TObjId::new(0);
        let mut txn = self.tm.begin(tx);
        let value = crate::driver::logged_read(txn.as_mut(), ctx, tx, x).ok()?;
        crate::driver::logged_write(txn.as_mut(), ctx, tx, x, me).ok()?;
        crate::driver::logged_commit(txn.as_mut(), ctx, tx).ok()?;
        Some(value)
    }
}

impl SimMutex for TmMutex {
    fn name(&self) -> &'static str {
        "L(M)"
    }

    fn enter(&self, ctx: &Ctx) -> MutexToken {
        let me = ctx.pid().index();
        // Line 20: adopt the alternate face.
        let face = {
            let mut faces = self.face.lock().expect("face bookkeeping");
            faces[me] = 1 - faces[me];
            faces[me]
        };
        let f = face as usize;
        // Lines 21–22: reset this face's registers.
        ctx.write(self.done[me][f], 0);
        ctx.write(self.succ[me][f], 0);
        // Lines 23–25: enqueue through the TM until it commits.
        let prev = loop {
            if let Some(prev) = self.func(ctx, encode(me, face)) {
                break prev;
            }
        };
        // Line 26: no predecessor — straight into the critical section.
        if prev == BOTTOM {
            return MutexToken(face.into());
        }
        let (prev_pid, prev_face) = decode(prev);
        // Line 27: arm our spin register for this predecessor.
        ctx.write(self.lock[me][prev_pid], 1);
        // Line 28: announce ourselves as the predecessor's successor.
        ctx.write(self.succ[prev_pid][prev_face as usize], me as Word + 1);
        // Lines 29–32: if the predecessor is still inside, wait for its
        // handoff on our local register.
        if ctx.read(self.done[prev_pid][prev_face as usize]) == 0 {
            while ctx.read(self.lock[me][prev_pid]) == 1 {}
        }
        MutexToken(face.into())
    }

    fn exit(&self, ctx: &Ctx, token: MutexToken) {
        let me = ctx.pid().index();
        let f = token.0 as usize;
        // Line 36: mark this face done.
        ctx.write(self.done[me][f], 1);
        // Line 37: hand off to the successor, if one registered.
        let succ = ctx.read(self.succ[me][f]);
        if succ != BOTTOM {
            let succ_pid = (succ - 1) as usize;
            ctx.write(self.lock[succ_pid][me], 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::glock::GlockTm;
    use crate::progressive::ProgressiveTm;
    use ptm_model::satisfies_mutual_exclusion;
    use ptm_mutex::mutex_process_body;
    use ptm_sim::{run_policy, Marker, MutexOp, RandomPolicy};

    fn run_lm(
        n: usize,
        passages: usize,
        seed: u64,
        progressive: bool,
    ) -> (Vec<ptm_sim::LogEntry>, ptm_sim::Metrics) {
        let mut b = SimBuilder::new(n);
        let lock: Arc<dyn SimMutex> = Arc::new(TmMutex::install(&mut b, |b| {
            if progressive {
                Arc::new(ProgressiveTm::install(b, 1)) as Arc<dyn SimTm>
            } else {
                Arc::new(GlockTm::install(b, 1)) as Arc<dyn SimTm>
            }
        }));
        for _ in 0..n {
            let l = Arc::clone(&lock);
            b.add_process(move |ctx| mutex_process_body(l, passages, ctx));
        }
        let sim = b.start();
        run_policy(&sim, &mut RandomPolicy::seeded(seed), 4_000_000);
        assert!(sim.runnable().is_empty(), "L(M) workload deadlocked");
        (sim.log(), sim.metrics())
    }

    fn count_enters(log: &[ptm_sim::LogEntry]) -> usize {
        log.iter()
            .filter(|e| {
                matches!(
                    e.marker(),
                    Some(Marker::MutexResponse { op: MutexOp::Enter })
                )
            })
            .count()
    }

    #[test]
    fn encode_decode_roundtrip() {
        for pid in 0..10 {
            for face in 0..2u8 {
                assert_eq!(decode(encode(pid, face)), (pid, face));
            }
        }
        assert_ne!(encode(0, 0), BOTTOM);
    }

    #[test]
    fn single_process_repeated_passages() {
        let (log, _) = run_lm(1, 5, 1, false);
        assert_eq!(count_enters(&log), 5);
        assert!(satisfies_mutual_exclusion(&log));
    }

    #[test]
    fn contended_glock_reduction_is_safe() {
        for seed in [3, 9, 42] {
            let (log, _) = run_lm(4, 4, seed, false);
            assert_eq!(count_enters(&log), 16, "seed {seed}");
            assert!(satisfies_mutual_exclusion(&log), "seed {seed}");
        }
    }

    #[test]
    fn contended_progressive_reduction_is_safe() {
        for seed in [5, 11] {
            let (log, _) = run_lm(4, 3, seed, true);
            assert_eq!(count_enters(&log), 12, "seed {seed}");
            assert!(satisfies_mutual_exclusion(&log), "seed {seed}");
        }
    }

    #[test]
    fn reduction_tm_history_is_strongly_progressive() {
        // The TM usage inside L(M) is single-object; audit its history.
        let (log, _) = run_lm(3, 3, 7, true);
        let h = ptm_model::History::from_log(&log).expect("well-formed");
        assert!(ptm_model::is_strongly_progressive(&h));
        // Every committed func() transaction is a read-then-write of X0.
        for tx in h.transactions() {
            assert!(tx.data_set().len() <= 1);
        }
    }

    #[test]
    fn handoff_spin_is_local_in_dsm() {
        // The only unbounded wait spins on Lock[p][q], homed at p: DSM
        // RMRs per passage stay bounded even under heavy contention.
        let n = 4;
        let passages = 6;
        let (log, metrics) = run_lm(n, passages, 13, false);
        assert_eq!(count_enters(&log), n * passages);
        for p in 0..n {
            let pid = ProcessId::new(p);
            // Generous constant: TM ops + handoff, but no spin blowup.
            assert!(
                metrics.rmr_dsm(pid) <= (passages * 40) as u64,
                "p{p}: {} DSM RMRs over {passages} passages",
                metrics.rmr_dsm(pid)
            );
        }
    }
}
